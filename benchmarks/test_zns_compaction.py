"""ZNS compaction-offload bench: host-side vs device-side LSM compaction.

Two campaigns share one seed, workload, and zoned device; only the
compaction placement differs:

* **host** — victim runs stream up the host link, merge on the host, and
  stream back down into fresh zones;
* **device** — the ``merge`` stream kernel consumes the victim runs inside
  the SSD and only a 64 B completion crosses the link.

The acceptance properties are the offload's reason to exist: device-side
compaction must move at least **2x** fewer bytes over the host link on the
compaction path (in practice it is orders of magnitude), shrink *total*
link traffic, and improve foreground get p99 under compaction pressure —
host-path compaction bursts occupy the same link the foreground reads
complete over. A third campaign checks ``auto`` (the calibrated
CostSource picks the placement) never does worse than forced-host on link
traffic, and a same-seed double run must be byte-identical.

The run emits ``BENCH_zns.json`` (ops/sec simulated, events/sec wall) with
conservative floors so CI catches a simulator-throughput collapse.

Set ``ZNS_SMOKE=1`` to halve the horizon for CI (same assertions).
"""

import os
import time

import pytest
from conftest import emit_bench, run_once

from repro.zns import ZnsConfig, run_zns

SMOKE = bool(os.environ.get("ZNS_SMOKE"))
DURATION_NS = 4_000_000.0 if SMOKE else 8_000_000.0
SEED = 7

# Conservative floors for BENCH_zns.json — tuned to catch a collapse, not a
# wobble (observed: ~10 Mops/s simulated, ~100k events/s wall).
MIN_OPS_PER_SEC_SIMULATED = 1_000_000.0
MIN_SIM_EVENTS_PER_SEC_WALL = 5_000.0
#: The offload headline: >= 2x fewer compaction bytes over the host link
#: (the ISSUE floor; the observed ratio is ~3500x) and a >= 5% get-p99 win.
MIN_COMPACTION_LINK_CUT = 2.0
MIN_P99_RATIO = 1.05


def _run_policy(policy):
    return run_zns(
        ZnsConfig(seed=SEED, duration_ns=DURATION_NS, compaction=policy)
    )


def _run_all():
    return {policy: _run_policy(policy) for policy in ("host", "device", "auto")}


@pytest.mark.zns
def test_device_compaction_cuts_link_bytes_and_tail(benchmark):
    wall_start = time.perf_counter()
    runs = run_once(benchmark, _run_all)
    wall = time.perf_counter() - wall_start
    host, device, auto = runs["host"], runs["device"], runs["auto"]
    for name, report in runs.items():
        print(f"\n--- {name} ---\n{report.render()}")

    # Same seeded workload on both sides, under real compaction pressure.
    assert host.puts == device.puts and host.gets == device.gets
    assert host.compactions >= 2 and device.compactions >= 2
    assert host.compactions_device == 0 and device.compactions_host == 0

    # The headline: the compaction path stays off the host link...
    cut = host.compaction_link_bytes / max(device.compaction_link_bytes, 1)
    assert cut >= MIN_COMPACTION_LINK_CUT, f"compaction link cut only {cut:.1f}x"
    # ... which shrinks total link traffic and the foreground get tail.
    assert device.link_bytes_total < host.link_bytes_total
    p99_ratio = host.get_p99_ns / device.get_p99_ns
    assert p99_ratio >= MIN_P99_RATIO, (
        f"get p99 {host.get_p99_ns / 1e3:.1f} us (host) vs "
        f"{device.get_p99_ns / 1e3:.1f} us (device): ratio {p99_ratio:.3f}"
    )

    # Cost-driven placement never does worse than forced-host on the link.
    assert auto.compactions >= 1
    assert auto.compaction_link_bytes <= host.compaction_link_bytes

    _emit_bench(runs, cut, p99_ratio, wall)


def _emit_bench(runs, cut, p99_ratio, wall_seconds):
    """Write BENCH_zns.json and gate on conservative throughput floors."""
    total_ops = sum(r.puts + r.gets for r in runs.values())
    total_sim_ns = sum(r.horizon_ns for r in runs.values())
    ops_simulated = total_ops / (total_sim_ns * 1e-9)
    payload = {
        "benchmark": "zns_compaction",
        "smoke": SMOKE,
        "seed": SEED,
        "duration_ns": DURATION_NS,
        "compaction_link_cut": round(cut, 2),
        "get_p99_host_over_device": round(p99_ratio, 4),
        "policies": {name: report.to_dict() for name, report in runs.items()},
        "ops_per_sec_simulated": round(ops_simulated, 2),
    }
    emit_bench(
        "BENCH_zns.json",
        payload,
        sim_events=sum(r.sim_events for r in runs.values()),
        wall_seconds=wall_seconds,
        min_events_per_sec_wall=MIN_SIM_EVENTS_PER_SEC_WALL,
        rate_floors=[
            ("ops/sec simulated", ops_simulated, MIN_OPS_PER_SEC_SIMULATED)
        ],
    )


@pytest.mark.zns
def test_same_seed_runs_are_byte_identical(benchmark):
    first = run_once(benchmark, lambda: _run_policy("device"))
    second = _run_policy("device")
    assert first.fingerprint() == second.fingerprint()
    assert first.fingerprint_hex() == second.fingerprint_hex()
