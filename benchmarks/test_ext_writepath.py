"""Extension bench: write-path scomp ingest across architectures."""

from conftest import run_once

from repro.experiments import ext_writepath


def test_write_path_ingest(benchmark):
    result = run_once(benchmark, ext_writepath.run)
    print("\n" + ext_writepath.render(result))

    # The memory wall hits the write path too: ASSASIN wins on the
    # memory-intensive ingest kernels...
    assert result.speedup("raid4") >= 1.5
    assert result.speedup("raid6") >= 1.4
    # ...and is neutral on compute-bound encryption.
    assert 0.9 <= result.speedup("aes") <= 1.2
    # No configuration exceeds the host link on ingest.
    for kernel, per_config in result.results.items():
        for config, (gbps, _) in per_config.items():
            assert gbps <= 8.01, (kernel, config)
