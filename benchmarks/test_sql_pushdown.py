"""SQL pushdown bench: live-telemetry placement vs static policies.

Two contention scenarios run the same TPC-H mix under all three placement
policies on one shared event kernel:

* **contention** — default geometry; a bursty OLTP scomp tenant (4 ms on /
  18 ms off) plus a steady overwrite writer contend with the SQL client
  for cores, queue slots, and channels. A static all-device policy eats
  the bursts; a static all-host policy wastes the quiet windows. The
  live-telemetry optimiser reads core backlog and queue pressure off the
  simulator at each placement instant and must beat *both*.
* **gc** — shrunk flash geometry (16 write points, 64-page blocks) so the
  overwrite writer forces real garbage collection (victims picked,
  pages relocated), with a lazier threshold so collections arrive in
  visible waves. The optimiser additionally prices the FTL's collectible
  backlog when routing scans.

Every policy must produce byte-identical result fingerprints — the speedup
is never allowed to change answers. The run emits ``BENCH_sql.json``
(simulated queries/sec, auto-vs-best-static ratios, GC activity) with
conservative floors so CI catches a regression in the optimiser, not just
a crash.

Set ``SQL_SMOKE=1`` to shrink the traffic horizon for a faster CI run
(same query mix, same assertions, same floors).
"""

import dataclasses
import hashlib
import json
import os
import time

import pytest
from conftest import run_once

from repro.config import ServeConfig, assasin_sb_config
from repro.serve import TenantSpec
from repro.sql.session import SqlSession
from repro.sql.tpch import TPCH_SQL

SMOKE = bool(os.environ.get("SQL_SMOKE"))
SEED = 11
SCALE_FACTOR = 0.004
# Smoke halves the background-traffic horizon; the serial query chain
# completes well inside it either way, so the measured ratios are
# identical — only the post-query drain shrinks.
DURATION_NS = 100_000_000.0 if SMOKE else 200_000_000.0
QUERY_NUMBERS = (6, 14, 19, 6, 12, 14, 6, 19)
POLICIES = ("host", "device", "auto")

# Conservative floors — tuned to catch the optimiser degrading to a static
# policy (ratio -> 1.0) or the simulator collapsing, not a timing wobble.
# Observed ratios in both modes: contention 1.28, gc 1.15.
MIN_AUTO_VS_BEST_CONTENTION = 1.08
MIN_AUTO_VS_BEST_GC = 1.03
MIN_QUERIES_PER_SEC_SIMULATED = 40.0


def _tenants():
    return [
        TenantSpec(
            name="oltp", weight=2.0, kind="scomp", kernel="psf",
            pages_per_command=48, interarrival_ns=60_000.0,
            arrival="burst", burst_on_ns=4e6, burst_off_ns=18e6,
        ),
        TenantSpec(
            name="writer", weight=1.0, kind="write", overwrite=True,
            pages_per_command=16, interarrival_ns=400_000.0,
            region_pages=2048,
        ),
    ]


def _gc_config():
    cfg = assasin_sb_config()
    flash = dataclasses.replace(
        cfg.flash, channels=4, chips_per_channel=2, dies_per_chip=1,
        planes_per_die=2, pages_per_block=64, blocks_per_plane=256,
    )
    return dataclasses.replace(cfg, flash=flash)


def _run_policy(policy, scenario):
    kwargs = {}
    if scenario == "gc":
        kwargs = dict(
            config=_gc_config(),
            gc_threshold_pages=1024,
            gc_interval_ns=2e6,
        )
    session = SqlSession(
        policy=policy,
        gen_scale_factor=SCALE_FACTOR,
        seed=SEED,
        tenants=_tenants(),
        serve_config=ServeConfig(max_inflight=32),
        duration_ns=DURATION_NS,
        **kwargs,
    )
    records = session.run_serial([TPCH_SQL[n] for n in QUERY_NUMBERS])
    session.finish()
    counters = session.layer.telemetry.counters.snapshot()
    return {
        "total_latency_ns": sum(r.latency_ns for r in records),
        "fingerprints": [r.fingerprint() for r in records],
        "sites": [
            "".join(p.site[0].upper() for p in r.placements) for r in records
        ],
        "gc_collections": int(counters.get("gc.collections", 0)),
        "gc_pages_relocated": int(counters.get("gc.pages_relocated", 0)),
    }


def _run_scenario(scenario):
    return {policy: _run_policy(policy, scenario) for policy in POLICIES}


def _ratio(results):
    """auto-vs-best-static speedup on aggregate simulated latency."""
    best_static = min(
        results["host"]["total_latency_ns"], results["device"]["total_latency_ns"]
    )
    return best_static / results["auto"]["total_latency_ns"]


@pytest.mark.sql
def test_live_optimiser_beats_both_static_policies(benchmark):
    wall_start = time.perf_counter()
    runs = run_once(
        benchmark,
        lambda: {"contention": _run_scenario("contention"), "gc": _run_scenario("gc")},
    )
    wall = time.perf_counter() - wall_start

    for scenario, results in runs.items():
        # Byte-identical answers across all three placement policies.
        assert (
            results["host"]["fingerprints"]
            == results["device"]["fingerprints"]
            == results["auto"]["fingerprints"]
        ), f"{scenario}: policies disagree on query results"
        # The forced policies really forced their sites.
        assert set("".join(results["host"]["sites"])) == {"H"}
        assert set("".join(results["device"]["sites"])) == {"D"}
        for policy in POLICIES:
            ms = results[policy]["total_latency_ns"] / 1e6
            print(
                f"{scenario:10s} {policy:6s} total={ms:8.2f} ms  "
                f"sites={results[policy]['sites']}  "
                f"gc={results[policy]['gc_collections']}"
            )
        print(f"{scenario:10s} auto_vs_best_static = {_ratio(results):.3f}")

    # The gc scenario actually collected garbage under every policy.
    for policy in POLICIES:
        assert runs["gc"][policy]["gc_collections"] > 0
        assert runs["gc"][policy]["gc_pages_relocated"] > 0

    # The tentpole claim: live telemetry beats both static placements.
    assert _ratio(runs["contention"]) >= MIN_AUTO_VS_BEST_CONTENTION
    assert _ratio(runs["gc"]) >= MIN_AUTO_VS_BEST_GC

    _emit_bench(runs, wall)


def _emit_bench(runs, wall_seconds):
    """Write BENCH_sql.json and gate on conservative throughput floors."""
    auto_latency_ns = sum(
        runs[s]["auto"]["total_latency_ns"] for s in runs
    )
    n_queries = len(QUERY_NUMBERS) * len(runs)
    qps_simulated = n_queries / (auto_latency_ns / 1e9)
    digest = hashlib.sha256()
    for scenario in sorted(runs):
        for fp in runs[scenario]["auto"]["fingerprints"]:
            digest.update(fp.encode())
    payload = {
        "benchmark": "sql_pushdown",
        "smoke": SMOKE,
        "seed": SEED,
        "scale_factor": SCALE_FACTOR,
        "duration_ns": DURATION_NS,
        "queries": list(QUERY_NUMBERS),
        "scenarios": {
            scenario: {
                "auto_vs_best_static": round(_ratio(results), 4),
                "auto_sites": results["auto"]["sites"],
                "gc_collections": results["auto"]["gc_collections"],
                "gc_pages_relocated": results["auto"]["gc_pages_relocated"],
                **{
                    f"{policy}_total_ms": round(
                        results[policy]["total_latency_ns"] / 1e6, 3
                    )
                    for policy in POLICIES
                },
            }
            for scenario, results in runs.items()
        },
        "queries_per_sec_simulated": round(qps_simulated, 2),
        "wall_seconds": round(wall_seconds, 3),
        "fingerprint": digest.hexdigest(),
    }
    with open("BENCH_sql.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    assert qps_simulated >= MIN_QUERIES_PER_SEC_SIMULATED


@pytest.mark.sql
def test_same_seed_benchmark_runs_are_bit_identical(benchmark):
    first = run_once(benchmark, lambda: _run_policy("auto", "contention"))
    second = _run_policy("auto", "contention")
    assert first == second
