"""Figure 15: end-to-end TPC-H latency with computational-SSD offload."""

from conftest import run_once

from repro.experiments import fig15


def test_fig15_tpch_end_to_end(benchmark, psf_rates):
    result = run_once(benchmark, fig15.run, psf_rates=psf_rates)
    print("\n" + fig15.render(result))

    # Paper: offloading to even the Baseline CSD is ~1.9x over pure CPU.
    assert 1.5 <= result.baseline_over_pure <= 2.4
    # Paper: AssasinSb adds 1.1-1.5x end-to-end, GeoMean ~1.3x.
    assert 1.15 <= result.sb_over_baseline <= 1.5
    per_query = result.speedups("Baseline", "AssasinSb")
    assert all(1.0 <= s <= 1.6 for s in per_query)
    assert len(per_query) == 22
    # Every query at least ties pure CPU under offload.
    assert all(s >= 0.99 for s in result.speedups("PureCPU", "AssasinSb"))
