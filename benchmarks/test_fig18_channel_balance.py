"""Figure 18: flash channels stay balanced under the independent FTL."""

from conftest import run_once

from repro.experiments import fig16
from repro.ftl.allocator import measured_skew


def test_fig18_channel_balance(benchmark, scaling_result):
    result = run_once(benchmark, lambda: scaling_result)
    print("\nFigure 18: per-channel share of flash traffic (8 cores)")
    shares = result.channel_shares(8)
    for ch, share in enumerate(shares):
        print(f"  channel {ch}: {share:.4f}")
    # The FTL's striping alone balances channels (no CSD-aware placement).
    assert max(shares) - min(shares) < 0.02
    assert measured_skew(shares) < 0.01
    # All channels carried real traffic.
    assert all(s > 0.1 for s in shares)
