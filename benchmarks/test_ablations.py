"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these isolate individual mechanisms:

* stream ISA on/off (AssasinSb vs AssasinSp at equal clocks),
* prefetcher choice (none / stride / DCPT) on the Baseline hierarchy,
* crossbar on/off at even layout (should be free),
* eager read-ahead window depth in the firmware.
"""

from dataclasses import replace

import pytest
from conftest import run_once

from repro.config import PrefetcherKind, assasin_sb_config, prefetch_core
from repro.core.core import CoreModel
from repro.experiments.fig19 import channel_local_config
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD, simulate_offload
from repro.ssd import firmware as fw

DATA = 16 << 20


def test_ablation_stream_isa(benchmark, fig13_result):
    """Isolate the stream ISA: Sb vs Sp at the common 1 GHz clock."""

    def collect():
        return {
            kernel: fig13_result.throughput(kernel, "AssasinSb")
            / fig13_result.throughput(kernel, "AssasinSp")
            for kernel in ("stat", "raid4", "raid6")
        }

    ratios = run_once(benchmark, collect)
    print("\nstream-ISA ablation (Sb/Sp):", {k: round(v, 3) for k, v in ratios.items()})
    # Multi-stream kernels benefit most (pointer-per-stream elimination).
    assert ratios["raid6"] >= ratios["stat"]
    assert all(0.98 <= r <= 1.3 for r in ratios.values())


def test_ablation_prefetcher_choice(benchmark):
    """DCPT was the paper's best prefetcher; stride helps less; none least."""

    def run_all():
        kernel = get_kernel("stat")
        inputs = kernel.make_inputs(64 * 1024)
        out = {}
        for kind in (PrefetcherKind.NONE, PrefetcherKind.STRIDE, PrefetcherKind.DCPT):
            core = replace(prefetch_core(), prefetcher=kind, name=f"pf-{kind.value}")
            out[kind.value] = CoreModel(core).run(kernel, inputs).cycles
        return out

    cycles = run_once(benchmark, run_all)
    print("\nprefetcher ablation (cycles):", {k: int(v) for k, v in cycles.items()})
    assert cycles["dcpt"] <= cycles["stride"] <= cycles["none"]
    assert cycles["dcpt"] < 0.75 * cycles["none"]


def test_ablation_crossbar_free_at_even_layout(benchmark):
    """With an even layout the crossbar must not cost performance."""

    def run_pair():
        kernel = get_kernel("scan")
        sample = ComputationalSSD(assasin_sb_config()).sample_kernel(kernel)
        xbar = simulate_offload(assasin_sb_config(), kernel, DATA, sample=sample)
        local = simulate_offload(channel_local_config(), kernel, DATA, sample=sample)
        return xbar.throughput_gbps, local.throughput_gbps

    xbar, local = run_once(benchmark, run_pair)
    print(f"\ncrossbar ablation at skew=0: xbar={xbar:.2f} local={local:.2f} GB/s")
    assert xbar == pytest.approx(local, rel=0.08)


def test_ablation_eager_window(benchmark, monkeypatch):
    """Shrinking the firmware read-ahead window starves the cores."""

    def run_windows():
        kernel = get_kernel("scan")
        out = {}
        for window in (1, 4, 32):
            monkeypatch.setattr(fw, "EAGER_WINDOW_PAGES", window)
            out[window] = simulate_offload(
                assasin_sb_config(), kernel, DATA
            ).throughput_gbps
        return out

    rates = run_once(benchmark, run_windows)
    print("\neager-window ablation (GB/s):", {k: round(v, 2) for k, v in rates.items()})
    assert rates[32] > rates[1] * 1.5  # one page of read-ahead exposes tR
    assert rates[32] >= rates[4] * 0.99
