"""Fast-path engine throughput: steps/sec for both engines, whole registry.

The fast engine exists so the reproduction "runs as fast as the hardware
allows" (ROADMAP): every figure funnels through the ISA execution loop. This
harness records functional steps/sec for the reference interpreter and the
predecoded fast path on every registered kernel, asserts the fast path is
>=3x on the fig13/fig14 kernels, and — the part that actually matters —
that both engines produce identical architectural results while doing so.
"""

import time

from conftest import run_once

from repro.config import named_config
from repro.core.core import CoreModel
from repro.kernels.registry import KERNEL_NAMES, get_kernel

FIG13_KERNELS = ("stat", "raid4", "raid6", "aes")
FIG14_KERNEL = "psf"  # the fig14 pipeline is built from PSF stages
TARGET_KERNELS = FIG13_KERNELS + (FIG14_KERNEL,)
TARGET_SPEEDUP = 3.0

TARGET_BYTES = 128 * 1024  # long runs: stable wall-clock for the 3x gate
SWEEP_BYTES = 32 * 1024  # the rest of the registry is recorded, not gated


def _measure(kernel_name: str, engine: str, data_bytes: int):
    cfg = named_config("AssasinSb").with_exec_engine(engine)
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(data_bytes, seed=3)
    core = CoreModel(cfg.core)
    start = time.perf_counter()
    result = core.run(kernel, inputs)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed, result


def _sweep():
    rows = []
    for name in KERNEL_NAMES:
        data_bytes = TARGET_BYTES if name in TARGET_KERNELS else SWEEP_BYTES
        fast_sps, fast_result = _measure(name, "fast", data_bytes)
        ref_sps, ref_result = _measure(name, "reference", data_bytes)
        # Speed means nothing unless the architectural results are unchanged.
        assert fast_result.cycles == ref_result.cycles, name
        assert fast_result.instructions == ref_result.instructions, name
        assert fast_result.outputs == ref_result.outputs, name
        assert fast_result.final_state == ref_result.final_state, name
        rows.append((name, ref_sps, fast_sps, fast_sps / ref_sps))
    return rows


def test_fastpath_speed(benchmark):
    rows = run_once(benchmark, _sweep)

    header = f"{'kernel':<14}{'ref steps/s':>14}{'fast steps/s':>14}{'speedup':>9}"
    lines = [header, "-" * len(header)]
    for name, ref_sps, fast_sps, speedup in rows:
        lines.append(f"{name:<14}{ref_sps:>14,.0f}{fast_sps:>14,.0f}{speedup:>8.2f}x")
    print("\n" + "\n".join(lines))

    speedups = {name: speedup for name, _, _, speedup in rows}
    for name in TARGET_KERNELS:
        assert speedups[name] >= TARGET_SPEEDUP, (
            f"{name}: fast path only {speedups[name]:.2f}x over reference"
        )
