"""Figure 16: compute throughput scaling with ASSASIN core count."""

import pytest
from conftest import run_once

from repro.experiments import fig16


def test_fig16_scalability(benchmark, scaling_result):
    result = run_once(benchmark, lambda: scaling_result)
    print("\n" + fig16.render(result))

    # ~1 GB/s per core on the byte-scan dummy (paper Section VI-D).
    assert 0.85 <= result.per_core_peak_gbps <= 1.05

    # Linear scaling while under the flash bound...
    for n in (2, 4, 8):
        assert result.throughput(n) == pytest.approx(
            n * result.throughput(1), rel=0.06
        )
    # ...then bounded by the 8 GB/s flash array.
    for n in (10, 12, 16):
        assert 7.0 <= result.throughput(n) <= 8.01
    # Monotone non-decreasing within tolerance.
    counts = sorted(result.results)
    for a, b in zip(counts, counts[1:]):
        assert result.throughput(b) >= result.throughput(a) * 0.97
