"""Extension bench: conventional host I/O interleaved with an offload.

Quantifies the Section V-A generality property: regular reads coexist with
scomp work, the aggregate respecting the flash array's bandwidth.
"""

from conftest import run_once

from repro.experiments import ext_mixed


def test_mixed_io_interleaving(benchmark):
    result = run_once(benchmark, ext_mixed.run)
    print("\n" + ext_mixed.render(result))

    baseline = result.offload_gbps(0.0)
    # Offload throughput degrades gracefully, by roughly the host rate
    # (both share the same 8 GB/s flash array).
    for rate in (0.5, 1.0, 2.0):
        offload = result.offload_gbps(rate)
        assert offload <= baseline
        assert offload >= baseline - rate - 0.4, (rate, offload)
    # The aggregate stays within the flash array's capability.
    for rate, (offload, _, _) in result.results.items():
        assert offload + rate <= 8.3
    # Host reads remain serviceable (sub-millisecond) during the offload.
    for rate in (0.5, 1.0, 2.0):
        _, mean_us, p99_us = result.results[rate]
        assert mean_us < 500
        assert p99_us < 1000
