"""Figure 5 + Section III-A: Filter on one Baseline core hits the memory wall."""

from conftest import run_once

from repro.experiments import fig05


def test_fig5_cycle_decomposition(benchmark):
    result = run_once(benchmark, fig05.run)
    print("\n" + fig05.render(result))
    # Section III-A anchor: ~0.63 GB/s, far below the 1.6+ GB/s channel.
    assert 0.45 <= result.throughput_gbps <= 0.85
    # Figure 5's message: memory stalls dominate; removing them would give
    # a multi-x speedup (paper: ~3x even with a perfect L1).
    assert 2.5 <= result.memory_slowdown <= 6.0
    assert result.buckets["dram_stall"] > result.buckets["compute"]
