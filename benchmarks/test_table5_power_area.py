"""Table V: power and area of subcomponents and configurations."""

from conftest import run_once

from repro.experiments import fig22
from repro.power.models import CORE_LOGIC_AREA_MM2, CORE_LOGIC_POWER_MW


def test_table5_power_area(benchmark):
    result = run_once(benchmark, fig22.run)
    print("\n" + fig22.render(result))

    base = result.costs["Baseline"]
    sb = result.costs["AssasinSb"]
    udp = result.costs["UDP"]

    # Paper's observation: an L1-class SRAM is on the same order of
    # magnitude as the core logic in both area and power.
    l1 = next(c for c in base.components if c.name.startswith("L1D"))
    assert 0.3 < l1.area_mm2 / CORE_LOGIC_AREA_MM2 < 10
    assert 0.3 < l1.power_mw / CORE_LOGIC_POWER_MW < 10

    # ASSASIN's streaming hierarchy is cheaper than the cache hierarchy.
    assert sb.total_area_mm2 < base.total_area_mm2
    assert sb.total_power_mw < base.total_power_mw
    # The L2 dominates Baseline's silicon (256 KB per core).
    l2 = next(c for c in base.components if c.name.startswith("L2"))
    assert l2.area_mm2 > 0.5 * base.per_core_area_mm2
    # The UDP lane's big scratchpad keeps it from being cheap either.
    assert udp.total_area_mm2 > sb.total_area_mm2
