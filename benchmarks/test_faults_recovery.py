"""Fault-recovery bench: p99 latency and goodput under a fault campaign.

One seeded campaign injects correctable noise, uncorrectable bursts
(transient and permanent), and slow-die latency outliers into ~1% of read
pages while a read + scomp tenant mix runs; an identical clean run is the
baseline. The acceptance properties are the ones a storage array actually
ships against:

* ≥ 99% of commands complete successfully (inline ECC, read-retry, or
  RAID-group reconstruction) — no fault class leaks to the host,
* zero corruption: every byte served (and every page left on the device)
  matches the golden copy programmed at preload,
* recovery is paid for in the tail, not correctness: faulty p99 ≥ clean
  p99 while goodput stays within a modest factor,
* determinism: the same seed reproduces the campaign fingerprint exactly.

Set ``FAULTS_SMOKE=1`` to shrink the campaign to a seconds-long CI smoke
run (fewer pages, shorter horizon, same assertions).
"""

import os

import pytest
from conftest import run_once

from repro.config import FaultConfig, ServeConfig, assasin_sb_config
from repro.faults import clean_baseline, run_campaign
from repro.serve import TenantSpec

SMOKE = bool(os.environ.get("FAULTS_SMOKE"))
DURATION_NS = 200_000.0 if SMOKE else 1_500_000.0
REGION_PAGES = 64 if SMOKE else 256
SEED = 11

FAULTS = FaultConfig(
    seed=SEED,
    page_error_rate=0.02,
    uncorrectable_rate=0.01,  # ≤ 1% of read pages go uncorrectable
    transient_fraction=0.5,
    slow_read_rate=0.02,
    raid_k=4,
)
SERVE = ServeConfig(arbitration="wrr")


def _tenants():
    return [
        TenantSpec(
            name="reader", weight=2.0, kind="read",
            pages_per_command=4, interarrival_ns=15_000.0,
            region_pages=REGION_PAGES,
        ),
        TenantSpec(
            name="scanner", weight=1.0, kind="scomp", kernel="scan",
            pages_per_command=8, interarrival_ns=40_000.0,
            region_pages=REGION_PAGES,
        ),
    ]


def _run_pair():
    campaign = run_campaign(
        assasin_sb_config(), FAULTS, tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    clean = clean_baseline(
        assasin_sb_config(), tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    return campaign, clean


@pytest.mark.faults
def test_recovery_keeps_serving_under_faults(benchmark):
    campaign, clean = run_once(benchmark, _run_pair)
    print(f"\n--- faulty ---\n{campaign.render()}")
    print(f"\n--- clean ---\n{clean.render()}")

    faulty = campaign.serve

    # The device kept serving: ≥99% command success under ~1% uncorrectable.
    assert faulty.total_completed > 0
    assert faulty.success_rate >= 0.99
    # ... and served only correct bytes, during the run and after it.
    assert campaign.corruption_events == 0
    assert campaign.integrity_errors == 0
    assert campaign.healthy

    # The recovery machinery actually fired (this is not a vacuous pass).
    counters = campaign.recovery_counters
    assert counters.get("corrected_pages", 0) > 0
    if not SMOKE:
        assert counters.get("uncorrectable_reads", 0) > 0
        assert (
            counters.get("retry_recovered_pages", 0)
            + counters.get("reconstructed_pages", 0)
            > 0
        )

    # Recovery costs tail latency, not correctness: the faulty run is never
    # faster than clean, and goodput degrades boundedly.
    for name, tenant in clean.tenants.items():
        assert faulty.tenants[name].p99_latency_ns >= tenant.p99_latency_ns * 0.999
    assert faulty.goodput_gbps > 0
    assert faulty.goodput_gbps <= clean.goodput_gbps * 1.001
    assert faulty.goodput_gbps >= clean.goodput_gbps * 0.5

    # Any RAID rebuilds were timed and show up in the report.
    if counters.get("reconstructed_pages", 0):
        assert len(faulty.reconstruction_ns) == counters["reconstructed_pages"]
        assert faulty.reconstruction_p99_ns > 0


@pytest.mark.faults
def test_campaign_fingerprint_is_reproducible(benchmark):
    first = run_once(
        benchmark,
        lambda: run_campaign(
            assasin_sb_config(), FAULTS, tenants=_tenants(),
            serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
        ),
    )
    second = run_campaign(
        assasin_sb_config(), FAULTS, tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    assert first.fingerprint() == second.fingerprint()
