"""Fault-recovery bench: p99 latency and goodput under a fault campaign.

One seeded campaign injects correctable noise, uncorrectable bursts
(transient and permanent), and slow-die latency outliers into ~1% of read
pages while a read + scomp tenant mix runs; an identical clean run is the
baseline. The acceptance properties are the ones a storage array actually
ships against:

* ≥ 99% of commands complete successfully (inline ECC, read-retry, or
  RAID-group reconstruction) — no fault class leaks to the host,
* zero corruption: every byte served (and every page left on the device)
  matches the golden copy programmed at preload,
* recovery is paid for in the tail, not correctness: faulty p99 ≥ clean
  p99 while goodput stays within a modest factor,
* determinism: the same seed reproduces the campaign fingerprint exactly.

The campaign emits ``BENCH_faults.json`` (commands/sec simulated, sim
events/sec of wall time) with conservative regression floors so the
faults-smoke CI job catches a simulator-throughput collapse.

Set ``FAULTS_SMOKE=1`` to shrink the campaign to a seconds-long CI smoke
run (fewer pages, shorter horizon, same assertions).
"""

import os
import time

import pytest
from conftest import emit_bench, run_once

from repro.config import FaultConfig, ServeConfig, assasin_sb_config
from repro.faults import clean_baseline, run_campaign
from repro.serve import TenantSpec

SMOKE = bool(os.environ.get("FAULTS_SMOKE"))
DURATION_NS = 200_000.0 if SMOKE else 1_500_000.0
REGION_PAGES = 64 if SMOKE else 256
SEED = 11

FAULTS = FaultConfig(
    seed=SEED,
    page_error_rate=0.02,
    uncorrectable_rate=0.01,  # ≤ 1% of read pages go uncorrectable
    transient_fraction=0.5,
    slow_read_rate=0.02,
    raid_k=4,
)
SERVE = ServeConfig(arbitration="wrr")

# Floors for BENCH_faults.json — tuned to catch a collapse, not a wobble
# (observed: ~60-100k commands/s simulated; ~200-600 events/s wall, the
# wall window being dominated by golden-copy preload and the post-run
# integrity sweep rather than the event loop itself).
MIN_COMMANDS_PER_SEC_SIMULATED = 5_000.0
MIN_SIM_EVENTS_PER_SEC_WALL = 20.0


def _tenants():
    return [
        TenantSpec(
            name="reader", weight=2.0, kind="read",
            pages_per_command=4, interarrival_ns=15_000.0,
            region_pages=REGION_PAGES,
        ),
        TenantSpec(
            name="scanner", weight=1.0, kind="scomp", kernel="scan",
            pages_per_command=8, interarrival_ns=40_000.0,
            region_pages=REGION_PAGES,
        ),
    ]


def _run_pair():
    campaign = run_campaign(
        assasin_sb_config(), FAULTS, tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    clean = clean_baseline(
        assasin_sb_config(), tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    return campaign, clean


@pytest.mark.faults
def test_recovery_keeps_serving_under_faults(benchmark):
    wall_start = time.perf_counter()
    campaign, clean = run_once(benchmark, _run_pair)
    wall = time.perf_counter() - wall_start
    print(f"\n--- faulty ---\n{campaign.render()}")
    print(f"\n--- clean ---\n{clean.render()}")

    faulty = campaign.serve

    # The device kept serving: ≥99% command success under ~1% uncorrectable.
    assert faulty.total_completed > 0
    assert faulty.success_rate >= 0.99
    # ... and served only correct bytes, during the run and after it.
    assert campaign.corruption_events == 0
    assert campaign.integrity_errors == 0
    assert campaign.healthy

    # The recovery machinery actually fired (this is not a vacuous pass).
    counters = campaign.recovery_counters
    assert counters.get("corrected_pages", 0) > 0
    if not SMOKE:
        assert counters.get("uncorrectable_reads", 0) > 0
        assert (
            counters.get("retry_recovered_pages", 0)
            + counters.get("reconstructed_pages", 0)
            > 0
        )

    # Recovery costs tail latency, not correctness: the faulty run is never
    # faster than clean, and goodput degrades boundedly.
    for name, tenant in clean.tenants.items():
        assert faulty.tenants[name].p99_latency_ns >= tenant.p99_latency_ns * 0.999
    assert faulty.goodput_gbps > 0
    assert faulty.goodput_gbps <= clean.goodput_gbps * 1.001
    assert faulty.goodput_gbps >= clean.goodput_gbps * 0.5

    # Any RAID rebuilds were timed and show up in the report.
    if counters.get("reconstructed_pages", 0):
        assert len(faulty.reconstruction_ns) == counters["reconstructed_pages"]
        assert faulty.reconstruction_p99_ns > 0

    _emit_bench(campaign, clean, wall)


def _emit_bench(campaign, clean, wall_seconds):
    """Write BENCH_faults.json and gate on conservative throughput floors."""
    runs = {"faulty": campaign.serve, "clean": clean}
    total_commands = sum(r.total_completed for r in runs.values())
    total_sim_ns = sum(r.horizon_ns for r in runs.values())
    commands_simulated = total_commands / (total_sim_ns * 1e-9)
    payload = {
        "benchmark": "faults_recovery",
        "smoke": SMOKE,
        "seed": SEED,
        "duration_ns": DURATION_NS,
        "runs": {
            name: {
                "completed": report.total_completed,
                "failed": report.total_failed,
                "recovered": report.total_recovered,
                "success_rate": round(report.success_rate, 6),
                "horizon_ns": round(report.horizon_ns, 1),
                "sim_events": report.sim_events,
                "goodput_gbps": round(report.goodput_gbps, 4),
            }
            for name, report in runs.items()
        },
        "recovery_counters": dict(campaign.recovery_counters),
        "commands_per_sec_simulated": round(commands_simulated, 2),
    }
    emit_bench(
        "BENCH_faults.json",
        payload,
        sim_events=sum(r.sim_events for r in runs.values()),
        wall_seconds=wall_seconds,
        min_events_per_sec_wall=MIN_SIM_EVENTS_PER_SEC_WALL,
        rate_floors=[
            ("commands/sec simulated", commands_simulated, MIN_COMMANDS_PER_SEC_SIMULATED)
        ],
    )


@pytest.mark.faults
def test_campaign_fingerprint_is_reproducible(benchmark):
    first = run_once(
        benchmark,
        lambda: run_campaign(
            assasin_sb_config(), FAULTS, tenants=_tenants(),
            serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
        ),
    )
    second = run_campaign(
        assasin_sb_config(), FAULTS, tenants=_tenants(),
        serve_config=SERVE, duration_ns=DURATION_NS, seed=SEED,
    )
    assert first.fingerprint() == second.fingerprint()
