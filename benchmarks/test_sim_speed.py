"""Simulator-core speed bench: calendar-queue fast loop vs heapq reference.

The workload is the event-loop-bound regime the fast engine exists for:
hundreds of generator processes each yielding a fixed resume period, so
nearly every simulated instant dispatches a batch of homogeneous events
and the wall clock measures pure engine overhead (no flash timelines, no
kernel pricing). Both engines run the *same* schedule; the dispatch count
and final clock must agree exactly (the differential and property suites
prove the stronger bit-identical claim on the real campaigns).

Emits ``BENCH_sim.json`` with the measured events/sec of both engines and
gates the headline ratio: the fast engine must clear ``MIN_SPEEDUP``x the
reference on the same machine, plus a conservative absolute floor so a
fast-but-broken-build (e.g. silently falling back to reference) fails in
CI rather than shipping.
"""

import time

from conftest import emit_bench, run_once

from repro.sim import Simulator, use_engine

#: Generator processes resuming on short fixed periods (7 distinct phases,
#: so instants carry batches of same-time events without being degenerate).
#: The count is deliberately large: each instant then dispatches a ~100+
#: event batch, the regime the calendar queue's O(1) bucket operations and
#: batched dispatch target (the heapq reference pays O(log n) per event).
NUM_PROCS = 1000
#: Dispatches measured per run; large enough to swamp setup cost.
MAX_EVENTS = 300_000
#: Best-of-N walls per engine — absorbs CI scheduler noise.
REPEATS = 5

#: The tentpole gate: fast engine events/sec over reference events/sec.
MIN_SPEEDUP = 3.0
#: Absolute floor for the fast engine (observed ~3.9M/s locally; CI boxes
#: are slower and shared, so the floor only catches a collapse).
MIN_FAST_EVENTS_PER_SEC = 300_000.0


def _procs():
    def body(period):
        while True:
            yield period

    return [body(100 + 13 * (i % 7)) for i in range(NUM_PROCS)]


def _run_one(engine):
    """One timed run; returns (processed, now, wall seconds)."""
    with use_engine(engine):
        sim = Simulator()
        for i, proc in enumerate(_procs()):
            sim.spawn(proc, label=f"p{i}")
        start = time.perf_counter()
        sim.run(max_events=MAX_EVENTS)
        wall = time.perf_counter() - start
    return sim.processed, sim.now, wall


def _measure():
    """Best-of-REPEATS for both engines, interleaved.

    Shared CI boxes throttle unpredictably mid-test; alternating the two
    engines inside each repeat keeps a slow window from landing entirely
    on one side of the ratio.
    """
    outcomes = {}
    walls = {"reference": float("inf"), "fast": float("inf")}
    for _ in range(REPEATS):
        for engine in ("reference", "fast"):
            processed, now, wall = _run_one(engine)
            # Every run, either engine, replays the identical schedule.
            assert outcomes.setdefault(engine, (processed, now)) == (processed, now)
            walls[engine] = min(walls[engine], wall)
    return outcomes, walls


def test_fast_engine_meets_speedup_floor(benchmark):
    outcomes, walls = run_once(benchmark, _measure)
    ref_processed, ref_now = outcomes["reference"]
    fast_processed, fast_now = outcomes["fast"]
    ref_wall, fast_wall = walls["reference"], walls["fast"]

    # Same schedule, same outcome — the cheap half of the equivalence
    # claim; the differential suite carries the campaign-level half.
    assert fast_processed == ref_processed
    assert fast_now == ref_now

    ref_rate = ref_processed / ref_wall
    fast_rate = fast_processed / fast_wall
    speedup = fast_rate / ref_rate
    print(
        f"\nreference: {ref_rate:,.0f} events/s  "
        f"fast: {fast_rate:,.0f} events/s  speedup: {speedup:.2f}x"
    )

    payload = {
        "benchmark": "sim_speed",
        "num_procs": NUM_PROCS,
        "max_events": MAX_EVENTS,
        "repeats": REPEATS,
        "reference_events_per_sec": round(ref_rate, 1),
        "fast_events_per_sec": round(fast_rate, 1),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    emit_bench(
        "BENCH_sim.json",
        payload,
        sim_events=fast_processed,
        wall_seconds=fast_wall,
        min_events_per_sec_wall=MIN_FAST_EVENTS_PER_SEC,
        rate_floors=[("fast/reference speedup", speedup, MIN_SPEEDUP)],
    )
