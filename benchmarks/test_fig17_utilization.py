"""Figure 17: core utilisation stays high while scaling."""

from conftest import run_once

from repro.experiments import fig16


def test_fig17_utilization(benchmark, scaling_result):
    result = run_once(benchmark, lambda: scaling_result)
    rows = [(n, result.utilisation(n)) for n in sorted(result.results)]
    print("\nFigure 17: core utilisation vs ideal")
    for n, util in rows:
        print(f"  {n:3d} cores: {util:.3f}")
    # Paper: >98% while the interconnect and flash keep cores fed.
    for n in (1, 2, 4, 8):
        assert result.utilisation(n) > 0.98, n
    # Even past the flash bound, normalised utilisation stays high.
    for n in (10, 12, 16):
        assert result.utilisation(n) > 0.90, n
