"""Table II: stream-computing implementations of storage functions."""

from conftest import run_once

from repro.experiments import tables
from repro.kernels import KERNEL_NAMES, get_kernel
from repro.survey.functions import FUNCTIONS, streaming_fraction


def test_table2_streaming(benchmark):
    rendered = run_once(benchmark, tables.render_table2)
    print("\n" + rendered)
    # Section IV's conclusion: most functions map onto stream computing
    # with bounded function state.
    assert streaming_fraction() >= 12 / 14
    for fn in FUNCTIONS:
        assert fn.state_bound_bytes <= 64 * 1024
    # Every function family the evaluation touches has a real kernel whose
    # state honours the Table IV scratchpad budget.
    implemented = [f for f in FUNCTIONS if f.kernel]
    assert len(implemented) >= 9
    for profile in implemented:
        assert profile.kernel in KERNEL_NAMES
        kernel = get_kernel(profile.kernel)
        assert kernel.state_bytes <= 64 * 1024
