"""Figure 20: synthesised timing of stream buffers vs scratchpads."""

from conftest import run_once

from repro.experiments import fig20
from repro.utils.units import KIB


def test_fig20_timing(benchmark):
    result = run_once(benchmark, fig20.run)
    print("\n" + fig20.render(result))

    # Paper anchors: SB head FIFO ~0.5 ns even with a 64 B interface.
    assert 0.4 <= result.streambuffer_ns[64] <= 0.6
    # A 64 KB scratchpad with an 8 B port cannot make a 1 ns cycle.
    assert result.scratchpad_ns[(64 * KIB, 8)] > 1.0
    # Wider ports are slower at every size.
    for size in (8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB):
        assert result.scratchpad_ns[(size, 64)] > result.scratchpad_ns[(size, 8)]
    # AssasinSb's clock period shrinks ~11% (critical path moves to IF).
    assert 0.08 <= result.sb_cycle_reduction <= 0.14
    assert result.clocks["AssasinSb"].critical_stage == "IF"
    # Scratchpad configurations keep the base period and pay 2-cycle access.
    assert result.clocks["AssasinSp"].period_ns == 1.0
    assert result.clocks["AssasinSp"].scratchpad_cycles == 2
