"""Design-space exploration sweep benchmark (``BENCH_dse.json``).

Runs the default DSE grid (cores × geometry × pipeline model, 12 points)
end to end — per-point clocking, kernel sampling on the fast engine,
offload extrapolation, power/area costing, Pareto marking — and gates two
conservative throughput floors:

* ``points_per_sec_wall``: evaluated design points per wall second (the
  sweep-harness overhead gate);
* ``sim_events_per_sec_wall``: retired instructions across all sampled
  kernel runs per wall second (the core-simulation gate — a fast engine
  that silently fell back to the reference loop fails here).

Determinism rides along: the same spec must produce a byte-identical JSON
report twice in-process (CI additionally double-runs the CLI and ``cmp``s
the artifacts).

Set ``DSE_SMOKE=1`` to shrink the sample windows for a seconds-long CI
smoke run (the grid shape is kept: all 12 points still evaluate).
"""

import os
import time

import pytest

from conftest import emit_bench, run_once

from repro.dse import SweepSpec, report_json, run_sweep

SMOKE = bool(os.environ.get("DSE_SMOKE"))
SAMPLE_BYTES = (8 if SMOKE else 16) * 1024
DATA_BYTES = 8 << 20
SEED = 7

#: Conservative floors (observed locally: ~2 points/s and ~400k instr/s at
#: the full sample size; CI boxes are slower and shared).
MIN_POINTS_PER_SEC = 0.25
MIN_INSTR_PER_SEC = 30_000.0

SPEC = SweepSpec(
    sample_bytes=SAMPLE_BYTES,
    data_bytes=DATA_BYTES,
    seed=SEED,
)


@pytest.mark.dse
def test_dse_sweep_meets_floors(benchmark):
    start = time.perf_counter()
    result = run_once(benchmark, run_sweep, SPEC)
    wall = time.perf_counter() - start

    assert len(result.points) == SPEC.num_points >= 12
    frontier = result.pareto_points
    assert 1 <= len(frontier) < len(result.points)
    # Perf/power/area all priced on every point; predictive points must
    # actually exercise the predictive machinery.
    for point in result.points:
        assert point.perf_gbps > 0 and point.power_mw > 0 and point.area_mm2 > 0
        if point.pipeline_model == "predictive":
            assert point.hazard_stall_cycles > 0

    instructions = sum(p.instructions for p in result.points)
    points_per_sec = len(result.points) / max(wall, 1e-9)

    emit_bench(
        "BENCH_dse.json",
        {
            "benchmark": "dse_sweep",
            "smoke": SMOKE,
            "seed": SEED,
            "sample_bytes": SAMPLE_BYTES,
            "num_points": len(result.points),
            "pareto_points": sorted(p.label for p in frontier),
            "points_per_sec_wall": round(points_per_sec, 3),
            "best_perf_gbps": round(max(p.perf_gbps for p in result.points), 3),
            "total_instructions": instructions,
        },
        sim_events=instructions,
        wall_seconds=wall,
        min_events_per_sec_wall=MIN_INSTR_PER_SEC,
        rate_floors=[("points_per_sec_wall", points_per_sec, MIN_POINTS_PER_SEC)],
    )


@pytest.mark.dse
def test_dse_report_deterministic(benchmark):
    first = run_once(benchmark, lambda: report_json(run_sweep(SPEC)))
    second = report_json(run_sweep(SPEC))
    assert first == second
