"""Figure 22: speedup, power efficiency, and area efficiency vs Baseline."""

from conftest import run_once

from repro.experiments import fig13 as fig13_mod
from repro.experiments import fig22
from repro.utils.stats import geomean


def test_fig22_efficiency(benchmark, fig21_result):
    # Feed Figure 22 with the timing-adjusted speedups (as the paper does),
    # using the memory-bound workloads ASSASIN targets.
    memory_bound = ("stat", "raid4", "raid6")
    sb_speedup = geomean(
        [fig21_result.standalone.speedup(k, "AssasinSb") for k in memory_bound]
        + [fig21_result.psf.geomean_speedup("AssasinSb")]
    )
    udp_speedup = fig21_result.psf.geomean_speedup("UDP")
    speedups = {"Baseline": 1.0, "UDP": udp_speedup, "AssasinSb": sb_speedup}

    result = run_once(benchmark, fig22.run, speedups=speedups)
    print("\n" + fig22.render(result))

    sb = result.row("AssasinSb")
    udp = result.row("UDP")
    # Paper: ~2.0x power efficiency and ~3.2x area efficiency for ASSASIN.
    assert 1.6 <= sb.power_efficiency <= 2.6
    assert 2.0 <= sb.area_efficiency <= 4.0
    # General-purpose ASSASIN beats the exotic-ISA accelerator on both.
    assert sb.power_efficiency > udp.power_efficiency
    assert sb.area_efficiency > udp.area_efficiency
    assert result.row("Baseline").power_efficiency == 1.0
