"""Table I: the 22-study computational-storage survey."""

from conftest import run_once

from repro.experiments import tables
from repro.survey.functions import STUDIES, Domain, domain_counts


def test_table1_survey(benchmark):
    rendered = run_once(benchmark, tables.render_table1)
    print("\n" + rendered)
    assert len(STUDIES) == 22
    counts = domain_counts()
    # The paper's reading of the survey: database offloads are the most
    # common, and every domain is represented.
    assert counts[Domain.DATABASE] >= counts[Domain.FILE_SYSTEM]
    assert all(counts[d] > 0 for d in Domain)
