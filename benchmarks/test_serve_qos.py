"""Serving-layer QoS bench: arbitration policy vs per-tenant p99 latency.

Three tenants offer identical scomp load (open-loop Poisson arrivals that
collectively overload the device by design). Under plain round-robin every
tenant sees the same queueing delay; under weighted round-robin and deficit
round-robin the weight-4 "gold" tenant takes a larger dispatch share, so its
p99 collapses while the weight-1 tenants absorb the backlog — the isolation
a multi-tenant computational SSD needs to honour latency SLOs.

The policy comparison emits ``BENCH_serve.json`` (commands/sec simulated,
sim events/sec of wall time) with conservative regression floors so the
serve-smoke CI job catches a simulator-throughput collapse.
"""

import time

from conftest import emit_bench, run_once

from repro.config import ServeConfig, assasin_sb_config
from repro.kernels import get_kernel
from repro.serve import TenantSpec, simulate_serve
from repro.ssd.device import ComputationalSSD

DURATION_NS = 1_500_000.0
SEED = 7

# Floors for BENCH_serve.json — tuned to catch a collapse, not a wobble
# (observed: ~270k commands/s simulated, ~8k events/s wall; the wall
# window includes the shared core-phase sampling pass).
MIN_COMMANDS_PER_SEC_SIMULATED = 30_000.0
MIN_SIM_EVENTS_PER_SEC_WALL = 1_000.0


def _tenants():
    make = lambda name, weight: TenantSpec(
        name=name, weight=weight, kind="scomp", kernel="stat",
        pages_per_command=4, interarrival_ns=9_000.0,
    )
    return [make("gold", 4.0), make("silver", 1.0), make("bronze", 1.0)]


def _run_policies():
    # One core-phase sampling pass shared by every policy run, so the
    # comparison differs only in arbitration.
    sample = ComputationalSSD(assasin_sb_config()).sample_kernel(get_kernel("stat"))
    samples = {"stat": sample}
    return {
        policy: simulate_serve(
            assasin_sb_config(),
            _tenants(),
            ServeConfig(arbitration=policy),
            duration_ns=DURATION_NS,
            seed=SEED,
            samples=samples,
        )
        for policy in ("rr", "wrr", "drr")
    }


def test_weighted_arbitration_shifts_p99(benchmark):
    wall_start = time.perf_counter()
    reports = run_once(benchmark, _run_policies)
    wall = time.perf_counter() - wall_start
    for policy, report in reports.items():
        print(f"\n--- {policy} ---\n{report.render()}")

    rr, wrr, drr = reports["rr"], reports["wrr"], reports["drr"]
    gold_rr = rr.tenants["gold"].p99_latency_ns
    gold_wrr = wrr.tenants["gold"].p99_latency_ns
    gold_drr = drr.tenants["gold"].p99_latency_ns

    # The acceptance property: same offered load, strictly lower p99 for the
    # higher-weight tenant under weighted arbitration than under round-robin.
    assert gold_wrr < gold_rr
    assert gold_drr < gold_rr
    # And materially so — weighted policies cut gold's p99 at least 3x here.
    assert gold_wrr * 3 < gold_rr
    assert gold_drr * 3 < gold_rr

    # Weighting is a trade, not magic: the light tenants pay under wrr/drr.
    assert wrr.tenants["silver"].p99_latency_ns > rr.tenants["silver"].p99_latency_ns

    # No starvation anywhere: every policy is work-conserving, so even the
    # lightest tenant keeps completing commands under weighted arbitration.
    for report in reports.values():
        for tenant in report.tenants.values():
            assert tenant.completed > 50, (report.policy, tenant.tenant)

    # Determinism across the whole comparison: rerunning rr reproduces it.
    again = simulate_serve(
        assasin_sb_config(),
        _tenants(),
        ServeConfig(arbitration="rr"),
        duration_ns=DURATION_NS,
        seed=SEED,
        samples={"stat": ComputationalSSD(assasin_sb_config()).sample_kernel(get_kernel("stat"))},
    )
    assert again.fingerprint() == rr.fingerprint()

    _emit_bench(reports, wall)


def _emit_bench(reports, wall_seconds):
    """Write BENCH_serve.json and gate on conservative throughput floors."""
    total_commands = sum(r.total_completed for r in reports.values())
    total_sim_ns = sum(r.horizon_ns for r in reports.values())
    commands_simulated = total_commands / (total_sim_ns * 1e-9)
    payload = {
        "benchmark": "serve_qos",
        "seed": SEED,
        "duration_ns": DURATION_NS,
        "policies": {
            policy: {
                "completed": report.total_completed,
                "dropped": report.total_dropped,
                "horizon_ns": round(report.horizon_ns, 1),
                "sim_events": report.sim_events,
                "gold_p99_us": round(
                    report.tenants["gold"].p99_latency_ns / 1e3, 2
                ),
            }
            for policy, report in reports.items()
        },
        "commands_per_sec_simulated": round(commands_simulated, 2),
    }
    emit_bench(
        "BENCH_serve.json",
        payload,
        sim_events=sum(r.sim_events for r in reports.values()),
        wall_seconds=wall_seconds,
        min_events_per_sec_wall=MIN_SIM_EVENTS_PER_SEC_WALL,
        rate_floors=[
            ("commands/sec simulated", commands_simulated, MIN_COMMANDS_PER_SEC_SIMULATED)
        ],
    )


def test_qos_preserves_aggregate_throughput(benchmark):
    """Arbitration reshuffles *who* waits, not how much work the device does:
    aggregate completed commands stay within a few percent across policies."""
    reports = run_once(benchmark, _run_policies)
    totals = {p: r.total_completed for p, r in reports.items()}
    low, high = min(totals.values()), max(totals.values())
    assert low > 0
    assert high <= low * 1.1, totals
