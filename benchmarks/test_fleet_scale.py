"""Fleet-scale bench: tail-at-scale hedging and whole-device loss.

Three 8-device campaigns share one seed and workload:

* **baseline** — all devices healthy (hedging on, nearly idle),
* **slow-no-hedge** — device 1 is a straggler (20% of its reads take an
  extra 300 us) and hedging is off: the straggler owns the fleet tail,
* **slow-hedged** — same straggler, hedging on: duplicate-after-p95
  requests are served as degraded rebuilds from stripe-mate devices.

The acceptance properties mirror "The Tail at Scale": the slow die must
inflate fleet p99/p99.9 severely, and hedging must claw back at least half
of that inflation while staying within its duplicate budget. A fourth
campaign kills a device mid-run and must finish with ≥ 99% command
success and zero corruption via cross-device RAID reconstruction.

The run also emits ``BENCH_fleet.json`` (fleet commands/sec simulated,
simulation events/sec wall) with conservative floors so CI catches a
collapse in simulator throughput.

Set ``FLEET_SMOKE=1`` to shrink the horizon for a seconds-long CI run
(same assertions).
"""

import os
import time

import pytest
from conftest import emit_bench, run_once

from repro.config import assasin_sb_config
from repro.fleet import FleetConfig, simulate_fleet
from repro.serve import TenantSpec

SMOKE = bool(os.environ.get("FLEET_SMOKE"))
DURATION_NS = 2_000_000.0 if SMOKE else 4_000_000.0
SEED = 11
DEVICES = 8
SLOW_DEVICE = 1
SLOW_RATE = 0.2
SLOW_EXTRA_NS = 300_000.0

# Conservative floors for BENCH_fleet.json — tuned to catch a collapse,
# not a wobble (the observed rates carry an order of magnitude of margin;
# wall-clock is dominated by the ECC-coded flash preload, not the event loop).
MIN_SIM_EVENTS_PER_SEC = 50.0
MIN_FLEET_COMMANDS_PER_SEC = 10_000.0  # simulated-time service rate


def _tenants():
    return [
        TenantSpec(
            name="hot", weight=4.0, kind="scomp", kernel="stat",
            pages_per_command=4, interarrival_ns=20_000.0, region_pages=512,
        ),
        TenantSpec(
            name="reader", weight=1.0, kind="read",
            pages_per_command=4, interarrival_ns=15_000.0, region_pages=512,
        ),
        TenantSpec(
            name="writer", weight=1.0, kind="write",
            pages_per_command=4, interarrival_ns=40_000.0, region_pages=256,
        ),
    ]


def _campaign(hedging, slow, kill=False):
    cfg = FleetConfig(
        num_devices=DEVICES,
        hedging=hedging,
        slow_device=(SLOW_DEVICE if slow else -1),
        slow_read_rate=(SLOW_RATE if slow else 0.0),
        slow_read_extra_ns=SLOW_EXTRA_NS,
        kill_device=(2 if kill else -1),
        kill_at_ns=(DURATION_NS / 2 if kill else 0.0),
    )
    return simulate_fleet(
        assasin_sb_config(), cfg, tenants=_tenants(),
        duration_ns=DURATION_NS, seed=SEED, verify_integrity=kill,
    )


def _run_trio():
    baseline = _campaign(hedging=True, slow=False)
    slow_unhedged = _campaign(hedging=False, slow=True)
    slow_hedged = _campaign(hedging=True, slow=True)
    return baseline, slow_unhedged, slow_hedged


@pytest.mark.fleet
def test_hedging_recovers_tail_inflation(benchmark):
    wall_start = time.perf_counter()
    baseline, unhedged, hedged = run_once(benchmark, _run_trio)
    wall = time.perf_counter() - wall_start
    print(f"\n--- baseline ---\n{baseline.render()}")
    print(f"\n--- slow, no hedge ---\n{unhedged.render()}")
    print(f"\n--- slow, hedged ---\n{hedged.render()}")

    # All three campaigns served the full workload correctly.
    for report in (baseline, unhedged, hedged):
        assert report.completed > (100 if SMOKE else 300)
        assert report.success_rate == 1.0
        assert report.corruption_events == 0

    # The slow die owns the fleet tail: p99 and p99.9 inflate severely.
    assert unhedged.p99_latency_ns >= 3.0 * baseline.p99_latency_ns
    assert unhedged.p999_latency_ns >= 3.0 * baseline.p999_latency_ns

    # Hedging recovers >= 50% of the inflation it was built to fight.
    for pct in (99.0, 99.9):
        inflation = unhedged.latency_percentile(pct) - baseline.latency_percentile(pct)
        recovered = unhedged.latency_percentile(pct) - hedged.latency_percentile(pct)
        assert inflation > 0
        assert recovered >= 0.5 * inflation, (
            f"p{pct}: recovered {recovered / 1e3:.1f} us of "
            f"{inflation / 1e3:.1f} us inflation"
        )

    # ... within its duplicate budget, and mostly winning.
    assert 0 < hedged.hedges_issued <= 0.11 * hedged.submitted
    assert hedged.hedge_win_rate >= 0.5

    _emit_bench(hedged, (baseline, unhedged, hedged), wall)


@pytest.mark.fleet
def test_device_loss_reconstructs_from_peers(benchmark):
    report = run_once(benchmark, lambda: _campaign(hedging=True, slow=False, kill=True))
    print(f"\n--- killed device ---\n{report.render()}")

    assert report.devices[2].dead
    assert report.success_rate >= 0.99
    assert report.corruption_events == 0
    # Every page the dead device held is reconstructable, bit-exactly.
    assert report.integrity_pages_checked > 0
    assert report.integrity_pages_bad == 0
    assert report.reconstructions > 0
    assert report.recovery_goodput_gbps > 0


@pytest.mark.fleet
def test_fleet_fingerprint_is_reproducible(benchmark):
    first = run_once(benchmark, lambda: _campaign(hedging=True, slow=True))
    second = _campaign(hedging=True, slow=True)
    assert first.fingerprint() == second.fingerprint()
    assert first.fingerprint_hex() == second.fingerprint_hex()


def _emit_bench(report, trio, wall_seconds):
    """Write BENCH_fleet.json and gate on conservative throughput floors."""
    payload = {
        "benchmark": "fleet_scale",
        "smoke": SMOKE,
        "devices": DEVICES,
        "seed": SEED,
        "duration_ns": DURATION_NS,
        "completed_commands": report.completed,
        "fleet_commands_per_sec_simulated": report.commands_per_second,
        "p99_latency_us": round(report.p99_latency_ns / 1e3, 1),
        "p999_latency_us": round(report.p999_latency_ns / 1e3, 1),
        "hedge_win_rate": round(report.hedge_win_rate, 3),
        "fingerprint": report.fingerprint_hex(),
    }
    emit_bench(
        "BENCH_fleet.json",
        payload,
        sim_events=sum(r.sim_events for r in trio),
        wall_seconds=wall_seconds,
        min_events_per_sec_wall=MIN_SIM_EVENTS_PER_SEC,
        rate_floors=[
            (
                "fleet commands/sec simulated",
                report.commands_per_second,
                MIN_FLEET_COMMANDS_PER_SEC,
            )
        ],
    )
