"""Figure 21: throughput after applying the Figure 20 clock results."""

from conftest import run_once

from repro.experiments import fig21


def test_fig21_adjusted(benchmark, fig21_result):
    result = run_once(benchmark, lambda: fig21_result)
    print("\n" + fig21.render(result))

    # Paper: AssasinSb improves to 1.5-2.4x over Baseline on the memory-
    # bound workloads thanks to its shorter cycle.
    memory_bound = ("stat", "raid4", "raid6")
    for workload in memory_bound:
        assert 1.4 <= result.standalone.speedup(workload, "AssasinSb") <= 2.5, workload
    assert 1.3 <= result.psf.geomean_speedup("AssasinSb") <= 1.9

    # Paper: AssasinSp degrades once its scratchpad needs 2 cycles —
    # the stream buffer's cycle-time advantage is the differentiator.
    for workload in ("raid6",):
        sp = result.standalone.speedup(workload, "AssasinSp")
        sb = result.standalone.speedup(workload, "AssasinSb")
        assert sb > 1.2 * sp, workload
    assert result.psf.geomean_speedup("AssasinSb") > 1.3 * result.psf.geomean_speedup("AssasinSp")

    # AES stays compute-bound (~1x) for every configuration.
    for config in ("AssasinSp", "AssasinSb", "AssasinSb$"):
        assert 0.8 <= result.standalone.speedup("aes", config) <= 1.2
