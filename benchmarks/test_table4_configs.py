"""Table IV: the six computational-SSD configurations."""

from conftest import run_once

from repro.config import CONFIG_NAMES, all_configs
from repro.experiments import tables


def test_table4_configs(benchmark):
    rendered = run_once(benchmark, tables.render_table4)
    print("\n" + rendered)
    configs = all_configs()
    assert tuple(configs) == CONFIG_NAMES
    for cfg in configs.values():
        assert cfg.num_cores == 8
        assert cfg.core.frequency_ghz == 1.0
        assert cfg.flash.array_bandwidth_bytes_per_ns == 8.0  # 8 x 1 GB/s
        assert cfg.dram.bandwidth_bytes_per_ns == 8.0  # LPDDR5 effective
