"""Extension bench: ASSASIN's advantage grows with flash bandwidth.

Not a paper figure — it quantifies the motivating trend of Sections I/III:
as flash generations scale channel bandwidth, the DRAM-staged baseline
stays pinned at the memory wall while ASSASIN follows the flash.
"""

from conftest import run_once

from repro.experiments import ext_flash


def test_flash_bandwidth_scaling(benchmark):
    result = run_once(benchmark, ext_flash.run, 16 << 20)
    print("\n" + ext_flash.render(result))

    # At 0.5 GB/s channels, flash binds everyone: no ASSASIN advantage.
    assert 0.9 <= result.advantage(0.5) <= 1.1
    # At the paper's 1 GB/s channels the memory wall bites: ~2x.
    assert 1.6 <= result.advantage(1.0) <= 2.2
    # Future flash widens the gap until ASSASIN's cores bind.
    assert result.advantage(1.6) > result.advantage(1.0)
    assert result.advantage(3.2) >= result.advantage(1.6) * 0.98
    # The baseline never escapes the DRAM wall (~4 GB/s at 2 B per byte).
    for bw in (1.0, 1.6, 2.4, 3.2):
        base, _ = result.results[bw]
        assert base <= 4.1
