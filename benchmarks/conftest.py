"""Shared fixtures for the per-figure benchmark harness.

Heavy simulations run once per session and are shared by the figures that
the paper derives from the same experiment (16/17/18 share the scaling run;
21 feeds 22). Every benchmark uses ``benchmark.pedantic(..., rounds=1)``:
these are reproduction drivers, not micro-benchmarks.
"""

import pytest

from repro.experiments import fig13, fig14, fig15, fig16, fig19, fig21


@pytest.fixture(scope="session")
def fig13_result():
    return fig13.run(data_bytes=32 << 20)


@pytest.fixture(scope="session")
def fig14_result():
    return fig14.run()


@pytest.fixture(scope="session")
def scaling_result():
    return fig16.run()


@pytest.fixture(scope="session")
def fig19_result():
    return fig19.run()


@pytest.fixture(scope="session")
def fig21_result():
    return fig21.run()


@pytest.fixture(scope="session")
def psf_rates():
    return fig15.measure_psf_rates()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
