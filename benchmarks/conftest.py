"""Shared fixtures for the per-figure benchmark harness.

Heavy simulations run once per session and are shared by the figures that
the paper derives from the same experiment (16/17/18 share the scaling run;
21 feeds 22). Every benchmark uses ``benchmark.pedantic(..., rounds=1)``:
these are reproduction drivers, not micro-benchmarks.
"""

import json

import pytest

from repro.experiments import fig13, fig14, fig15, fig16, fig19, fig21


@pytest.fixture(scope="session")
def fig13_result():
    return fig13.run(data_bytes=32 << 20)


@pytest.fixture(scope="session")
def fig14_result():
    return fig14.run()


@pytest.fixture(scope="session")
def scaling_result():
    return fig16.run()


@pytest.fixture(scope="session")
def fig19_result():
    return fig19.run()


@pytest.fixture(scope="session")
def fig21_result():
    return fig21.run()


@pytest.fixture(scope="session")
def psf_rates():
    return fig15.measure_psf_rates()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit_bench(
    filename,
    payload,
    *,
    sim_events,
    wall_seconds,
    min_events_per_sec_wall,
    rate_floors=(),
):
    """Write one ``BENCH_*.json`` artefact and gate its throughput floors.

    Every benchmark file used to hand-roll the same tail: total sim events
    over the measured wall window, ``sim_events_per_sec_wall``, a
    sorted/indented ``json.dump``, and conservative regression floors. This
    is that tail, once. ``rate_floors`` is an iterable of
    ``(label, value, floor)`` extra gates (e.g. simulated commands/sec)
    asserted after the artefact is written, so a failing floor still leaves
    the JSON on disk for CI to upload.
    """
    events_wall = sim_events / max(wall_seconds, 1e-9)
    payload = dict(payload)
    payload["sim_events"] = sim_events
    payload["sim_events_per_sec_wall"] = round(events_wall, 2)
    payload["wall_seconds"] = round(wall_seconds, 3)
    with open(filename, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    assert events_wall >= min_events_per_sec_wall, (
        f"{filename}: {events_wall:.1f} sim events/s of wall time "
        f"under the {min_events_per_sec_wall:.1f} floor"
    )
    for label, value, floor in rate_floors:
        assert value >= floor, f"{filename}: {label} {value:.2f} under floor {floor:.2f}"
    return events_wall
