"""Figure 14: offloaded Parse-Select-Filter pipeline across configs."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14_psf_pipeline(benchmark, fig14_result):
    result = run_once(benchmark, lambda: fig14_result)
    print("\n" + fig14.render(result))

    prefetch = result.geomean_speedup("Prefetch")
    udp = result.geomean_speedup("UDP")
    sp = result.geomean_speedup("AssasinSp")
    sb = result.geomean_speedup("AssasinSb")
    sbc = result.geomean_speedup("AssasinSb$")

    # Paper: Prefetch ~+15% by hiding DRAM latency.
    assert 1.03 <= prefetch <= 1.25
    # Paper: UDP ~1.3x via its multiway-dispatch ISA on unstructured data.
    assert 1.15 <= udp <= 1.45
    # Paper: AssasinSb reaches 1.5-1.8x Baseline; here the pre-timing-
    # adjustment run sits at the low end, with Sb > Sp via the stream ISA.
    assert 1.25 <= sb <= 1.85
    assert sb > sp * 1.1  # the +18% stream-ISA effect (paper Section VI-C)
    assert abs(sbc - sb) < 0.05
    # Ordering: Baseline < Prefetch <= Sp < UDP <= Sb.
    assert 1.0 < prefetch <= sp * 1.05 < udp * 1.05
    assert sb >= udp

    # The per-query view covers every lineitem-scanning query (17 of 22).
    per_query = fig14.per_query_speedups(result, "AssasinSb")
    assert len(per_query) == 17
    assert all(1.2 <= s <= 1.9 for s in per_query.values())
