"""Figure 13: standalone offloaded function throughput across configs."""

import pytest
from conftest import run_once

from repro.experiments import fig13
from repro.utils.stats import geomean


def test_fig13_standalone(benchmark, fig13_result):
    result = run_once(benchmark, lambda: fig13_result)
    print("\n" + fig13.render(result))

    # ASSASIN delivers 1.3x-2.0x on the memory-intensive functions
    # (Stat, RAID4, RAID6) by bypassing the SSD DRAM.
    for kernel in ("stat", "raid4", "raid6"):
        for config in ("AssasinSp", "AssasinSb"):
            assert 1.25 <= result.speedup(kernel, config) <= 2.6, (kernel, config)

    # Prefetching alone cannot beat the memory wall on Stat/RAID4.
    assert result.speedup("stat", "Prefetch") < 1.15
    assert result.speedup("raid4", "Prefetch") < 1.15

    # AssasinSb edges out AssasinSp via the stream ISA (paper: ~10% GeoMean).
    ratios = [
        result.throughput(k, "AssasinSb") / result.throughput(k, "AssasinSp")
        for k in ("stat", "raid4", "raid6")
    ]
    assert 1.0 <= geomean(ratios) <= 1.25

    # The cache adds nothing when state fits the scratchpad.
    for kernel in fig13.KERNELS:
        assert result.throughput(kernel, "AssasinSb$") == pytest.approx(
            result.throughput(kernel, "AssasinSb"), rel=0.02
        )

    # AES is compute-bound: every configuration lands within ~10%.
    aes = [result.speedup("aes", c) for c in ("Prefetch", "AssasinSp", "AssasinSb")]
    assert all(0.9 <= s <= 1.15 for s in aes)

    # Compute intensity ordering bounds throughput: stat fastest, AES slowest.
    assert result.throughput("stat", "AssasinSb") > result.throughput("raid6", "AssasinSb")
    assert result.throughput("raid6", "AssasinSb") > result.throughput("aes", "AssasinSb")
