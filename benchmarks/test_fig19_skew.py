"""Figure 19: sensitivity to flash data layout skew (crossbar vs local)."""

from conftest import run_once

from repro.experiments import fig19


def test_fig19_skew(benchmark, fig19_result):
    result = run_once(benchmark, lambda: fig19_result)
    print("\n" + fig19.render(result))

    # At even layout the two architectures are equivalent.
    for kernel in result.results:
        assert 0.9 <= result.advantage(kernel, 0.0) <= 1.1, kernel

    # Under skew the crossbar pools all cores against the hot channels;
    # the effect grows with compute intensity (raid6 >> scan).
    for skew in (0.25, 0.5, 0.75, 1.0):
        assert result.advantage("raid6", skew) >= 1.4, skew
        assert result.advantage("scan", skew) >= 1.0, skew

    # Throughput degrades monotonically with skew for both architectures
    # (physics: the heaviest channel binds), but ASSASIN degrades less.
    for kernel, sweep in result.results.items():
        xbars = [sweep[s][0] for s in sorted(sweep)]
        locals_ = [sweep[s][1] for s in sorted(sweep)]
        assert xbars == sorted(xbars, reverse=True)
        assert locals_ == sorted(locals_, reverse=True)
