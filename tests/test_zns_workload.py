"""Tier-1 tests for the ZNS stack: firmware commands, LSM model, campaign."""

import pytest

from repro.errors import ConfigError, ZnsError
from repro.ftl.zoned import ZoneState
from repro.sim import Simulator
from repro.ssd.device import ComputationalSSD
from repro.ssd.host_interface import (
    ScompCommand,
    ZoneAppendCommand,
    ZoneReportCommand,
    ZoneResetCommand,
)
from repro.zns import ZnsCampaign, ZnsConfig, ZnsFirmware, run_zns
from repro.zns.lsm import LsmTree

DURATION_NS = 1_500_000.0


def _run(policy, **kwargs):
    return run_zns(ZnsConfig(duration_ns=DURATION_NS, compaction=policy, **kwargs))


# -- firmware ----------------------------------------------------------------------


def _firmware():
    device = ComputationalSSD(ZnsConfig().ssd(), zoned=True, max_open_zones=4)
    return ZnsFirmware(device, Simulator()), device


def test_zone_commands_execute_and_complete():
    fw, device = _firmware()
    append = ZoneAppendCommand(device.host.next_id(), zone_id=0, npages=4)
    fw.submit(append)
    lba, done = fw.execute(append, 0.0)
    assert lba == device.ftl.zone_slba(0) == 0  # completion carries the LBA
    assert done > 0
    assert device.ftl.write_pointer(0) == 4

    report_cmd = ZoneReportCommand(device.host.next_id(), first_zone=0, count=2)
    fw.submit(report_cmd)
    descriptors, _ = fw.execute(report_cmd, done)
    assert [d.zone_id for d in descriptors] == [0, 1]
    assert descriptors[0].write_pointer == 4

    reset = ZoneResetCommand(device.host.next_id(), zone_id=0)
    fw.submit(reset)
    _, reset_done = fw.execute(reset, done)
    assert reset_done > done  # the erase is booked on the plane timelines
    assert device.ftl.state(0) is ZoneState.EMPTY
    assert len(device.host.completions) == 3


def test_firmware_rejects_non_zoned_device_and_foreign_commands():
    plain = ComputationalSSD(ZnsConfig().ssd())
    with pytest.raises(ZnsError):
        ZnsFirmware(plain, Simulator())
    fw, device = _firmware()
    with pytest.raises(ZnsError):
        fw.execute(ScompCommand(device.host.next_id(), kernel="merge"), 0.0)


# -- LSM model ---------------------------------------------------------------------


def test_lsm_flush_locate_and_newest_wins_merge():
    tree = LsmTree(
        memtable_records=4, l0_runs_trigger=2, fanout=2, max_levels=3,
        records_per_page=2,
    )
    for key, seq in [(3, 1), (1, 2), (7, 3)]:
        assert not tree.put(key, seq)
    assert tree.put(5, 4)  # memtable ripe
    older = tree.new_run(0, tree.take_memtable())
    tree.add_run(older, 0)
    newer = tree.new_run(0, [(1, 5), (9, 6)])  # overwrites key 1
    tree.add_run(newer, 0)

    kind, found = tree.locate(1)
    assert (kind, found) == ("run", newer)  # newest run wins
    assert tree.locate(4) == ("miss", None)

    pick = tree.pick_compaction()
    assert pick is not None and pick.level == 0 and pick.target == 1
    assert pick.victims == (older, newer)  # oldest first
    merged = tree.merge_entries(pick.victims)
    assert merged == [(1, 5), (3, 1), (5, 4), (7, 3), (9, 6)]
    new_run = tree.new_run(1, merged)
    tree.apply_compaction(pick, new_run)
    assert tree.levels[0] == [] and tree.levels[1] == [new_run]
    assert tree.locate(1) == ("run", new_run)


# -- campaign ----------------------------------------------------------------------


def test_campaign_report_is_coherent():
    report = _run("auto")
    assert report.puts > 1000 and report.gets > 100
    assert report.get_run_hits > 0 and report.flushes > 0
    assert report.compactions == report.compactions_host + report.compactions_device
    assert report.compactions >= 1
    assert report.zone_appends > 0 and report.zone_resets > 0
    assert report.wear_total > 0  # resets feed the wear tracker
    assert report.get_p99_ns >= report.get_p50_ns > 0
    # Gets still in flight at the horizon never record a latency.
    assert 0 < len(report.get_latencies_ns) <= report.gets
    assert sum(report.levels_runs) >= 1
    assert report.sim_events > 0


def test_same_seed_campaigns_are_byte_identical():
    assert _run("auto").fingerprint_hex() == _run("auto").fingerprint_hex()


def test_device_side_compaction_spares_the_host_link():
    host = _run("host")
    device = _run("device")
    assert host.compactions >= 1 and device.compactions >= 1
    assert host.compaction_link_bytes >= 2 * max(device.compaction_link_bytes, 1)


def test_auto_placement_follows_the_cost_source():
    campaign = ZnsCampaign(ZnsConfig(duration_ns=DURATION_NS, compaction="auto"))
    pages, data_in, data_out = 40, 40 * 4096, 32 * 4096
    link = campaign.cost.link_bytes_per_ns
    host_ns = data_in / link + campaign.cost.ingest_binary_ns(data_in) + data_out / link
    device_ns = campaign.cost.device_scan_ns(pages, kernel="merge") + 64 / link
    expected = "device" if device_ns <= host_ns else "host"
    assert campaign._choose_site(pages, data_in, data_out) == expected
    # Forced policies ignore the estimate.
    forced = ZnsCampaign(ZnsConfig(duration_ns=DURATION_NS, compaction="host"))
    assert forced._choose_site(pages, data_in, data_out) == "host"


def test_config_validation():
    with pytest.raises(ConfigError):
        ZnsConfig(compaction="gpu")
    with pytest.raises(ConfigError):
        ZnsConfig(compaction_runs=9)
    with pytest.raises(ConfigError):
        ZnsConfig(l0_runs_trigger=1)
    flash = ZnsConfig().ssd().flash
    assert flash.channels * flash.chips_per_channel * flash.blocks_per_plane == 512
