"""End-to-end integration: real bytes through flash -> compute -> results.

These tests exercise the complete scomp path the paper's Figure 9/10
describe: the host writes data, the FTL places pages in the NAND array
(with real contents), an scomp command triggers the offload, the engine's
ISA program computes on the exact bytes read back through the FTL mapping,
and the result matches the kernel's Python reference.
"""

import pytest

from repro.config import assasin_sb_config, baseline_config
from repro.errors import DeviceError
from repro.kernels import get_kernel
from repro.kernels.tuples import TUPLE_BYTES, iter_tuples, random_tuples
from repro.ssd.device import ComputationalSSD

PAGE = 4096


def test_write_then_read_dataset_roundtrip():
    device = ComputationalSSD(assasin_sb_config())
    payload = bytes(range(256)) * 64  # 16 KiB
    lpas = device.write_dataset(payload)
    assert device.read_dataset(lpas)[: len(payload)] == payload


def test_read_dataset_requires_contents():
    device = ComputationalSSD(assasin_sb_config())
    lpas = device.mount_dataset(PAGE)  # metadata only
    with pytest.raises(DeviceError):
        device.read_dataset(lpas)


def test_overwrite_goes_out_of_place_but_reads_latest():
    device = ComputationalSSD(assasin_sb_config())
    device.write_dataset(b"\xaa" * PAGE)
    before = device.ftl.lookup(0)
    device.write_dataset(b"\xbb" * PAGE)
    after = device.ftl.lookup(0)
    assert before != after
    assert device.read_dataset([0]) == b"\xbb" * PAGE


def test_scomp_filter_end_to_end_functional():
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("filter")
    data = random_tuples(2 * PAGE // TUPLE_BYTES, seed=3)  # exactly 2 pages
    result, outputs, _ = device.offload_functional(kernel, data)
    expected = kernel.reference([data])[0]
    assert outputs[0] == expected
    assert result.bytes_in == len(data)
    assert result.throughput_gbps > 0
    # Every surviving tuple satisfies the predicate.
    for t in iter_tuples(outputs[0]):
        assert kernel.selects(t)


def test_scomp_stat_end_to_end_functional_on_baseline():
    device = ComputationalSSD(baseline_config())
    kernel = get_kernel("stat")
    data = bytes(range(256)) * 32  # 8 KiB, block-aligned
    result, outputs, state = device.offload_functional(kernel, data)
    assert state == kernel.reference_state([data])
    assert result.config_name == "Baseline"


def test_scomp_parse_end_to_end_functional():
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("parse")
    # Exactly one page of well-formed rows ending in a newline.
    rows = []
    value = 1
    while sum(len(r) for r in rows) < PAGE - 16:
        rows.append(f"{value}|{value * 7}|{value % 97}\n".encode())
        value += 1
    data = b"".join(rows)
    pad = b"\n" * (PAGE - len(data))  # newline padding emits zero fields
    data += pad
    _, outputs, _ = device.offload_functional(kernel, data)
    assert outputs[0] == kernel.reference([data])[0]


def test_functional_offload_rejects_multistream():
    device = ComputationalSSD(assasin_sb_config())
    with pytest.raises(DeviceError):
        device.offload_functional(get_kernel("raid4"), b"x" * PAGE)


def test_flash_contents_survive_gc_relocation():
    """GC must preserve data: overwrite to create garbage, collect, re-read.

    Uses a small flash geometry (4-page blocks) so write blocks actually
    close; the GC never touches open write points.
    """
    from dataclasses import replace

    from repro.config import FlashConfig
    from repro.ftl.gc import GarbageCollector

    small_flash = FlashConfig(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=4,
    )
    cfg = replace(assasin_sb_config(), flash=small_flash)
    device = ComputationalSSD(cfg)
    first = b"".join(bytes([i]) * PAGE for i in range(16))  # 16 pages: closes blocks
    device.write_dataset(first)
    second = b"".join(bytes([i + 100]) * PAGE for i in range(16))
    device.write_dataset(second)  # invalidates every first-placement page
    gc = GarbageCollector(device.ftl, device.array)
    result = gc.collect(at_ns=device.array.horizon_ns)
    assert result.reclaimed > 0
    assert device.read_dataset(range(16)) == second


def test_scomp_respects_block_interface():
    """The offload consumes whole logical pages: bytes_in is page-granular."""
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("scan")
    data = bytes(100_000)  # not page aligned
    result, _, _ = device.offload_functional(kernel, data)
    assert result.bytes_in % PAGE == 0
    assert result.bytes_in >= len(data)
