"""Tests for the SRAM model, clock-period model, and power/area composition."""

import pytest

from repro.config import (
    all_configs,
    assasin_sb_core,
    assasin_sp_core,
    baseline_core,
    udp_core,
)
from repro.core.timing import (
    BASE_PERIOD_NS,
    ClockModel,
    clock_period_ns,
    cycles_for_access,
)
from repro.errors import ConfigError
from repro.power.cacti import (
    SRAMSpec,
    l1_cache_spec,
    scratchpad_spec,
    sram_access_time_ns,
    sram_area_mm2,
    sram_energy_per_access_pj,
    sram_power_mw,
    streambuffer_head_fifo_spec,
)
from repro.power.models import config_cost, efficiency_table, table5_components
from repro.utils.units import KIB


class TestCactiLite:
    def test_access_time_grows_with_size(self):
        small = sram_access_time_ns(scratchpad_spec(8 * KIB))
        large = sram_access_time_ns(scratchpad_spec(64 * KIB))
        assert large > small

    def test_access_time_grows_with_width(self):
        narrow = sram_access_time_ns(scratchpad_spec(64 * KIB, width=8))
        wide = sram_access_time_ns(scratchpad_spec(64 * KIB, width=64))
        assert wide > narrow

    def test_paper_anchor_streambuffer_half_ns(self):
        # Figure 20: the SB head FIFO reaches ~0.5 ns even at 64 B width.
        t = sram_access_time_ns(streambuffer_head_fifo_spec(64))
        assert 0.4 <= t <= 0.6

    def test_paper_anchor_64k_scratchpad_needs_two_cycles(self):
        # Figure 20: 64 KB @ 8 B takes 2 cycles in a 1 GHz core.
        t = sram_access_time_ns(scratchpad_spec(64 * KIB, width=8))
        assert 1.0 < t <= 2.0

    def test_area_scales_roughly_linearly(self):
        a32 = sram_area_mm2(scratchpad_spec(32 * KIB))
        a64 = sram_area_mm2(scratchpad_spec(64 * KIB))
        assert 1.8 < a64 / a32 < 2.1

    def test_cache_ways_cost_area_and_energy(self):
        direct = SRAMSpec(32 * KIB, 8, 1)
        assoc = SRAMSpec(32 * KIB, 8, 8)
        assert sram_area_mm2(assoc) > sram_area_mm2(direct)
        assert sram_energy_per_access_pj(assoc) > sram_energy_per_access_pj(direct)

    def test_power_has_leakage_floor(self):
        idle = sram_power_mw(l1_cache_spec(), utilisation=0.0)
        busy = sram_power_mw(l1_cache_spec(), utilisation=1.0)
        assert 0 < idle < busy

    def test_utilisation_validated(self):
        with pytest.raises(ConfigError):
            sram_power_mw(l1_cache_spec(), utilisation=1.5)

    def test_spec_validated(self):
        with pytest.raises(ConfigError):
            SRAMSpec(size_bytes=0)


class TestClockModel:
    def test_baseline_runs_at_1ghz(self):
        result = clock_period_ns(baseline_core())
        assert result.period_ns == pytest.approx(BASE_PERIOD_NS)

    def test_assasin_sb_cycle_shrinks_11_percent(self):
        # Figure 20/21: replacing the dcache with the SB head FIFO moves the
        # critical path to IF, cutting the period ~11%.
        result = clock_period_ns(assasin_sb_core())
        assert result.period_ns == pytest.approx(0.89, abs=0.02)
        assert result.critical_stage == "IF"
        reduction = 1 - result.period_ns / BASE_PERIOD_NS
        assert 0.08 <= reduction <= 0.14

    def test_assasin_sp_keeps_period_but_pays_two_cycle_scratchpad(self):
        result = clock_period_ns(assasin_sp_core())
        assert result.period_ns == pytest.approx(BASE_PERIOD_NS)
        assert result.scratchpad_cycles == 2

    def test_udp_lane_scratchpad_multicycle(self):
        result = clock_period_ns(udp_core())
        assert result.period_ns == pytest.approx(BASE_PERIOD_NS)
        assert result.scratchpad_cycles >= 2  # 256 KB is slower still

    def test_clock_model_memoises(self):
        model = ClockModel()
        a = model.result(assasin_sb_core())
        b = model.result(assasin_sb_core())
        assert a is b
        assert model.frequency_ghz(assasin_sb_core()) == pytest.approx(1 / a.period_ns)

    def test_clock_model_memo_is_value_keyed(self):
        # DSE sweeps make many core variants that share a name; the memo
        # must distinguish them by value (and share across equal values).
        import dataclasses

        model = ClockModel()
        sb = assasin_sb_core()
        renamed_sp = dataclasses.replace(assasin_sp_core(), name=sb.name)
        assert model.result(sb).period_ns != model.result(renamed_sp).period_ns
        assert model.result(dataclasses.replace(sb)) is model.result(sb)


class TestCyclesForAccess:
    """Satellite fix: exact ceiling replaces the milli-ns truncation."""

    def test_exact_fit_is_one_cycle(self):
        assert cycles_for_access(1.0, 1.0) == 1
        assert cycles_for_access(0.89, 0.89) == 1

    def test_overshoot_rounds_up(self):
        assert cycles_for_access(1.12, 0.89) == 2
        assert cycles_for_access(1.79, 0.89) == 3  # 2.011 periods

    def test_epsilon_absorbs_float_noise_at_boundaries(self):
        # 3 * (0.89/3) reconstructs to one-part-in-1e16 above 0.89; the
        # relative epsilon must keep this a single cycle.
        access = (0.89 / 3) * 3
        assert access >= 0.89  # the float artefact this guards against
        assert cycles_for_access(access, 0.89) == 1

    def test_milli_ns_truncation_regression(self):
        # The old fixed-point path computed int(0.89 * 1000) = 889 milli-ns
        # twice and compared 890/889: a 0.8900-ns access at a 0.8900-ns
        # period could price as 2 cycles. Sub-milli-ns periods truncated to
        # the same integer are worse still.
        assert cycles_for_access(0.8901, 0.89) == 2  # genuine overshoot: 2
        assert cycles_for_access(0.0004, 0.0005) == 1  # both truncate to 0

    def test_named_config_cycles_unchanged(self):
        # Value-preservation pin: the exact ceiling reproduces the historic
        # scratchpad cycle counts of every named core (golden fingerprints
        # depend on these).
        from repro.config import all_configs

        expected = {
            "Baseline": 1, "UDP": 2, "Prefetch": 1,
            "AssasinSp": 2, "AssasinSb": 2, "AssasinSb$": 2,
        }
        for name, cfg in all_configs().items():
            assert clock_period_ns(cfg.core).scratchpad_cycles == expected[name], name

    def test_never_below_one_cycle(self):
        assert cycles_for_access(0.1, 1.0) == 1
        assert cycles_for_access(0.0, 1.0) == 1


class TestPowerModels:
    def test_table5_covers_all_configs(self):
        costs = table5_components(all_configs())
        assert set(costs) == set(all_configs())
        for cost in costs.values():
            assert cost.total_area_mm2 > 0 and cost.total_power_mw > 0

    def test_l1_same_order_as_core_logic(self):
        # Table V observation: an L1-sized SRAM rivals a small core's logic.
        from repro.power.models import CORE_LOGIC_AREA_MM2

        l1_area = sram_area_mm2(l1_cache_spec())
        assert 0.5 < l1_area / CORE_LOGIC_AREA_MM2 < 10

    def test_assasin_cheaper_than_baseline(self):
        configs = all_configs()
        base = config_cost(configs["Baseline"])
        sb = config_cost(configs["AssasinSb"])
        assert sb.total_area_mm2 < base.total_area_mm2
        assert sb.total_power_mw < base.total_power_mw

    def test_figure22_efficiency(self):
        # Paper: ~2.0x power efficiency, ~3.2x area efficiency for AssasinSb.
        configs = all_configs()
        speedups = {"Baseline": 1.0, "UDP": 1.3, "AssasinSb": 1.9}
        rows = {r.name: r for r in efficiency_table(configs, speedups)}
        sb = rows["AssasinSb"]
        assert 1.6 <= sb.power_efficiency <= 2.6
        assert 2.2 <= sb.area_efficiency <= 4.0
        assert rows["Baseline"].power_efficiency == pytest.approx(1.0)
        assert sb.power_efficiency > rows["UDP"].power_efficiency
        assert sb.area_efficiency > rows["UDP"].area_efficiency
