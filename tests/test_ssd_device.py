"""Integration tests: the full scomp path on the computational SSD."""

import pytest

from repro.config import (
    SSDConfig,
    all_configs,
    assasin_sb_config,
    assasin_sb_core,
    baseline_config,
    prefetch_config,
    udp_config,
)
from repro.errors import DeviceError
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD, simulate_offload

DATA = 32 << 20  # 32 MiB keeps retiming fast while past startup transients


@pytest.fixture(scope="module")
def stat_results():
    kernel = get_kernel("stat")
    return {
        name: simulate_offload(cfg, kernel, data_bytes=DATA)
        for name, cfg in all_configs().items()
    }


def test_assasin_beats_baseline_on_stat(stat_results):
    base = stat_results["Baseline"].throughput_gbps
    sb = stat_results["AssasinSb"].throughput_gbps
    assert 1.3 <= sb / base <= 2.5, f"speedup {sb / base:.2f} outside paper band"


def test_baseline_is_dram_limited_on_stat(stat_results):
    assert stat_results["Baseline"].limiter == "dram"
    assert stat_results["Prefetch"].limiter == "dram"


def test_prefetch_gains_little_under_memory_wall(stat_results):
    # Paper VI-B: DCPT helps latency but the DRAM wall caps Stat/RAID4.
    base = stat_results["Baseline"].throughput_gbps
    pf = stat_results["Prefetch"].throughput_gbps
    assert pf / base < 1.15


def test_assasin_bypasses_dram(stat_results):
    result = stat_results["AssasinSb"]
    assert result.dram_traffic.total == pytest.approx(0.0)
    assert result.limiter in ("flash", "core")


def test_assasin_sb_matches_sp_and_cache_variant(stat_results):
    sp = stat_results["AssasinSp"].throughput_gbps
    sb = stat_results["AssasinSb"].throughput_gbps
    sbc = stat_results["AssasinSb$"].throughput_gbps
    assert sb == pytest.approx(sbc, rel=0.02)  # cache unused -> no effect
    assert sb >= sp * 0.98  # stream ISA never loses


def test_throughput_bounded_by_flash_array(stat_results):
    for name, result in stat_results.items():
        assert result.throughput_gbps <= 8.01, f"{name} exceeds the flash array"


def test_mount_dataset_capacity_check():
    cfg = baseline_config()
    device = ComputationalSSD(cfg)
    with pytest.raises(DeviceError):
        device.mount_dataset(cfg.flash.capacity_bytes + (4 << 20))


def test_plain_read_path():
    device = ComputationalSSD(baseline_config())
    lpas = device.mount_dataset(1 << 20)
    done = device.read_pages(lpas[:16])
    assert done > 0
    assert device.host.bytes_to_host == 16 * 4096


def test_scomp_command_recorded():
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("scan")
    device.offload(kernel, 8 << 20)
    assert len(device.host.submissions) == 1
    assert device.host.submissions[0].kernel == "scan"
    assert len(device.host.completions) == 1


def test_offload_rejects_empty():
    device = ComputationalSSD(assasin_sb_config())
    with pytest.raises(DeviceError):
        device.offload(get_kernel("scan"), 0)


def test_scaling_linear_then_flash_bound():
    kernel = get_kernel("scan")
    cfg = assasin_sb_config()
    sample = ComputationalSSD(cfg).sample_kernel(kernel)
    rates = {}
    for n in (1, 2, 4, 8, 12):
        rates[n] = simulate_offload(cfg.with_cores(n), kernel, DATA, sample=sample).throughput_gbps
    assert rates[2] == pytest.approx(2 * rates[1], rel=0.05)
    assert rates[4] == pytest.approx(4 * rates[1], rel=0.05)
    assert rates[12] <= 8.01  # flash array bound
    assert rates[12] >= 0.9 * min(8.0, 12 * rates[1])


def test_core_utilisation_high_when_unbound():
    kernel = get_kernel("scan")
    result = simulate_offload(assasin_sb_config(), kernel, DATA)
    assert result.mean_utilisation > 0.95  # paper: > 98% (Figure 17)


def test_channels_balanced_without_skew():
    kernel = get_kernel("scan")
    result = simulate_offload(assasin_sb_config(), kernel, DATA)
    total = sum(result.channel_bytes)
    shares = [b / total for b in result.channel_bytes]
    assert max(shares) - min(shares) < 0.02  # Figure 18


def test_skewed_layout_concentrates_channel_traffic():
    kernel = get_kernel("scan")
    result = simulate_offload(assasin_sb_config(), kernel, DATA, layout_skew=1.0)
    shares = result.channel_bytes
    assert shares[0] == pytest.approx(sum(shares), rel=0.01)
    assert result.throughput_gbps <= 1.05  # single channel bound


def test_crossbar_beats_channel_local_under_skew():
    kernel = get_kernel("raid6")  # compute-heavy: pooling matters
    sample = ComputationalSSD(assasin_sb_config()).sample_kernel(kernel)
    xbar_cfg = assasin_sb_config()
    local_cfg = SSDConfig(name="local", core=assasin_sb_core(), num_cores=8, crossbar=False)
    skew = 0.5
    xbar = simulate_offload(xbar_cfg, kernel, DATA, layout_skew=skew, sample=sample)
    local = simulate_offload(local_cfg, kernel, DATA, layout_skew=skew, sample=sample)
    assert xbar.throughput_gbps > 1.2 * local.throughput_gbps


def test_udp_dram_traffic_at_least_doubles_input():
    # Section VI-B: accelerator staging copies keep DRAM pressure >= the
    # baseline's two passes per input byte; ASSASIN carries none of it.
    kernel = get_kernel("stat")
    result = simulate_offload(udp_config(), kernel, DATA)
    base = simulate_offload(baseline_config(), kernel, DATA)
    assert result.dram_traffic.total >= 2.0
    assert base.dram_traffic.total >= 2.0
    assert result.limiter == "dram"
