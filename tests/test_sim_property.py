"""Property tests: the fast engine equals the heapq reference on *random*
schedules, not just the ones the campaigns happen to issue.

Hypothesis generates adversarial mixes of the whole scheduling surface —
callback events at mixed priorities (including negative), events whose
actions schedule more events at the current instant (the active-bucket
append path), cancellations, and generator processes yielding int/float
delays and ``wait_until`` instants — and asserts both engines produce the
identical dispatch sequence and final ``(now, processed)``.  A second
property replays the same schedules through ``run(max_events=...)`` slices
to pin the budgeted re-shelving path, and a third through ``run(until_ns=...)``
to pin the time-bounded path.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim import Simulator, use_engine  # noqa: E402

#: One wait a process generator yields: a delay (int, or a float that
#: exercises as_ns rounding) or an absolute wait_until instant (which may
#: legitimately lie in the past).
_waits = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),
    st.tuples(st.just("until"), st.integers(min_value=0, max_value=120)),
)

_events = st.fixed_dictionaries(
    {
        "kind": st.just("event"),
        "delay": st.integers(min_value=0, max_value=60),
        "priority": st.integers(min_value=-2, max_value=2),
        # Same-instant follow-ups scheduled from inside the action: the
        # mixed-priority appends are what force the active bucket's lazy
        # tail re-sort.
        "nested": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=-1, max_value=1),
            ),
            max_size=2,
        ),
    }
)

_procs = st.fixed_dictionaries(
    {
        "kind": st.just("proc"),
        "waits": st.lists(_waits, min_size=1, max_size=4),
    }
)

_plans = st.fixed_dictionaries(
    {
        "items": st.lists(st.one_of(_events, _procs), min_size=1, max_size=20),
        # Indices (mod the item count) of handles to cancel before running.
        "cancels": st.lists(st.integers(min_value=0, max_value=99), max_size=4),
    }
)


def _build(sim, plan, log):
    """Issue the plan's schedule calls on ``sim``, returning event handles."""
    handles = []
    for idx, item in enumerate(plan["items"]):
        if item["kind"] == "event":

            def action(idx=idx, nested=item["nested"]):
                log.append(("event", idx, sim.now))
                for step, (delay, priority) in enumerate(nested):
                    sim.schedule(
                        delay,
                        lambda idx=idx, step=step: log.append(
                            ("nested", idx, step, sim.now)
                        ),
                        priority=priority,
                    )

            handles.append(
                sim.schedule(item["delay"], action, priority=item["priority"])
            )
        else:

            def body(idx=idx, waits=item["waits"]):
                for wait in waits:
                    log.append(("proc", idx, sim.now))
                    if isinstance(wait, tuple):
                        yield sim.wait_until(wait[1])
                    else:
                        yield wait
                log.append(("proc-done", idx, sim.now))

            sim.spawn(body(), label=f"p{idx}")
            handles.append(None)
    for raw in plan["cancels"]:
        handle = handles[raw % len(handles)]
        if handle is not None:
            handle.cancel()
    return handles


def _run_plan(engine, plan, run):
    with use_engine(engine):
        sim = Simulator()
        log = []
        _build(sim, plan, log)
        run(sim)
        return log, sim.now, sim.processed


@settings(max_examples=80, deadline=None)
@given(plan=_plans)
def test_random_schedules_dispatch_identically(plan):
    reference = _run_plan("reference", plan, lambda sim: sim.run())
    fast = _run_plan("fast", plan, lambda sim: sim.run())
    assert fast == reference


@settings(max_examples=60, deadline=None)
@given(plan=_plans, budget=st.integers(min_value=1, max_value=7))
def test_budgeted_slices_dispatch_identically(plan, budget):
    """Draining in max_events slices re-shelves mid-bucket tails; the
    intermediate (now, processed) after every slice must match too."""

    def run_sliced(sim):
        # Drain on peek_time(), not len(): cancellation is lazy, and the
        # engines are free to *reap* cancelled entries at different times
        # (len counts unreaped ones) — but both must always agree on
        # whether anything live remains and on every dispatch they make.
        checkpoints = []
        while sim.peek_time() is not None:
            sim.run(max_events=budget)
            checkpoints.append((sim.now, sim.processed))
            if len(checkpoints) > 500:  # pragma: no cover - runaway guard
                raise AssertionError("schedule did not drain")
        return checkpoints

    with use_engine("reference"):
        sim = Simulator()
        ref_log = []
        _build(sim, plan, ref_log)
        ref_checkpoints = run_sliced(sim)
        ref_state = (sim.now, sim.processed)
    with use_engine("fast"):
        sim = Simulator()
        fast_log = []
        _build(sim, plan, fast_log)
        fast_checkpoints = run_sliced(sim)
        fast_state = (sim.now, sim.processed)
    assert fast_log == ref_log
    assert fast_checkpoints == ref_checkpoints
    assert fast_state == ref_state


@settings(max_examples=60, deadline=None)
@given(plan=_plans, bound=st.integers(min_value=0, max_value=90))
def test_time_bounded_runs_dispatch_identically(plan, bound):
    reference = _run_plan("reference", plan, lambda sim: sim.run(until_ns=bound))
    fast = _run_plan("fast", plan, lambda sim: sim.run(until_ns=bound))
    assert fast == reference
