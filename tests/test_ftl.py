"""Tests for the FTL: allocation policy, mapping, skew, wear, GC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FlashConfig
from repro.errors import FTLError
from repro.flash.array import FlashArray
from repro.ftl.allocator import PageAllocator, measured_skew, skew_shares
from repro.ftl.gc import GarbageCollector
from repro.ftl.mapping import PageMapFTL

CFG = FlashConfig(
    channels=4,
    chips_per_channel=2,
    dies_per_chip=1,
    planes_per_die=1,
    blocks_per_plane=8,
    pages_per_block=16,
)


def test_skew_shares_extremes():
    assert skew_shares(4, 0.0) == pytest.approx([0.25] * 4)
    shares = skew_shares(4, 1.0)
    assert shares[0] == pytest.approx(1.0)
    assert sum(shares) == pytest.approx(1.0)


@given(st.integers(min_value=2, max_value=16), st.floats(min_value=0, max_value=1))
def test_skew_roundtrip(channels, skew):
    shares = skew_shares(channels, skew)
    assert sum(shares) == pytest.approx(1.0)
    assert measured_skew(shares) == pytest.approx(skew, abs=1e-9)


def test_skew_validation():
    with pytest.raises(FTLError):
        skew_shares(4, 1.5)


def test_allocator_stripes_evenly():
    alloc = PageAllocator(CFG, skew=0.0)
    pages = [alloc.allocate() for _ in range(64)]
    per_channel = [sum(1 for p in pages if p.channel == ch) for ch in range(4)]
    assert per_channel == [16, 16, 16, 16]


def test_allocator_skew_1_uses_single_channel():
    alloc = PageAllocator(CFG, skew=1.0)
    pages = [alloc.allocate() for _ in range(32)]
    assert all(p.channel == 0 for p in pages)


def test_allocator_moderate_skew_distribution():
    alloc = PageAllocator(CFG, skew=0.5)
    pages = [alloc.allocate() for _ in range(200)]
    counts = [sum(1 for p in pages if p.channel == ch) for ch in range(4)]
    assert measured_skew(counts) == pytest.approx(0.5, abs=0.05)


def test_allocator_never_hands_out_duplicates():
    alloc = PageAllocator(CFG, skew=0.0)
    seen = set()
    for _ in range(CFG.total_pages):
        ppa = alloc.allocate()
        assert ppa not in seen
        seen.add(ppa)
    with pytest.raises(FTLError):
        alloc.allocate()


def test_ftl_write_and_lookup():
    ftl = PageMapFTL(CFG)
    ppa = ftl.write(42)
    assert ftl.lookup(42) == ppa
    assert ftl.is_mapped(42) and not ftl.is_mapped(43)
    with pytest.raises(FTLError):
        ftl.lookup(43)


def test_ftl_update_is_out_of_place():
    ftl = PageMapFTL(CFG)
    first = ftl.write(7)
    second = ftl.write(7)
    assert first != second
    assert first in ftl.invalid_pages
    assert ftl.lookup(7) == second
    assert ftl.updates == 1


def test_ftl_trim():
    ftl = PageMapFTL(CFG)
    ppa = ftl.write(9)
    ftl.trim(9)
    assert not ftl.is_mapped(9)
    assert ppa in ftl.invalid_pages
    with pytest.raises(FTLError):
        ftl.trim(9)


def test_populate_distribution_matches_skew():
    for skew in (0.0, 0.25, 1.0):
        ftl = PageMapFTL(CFG, skew=skew)
        ftl.populate(range(160))
        counts = ftl.channel_page_counts()
        assert measured_skew(counts) == pytest.approx(skew, abs=0.06)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
def test_mapping_bijective_under_random_writes(lpas):
    ftl = PageMapFTL(CFG)
    for lpa in lpas:
        ftl.write(lpa)
    mapped = [ftl.lookup(l) for l in set(lpas)]
    assert len(set(mapped)) == len(mapped), "two LPAs share a physical page"


def test_gc_reclaims_most_invalid_block():
    ftl = PageMapFTL(CFG)
    array = FlashArray(CFG)
    # Fill a stream of pages, then overwrite them to invalidate.
    for lpa in range(64):
        ppa = ftl.write(lpa)
        array.service_write(ppa, 0.0)
    for lpa in range(64):
        ppa = ftl.write(lpa)  # out-of-place update invalidates the old page
        array.service_write(ppa, 0.0)
    gc = GarbageCollector(ftl, array)
    before = len(ftl.invalid_pages)
    result = gc.collect(at_ns=array.horizon_ns)
    assert result.reclaimed > 0
    assert len(ftl.invalid_pages) == before - result.reclaimed
    assert ftl.wear.total_erases == 1
    # Relocated pages must still resolve.
    for lpa in range(64):
        ftl.lookup(lpa)


def test_gc_without_garbage_raises():
    ftl = PageMapFTL(CFG)
    array = FlashArray(CFG)
    gc = GarbageCollector(ftl, array)
    with pytest.raises(FTLError):
        gc.collect()


def test_gc_frees_capacity_for_new_writes():
    small = FlashConfig(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=4,
    )
    ftl = PageMapFTL(small)
    array = FlashArray(small)
    gc = GarbageCollector(ftl, array)
    # Fill 3 of 4 blocks with live data, then invalidate one block's worth.
    for lpa in range(12):
        array.service_write(ftl.write(lpa), 0.0)
    for lpa in range(4):
        array.service_write(ftl.write(lpa), 0.0)  # uses the 4th block
    # Array is now full; GC must reclaim before further writes succeed.
    gc.collect(at_ns=array.horizon_ns)
    ftl.write(100)  # should not raise


def test_wear_leveling_prefers_least_erased_blocks():
    """After GC, new write points open the least-worn free blocks."""
    small = FlashConfig(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=2,
    )
    ftl = PageMapFTL(small)
    array = FlashArray(small)
    gc = GarbageCollector(ftl, array)
    # Fill everything, then repeatedly invalidate + collect so blocks cycle.
    for lpa in range(6):
        array.service_write(ftl.write(lpa), 0.0)
    for round_ in range(6):
        for lpa in range(2):
            array.service_write(ftl.write(lpa), 0.0)
        gc.collect(at_ns=array.horizon_ns)
    # Erases must be spread: no block should carry them all.
    assert ftl.wear.total_erases >= 6
    assert ftl.wear.max_erases < ftl.wear.total_erases
    assert ftl.wear.imbalance() < 2.5


def test_allocator_without_wear_tracker_still_works():
    alloc = PageAllocator(CFG, skew=0.0, wear=None)
    pages = [alloc.allocate() for _ in range(32)]
    assert len(set(pages)) == 32
