"""Tests for the text assembler and program builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter
from repro.isa.program import Asm
from repro.mem.memory import FlatMemory


def run(prog, mem_size=1024):
    interp = Interpreter(prog, FlatMemory(mem_size))
    interp.run()
    return interp


def test_assemble_and_run_fibonacci():
    prog = assemble(
        """
        # fib(10) iteratively
            li a0, 0
            li a1, 1
            li t0, 10
        loop:
            add t1, a0, a1
            mv a0, a1
            mv a1, t1
            addi t0, t0, -1
            bnez t0, loop
            halt
        """
    )
    interp = run(prog)
    assert interp.regs.read_name("a0") == 55  # fib(10)


def test_memory_operands():
    prog = assemble(
        """
        li t0, 64
        li t1, 0x1234
        sh t1, 2(t0)
        lhu a0, 2(t0)
        halt
        """
    )
    interp = run(prog)
    assert interp.regs.read_name("a0") == 0x1234


def test_labels_on_own_line_and_inline():
    prog = assemble(
        """
        start:
            li t0, 1
        end: halt
        """
    )
    assert prog.labels == {"start": 0, "end": 1}  # small li is a single addi


def test_stream_mnemonics_parse():
    prog = assemble(
        """
        loop:
            sload t0, 0, 4
            sstore t0, 1, 4
            sskip 0, 12
            savail t1, 0
            seos t2, 0
            beqz t2, loop
            halt
        """
    )
    ops = [i.op for i in prog.instrs]
    assert ops == ["sload", "sstore", "sskip", "savail", "seos", "beq", "halt"]
    assert prog.instrs[1].sid == 1 and prog.instrs[1].width == 4


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblyError, match="line 3"):
        assemble("nop\nnop\nfrobnicate t0, t1\n")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError, match="nowhere"):
        assemble("j nowhere\nhalt\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("x: nop\nx: halt\n")


def test_operand_count_errors():
    with pytest.raises(AssemblyError):
        assemble("add t0, t1\n")
    with pytest.raises(AssemblyError):
        assemble("lw t0, t1, 4\n")


def test_bad_memory_operand():
    with pytest.raises(AssemblyError, match="off\\(reg\\)"):
        assemble("lw t0, [t1]\n")


def test_comments_and_blank_lines_ignored():
    prog = assemble("\n# full comment\n   \nhalt  # trailing\n")
    assert len(prog) == 1


def test_builder_and_text_agree():
    text = """
        li t0, 100
        li t1, 25
        sub a0, t0, t1
        halt
    """
    a = Asm("b")
    a.li("t0", 100).li("t1", 25).sub("a0", "t0", "t1").halt()
    r1 = run(assemble(text))
    r2 = run(a.build())
    assert r1.regs.read_name("a0") == r2.regs.read_name("a0") == 75


def test_disassemble_roundtrip_through_assembler():
    a = Asm("d")
    a.label("top")
    a.li("t0", 5)
    a.beqz("t0", "top")
    a.halt()
    text = a.build().disassemble()
    assert "top:" in text and "beq" in text


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_li_builder_handles_any_32bit_constant(value):
    a = Asm("li")
    a.li("a0", value).halt()
    interp = Interpreter(a.build(), FlatMemory(16))
    interp.run()
    assert interp.regs.read_name("a0") == value & 0xFFFFFFFF
