"""Planner tests: lowering shape, predicate pushdown, column pruning."""

import pytest

from repro.errors import SqlError
from repro.sql.parser import parse_sql
from repro.sql.planner import (
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    plan_statement,
    scan_nodes,
)


def plan(sql):
    return plan_statement(parse_sql(sql))


def test_simple_select_plans_scan_then_project():
    planned = plan("SELECT l_quantity FROM lineitem")
    assert isinstance(planned.root, ProjectNode)
    assert isinstance(planned.root.child, ScanNode)
    assert planned.output_columns == ("l_quantity",)


def test_single_table_predicates_push_into_the_scan():
    planned = plan(
        "SELECT l_quantity FROM lineitem "
        "WHERE l_discount >= 0.05 AND l_quantity < 24"
    )
    (scan,) = scan_nodes(planned.root)
    assert len(scan.predicates) == 2
    # Nothing left for a residual filter.
    node = planned.root
    while node is not None:
        assert not isinstance(node, FilterNode)
        node = getattr(node, "child", None)


def test_scan_columns_are_pruned_to_referenced_set():
    planned = plan("SELECT l_quantity FROM lineitem WHERE l_tax < 0.05")
    (scan,) = scan_nodes(planned.root)
    assert set(scan.columns) == {"l_quantity", "l_tax"}


def test_count_star_keeps_one_carrier_column():
    planned = plan("SELECT COUNT(*) AS n FROM nation")
    (scan,) = scan_nodes(planned.root)
    assert len(scan.columns) == 1


def test_join_pushes_per_table_conjuncts_and_keeps_cross_residual():
    planned = plan(
        "SELECT o_orderkey FROM orders "
        "JOIN lineitem ON o_orderkey = l_orderkey "
        "WHERE o_totalprice > 1000 AND l_tax < 0.05 "
        "AND o_totalprice > l_extendedprice"
    )
    scans = {s.table: s for s in scan_nodes(planned.root)}
    assert len(scans["orders"].predicates) == 1
    assert len(scans["lineitem"].predicates) == 1
    # The cross-table conjunct stays in a residual FilterNode over the join.
    node = planned.root
    found = False
    while node is not None:
        if isinstance(node, FilterNode):
            assert isinstance(node.child, JoinNode)
            found = True
        node = getattr(node, "child", None)
    assert found


def test_semi_join_right_side_is_opaque_to_pushdown():
    planned = plan(
        "SELECT o_orderkey FROM orders "
        "SEMI JOIN lineitem ON o_orderkey = l_orderkey "
        "WHERE l_tax < 0.05"
    )
    scans = {s.table: s for s in scan_nodes(planned.root)}
    assert scans["lineitem"].predicates == []


def test_self_join_disables_pushdown_for_that_table():
    planned = plan(
        "SELECT s_name FROM supplier "
        "JOIN supplier ON s_suppkey = s_suppkey "
        "WHERE s_acctbal > 0"
    )
    for scan in scan_nodes(planned.root):
        assert scan.predicates == []


def test_order_and_limit_stack_on_top():
    planned = plan(
        "SELECT n_name FROM nation ORDER BY n_name DESC LIMIT 3"
    )
    assert isinstance(planned.root, LimitNode)
    assert isinstance(planned.root.child, SortNode)
    assert planned.root.child.keys == [("n_name", True)]


def test_union_all_plans_all_parts():
    planned = plan(
        "SELECT n_name FROM nation UNION ALL SELECT n_name FROM nation"
    )
    assert isinstance(planned.root, UnionNode)
    assert len(scan_nodes(planned.root)) == 2


def test_scalar_subqueries_plan_inner_first():
    planned = plan(
        "SELECT l_orderkey FROM lineitem "
        "WHERE l_quantity > (SELECT AVG(l_quantity) AS a FROM lineitem)"
    )
    assert len(planned.scalars) == 1
    # The subquery's scan is not part of the outer plan tree.
    assert len(scan_nodes(planned.root)) == 1


def test_grouped_aggregate_requires_alias():
    with pytest.raises(SqlError):
        plan("SELECT SUM(l_quantity) FROM lineitem")


def test_non_aggregate_item_must_be_grouped():
    with pytest.raises(SqlError):
        plan("SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem")


def test_having_requires_grouping():
    with pytest.raises(SqlError):
        plan("SELECT l_quantity FROM lineitem HAVING l_quantity > 1")


def test_unknown_table_rejected():
    with pytest.raises(SqlError):
        plan("SELECT x FROM not_a_table")


def test_duplicate_output_columns_rejected():
    with pytest.raises(SqlError):
        plan("SELECT n_name, n_name FROM nation")
