"""Golden architectural fingerprints for every registered kernel.

``tests/golden/isa_fingerprints.json`` pins, per (config, kernel): the
cycle count, retired-instruction count (instret), and SHA-256 hashes of the
final register file, kernel outputs, and kernel state. The pins were
generated with the *reference* interpreter, so this test simultaneously
detects drift in the seed semantics and any divergence of the default
(fast-path) engine from them.

Regenerate after an intentional architectural change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_isa_fingerprints.py

(the regeneration pass always runs the reference engine, keeping it the
ground truth the fast path is measured against).
"""

import hashlib
import json
import os
import struct
from pathlib import Path

import pytest

from repro.config import named_config
from repro.core.core import CoreModel
from repro.kernels.registry import KERNEL_NAMES, get_kernel

GOLDEN_PATH = Path(__file__).parent / "golden" / "isa_fingerprints.json"

CONFIGS = ("AssasinSb", "Baseline")  # stream form and memory form
INPUT_BYTES = 4 * 1024
SEED = 11


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fingerprint(config_name: str, kernel_name: str, engine: str) -> dict:
    cfg = named_config(config_name).with_exec_engine(engine)
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(INPUT_BYTES, seed=SEED)
    result = CoreModel(cfg.core).run(kernel, inputs)
    return {
        "cycles": result.cycles,
        "instret": result.instructions,
        "regfile_sha256": _sha(struct.pack("<32I", *result.final_regs)),
        "outputs_sha256": _sha(b"\x00".join(result.outputs)),
        "state_sha256": _sha(result.final_state),
    }


def _regen() -> dict:
    data = {
        f"{config}/{kernel}": _fingerprint(config, kernel, "reference")
        for config in CONFIGS
        for kernel in KERNEL_NAMES
    }
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


_GOLDEN_CACHE = None


def _golden() -> dict:
    global _GOLDEN_CACHE
    if _GOLDEN_CACHE is None:
        if os.environ.get("REGEN_GOLDEN"):
            _GOLDEN_CACHE = _regen()
        else:
            _GOLDEN_CACHE = json.loads(GOLDEN_PATH.read_text())
    return _GOLDEN_CACHE


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
def test_kernel_fingerprint_pinned(config_name, kernel_name):
    """The default engine reproduces the reference-generated pins exactly."""
    default_engine = named_config(config_name).core.exec_engine
    actual = _fingerprint(config_name, kernel_name, default_engine)
    assert actual == _golden()[f"{config_name}/{kernel_name}"]


def test_golden_file_covers_every_kernel():
    missing = [
        f"{c}/{k}" for c in CONFIGS for k in KERNEL_NAMES
        if f"{c}/{k}" not in _golden()
    ]
    assert not missing
