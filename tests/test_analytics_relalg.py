"""Tests for the mini relational-algebra engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.relalg import Table
from repro.errors import AnalyticsError


def people():
    return Table(
        "people",
        {
            "id": [1, 2, 3, 4],
            "city": ["NY", "SF", "NY", "LA"],
            "age": [30, 25, 40, 35],
        },
    )


def cities():
    return Table("cities", {"city": ["NY", "SF"], "pop": [8, 1]})


def test_ragged_columns_rejected():
    with pytest.raises(AnalyticsError):
        Table("bad", {"a": [1, 2], "b": [1]})


def test_filter_and_stats():
    t = people().filter(lambda r: r["age"] > 28)
    assert t.column("id") == [1, 3, 4]
    assert t.stats.rows_scanned == 4
    assert t.stats.rows_filtered_in == 3


def test_project_and_missing_column():
    t = people().project(["id", "age"])
    assert set(t.columns) == {"id", "age"}
    with pytest.raises(AnalyticsError):
        t.column("city")


def test_extend_computed_column():
    t = people().extend("age2", lambda r: r["age"] * 2)
    assert t.column("age2") == [60, 50, 80, 70]


def test_inner_join():
    j = people().join(cities(), "city", "city")
    assert j.nrows == 3  # LA has no match
    ny_pops = [r["pop"] for r in j.iter_rows() if r["city"] == "NY"]
    assert ny_pops == [8, 8]
    assert j.stats.build_rows == 2


def test_semi_and_anti_join():
    semi = people().join(cities(), "city", "city", how="semi")
    assert sorted(semi.column("id")) == [1, 2, 3]
    assert set(semi.columns) == {"id", "city", "age"}
    anti = people().join(cities(), "city", "city", how="anti")
    assert anti.column("id") == [4]


def test_join_rejects_unknown_kind():
    with pytest.raises(AnalyticsError):
        people().join(cities(), "city", "city", how="outer")


def test_group_by_aggregates():
    g = people().group_by(
        ["city"],
        {
            "n": ("count", None),
            "total_age": ("sum", lambda r: r["age"]),
            "oldest": ("max", lambda r: r["age"]),
            "youngest": ("min", lambda r: r["age"]),
            "mean_age": ("avg", lambda r: r["age"]),
        },
    )
    row = {r["city"]: r for r in g.iter_rows()}
    assert row["NY"]["n"] == 2 and row["NY"]["total_age"] == 70
    assert row["NY"]["oldest"] == 40 and row["NY"]["youngest"] == 30
    assert row["SF"]["mean_age"] == 25


def test_group_by_global():
    g = people().group_by([], {"total": ("sum", lambda r: r["age"])})
    assert g.nrows == 1 and g.column("total") == [130]


def test_order_by_multi_key():
    t = people().order_by([("city", False), ("age", True)])
    assert t.column("id") == [4, 3, 1, 2]


def test_limit_and_distinct():
    assert people().limit(2).nrows == 2
    d = people().project(["city"]).distinct(["city"])
    assert sorted(d.column("city")) == ["LA", "NY", "SF"]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
def test_groupby_count_partitions_rows(values):
    t = Table("t", {"v": values})
    g = t.group_by(["v"], {"n": ("count", None)})
    assert sum(g.column("n")) == len(values)
    assert set(g.column("v")) == set(values)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=40),
    st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=40),
)
def test_join_cardinality_matches_bruteforce(left, right):
    lt = Table("l", {"k": left})
    rt = Table("r", {"k2": right})
    joined = lt.join(rt, "k", "k2")
    expected = sum(1 for a in left for b in right if a == b)
    assert joined.nrows == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=30),
    st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=30),
)
def test_join_cardinality_symmetric(left, right):
    lt = Table("l", {"k": left})
    rt = Table("r", {"k2": right})
    assert lt.join(rt, "k", "k2").nrows == rt.join(lt, "k2", "k").nrows


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=40))
def test_distinct_idempotent(values):
    t = Table("t", {"v": values})
    once = t.distinct(["v"])
    twice = once.distinct(["v"])
    assert once.column("v") == twice.column("v")
    assert once.nrows == len(set(values))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=40))
def test_order_by_is_a_sorted_permutation(values):
    t = Table("t", {"v": list(values)})
    ordered = t.order_by([("v", False)])
    assert ordered.column("v") == sorted(values)
    assert sorted(ordered.column("v")) == sorted(values)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)), min_size=0, max_size=40))
def test_filter_project_commute(rows):
    t = Table("t", {"k": [a for a, _ in rows], "v": [b for _, b in rows]})
    pred = lambda r: r["k"] >= 3
    a = t.filter(pred).project(["k"])
    b = t.project(["k"]).filter(pred)
    assert a.column("k") == b.column("k")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=50))
def test_semi_plus_anti_partition(values):
    t = Table("t", {"k": values})
    other = Table("o", {"k2": [0, 2, 4]})
    semi = t.join(other, "k", "k2", how="semi")
    anti = t.join(other, "k", "k2", how="anti")
    assert semi.nrows + anti.nrows == t.nrows
    assert all(v in (0, 2, 4) for v in semi.column("k"))
    assert all(v not in (0, 2, 4) for v in anti.column("k"))
