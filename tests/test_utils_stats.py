"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import Accumulator, geomean, percentile, weighted_mean


def test_geomean_examples():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([1.5, 1.8]) == pytest.approx(math.sqrt(1.5 * 1.8))


def test_geomean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


def test_percentile_nearest_rank():
    values = list(range(1, 101))  # 1..100
    assert percentile(values, 50.0) == 50
    assert percentile(values, 95.0) == 95
    assert percentile(values, 99.0) == 99
    assert percentile(values, 100.0) == 100
    assert percentile(values, 0.5) == 1


def test_percentile_always_returns_a_sample():
    values = [12.5, 99.0, 3.0]
    for pct in (1.0, 50.0, 90.0, 100.0):
        assert percentile(values, pct) in values
    assert percentile([7.0], 99.0) == 7.0


def test_percentile_unsorted_input():
    assert percentile([9.0, 1.0, 5.0, 3.0], 50.0) == 3.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 99.0)
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.floats(min_value=0.01, max_value=100.0),
)
def test_percentile_bounded_and_monotone(values, pct):
    p = percentile(values, pct)
    assert min(values) <= p <= max(values)
    assert percentile(values, 100.0) == max(values)


def test_weighted_mean():
    assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
    assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        weighted_mean([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_mean([1.0], [0.0])


def test_accumulator_against_reference():
    samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    acc = Accumulator()
    acc.extend(samples)
    assert acc.count == len(samples)
    assert acc.mean == pytest.approx(sum(samples) / len(samples))
    mean = sum(samples) / len(samples)
    var = sum((x - mean) ** 2 for x in samples) / len(samples)
    assert acc.variance == pytest.approx(var)
    assert acc.minimum == 1.0
    assert acc.maximum == 9.0
    assert acc.total == pytest.approx(sum(samples))


def test_accumulator_empty_variance_zero():
    assert Accumulator().variance == 0.0
