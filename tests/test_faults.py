"""Tests for repro.faults: injection, the recovery ladder, and campaigns."""

import pytest

from repro.config import (
    FaultConfig,
    FlashConfig,
    HardFault,
    ServeConfig,
    assasin_sb_config,
)
from repro.errors import ConfigError, FlashError
from repro.faults import (
    PARITY_LPA_BASE,
    FaultInjector,
    RaidGroupMap,
    run_campaign,
)
from repro.faults.campaign import golden_page
from repro.flash.array import PhysicalPageAddress
from repro.flash.chip import FlashChip
from repro.flash.ecc import ECCStatus
from repro.ftl.allocator import PageAllocator
from repro.serve.workload import TenantSpec
from repro.ssd.device import ComputationalSSD
from repro.ssd.firmware import RecoveryController

TINY = FlashConfig(
    channels=1,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=4,
)

PPA0 = PhysicalPageAddress(0, 0, 0, 0, 0, 0)


def _chip(payload=b"\xa5" * 64):
    chip = FlashChip(FlashConfig(), 0, 0)
    chip.start_program(0, 0, 0, 0, 0.0, data=payload)
    return chip


# -- FlashChip.inject_errors (satellite) --------------------------------------


def test_inject_errors_unprogrammed_page_raises_flash_error():
    chip = FlashChip(FlashConfig(), 0, 0)
    with pytest.raises(FlashError):
        chip.inject_errors(0, 0, 0, 0, nbits=1)
    with pytest.raises(FlashError):  # outside geometry, still FlashError
        chip.inject_errors(99, 0, 0, 0, nbits=1)


def test_inject_errors_same_seed_same_bits():
    payload = bytes(range(64))
    a, b = _chip(payload), _chip(payload)
    a.inject_errors(0, 0, 0, 0, nbits=5, seed=7)
    b.inject_errors(0, 0, 0, 0, nbits=5, seed=7)
    assert a.read_data(0, 0, 0, 0) == b.read_data(0, 0, 0, 0) != payload


def test_inject_errors_repeat_flips_fresh_bits():
    """A second same-seed injection must not cancel the first one."""
    payload = bytes(range(64))
    chip = _chip(payload)
    chip.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    once = chip.read_data(0, 0, 0, 0)
    chip.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    twice = chip.read_data(0, 0, 0, 0)
    assert twice != once and twice != payload
    # ...and the two-round sequence is itself reproducible.
    other = _chip(payload)
    other.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    other.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    assert other.read_data(0, 0, 0, 0) == twice


def test_erase_resets_injection_rounds():
    payload = bytes(range(64))
    chip = _chip(payload)
    chip.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    first = chip.read_data(0, 0, 0, 0)
    chip.erase_block(0, 0, 0, 0.0)
    chip.start_program(0, 0, 0, 0, 1.0, data=payload)
    chip.inject_errors(0, 0, 0, 0, nbits=3, seed=7)
    assert chip.read_data(0, 0, 0, 0) == first  # round counter rewound


# -- centralised ecc_failures accounting (satellite) --------------------------


def test_ecc_failures_bumped_exactly_once_per_uncorrectable_read():
    chip = _chip()
    chip.inject_errors(0, 0, 0, 0, nbits=40, seed=2)  # way past SECDED
    _, status = chip.read_data_checked(0, 0, 0, 0)
    assert status is ECCStatus.UNCORRECTABLE
    assert chip.ecc_failures == 1
    chip.read_data_checked(0, 0, 0, 0)
    assert chip.ecc_failures == 2  # once per read, not per codeword
    # A clean page elsewhere leaves the counter alone.
    chip.start_program(0, 0, 1, 0, 0.0, data=b"\x11" * 64)
    _, status = chip.read_data_checked(0, 0, 1, 0)
    assert status is ECCStatus.CLEAN and chip.ecc_failures == 2


def test_overwrite_raw_requires_data_and_matching_length():
    chip = _chip()
    with pytest.raises(FlashError):
        chip.overwrite_raw(0, 0, 1, 0, b"\x00" * 64)  # never programmed
    with pytest.raises(FlashError):
        chip.overwrite_raw(0, 0, 0, 0, b"\x00" * 8)  # wrong length
    chip.overwrite_raw(0, 0, 0, 0, b"\x00" * 64)
    assert chip.read_data(0, 0, 0, 0) == b"\x00" * 64


# -- allocator block retirement -----------------------------------------------


def test_retire_block_removes_it_from_service():
    alloc = PageAllocator(TINY)
    first = alloc.allocate()
    assert alloc.retire_block(first) is True
    assert alloc.retire_block(first) is False  # already retired
    # A retired block cannot be resurrected through the GC path.
    alloc.free_block(first)
    seen = set()
    while True:
        try:
            ppa = alloc.allocate()
        except Exception:
            break
        seen.add((ppa.block, ppa.page))
        assert ppa.block != first.block
    # The other three blocks are still fully allocatable.
    assert len(seen) == 3 * TINY.pages_per_block


def test_retire_open_write_block_closes_write_point():
    alloc = PageAllocator(TINY)
    first = alloc.allocate()
    alloc.retire_block(first)
    nxt = alloc.allocate()
    assert nxt.block != first.block and nxt.page == 0


# -- RAID group map -----------------------------------------------------------


def test_raid_group_map_mates_and_remainder():
    rmap = RaidGroupMap.build(range(10), 4)
    assert len(rmap) == 3  # 4 + 4 + 2
    assert rmap.stripe_mates(1) == [0, 2, 3, PARITY_LPA_BASE]
    assert rmap.stripe_mates(PARITY_LPA_BASE) == [0, 1, 2, 3]
    assert rmap.stripe_mates(9) == [8, PARITY_LPA_BASE + 2]
    assert rmap.stripe_mates(12345) is None
    assert rmap.parity_lpas == [PARITY_LPA_BASE + i for i in range(3)]


# -- the injector -------------------------------------------------------------


def test_hard_fault_zone_scoping():
    failures = (
        HardFault(kind="channel", channel=1, onset_ns=100.0),
        HardFault(kind="chip", channel=0, chip=2),
        HardFault(kind="plane", channel=3, chip=0, die=1, plane=0),
    )
    inj = FaultInjector(FaultConfig(failures=failures), FlashConfig())
    ch1 = PhysicalPageAddress(1, 0, 0, 0, 0, 0)
    assert not inj.hard_failed(ch1, 99.0)  # before onset
    assert inj.hard_failed(ch1, 100.0)
    assert inj.hard_failed(PhysicalPageAddress(0, 2, 1, 1, 0, 0), 0.0)
    assert not inj.hard_failed(PhysicalPageAddress(0, 1, 0, 0, 0, 0), 0.0)
    assert inj.hard_failed(PhysicalPageAddress(3, 0, 1, 0, 0, 0), 0.0)
    assert not inj.hard_failed(PhysicalPageAddress(3, 0, 0, 0, 0, 0), 0.0)


def test_injected_noise_is_always_correctable():
    payload = bytes((i * 31) & 0xFF for i in range(4096))
    chip = _chip(payload)
    inj = FaultInjector(FaultConfig(page_error_rate=1.0, noisy_bits=3), FlashConfig())
    fault = inj.on_read(chip, PPA0, 0.0)
    assert fault.kind == "noise" and fault.touched and fault.scrub == payload
    data, status = chip.read_data_checked(0, 0, 0, 0)
    assert status is ECCStatus.CORRECTED and data == payload


def test_injected_burst_is_uncorrectable_not_miscorrected():
    payload = bytes((i * 13) & 0xFF for i in range(4096))
    chip = _chip(payload)
    inj = FaultInjector(
        FaultConfig(uncorrectable_rate=1.0, transient_fraction=0.0), FlashConfig()
    )
    fault = inj.on_read(chip, PPA0, 0.0)
    assert fault.kind == "permanent"
    _, status = chip.read_data_checked(0, 0, 0, 0)
    assert status is ECCStatus.UNCORRECTABLE  # never silently wrong data


def test_injector_same_seed_same_faults():
    payload = bytes(range(256)) * 16
    results = []
    for _ in range(2):
        chip = _chip(payload)
        inj = FaultInjector(
            FaultConfig(seed=9, page_error_rate=0.4, uncorrectable_rate=0.2),
            FlashConfig(),
        )
        kinds = [inj.on_read(chip, PPA0, float(t)).kind for t in range(6)]
        results.append((kinds, chip.read_data(0, 0, 0, 0), dict(inj.counters)))
    assert results[0] == results[1]


# -- the recovery ladder ------------------------------------------------------


def _loaded_device(n_pages=4, raid_k=4):
    device = ComputationalSSD(assasin_sb_config())
    page = device.config.flash.page_bytes
    golden = {}
    for lpa in range(n_pages):
        golden[lpa] = golden_page(1, lpa, page)
        device.array.service_write(device.ftl.write(lpa), 0.0, data=golden[lpa])
    rmap = RaidGroupMap.build(range(n_pages), raid_k)
    for group in range(len(rmap)):
        members = [golden[m] for m in rmap.members(group)]
        parity = bytes(len(members[0]))
        for member in members:
            parity = bytes(a ^ b for a, b in zip(parity, member))
        lpa = rmap.parity(group)
        golden[lpa] = parity if len(members) > 1 else members[0]
        device.array.service_write(device.ftl.write(lpa), 0.0, data=golden[lpa])
    return device, golden, rmap


def test_transient_burst_recovered_by_read_retry():
    device, golden, rmap = _loaded_device()
    cfg = FaultConfig(uncorrectable_rate=1.0, transient_fraction=1.0, max_read_retries=2)
    rec = RecoveryController(
        device, cfg, injector=FaultInjector(cfg, device.config.flash),
        raid_map=rmap, golden=golden,
    )
    outcome = rec.read_lpa(0, 0.0)
    assert outcome.status == "retried" and outcome.retries == 1
    assert outcome.data == golden[0]
    assert rec.counters["retry_recovered_pages"] == 1
    assert rec.corruption_events == 0
    # Backoff made the retry strictly later than a clean read would be
    # (fresh device: identical timelines, no faults).
    device2, _, _ = _loaded_device()
    clean = RecoveryController(device2, cfg).read_lpa(0, 0.0)
    assert outcome.done_ns > clean.done_ns


def test_hard_fault_escalates_to_raid_reconstruction():
    device, golden, rmap = _loaded_device()
    dead = device.ftl.lookup(2)
    cfg = FaultConfig(
        failures=(
            HardFault(
                kind="plane", channel=dead.channel, chip=dead.chip,
                die=dead.die, plane=dead.plane,
            ),
        ),
        max_read_retries=1,
    )
    inj = FaultInjector(cfg, device.config.flash)
    rec = RecoveryController(device, cfg, injector=inj, raid_map=rmap, golden=golden)
    outcome = rec.read_lpa(2, 0.0)
    assert outcome.status == "reconstructed"
    assert outcome.data == golden[2]  # bit-exact rebuild
    remapped = device.ftl.lookup(2)
    assert remapped != dead
    assert not inj.hard_failed(remapped, outcome.done_ns)
    assert rec.counters["reconstructed_pages"] == 1
    assert rec.counters["remapped_pages"] == 1
    assert rec.counters["retired_blocks"] >= 1
    assert (dead.channel, dead.chip, dead.die, dead.plane, dead.block) in (
        device.ftl.allocator.retired_blocks
    )
    assert rec.corruption_events == 0
    assert len(rec.reconstruction_ns) == 1 and rec.reconstruction_ns[0] > 0
    # The remapped copy now serves cleanly.
    again = rec.read_lpa(2, outcome.done_ns)
    assert again.status == "clean" and again.data == golden[2]


def test_parity_page_is_itself_reconstructable():
    device, golden, rmap = _loaded_device()
    parity_lpa = rmap.parity(0)
    dead = device.ftl.lookup(parity_lpa)
    cfg = FaultConfig(
        failures=(
            HardFault(
                kind="plane", channel=dead.channel, chip=dead.chip,
                die=dead.die, plane=dead.plane,
            ),
        ),
        max_read_retries=0,
    )
    rec = RecoveryController(
        device, cfg, injector=FaultInjector(cfg, device.config.flash),
        raid_map=rmap, golden=golden,
    )
    outcome = rec.read_lpa(parity_lpa, 0.0)
    assert outcome.status == "reconstructed" and outcome.data == golden[parity_lpa]


def test_unrecoverable_without_raid_group():
    device, golden, _ = _loaded_device()
    dead = device.ftl.lookup(1)
    cfg = FaultConfig(
        failures=(
            HardFault(
                kind="plane", channel=dead.channel, chip=dead.chip,
                die=dead.die, plane=dead.plane,
            ),
        ),
        max_read_retries=1,
    )
    rec = RecoveryController(
        device, cfg, injector=FaultInjector(cfg, device.config.flash),
        raid_map=None, golden=golden,
    )
    outcome = rec.read_lpa(1, 0.0)
    assert outcome.status == "failed" and outcome.data is None
    assert rec.counters["unrecoverable_pages"] == 1


# -- campaigns ----------------------------------------------------------------


def _campaign_tenants():
    return [
        TenantSpec(
            name="reader", weight=1.0, kind="read",
            pages_per_command=4, interarrival_ns=10_000.0, region_pages=64,
        ),
    ]


def _small_campaign(seed=3):
    return run_campaign(
        assasin_sb_config(),
        FaultConfig(
            seed=seed,
            page_error_rate=0.05,
            uncorrectable_rate=0.01,
            slow_read_rate=0.02,
        ),
        tenants=_campaign_tenants(),
        duration_ns=150_000.0,
        seed=seed,
    )


def test_campaign_serves_correct_data_and_recovers():
    report = _small_campaign()
    assert report.serve.total_completed > 0
    assert report.serve.success_rate >= 0.99  # acceptance criterion
    assert report.corruption_events == 0  # zero served-corrupt pages
    assert report.integrity_errors == 0  # every page still materialises
    assert report.integrity_checked == report.data_pages + report.parity_pages
    assert report.healthy
    assert report.data_pages == 64 and report.parity_pages == 16
    rendered = report.render()
    assert "HEALTHY" in rendered and "recovery" in rendered


def test_campaign_same_seed_same_fingerprint():
    assert _small_campaign().fingerprint() == _small_campaign().fingerprint()


def test_campaign_different_seed_differs():
    assert _small_campaign(seed=3).fingerprint() != _small_campaign(seed=4).fingerprint()


# -- serve-level timeout/retry ------------------------------------------------


def test_command_timeout_counts_and_retries():
    from repro.serve import simulate_serve

    tenants = _campaign_tenants()
    strict = ServeConfig(command_timeout_ns=1_000.0, max_command_retries=1)
    report = simulate_serve(
        assasin_sb_config(), tenants, strict, duration_ns=100_000.0, seed=5
    )
    total_timeouts = sum(t.timeouts for t in report.tenants.values())
    total_retries = sum(t.cmd_retries for t in report.tenants.values())
    assert total_timeouts > 0  # 1 us is far below one page read
    assert total_retries > 0
    relaxed = simulate_serve(
        assasin_sb_config(), tenants, ServeConfig(), duration_ns=100_000.0, seed=5
    )
    assert sum(t.timeouts for t in relaxed.tenants.values()) == 0


# -- config validation --------------------------------------------------------


def test_fault_config_validation():
    with pytest.raises(ConfigError):
        FaultConfig(page_error_rate=1.5)
    with pytest.raises(ConfigError):
        FaultConfig(page_error_rate=0.7, uncorrectable_rate=0.6)
    with pytest.raises(ConfigError):
        FaultConfig(transient_fraction=-0.1)
    with pytest.raises(ConfigError):
        FaultConfig(noisy_bits=0)
    with pytest.raises(ConfigError):
        FaultConfig(raid_k=7)
    with pytest.raises(ConfigError):
        FaultConfig(max_read_retries=-1)


def test_hard_fault_validation():
    with pytest.raises(ConfigError):
        HardFault(kind="die", channel=0)
    with pytest.raises(ConfigError):
        HardFault(kind="chip", channel=0)  # chip index missing
    with pytest.raises(ConfigError):
        HardFault(kind="plane", channel=0, chip=0)  # die/plane missing
    with pytest.raises(ConfigError):
        HardFault(kind="channel", channel=0, onset_ns=-1.0)


def test_serve_config_timeout_validation():
    with pytest.raises(ConfigError):
        ServeConfig(command_timeout_ns=-1.0)
    with pytest.raises(ConfigError):
        ServeConfig(max_command_retries=-1)
