"""Differential property tests: the interpreter vs a golden Python model.

Hypothesis generates random straight-line ALU programs and checks the
interpreter's architectural state against an independent evaluator that
implements RV32 semantics directly on Python ints. This catches wrap-around,
sign-extension, and shift-amount bugs that example-based tests miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Instr
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.mem.memory import FlatMemory
from repro.utils.bitops import to_signed32

REGS = list(range(1, 16))  # avoid x0 as destination for simpler modelling

_ALU_R = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
          "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_SHIFT_I = ["slli", "srli", "srai"]

alu_r_instr = st.builds(
    lambda op, rd, rs1, rs2: Instr(op, rd=rd, rs1=rs1, rs2=rs2),
    st.sampled_from(_ALU_R),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
)
alu_i_instr = st.builds(
    lambda op, rd, rs1, imm: Instr(op, rd=rd, rs1=rs1, imm=imm),
    st.sampled_from(_ALU_I),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(min_value=-2048, max_value=2047),
)
shift_instr = st.builds(
    lambda op, rd, rs1, imm: Instr(op, rd=rd, rs1=rs1, imm=imm),
    st.sampled_from(_SHIFT_I),
    st.sampled_from(REGS),
    st.sampled_from(REGS),
    st.integers(min_value=0, max_value=31),
)
lui_instr = st.builds(
    lambda rd, imm: Instr("lui", rd=rd, imm=imm),
    st.sampled_from(REGS),
    st.integers(min_value=0, max_value=0xFFFFF),
)

any_instr = st.one_of(alu_r_instr, alu_i_instr, shift_instr, lui_instr)


def golden_eval(instrs, seeds):
    """Independent evaluator of the same straight-line program."""
    regs = [0] * 32
    for r, v in seeds.items():
        regs[r] = v & 0xFFFFFFFF

    def s(v):
        return to_signed32(v)

    for i in instrs:
        a, b, imm = regs[i.rs1], regs[i.rs2], i.imm
        op = i.op
        if op == "add":
            v = a + b
        elif op == "sub":
            v = a - b
        elif op == "and":
            v = a & b
        elif op == "or":
            v = a | b
        elif op == "xor":
            v = a ^ b
        elif op == "sll":
            v = a << (b % 32)
        elif op == "srl":
            v = a >> (b % 32)
        elif op == "sra":
            v = s(a) >> (b % 32)
        elif op == "slt":
            v = int(s(a) < s(b))
        elif op == "sltu":
            v = int(a < b)
        elif op == "mul":
            v = s(a) * s(b)
        elif op == "mulh":
            v = (s(a) * s(b)) >> 32
        elif op == "mulhu":
            v = (a * b) >> 32
        elif op == "mulhsu":
            v = (s(a) * b) >> 32
        elif op == "div":
            if s(b) == 0:
                v = -1
            else:
                q = abs(s(a)) // abs(s(b))
                v = -q if (s(a) < 0) != (s(b) < 0) else q
        elif op == "divu":
            v = 0xFFFFFFFF if b == 0 else a // b
        elif op == "rem":
            if s(b) == 0:
                v = s(a)
            else:
                m = abs(s(a)) % abs(s(b))
                v = -m if s(a) < 0 else m
        elif op == "remu":
            v = a if b == 0 else a % b
        elif op == "addi":
            v = a + imm
        elif op == "andi":
            v = a & (imm & 0xFFFFFFFF)
        elif op == "ori":
            v = a | (imm & 0xFFFFFFFF)
        elif op == "xori":
            v = a ^ (imm & 0xFFFFFFFF)
        elif op == "slti":
            v = int(s(a) < imm)
        elif op == "sltiu":
            v = int(a < (imm & 0xFFFFFFFF))
        elif op == "slli":
            v = a << imm
        elif op == "srli":
            v = a >> imm
        elif op == "srai":
            v = s(a) >> imm
        elif op == "lui":
            v = imm << 12
        else:  # pragma: no cover
            raise AssertionError(op)
        if i.rd != 0:
            regs[i.rd] = v & 0xFFFFFFFF
    return regs


@settings(max_examples=200, deadline=None)
@given(
    st.lists(any_instr, min_size=1, max_size=40),
    st.dictionaries(
        st.sampled_from(REGS), st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=8
    ),
)
def test_interpreter_matches_golden_model(instrs, seeds):
    program = Program("diff", tuple(instrs) + (Instr("halt"),))
    interp = Interpreter(program, FlatMemory(64))
    for r, v in seeds.items():
        interp.regs.write(r, v)
    interp.run()
    expected = golden_eval(instrs, seeds)
    actual = interp.regs.snapshot()
    assert actual == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(any_instr, min_size=1, max_size=20),
    st.dictionaries(
        st.sampled_from(REGS), st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=4
    ),
)
def test_all_register_values_stay_32_bit(instrs, seeds):
    program = Program("bits", tuple(instrs) + (Instr("halt"),))
    interp = Interpreter(program, FlatMemory(64))
    for r, v in seeds.items():
        interp.regs.write(r, v)
    interp.run()
    for value in interp.regs.snapshot():
        assert 0 <= value <= 0xFFFFFFFF
    assert interp.regs.read(0) == 0  # x0 forever zero


# -- memory-op differential ---------------------------------------------------

mem_op = st.one_of(
    st.builds(
        lambda op, rd, addr: ("load", op, rd, addr),
        st.sampled_from(["lb", "lbu", "lh", "lhu", "lw"]),
        st.sampled_from(REGS),
        st.integers(min_value=0, max_value=56),
    ),
    st.builds(
        lambda op, rs2, addr: ("store", op, rs2, addr),
        st.sampled_from(["sb", "sh", "sw"]),
        st.sampled_from(REGS),
        st.integers(min_value=0, max_value=56),
    ),
)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(mem_op, min_size=1, max_size=30),
    st.dictionaries(
        st.sampled_from(REGS), st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=6
    ),
)
def test_memory_ops_match_byte_model(ops, seeds):
    """Random load/store sequences vs an independent byte-array model."""
    instrs = []
    for kind, op, reg, addr in ops:
        if kind == "load":
            instrs.append(Instr(op, rd=reg, rs1=0, imm=addr))
        else:
            instrs.append(Instr(op, rs2=reg, rs1=0, imm=addr))
    program = Program("memdiff", tuple(instrs) + (Instr("halt"),))
    interp = Interpreter(program, FlatMemory(64))
    for r, v in seeds.items():
        interp.regs.write(r, v)
    interp.run()

    # Golden model.
    regs = [0] * 32
    for r, v in seeds.items():
        regs[r] = v & 0xFFFFFFFF
    mem = bytearray(64)
    sizes = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "sb": 1, "sh": 2, "sw": 4}
    for kind, op, reg, addr in ops:
        size = sizes[op]
        if kind == "store":
            mem[addr : addr + size] = (regs[reg] & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little"
            )
        else:
            signed = op in ("lb", "lh")
            value = int.from_bytes(mem[addr : addr + size], "little", signed=signed)
            if reg != 0:
                regs[reg] = value & 0xFFFFFFFF
    assert interp.regs.snapshot() == regs
    assert interp.memory.load_bytes(0, 64) == bytes(mem)
