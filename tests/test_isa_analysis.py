"""Tests for static program analysis and the kernel validation harness."""

import pytest

from repro.isa.analysis import analyze_program, check_structure
from repro.isa.program import Asm
from repro.kernels import KERNEL_NAMES, get_kernel
from repro.kernels.validation import validate_kernel


def sample_program():
    a = Asm("sample")
    a.li("t0", 5)
    a.label("loop")
    a.sload("t1", 2, 4)
    a.add("t0", "t0", "t1")
    a.sstore("t0", 1, 4)
    a.bnez("t0", "loop")
    a.halt()
    return a.build()


def test_analyze_counts_and_kinds():
    stats = analyze_program(sample_program())
    assert stats.size == 6
    from repro.isa.instructions import InstrKind

    assert stats.kind_counts[InstrKind.STREAM_LOAD] == 1
    assert stats.kind_counts[InstrKind.STREAM_STORE] == 1
    assert stats.kind_counts[InstrKind.BRANCH] == 1
    assert stats.op_counts["add"] == 1


def test_analyze_registers_and_streams():
    stats = analyze_program(sample_program())
    from repro.isa.registers import reg_num

    assert reg_num("t0") in stats.regs_written
    assert reg_num("t1") in stats.regs_written  # sload destination
    assert reg_num("t0") in stats.regs_read
    assert stats.stream_ids_in == {2}
    assert stats.stream_ids_out == {1}


def test_fractions():
    stats = analyze_program(sample_program())
    assert stats.stream_op_fraction == pytest.approx(2 / 6)
    assert stats.memory_op_fraction == 0.0
    assert "sample" in stats.render()


def test_check_structure_clean_program():
    assert check_structure(sample_program()) == []


def test_check_structure_fall_off_end():
    a = Asm("bad")
    a.li("t0", 1)
    problems = check_structure(a.build())
    assert any("falls off the end" in p for p in problems)


def test_check_structure_no_termination():
    a = Asm("bad2")
    a.li("t0", 1)
    a.label("x")
    a.j("x")
    problems = check_structure(a.build())
    assert any("cannot terminate" in p for p in problems)


@pytest.mark.parametrize(
    "name",
    [n for n in KERNEL_NAMES if n not in ("decompress",)],
)
def test_all_registered_kernels_validate(name):
    kernel = get_kernel(name)
    report = validate_kernel(kernel, sample_bytes=2048)
    assert report.ok, report.render()


def test_decompress_validates_without_pingpong():
    # Output expansion exceeds the ping-pong staging; validated on the
    # stream and DRAM paths only (see the kernel's docstring).
    report = validate_kernel(get_kernel("decompress"), sample_bytes=1024, check_pingpong=False)
    assert report.ok, report.render()


def test_validation_catches_broken_kernel():
    kernel = get_kernel("stat")
    # Sabotage: a reference that disagrees with the programs.
    kernel.reference_state = lambda inputs: b"\xde\xad\xbe\xef"
    report = validate_kernel(kernel, sample_bytes=512)
    assert not report.ok
    assert any("state mismatch" in p for p in report.problems)
