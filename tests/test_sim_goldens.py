"""Pinned-fingerprint harness guarding the `repro.sim` timing refactor.

The goldens in ``tests/golden/sim_fingerprints.json`` were captured from the
*pre-refactor* code (greedy per-bus float timelines + the firmware's
heap-merge retiming loop).  The unified discrete-event kernel must
reproduce them:

* **exactly** where the legacy timing was already integer-valued (flash
  latencies, 1 B/ns channel buses, page-aligned transfers), and
* within a documented **<=0.5% relative / 1 ns-or-count absolute**
  tolerance where float timelines were replaced by integer nanoseconds
  (compute schedules built from fractional cycles-per-byte, Poisson
  inter-arrival instants).

Regenerate (only when a timing change is *intended*) with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_sim_goldens.py
"""

import json
import os
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_fingerprints.json"

#: Documented tolerance for float-timeline -> integer-ns replacement.
REL_TOL = 0.005
ABS_SLACK = 1.0


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------


def _offload_digest(result):
    return {
        "completion_ns": result.completion_ns,
        "throughput_gbps": result.throughput_gbps,
        "limiter": result.limiter,
        "bytes_in": result.bytes_in,
        "bytes_out": result.bytes_out,
        "flash_stall_ns": result.flash_stall_ns,
        "channel_bytes": list(result.channel_bytes),
    }


def _fig13_goldens():
    from repro.experiments import fig13

    result = fig13.run(data_bytes=8 << 20)
    return {
        kernel: {cfg: _offload_digest(r) for cfg, r in by_cfg.items()}
        for kernel, by_cfg in result.results.items()
    }


def _fig14_goldens():
    from repro.experiments import fig14

    result = fig14.run(data_bytes=8 << 20)
    return {
        shape: {cfg: r.throughput_gbps for cfg, r in by_cfg.items()}
        for shape, by_cfg in result.results.items()
    }


def _fig15_goldens():
    from repro.experiments import fig15

    return dict(fig15.measure_psf_rates(data_bytes=8 << 20))


def _writepath_goldens():
    from repro.config import all_configs
    from repro.kernels import get_kernel
    from repro.ssd.device import ComputationalSSD

    out = {}
    for name in ("Baseline", "AssasinSb"):
        device = ComputationalSSD(all_configs()[name])
        result = device.offload_write_path(get_kernel("raid4"), 4 << 20)
        out[name] = _offload_digest(result)
    return out


def _concurrent_goldens():
    from repro.config import assasin_sb_config
    from repro.kernels import get_kernel
    from repro.ssd.device import ComputationalSSD

    device = ComputationalSSD(assasin_sb_config())
    results = device.offload_concurrent(
        [(get_kernel("stat"), 4 << 20), (get_kernel("scan"), 2 << 20)]
    )
    return [_offload_digest(r) for r in results]


def _mixed_background_goldens():
    from repro.config import assasin_sb_config
    from repro.kernels import get_kernel
    from repro.ssd.device import ComputationalSSD
    from repro.ssd.firmware import BackgroundIO

    device = ComputationalSSD(assasin_sb_config())
    background = BackgroundIO(lpas=list(range(0, 512, 5)), interval_ns=8192.0)
    result = device.offload(get_kernel("stat"), 4 << 20, background=background)
    return {
        "offload": _offload_digest(result),
        "bg_reads": len(background.latencies_ns),
        "bg_mean_latency_ns": background.mean_latency_ns,
        "bg_p99_latency_ns": background.p99_latency_ns,
    }


def _serve_tenants():
    from repro.serve import TenantSpec

    make = lambda name, weight: TenantSpec(  # noqa: E731
        name=name, weight=weight, kind="scomp", kernel="stat",
        pages_per_command=4, interarrival_ns=9_000.0,
    )
    return [make("gold", 4.0), make("silver", 1.0), make("bronze", 1.0)]


def _serve_goldens():
    from repro.config import ServeConfig, assasin_sb_config
    from repro.kernels import get_kernel
    from repro.serve import simulate_serve
    from repro.ssd.device import ComputationalSSD

    sample = ComputationalSSD(assasin_sb_config()).sample_kernel(get_kernel("stat"))
    out = {}
    for policy in ("rr", "wrr", "drr"):
        report = simulate_serve(
            assasin_sb_config(),
            _serve_tenants(),
            ServeConfig(arbitration=policy),
            duration_ns=600_000.0,
            seed=7,
            samples={"stat": sample},
        )
        out[policy] = _jsonable(report.fingerprint())
    return out


def _faults_goldens():
    from repro.config import FaultConfig, ServeConfig, assasin_sb_config
    from repro.faults import run_campaign
    from repro.serve import TenantSpec

    faults = FaultConfig(
        seed=11, page_error_rate=0.02, uncorrectable_rate=0.01,
        transient_fraction=0.5, slow_read_rate=0.02, raid_k=4,
    )
    tenants = [
        TenantSpec(
            name="reader", weight=2.0, kind="read",
            pages_per_command=4, interarrival_ns=15_000.0, region_pages=128,
        ),
        TenantSpec(
            name="scanner", weight=1.0, kind="scomp", kernel="scan",
            pages_per_command=8, interarrival_ns=40_000.0, region_pages=128,
        ),
    ]
    report = run_campaign(
        assasin_sb_config(), faults, tenants=tenants,
        serve_config=ServeConfig(arbitration="wrr"),
        duration_ns=400_000.0, seed=11,
    )
    return {
        "fingerprint": _jsonable(report.fingerprint()),
        "healthy": report.healthy,
    }


def _jsonable(value):
    """Tuples -> lists so fingerprints survive a JSON round trip."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def compute_goldens():
    return {
        "fig13": _fig13_goldens(),
        "fig14": _fig14_goldens(),
        "fig15_psf_rates": _fig15_goldens(),
        "writepath": _writepath_goldens(),
        "concurrent": _concurrent_goldens(),
        "mixed_background": _mixed_background_goldens(),
        "serve": _serve_goldens(),
        "faults": _faults_goldens(),
    }


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def assert_close(golden, actual, path=""):
    """Recursive comparison with the documented integer-ns tolerance."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: {type(actual)} != dict"
        assert set(golden) == set(actual), (
            f"{path}: keys {sorted(golden)} != {sorted(actual)}"
        )
        for key in golden:
            assert_close(golden[key], actual[key], f"{path}.{key}")
        return
    if isinstance(golden, (list, tuple)):
        actual = list(actual) if isinstance(actual, (list, tuple)) else actual
        assert isinstance(actual, list), f"{path}: {type(actual)} != list"
        assert len(golden) == len(actual), (
            f"{path}: length {len(golden)} != {len(actual)}"
        )
        for i, (g, a) in enumerate(zip(golden, actual)):
            assert_close(g, a, f"{path}[{i}]")
        return
    if isinstance(golden, bool) or isinstance(golden, str) or golden is None:
        assert golden == actual, f"{path}: {golden!r} != {actual!r}"
        return
    # Numeric leaf: exact-or-tolerance.
    limit = max(ABS_SLACK, REL_TOL * max(abs(golden), abs(actual)))
    assert abs(golden - actual) <= limit, (
        f"{path}: golden {golden} vs actual {actual} "
        f"(delta {abs(golden - actual)} > limit {limit})"
    )


# ---------------------------------------------------------------------------
# tests
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def goldens():
    if os.environ.get("REGEN_GOLDEN"):
        data = compute_goldens()
        GOLDEN_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        pytest.skip("goldens regenerated")
    if not GOLDEN_PATH.exists():
        pytest.fail(f"missing goldens at {GOLDEN_PATH}; run with REGEN_GOLDEN=1")
    return json.loads(GOLDEN_PATH.read_text())


def test_fig13_matches_prerefactor_goldens(goldens):
    assert_close(goldens["fig13"], _jsonable(_fig13_goldens()), "fig13")


def test_fig14_matches_prerefactor_goldens(goldens):
    assert_close(goldens["fig14"], _jsonable(_fig14_goldens()), "fig14")


def test_fig15_psf_rates_match_prerefactor_goldens(goldens):
    assert_close(
        goldens["fig15_psf_rates"], _jsonable(_fig15_goldens()), "fig15_psf_rates"
    )


def test_writepath_matches_prerefactor_goldens(goldens):
    assert_close(goldens["writepath"], _jsonable(_writepath_goldens()), "writepath")


def test_concurrent_matches_prerefactor_goldens(goldens):
    assert_close(goldens["concurrent"], _jsonable(_concurrent_goldens()), "concurrent")


def test_mixed_background_matches_prerefactor_goldens(goldens):
    assert_close(
        goldens["mixed_background"],
        _jsonable(_mixed_background_goldens()),
        "mixed_background",
    )


def test_serve_qos_matches_prerefactor_goldens(goldens):
    assert_close(goldens["serve"], _jsonable(_serve_goldens()), "serve")


def test_fault_campaign_matches_prerefactor_goldens(goldens):
    assert_close(goldens["faults"], _jsonable(_faults_goldens()), "faults")
