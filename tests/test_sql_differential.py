"""Differential conformance: SQL pipeline vs hand-written relalg queries.

Three independent paths must produce byte-identical results for all 22
TPC-H queries:

1. the hand-written relational-algebra implementations in
   ``repro.analytics.queries`` (the reference),
2. the SQL transcriptions parsed/planned/executed host-only,
3. the same SQL with every scan forced through the device pushdown path.

On top of that, full live sessions (shared event kernel, background
tenants, GC) must agree across all three placement policies, and a
same-seed double run must reproduce both fingerprints *and* simulated
latencies exactly — the determinism contract everything else rests on.
"""

import pytest

from repro.analytics.queries import query_numbers, run_query
from repro.analytics.datagen import generate_database
from repro.serve.workload import TenantSpec
from repro.sql.executor import SqlExecutor
from repro.sql.parser import parse_sql
from repro.sql.planner import plan_statement
from repro.sql.session import SqlSession, table_fingerprint
from repro.sql.tpch import TPCH_SQL

SF = 0.004
SEED = 7


@pytest.fixture(scope="module")
def db():
    return generate_database(SF, seed=SEED)


@pytest.fixture(scope="module")
def reference(db):
    return {n: table_fingerprint(run_query(db, n)) for n in query_numbers()}


def test_all_queries_transcribed():
    assert sorted(TPCH_SQL) == query_numbers()


@pytest.mark.parametrize("number", sorted(TPCH_SQL))
def test_host_execution_matches_relalg(db, reference, number):
    planned = plan_statement(parse_sql(TPCH_SQL[number]))
    result = SqlExecutor(db, chooser=lambda scan: "host").execute(planned)
    assert table_fingerprint(result.table) == reference[number]


@pytest.mark.parametrize("number", sorted(TPCH_SQL))
def test_forced_device_pushdown_matches_relalg(db, reference, number):
    planned = plan_statement(parse_sql(TPCH_SQL[number]))
    result = SqlExecutor(db, chooser=lambda scan: "device").execute(planned)
    assert table_fingerprint(result.table) == reference[number]
    # The forced-device run really exercised the pushdown path.
    assert all(s.site == "device" for s in result.scans)


def _background():
    return (
        TenantSpec(
            name="oltp", weight=2.0, kind="scomp", kernel="psf",
            pages_per_command=16, interarrival_ns=200_000.0,
        ),
        TenantSpec(
            name="writer", weight=1.0, kind="write", overwrite=True,
            pages_per_command=8, interarrival_ns=500_000.0,
            region_pages=1024,
        ),
    )


def _run_session(policy):
    session = SqlSession(
        gen_scale_factor=SF,
        seed=SEED,
        policy=policy,
        tenants=_background(),
        duration_ns=2e7,
    )
    statements = [TPCH_SQL[n] for n in sorted(TPCH_SQL)]
    records = session.run_serial(statements)
    session.finish()
    return records


def test_live_sessions_agree_across_policies(reference):
    by_policy = {p: _run_session(p) for p in ("host", "device", "auto")}
    numbers = sorted(TPCH_SQL)
    for policy, records in by_policy.items():
        assert len(records) == len(numbers)
        for number, record in zip(numbers, records):
            assert record.fingerprint() == reference[number], (
                f"q{number} diverged under policy={policy}"
            )
    # Policies really differ in placement, not just in name.
    assert all(r.device_scans == 0 for r in by_policy["host"])
    assert all(r.host_scans == 0 for r in by_policy["device"])


def test_same_seed_double_run_is_bit_identical():
    first = _run_session("auto")
    second = _run_session("auto")
    for a, b in zip(first, second):
        assert a.fingerprint() == b.fingerprint()
        assert a.latency_ns == b.latency_ns
        assert a.completed_ns == b.completed_ns
        assert [p.site for p in a.placements] == [p.site for p in b.placements]
