"""Tests for the functional interpreter: arithmetic, memory, control, streams."""

import pytest

from repro.config import StreamBufferConfig
from repro.errors import ExecutionError
from repro.isa.interpreter import Interpreter, StepKind
from repro.isa.program import Asm
from repro.mem.memory import FlatMemory
from repro.mem.streambuffer import StreamBufferSet

SB_CFG = StreamBufferConfig(num_streams=4, pages_per_stream=2, page_bytes=256)


def run_program(asm: Asm, mem_size=4096, in_data=None, out_stream=False):
    """Helper: build, attach streams, run to completion."""
    prog = asm.build()
    mem = FlatMemory(mem_size)
    ins = outs = None
    if in_data is not None:
        ins = StreamBufferSet(SB_CFG, "input")
        remaining = {0: bytes(in_data)}

        def refill(stream, needed):
            data = remaining.get(stream.stream_id, b"")
            take = min(len(data), stream.free_space)
            if take:
                stream.push(data[:take])
                remaining[stream.stream_id] = data[take:]
            if not remaining.get(stream.stream_id):
                stream.finish_producing()

        for s in ins.streams:
            s.refill_hook = refill
    if out_stream:
        outs = StreamBufferSet(SB_CFG, "output")
        collected = bytearray()

        def drain(stream, needed):
            data = stream.consume(stream.available)
            if data:
                collected.extend(data)

        for s in outs.streams:
            s.space_hook = drain
        outs.collected = collected  # type: ignore[attr-defined]
    interp = Interpreter(prog, mem, in_streams=ins, out_streams=outs)
    summary = interp.run()
    return interp, summary


def test_arithmetic_sum_loop():
    # sum 1..10 into a0
    a = Asm("sum")
    a.li("a0", 0).li("t0", 1).li("t1", 11)
    a.label("loop")
    a.add("a0", "a0", "t0")
    a.addi("t0", "t0", 1)
    a.bne("t0", "t1", "loop")
    a.halt()
    interp, summary = run_program(a)
    assert interp.regs.read_name("a0") == 55
    assert summary.halted


def test_signed_arithmetic_and_shifts():
    a = Asm("signed")
    a.li("t0", -8)
    a.srai("t1", "t0", 1)  # -4
    a.srli("t2", "t0", 1)  # large positive
    a.li("t3", -6)
    a.alu_r("div", "a0", "t3", "t0")  # -6 / -8 = 0
    a.alu_r("rem", "a1", "t3", "t0")  # -6 rem -8 = -6
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("t1") == 0xFFFFFFFC
    assert interp.regs.read_name("t2") == 0x7FFFFFFC
    assert interp.regs.read_name("a0") == 0
    assert interp.regs.read_name("a1") == 0xFFFFFFFA


def test_division_by_zero_riscv_semantics():
    a = Asm("div0")
    a.li("t0", 42).li("t1", 0)
    a.alu_r("div", "a0", "t0", "t1")
    a.alu_r("divu", "a1", "t0", "t1")
    a.alu_r("rem", "a2", "t0", "t1")
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0xFFFFFFFF
    assert interp.regs.read_name("a1") == 0xFFFFFFFF
    assert interp.regs.read_name("a2") == 42


def test_mul_and_mulh():
    a = Asm("mul")
    a.li("t0", 0x10000).li("t1", 0x10000)
    a.mul("a0", "t0", "t1")  # low 32 bits = 0
    a.alu_r("mulhu", "a1", "t0", "t1")  # high = 1
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0
    assert interp.regs.read_name("a1") == 1


def test_memory_loads_and_stores():
    a = Asm("mem")
    a.li("t0", 100)
    a.li("t1", 0x11223344)
    a.sw("t1", "t0", 0)
    a.lbu("a0", "t0", 0)
    a.lhu("a1", "t0", 2)
    a.lw("a2", "t0", 0)
    a.load("lb", "a3", "t0", 3)  # 0x11 sign-extended (positive)
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0x44
    assert interp.regs.read_name("a1") == 0x1122
    assert interp.regs.read_name("a2") == 0x11223344
    assert interp.regs.read_name("a3") == 0x11


def test_signed_byte_load():
    a = Asm("lb")
    a.li("t0", 0).li("t1", 0x80)
    a.sb("t1", "t0", 0)
    a.load("lb", "a0", "t0", 0)
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0xFFFFFF80  # -128


def test_x0_is_hardwired_zero():
    a = Asm("x0")
    a.li("zero", 55)
    a.mv("a0", "zero")
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0


def test_function_call_and_return():
    a = Asm("call")
    a.li("a0", 5)
    a.call("double")
    a.halt()
    a.label("double")
    a.add("a0", "a0", "a0")
    a.ret()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 10


def test_li_large_constant():
    a = Asm("li")
    a.li("a0", 0xDEADBEEF)
    a.li("a1", -1)
    a.li("a2", 0x12345000)
    a.halt()
    interp, _ = run_program(a)
    assert interp.regs.read_name("a0") == 0xDEADBEEF
    assert interp.regs.read_name("a1") == 0xFFFFFFFF
    assert interp.regs.read_name("a2") == 0x12345000


def test_stream_load_sums_input_until_eos():
    # Sum 4-byte little-endian words from input stream 0.
    a = Asm("ssum")
    a.li("a0", 0)
    a.label("loop")
    a.sload("t0", 0, 4)
    a.add("a0", "a0", "t0")
    a.j("loop")
    data = b"".join(i.to_bytes(4, "little") for i in range(1, 101))
    interp, summary = run_program(a, in_data=data)
    assert interp.regs.read_name("a0") == 5050
    assert not summary.halted  # ended via stream EOS, not halt
    assert summary.finished
    assert summary.stream_bytes_in == 400


def test_stream_store_roundtrip():
    # Copy input stream to output stream byte by byte.
    a = Asm("copy")
    a.label("loop")
    a.sload("t0", 0, 1)
    a.sstore("t0", 0, 1)
    a.j("loop")
    payload = bytes(range(256)) * 3
    interp, summary = run_program(a, in_data=payload, out_stream=True)
    collected = bytes(interp.out_streams.collected) + bytes(
        interp.out_streams[0].consume(interp.out_streams[0].available) or b""
    )
    assert collected == payload
    assert summary.stream_bytes_out == len(payload)


def test_sskip_advances_without_reading():
    a = Asm("skip")
    a.sload("a0", 0, 1)  # reads byte 0
    a.sskip(0, 9)  # skips bytes 1..9
    a.sload("a1", 0, 1)  # reads byte 10
    a.halt()
    interp, _ = run_program(a, in_data=bytes(range(32)))
    assert interp.regs.read_name("a0") == 0
    assert interp.regs.read_name("a1") == 10


def test_savail_and_seos():
    a = Asm("avail")
    a.savail("a0", 0)
    a.sload("t0", 0, 4)
    a.seos("a1", 0)
    a.halt()
    cfgd = b"\x01\x00\x00\x00"
    interp, _ = run_program(a, in_data=cfgd)
    assert interp.regs.read_name("a1") == 1  # 4 bytes consumed, stream dry


def test_unresolvable_stall_raises():
    a = Asm("stall")
    a.sload("t0", 0, 4)
    a.halt()
    prog = a.build()
    ins = StreamBufferSet(SB_CFG, "input")
    ins[0].open()  # active but never fed and never finished
    interp = Interpreter(prog, FlatMemory(64), in_streams=ins)
    with pytest.raises(ExecutionError):
        interp.run()


def test_step_after_finish_raises():
    a = Asm("fin")
    a.halt()
    interp = Interpreter(a.build(), FlatMemory(64))
    interp.run()
    with pytest.raises(ExecutionError):
        interp.step()


def test_max_steps_guard():
    a = Asm("inf")
    a.label("loop")
    a.j("loop")
    interp = Interpreter(a.build(), FlatMemory(64))
    with pytest.raises(ExecutionError):
        interp.run(max_steps=100)


def test_reset_clears_state():
    a = Asm("r")
    a.li("a0", 7).halt()
    interp = Interpreter(a.build(), FlatMemory(64))
    interp.run()
    interp.reset()
    assert interp.pc == 0 and not interp.finished
    assert interp.regs.read_name("a0") == 0
    interp.run()
    assert interp.regs.read_name("a0") == 7


def test_instr_counts_by_kind():
    a = Asm("count")
    a.li("t0", 3)
    a.label("loop")
    a.addi("t0", "t0", -1)
    a.bnez("t0", "loop")
    a.halt()
    _, summary = run_program(a)
    from repro.isa.instructions import InstrKind

    assert summary.instr_counts[InstrKind.BRANCH] == 3
    assert summary.instr_counts[InstrKind.ALU] == 4  # li + 3x addi
    assert summary.instr_counts[InstrKind.SYSTEM] == 1
