"""Property tests on the device model: physical bounds and determinism.

These invariants must hold for *any* kernel/configuration combination —
they are the sanity rails of the whole retiming methodology:

* throughput never exceeds the flash array, the engines, or the DRAM cap;
* results are deterministic (same seed, same numbers, bit for bit);
* completion is at least the compute time and at least the bus time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import all_configs, assasin_sb_config, named_config
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD, simulate_offload

DATA = 8 << 20
KERNELS = ("stat", "scan", "raid4", "filter", "select")


@pytest.mark.parametrize("kernel_name", KERNELS)
@pytest.mark.parametrize("config_name", ("Baseline", "AssasinSp", "AssasinSb"))
def test_physical_bounds(kernel_name, config_name):
    config = named_config(config_name)
    kernel = get_kernel(kernel_name)
    result = simulate_offload(config, kernel, DATA)
    # Flash array bound.
    assert result.throughput_gbps <= config.flash.array_bandwidth_bytes_per_ns + 0.01
    # Engine bound: aggregate core throughput at the sampled CPI.
    per_core = result.core_sample.throughput_bytes_per_ns(config.core.frequency_ghz)
    assert result.throughput_gbps <= config.num_cores * per_core * 1.01
    # DRAM wall bound.
    assert result.throughput_gbps <= result.dram_cap_bytes_per_ns * 1.01
    # Completion at least covers the busiest engine's own completion.
    assert result.completion_ns >= 0.99 * max(result.per_core_completion_ns)
    # Utilisations are sane.
    assert all(0 < u <= 1.001 for u in result.per_core_utilisation)


@pytest.mark.parametrize("kernel_name", ("stat", "raid6"))
def test_determinism(kernel_name):
    kernel_a = get_kernel(kernel_name)
    kernel_b = get_kernel(kernel_name)
    a = simulate_offload(assasin_sb_config(), kernel_a, DATA)
    b = simulate_offload(assasin_sb_config(), kernel_b, DATA)
    assert a.completion_ns == b.completion_ns
    assert a.channel_bytes == b.channel_bytes
    assert a.per_core_completion_ns == b.per_core_completion_ns
    assert a.core_sample.cycles == b.core_sample.cycles


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from(["scan", "stat"]),
    st.integers(min_value=1, max_value=12),
    st.sampled_from([0.0, 0.3, 0.8]),
)
def test_bounds_hold_under_random_shapes(kernel_name, cores, skew):
    config = assasin_sb_config().with_cores(cores)
    kernel = get_kernel(kernel_name)
    device = ComputationalSSD(config, layout_skew=skew)
    result = device.offload(kernel, 4 << 20)
    assert 0 < result.throughput_gbps <= 8.01
    # The heaviest channel physically limits throughput under skew.
    heaviest_share = max(result.channel_bytes) / sum(result.channel_bytes)
    channel_bound = 1.0 / heaviest_share  # GB/s given 1 GB/s per channel
    assert result.throughput_gbps <= channel_bound * 1.02


def test_data_size_invariance():
    """Streaming offload throughput is size-invariant past startup."""
    kernel = get_kernel("scan")
    config = assasin_sb_config()
    small = simulate_offload(config, kernel, 8 << 20)
    large = simulate_offload(config, kernel, 32 << 20)
    assert large.throughput_gbps == pytest.approx(small.throughput_gbps, rel=0.03)


def test_all_configs_produce_results_for_all_primary_kernels():
    """Smoke: the full config x kernel matrix runs without error."""
    for config_name, config in all_configs().items():
        for kernel_name in ("stat", "filter"):
            result = simulate_offload(config, get_kernel(kernel_name), 4 << 20)
            assert result.completion_ns > 0, (config_name, kernel_name)
            assert result.limiter in ("core", "flash", "dram")
