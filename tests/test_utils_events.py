"""Tests for the discrete-event simulation kernel (scheduling semantics)."""

import pytest

from repro.sim import Simulator


def test_events_run_in_time_order():
    q = Simulator()
    fired = []
    q.schedule(30, lambda: fired.append("c"))
    q.schedule(10, lambda: fired.append("a"))
    q.schedule(20, lambda: fired.append("b"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 30


def test_ties_break_by_insertion_order():
    q = Simulator()
    fired = []
    for name in "abc":
        q.schedule(5, lambda n=name: fired.append(n))
    q.run()
    assert fired == ["a", "b", "c"]


def test_events_can_schedule_more_events():
    q = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            q.schedule(1, lambda: chain(n + 1))

    q.schedule(0, lambda: chain(0))
    q.run()
    assert fired == [0, 1, 2, 3]
    assert q.now == 3


def test_run_until_stops_and_advances_clock():
    q = Simulator()
    fired = []
    q.schedule(10, lambda: fired.append(1))
    q.schedule(100, lambda: fired.append(2))
    q.run(until_ns=50)
    assert fired == [1]
    assert q.now == 50
    q.run()
    assert fired == [1, 2]


def test_cannot_schedule_into_the_past():
    q = Simulator()
    q.schedule(10, lambda: None)
    q.run()
    with pytest.raises(ValueError):
        q.schedule(-1, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_at(q.now - 5, lambda: None)


def test_len_and_bool():
    q = Simulator()
    assert not q
    q.schedule(1, lambda: None)
    assert q and len(q) == 1


def test_interleaved_schedule_and_schedule_at_equal_timestamps():
    # Mixing relative and absolute scheduling at one timestamp must still
    # fire in global insertion order — the determinism the serving layer
    # and firmware rely on.
    q = Simulator()
    fired = []
    q.schedule(50, lambda: fired.append("rel-a"))
    q.schedule_at(50, lambda: fired.append("abs-b"))
    q.schedule(50, lambda: fired.append("rel-c"))
    q.schedule_at(50, lambda: fired.append("abs-d"))
    q.run()
    assert fired == ["rel-a", "abs-b", "rel-c", "abs-d"]
    assert q.now == 50


def test_equal_timestamp_events_scheduled_from_actions_run_last():
    q = Simulator()
    fired = []
    q.schedule_at(10, lambda: (fired.append("first"), q.schedule(0, lambda: fired.append("nested"))))
    q.schedule_at(10, lambda: fired.append("second"))
    q.run()
    # The nested zero-delay event lands at t=10 too, but after every event
    # inserted earlier (seq-order tie break).
    assert fired == ["first", "second", "nested"]


def test_identical_schedules_replay_identically():
    def drive():
        q = Simulator()
        fired = []
        q.schedule(5, lambda: fired.append("a"))
        q.schedule_at(5, lambda: fired.append("b"))
        q.schedule(3, lambda: q.schedule(2, lambda: fired.append("c")))
        q.run()
        return fired, q.now, q.processed

    assert drive() == drive()


def test_run_until_exactly_at_event_time_fires_event():
    q = Simulator()
    fired = []
    q.schedule(10, lambda: fired.append(1))
    q.schedule(20, lambda: fired.append(2))
    q.run(until_ns=10)
    assert fired == [1]
    assert q.now == 10


def test_run_until_advances_clock_on_empty_queue():
    q = Simulator()
    q.run(until_ns=40)
    assert q.now == 40
    # A later run with an earlier bound must not rewind the clock.
    q.run(until_ns=15)
    assert q.now == 40


def test_run_until_advances_clock_past_last_event():
    q = Simulator()
    q.schedule(10, lambda: None)
    q.run(until_ns=100)
    assert q.now == 100
    assert q.processed == 1


def test_run_max_events_budget():
    q = Simulator()
    fired = []
    for i in range(5):
        q.schedule(i + 1, lambda i=i: fired.append(i))
    q.run(max_events=2)
    assert fired == [0, 1]
    assert len(q) == 3
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_labels_surface_as_tracer_instants():
    from repro.telemetry import Tracer

    tracer = Tracer()
    q = Simulator(tracer=tracer)
    q.schedule(10, lambda: None, label="arrive:hot")
    q.schedule_at(25, lambda: None, label="complete:hot")
    q.run()
    names = [name for _, ph, name in tracer.events_on("scheduler") if ph == "i"]
    assert names == ["arrive:hot", "complete:hot"]


def test_unlabeled_schedule_falls_back_to_anonymous_instant():
    from repro.telemetry import Tracer

    tracer = Tracer()
    q = Simulator(tracer=tracer)
    q.schedule(5, lambda: None)
    q.run()
    assert [name for _, _, name in tracer.events_on("scheduler")] == ["event"]


def test_instants_fire_only_when_events_run():
    from repro.telemetry import Tracer

    tracer = Tracer()
    q = Simulator(tracer=tracer)
    q.schedule(10, lambda: None, label="early")
    q.schedule(50, lambda: None, label="late")
    q.run(until_ns=20)
    assert [name for _, _, name in tracer.events_on("scheduler")] == ["early"]
