"""Tests for the discrete-event queue."""

import pytest

from repro.utils.events import EventQueue


def test_events_run_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(30, lambda: fired.append("c"))
    q.schedule(10, lambda: fired.append("a"))
    q.schedule(20, lambda: fired.append("b"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 30


def test_ties_break_by_insertion_order():
    q = EventQueue()
    fired = []
    for name in "abc":
        q.schedule(5, lambda n=name: fired.append(n))
    q.run()
    assert fired == ["a", "b", "c"]


def test_events_can_schedule_more_events():
    q = EventQueue()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            q.schedule(1, lambda: chain(n + 1))

    q.schedule(0, lambda: chain(0))
    q.run()
    assert fired == [0, 1, 2, 3]
    assert q.now == 3


def test_run_until_stops_and_advances_clock():
    q = EventQueue()
    fired = []
    q.schedule(10, lambda: fired.append(1))
    q.schedule(100, lambda: fired.append(2))
    q.run(until_ns=50)
    assert fired == [1]
    assert q.now == 50
    q.run()
    assert fired == [1, 2]


def test_cannot_schedule_into_the_past():
    q = EventQueue()
    q.schedule(10, lambda: None)
    q.run()
    with pytest.raises(ValueError):
        q.schedule(-1, lambda: None)
    with pytest.raises(ValueError):
        q.schedule_at(q.now - 5, lambda: None)


def test_len_and_bool():
    q = EventQueue()
    assert not q
    q.schedule(1, lambda: None)
    assert q and len(q) == 1
