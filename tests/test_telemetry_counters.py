"""Tests for the counter registry primitives (repro.telemetry.counters)."""

import collections

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.counters import (
    Counter,
    CounterGroup,
    CounterRegistry,
    Gauge,
    Histogram,
)
from repro.utils.stats import percentile


# -- primitives ---------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    c = Counter("pages")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_high_water_mark():
    g = Gauge("depth")
    g.set(4)
    g.set_max(2)
    assert g.value == 4
    g.set_max(9)
    assert g.value == 9
    g.set(1)
    assert g.value == 1


def test_histogram_percentiles_match_shared_helper():
    h = Histogram("latency_ns")
    samples = [float(v) for v in (5, 1, 9, 3, 7, 2, 8, 4, 6, 10)]
    for v in samples:
        h.observe(v)
    for pct in (50.0, 95.0, 99.0):
        assert h.percentile(pct) == percentile(samples, pct)
    assert h.count == 10
    assert h.mean == sum(samples) / 10
    assert h.minimum == 1 and h.maximum == 10


def test_empty_histogram_is_zero_not_error():
    h = Histogram("empty")
    assert h.percentile(99.0) == 0.0
    assert h.mean == 0.0
    assert h.count == 0


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_returns_same_object():
    reg = CounterRegistry()
    assert reg.counter("a.b") is reg.counter("a.b")
    assert reg.histogram("a.h") is reg.histogram("a.h")


def test_registry_rejects_kind_clash():
    reg = CounterRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_registry_snapshot_summarises_histograms():
    reg = CounterRegistry()
    reg.counter("flash.reads").inc(3)
    h = reg.histogram("serve.t.latency_ns")
    h.extend([10.0, 20.0, 30.0])
    snap = reg.snapshot()
    assert snap["flash.reads"] == 3
    assert snap["serve.t.latency_ns.count"] == 3
    assert snap["serve.t.latency_ns.sum"] == 60.0
    assert snap["serve.t.latency_ns.p50"] == 20.0
    assert "flash.reads" in reg.render()


# -- dict-style group facade --------------------------------------------------


def test_counter_group_keeps_tally_dict_shape():
    reg = CounterRegistry()
    group = reg.group("recovery")
    group["read_retries"] += 1
    group["read_retries"] += 1
    group["remapped_pages"] += 1
    assert group["read_retries"] == 2
    assert isinstance(group["read_retries"], int)
    assert group.keys() == ["read_retries", "remapped_pages"]
    # The values live in the shared registry under the prefix.
    assert reg.counter("recovery.read_retries").value == 2


def test_counter_group_behaves_as_mapping():
    reg = CounterRegistry()
    group = reg.group("faults")
    group["noise"] += 3
    group["bursts"] += 1
    assert dict(group) == {"bursts": 1, "noise": 3}
    # collections.Counter must merge by value, not count keys as elements.
    merged = collections.Counter({"noise": 1})
    merged.update(group)
    assert merged == collections.Counter({"noise": 4, "bursts": 1})


def test_counter_group_rejects_decrease():
    group = CounterRegistry().group("g")
    group["n"] += 5
    with pytest.raises(ValueError):
        group["n"] = 2


# -- the bundle ---------------------------------------------------------------


def test_default_telemetry_is_disabled_with_fresh_registry():
    a, b = Telemetry(), Telemetry()
    assert not a.enabled and not b.enabled
    # The disabled tracer is shared (stateless); registries never are.
    assert a.tracer is b.tracer
    assert a.counters is not b.counters
    a.counters.counter("x").inc()
    assert b.counters.get("x") is None


def test_tracing_bundle_is_enabled():
    t = Telemetry.tracing("proc")
    assert t.enabled
    assert t.tracer.process_name == "proc"
