"""SQL lexer/parser tests: syntax coverage and error behaviour."""

import pytest

from repro.errors import SqlError
from repro.sql.ast_nodes import (
    BinaryOp,
    CaseExpr,
    Column,
    FuncCall,
    InList,
    Like,
    Literal,
    ScalarSubquery,
    Select,
    Star,
    UnionAll,
)
from repro.sql.parser import parse_sql, split_statements


def test_parses_minimal_select():
    stmt = parse_sql("SELECT l_quantity FROM lineitem")
    assert isinstance(stmt, Select)
    assert stmt.source.name == "lineitem"
    assert len(stmt.items) == 1
    assert isinstance(stmt.items[0].expr, Column)
    assert stmt.items[0].expr.name == "l_quantity"
    assert stmt.where is None and not stmt.joins


def test_keywords_and_identifiers_are_case_insensitive():
    lower = parse_sql("select L_QUANTITY from LINEITEM where l_tax < 0.05")
    assert lower.source.name == "lineitem"
    assert lower.items[0].expr.name == "l_quantity"


def test_parses_where_predicates_and_precedence():
    stmt = parse_sql(
        "SELECT l_quantity FROM lineitem "
        "WHERE l_discount >= 0.05 AND l_quantity < 24 OR l_tax = 0"
    )
    # OR binds loosest: (a AND b) OR c.
    assert isinstance(stmt.where, BinaryOp) and stmt.where.op == "or"
    assert isinstance(stmt.where.left, BinaryOp) and stmt.where.left.op == "and"


def test_parses_arithmetic_with_precedence():
    stmt = parse_sql("SELECT l_extendedprice * (1 - l_discount) AS rev FROM lineitem")
    expr = stmt.items[0].expr
    assert isinstance(expr, BinaryOp) and expr.op == "*"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "-"
    assert stmt.items[0].alias == "rev"


def test_parses_aggregates_group_order_limit():
    stmt = parse_sql(
        "SELECT l_returnflag, SUM(l_quantity) AS qty FROM lineitem "
        "GROUP BY l_returnflag HAVING SUM(l_quantity) > 10 "
        "ORDER BY qty DESC LIMIT 5"
    )
    assert stmt.group_by == ["l_returnflag"]
    agg = stmt.items[1].expr
    assert isinstance(agg, FuncCall) and agg.name == "sum"
    assert stmt.having is not None
    assert stmt.order_by[0].column == "qty" and stmt.order_by[0].descending
    assert stmt.limit == 5


def test_parses_count_star_and_distinct():
    stmt = parse_sql("SELECT DISTINCT COUNT(*) AS n FROM nation")
    assert stmt.distinct
    expr = stmt.items[0].expr
    assert isinstance(expr, FuncCall) and expr.name == "count"
    assert isinstance(expr.args[0], Star)


def test_parses_joins():
    stmt = parse_sql(
        "SELECT o_orderkey FROM orders "
        "JOIN customer ON o_custkey = c_custkey "
        "SEMI JOIN lineitem ON o_orderkey = l_orderkey"
    )
    kinds = [j.kind for j in stmt.joins]
    assert kinds == ["inner", "semi"]
    assert stmt.joins[0].left_key == "o_custkey"
    assert stmt.joins[0].right_key == "c_custkey"


def test_parses_in_like_and_range():
    stmt = parse_sql(
        "SELECT l_orderkey FROM lineitem WHERE "
        "l_shipmode IN ('MAIL', 'SHIP') AND l_shipinstruct LIKE 'DELIVER%' "
        "AND l_quantity >= 1 AND l_quantity <= 11"
    )
    conjuncts = []
    stack = [stmt.where]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "and":
            stack.extend([node.left, node.right])
        else:
            conjuncts.append(node)
    assert any(isinstance(c, InList) for c in conjuncts)
    assert any(isinstance(c, Like) for c in conjuncts)
    ops = [c.op for c in conjuncts if isinstance(c, BinaryOp)]
    assert ">=" in ops and "<=" in ops


def test_parses_case_expression():
    stmt = parse_sql(
        "SELECT SUM(CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) "
        "AS hi FROM orders"
    )
    case = stmt.items[0].expr.args[0]
    assert isinstance(case, CaseExpr)
    assert len(case.whens) == 1
    assert isinstance(case.default, Literal)


def test_parses_scalar_subquery():
    stmt = parse_sql(
        "SELECT l_orderkey FROM lineitem "
        "WHERE l_quantity > (SELECT AVG(l_quantity) AS a FROM lineitem)"
    )
    assert isinstance(stmt.where.right, ScalarSubquery)


def test_parses_union_all():
    stmt = parse_sql(
        "SELECT n_name FROM nation UNION ALL SELECT n_name FROM nation"
    )
    assert isinstance(stmt, UnionAll)
    assert len(stmt.parts) == 2


def test_rejects_garbage():
    with pytest.raises(SqlError):
        parse_sql("SELEKT * FROM lineitem")
    with pytest.raises(SqlError):
        parse_sql("SELECT FROM lineitem")
    with pytest.raises(SqlError):
        parse_sql("SELECT l_quantity FROM lineitem WHERE")
    with pytest.raises(SqlError):
        parse_sql("")


def test_rejects_trailing_tokens():
    with pytest.raises(SqlError):
        parse_sql("SELECT n_name FROM nation extra tokens here")


def test_split_statements_respects_string_literals():
    parts = split_statements(
        "SELECT 'a;b' AS x FROM nation; \n\n SELECT n_name FROM nation ;"
    )
    assert len(parts) == 2
    assert "'a;b'" in parts[0]
    assert parts[1].startswith("SELECT n_name")


def test_split_statements_keeps_trailing_unterminated():
    parts = split_statements("SELECT n_name FROM nation")
    assert parts == ["SELECT n_name FROM nation"]
