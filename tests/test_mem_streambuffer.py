"""Tests for stream buffers, including pointer invariants via hypothesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StreamBufferConfig
from repro.errors import StreamError
from repro.mem.streambuffer import StreamBuffer, StreamBufferSet, StreamState

CFG = StreamBufferConfig(num_streams=8, pages_per_stream=2, page_bytes=256)


def make_stream():
    return StreamBuffer(CFG)


def test_push_then_consume_fifo_order():
    s = make_stream()
    s.push(bytes(range(100)))
    assert s.consume(10) == bytes(range(10))
    assert s.consume(90) == bytes(range(10, 100))
    assert s.available == 0


def test_capacity_is_p_pages():
    s = make_stream()
    assert s.capacity == 512
    s.push(b"x" * 512)
    with pytest.raises(StreamError):
        s.push(b"y")
    assert s.overflow_rejects == 1


def test_wraparound_preserves_data():
    s = make_stream()
    s.push(b"a" * 400)
    assert s.consume(400) == b"a" * 400
    payload = bytes((i * 7) & 0xFF for i in range(300))  # wraps the 512B ring
    s.push(payload)
    assert s.consume(300) == payload


def test_csr_views_are_modulo_capacity():
    s = make_stream()
    s.push(b"x" * 500)
    s.consume(500)
    s.push(b"y" * 100)
    assert s.head_csr == 500 % 512
    assert s.tail_csr == 600 % 512
    assert s.head == 500 and s.tail == 600


def test_underflow_returns_none_and_counts():
    s = make_stream()
    s.push(b"ab")
    assert s.consume(3) is None
    assert s.underflows == 1
    assert s.consume(2) == b"ab"


def test_exhausted_semantics():
    s = make_stream()
    s.push(b"abc")
    assert not s.exhausted
    s.finish_producing()
    assert s.state is StreamState.DRAINING
    assert not s.exhausted  # bytes remain drainable
    s.consume(3)
    assert s.exhausted


def test_push_after_close_rejected():
    s = make_stream()
    s.close()
    with pytest.raises(StreamError):
        s.push(b"x")


def test_refill_hook_supplies_data():
    s = make_stream()
    calls = []

    def refill(stream, needed):
        calls.append(needed)
        stream.push(b"z" * 64)

    s.refill_hook = refill
    assert s.consume(10) == b"z" * 10
    assert calls == [10]


def test_drain_page_full_and_partial():
    s = make_stream()
    s.push(b"p" * 256 + b"q" * 100)
    assert s.drain_page() == b"p" * 256
    assert s.drain_page() is None  # partial not drainable while ACTIVE
    s.finish_producing()
    assert s.drain_page() == b"q" * 100


def test_peek_does_not_consume():
    s = make_stream()
    s.push(b"hello world")
    assert s.peek(5) == b"hello"
    assert s.peek(5) == b"hello"
    assert s.consume(5) == b"hello"


def test_peek_validates_size():
    s = make_stream()
    with pytest.raises(StreamError):
        s.peek(0)
    with pytest.raises(StreamError):
        s.peek(s.capacity + 1)


def test_stream_set_indexing():
    sbs = StreamBufferSet(CFG, "input")
    assert len(sbs) == 8
    assert sbs[0].stream_id == 0 and sbs[7].stream_id == 7
    with pytest.raises(StreamError):
        sbs[8]
    with pytest.raises(StreamError):
        StreamBufferSet(CFG, "sideways")


def test_stream_set_total_available():
    sbs = StreamBufferSet(CFG, "input")
    sbs[0].push(b"x" * 10)
    sbs[3].push(b"y" * 20)
    assert sbs.total_available == 30


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "consume"]), st.integers(min_value=1, max_value=300)),
        min_size=1,
        max_size=60,
    )
)
def test_pointer_invariants_under_random_ops(ops):
    """head <= tail, available in [0, capacity], data is FIFO-correct."""
    s = make_stream()
    expected = bytearray()
    written = 0
    for op, size in ops:
        if op == "push":
            if s.can_push(size):
                payload = bytes((written + i) & 0xFF for i in range(size))
                s.push(payload)
                expected.extend(payload)
                written += size
        else:
            got = s.consume(size)
            if got is not None:
                assert got == bytes(expected[:size])
                del expected[:size]
        assert 0 <= s.available <= s.capacity
        assert s.head <= s.tail
        assert s.available == len(expected)
