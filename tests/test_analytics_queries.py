"""Tests for datagen integrity and the 22 TPC-H queries."""

import pytest

from repro.analytics.datagen import generate_database
from repro.analytics.queries import QUERIES, query_meta, query_numbers, run_query
from repro.analytics.schema import DATE_DAYS, SCHEMA, date_to_day
from repro.errors import AnalyticsError


@pytest.fixture(scope="module")
def db():
    return generate_database(scale_factor=0.01, seed=11)


def test_generation_is_deterministic():
    a = generate_database(0.002, seed=3)
    b = generate_database(0.002, seed=3)
    assert a["lineitem"].columns == b["lineitem"].columns


def test_row_counts_scale(db):
    assert db["region"].nrows == 5 and db["nation"].nrows == 25
    assert db["supplier"].nrows == SCHEMA["supplier"].rows_at(0.01)
    assert db["orders"].nrows == SCHEMA["orders"].rows_at(0.01)
    # lineitem averages ~4 lines per order
    assert 2 * db["orders"].nrows < db["lineitem"].nrows < 7.2 * db["orders"].nrows


def test_referential_integrity(db):
    custkeys = set(db["customer"].column("c_custkey"))
    assert set(db["orders"].column("o_custkey")) <= custkeys
    orderkeys = set(db["orders"].column("o_orderkey"))
    assert set(db["lineitem"].column("l_orderkey")) <= orderkeys
    partkeys = set(db["part"].column("p_partkey"))
    assert set(db["partsupp"].column("ps_partkey")) <= partkeys


def test_date_domain(db):
    ship = db["lineitem"].column("l_shipdate")
    assert min(ship) >= 0 and max(ship) < DATE_DAYS


def test_date_to_day_validation():
    assert date_to_day(1992, 1, 1) == 0
    assert date_to_day(1993, 1, 1) == 360
    with pytest.raises(AnalyticsError):
        date_to_day(1991, 1, 1)


def test_all_22_queries_run(db):
    for n in query_numbers():
        result = run_query(db, n)
        assert result.nrows >= 0  # executes without error
    assert len(QUERIES) == 22


def test_unknown_query_rejected(db):
    with pytest.raises(AnalyticsError):
        run_query(db, 23)
    with pytest.raises(AnalyticsError):
        query_meta(0)


def test_q1_aggregates_are_consistent(db):
    out = run_query(db, 1)
    cutoff_rows = sum(
        1 for d in db["lineitem"].column("l_shipdate") if d <= date_to_day(1998, 9, 2)
    )
    assert sum(out.column("count_order")) == cutoff_rows
    for row in out.iter_rows():
        assert row["avg_qty"] == pytest.approx(row["sum_qty"] / row["count_order"])


def test_q6_matches_bruteforce(db):
    out = run_query(db, 6)
    lo = date_to_day(1994, 1, 1)
    expected = sum(
        p * d / 100.0
        for p, d, q, s in zip(
            db["lineitem"].column("l_extendedprice"),
            db["lineitem"].column("l_discount"),
            db["lineitem"].column("l_quantity"),
            db["lineitem"].column("l_shipdate"),
        )
        if lo <= s < lo + 360 and 5 <= d <= 7 and q < 24
    )
    assert out.column("revenue")[0] == pytest.approx(expected)


def test_q3_sorted_by_revenue_desc(db):
    out = run_query(db, 3)
    revenues = out.column("revenue")
    assert revenues == sorted(revenues, reverse=True)
    assert out.nrows <= 10


def test_q4_counts_bounded_by_orders(db):
    out = run_query(db, 4)
    assert sum(out.column("order_count")) <= db["orders"].nrows


def test_q12_priority_split_consistent(db):
    out = run_query(db, 12)
    for row in out.iter_rows():
        assert row["high_line_count"] >= 0 and row["low_line_count"] >= 0
        assert row["l_shipmode"] in ("MAIL", "SHIP")


def test_q13_distribution_covers_all_customers(db):
    out = run_query(db, 13)
    assert sum(out.column("custdist")) == db["customer"].nrows


def test_q22_customers_without_orders(db):
    out = run_query(db, 22)
    # Every counted customer truly has no orders (verified via the engine).
    assert all(c >= 0 for c in out.column("numcust"))


def test_meta_tables_exist():
    for n in query_numbers():
        meta = query_meta(n)
        for table in meta.tables:
            assert table in SCHEMA
        assert 0 < meta.lineitem_row_selectivity <= 1
        assert 0 < meta.lineitem_col_fraction <= 1


def test_meta_lineitem_selectivity_close_to_measured(db):
    # Q6's pushed predicate selectivity should match the meta estimate.
    meta = query_meta(6)
    lo = date_to_day(1994, 1, 1)
    rows = db["lineitem"]
    selected = sum(
        1
        for d, q, s in zip(
            rows.column("l_discount"), rows.column("l_quantity"), rows.column("l_shipdate")
        )
        if lo <= s < lo + 360 and 5 <= d <= 7 and q < 24
    )
    measured = selected / rows.nrows
    assert measured == pytest.approx(meta.lineitem_row_selectivity, rel=0.5)


def test_q5_revenue_consistent_with_bruteforce(db):
    """Q5's grouped revenue must match a direct nested-loop computation."""
    out = run_query(db, 5)
    lo = date_to_day(1994, 1, 1)
    # Brute force over the raw tables.
    asia_nations = {
        nk
        for nk, rk in zip(db["nation"].column("n_nationkey"), db["nation"].column("n_regionkey"))
        if db["region"].column("r_name")[rk] == "ASIA"
    }
    cust_nation = dict(zip(db["customer"].column("c_custkey"), db["customer"].column("c_nationkey")))
    order_cust = dict(zip(db["orders"].column("o_orderkey"), db["orders"].column("o_custkey")))
    order_date = dict(zip(db["orders"].column("o_orderkey"), db["orders"].column("o_orderdate")))
    supp_nation = dict(zip(db["supplier"].column("s_suppkey"), db["supplier"].column("s_nationkey")))
    nation_name = dict(zip(db["nation"].column("n_nationkey"), db["nation"].column("n_name")))
    expected = {}
    li = db["lineitem"]
    for ok, sk, price, disc in zip(
        li.column("l_orderkey"), li.column("l_suppkey"),
        li.column("l_extendedprice"), li.column("l_discount"),
    ):
        ck = order_cust[ok]
        cn = cust_nation[ck]
        if cn not in asia_nations or supp_nation[sk] != cn:
            continue
        if not lo <= order_date[ok] < lo + 360:
            continue
        name = nation_name[cn]
        expected[name] = expected.get(name, 0.0) + price * (100 - disc) / 100.0
    got = dict(zip(out.column("n_name"), out.column("revenue")))
    assert set(got) == set(expected)
    for name in expected:
        assert got[name] == pytest.approx(expected[name])


def test_q14_promo_fraction_bruteforce(db):
    out = run_query(db, 14)
    lo = date_to_day(1995, 9, 1)
    part_type = dict(zip(db["part"].column("p_partkey"), db["part"].column("p_type")))
    li = db["lineitem"]
    promo = total = 0.0
    for pk, price, disc, ship in zip(
        li.column("l_partkey"), li.column("l_extendedprice"),
        li.column("l_discount"), li.column("l_shipdate"),
    ):
        if not lo <= ship < lo + 30:
            continue
        rev = price * (100 - disc) / 100.0
        total += rev
        if part_type[pk].startswith("PROMO"):
            promo += rev
    expected = 100.0 * promo / total if total else 0.0
    assert out.column("promo_revenue")[0] == pytest.approx(expected)


def test_q19_revenue_nonnegative_and_selective(db):
    out = run_query(db, 19)
    assert out.nrows == 1
    assert out.column("revenue")[0] >= 0.0


def test_q10_top_customers_ordering(db):
    out = run_query(db, 10)
    revenues = out.column("revenue")
    assert revenues == sorted(revenues, reverse=True)
    assert out.nrows <= 20


def test_query_stats_populated(db):
    """Every query execution leaves measurable operator work for costing."""
    for n in (1, 3, 6, 13):
        result = run_query(db, n)
        stats = result.stats
        total_work = (
            stats.rows_scanned + stats.rows_joined + stats.rows_aggregated + stats.rows_sorted
        )
        assert total_work > 0, n
