"""Tests for the flash array timing and state model."""

import pytest

from repro.config import FlashConfig
from repro.errors import FlashError
from repro.flash.array import FlashArray, PhysicalPageAddress
from repro.flash.chip import FlashChip, PageState
from repro.flash.onfi import ONFI_PROFILES

CFG = FlashConfig(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=2,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=8,
)


def ppa(channel=0, chip=0, die=0, plane=0, block=0, page=0):
    return PhysicalPageAddress(channel, chip, die, plane, block, page)


def test_flat_index_roundtrip():
    for idx in range(CFG.total_pages):
        assert PhysicalPageAddress.from_flat(idx, CFG).flat_index(CFG) == idx


def test_flat_index_out_of_range():
    with pytest.raises(FlashError):
        PhysicalPageAddress.from_flat(CFG.total_pages, CFG)


def test_read_timing_tr_plus_transfer():
    array = FlashArray(CFG)
    rec = array.service_read(ppa(), issue_ns=0.0)
    assert rec.array_done_ns == pytest.approx(CFG.read_latency_ns)
    assert rec.done_ns == pytest.approx(CFG.read_latency_ns + CFG.page_transfer_ns)


def test_same_die_reads_serialise():
    array = FlashArray(CFG)
    r1 = array.service_read(ppa(page=0), 0.0)
    r2 = array.service_read(ppa(page=1), 0.0)
    assert r2.array_done_ns >= r1.array_done_ns + CFG.read_latency_ns


def test_different_dies_overlap_tr():
    array = FlashArray(CFG)
    r1 = array.service_read(ppa(die=0), 0.0)
    r2 = array.service_read(ppa(die=1), 0.0)
    # Array reads overlap; only the channel transfers serialise.
    assert r1.array_done_ns == pytest.approx(r2.array_done_ns)
    assert r2.done_ns == pytest.approx(r1.done_ns + CFG.page_transfer_ns)


def test_different_channels_fully_parallel():
    array = FlashArray(CFG)
    r1 = array.service_read(ppa(channel=0), 0.0)
    r2 = array.service_read(ppa(channel=1), 0.0)
    assert r1.done_ns == pytest.approx(r2.done_ns)


def test_channel_bandwidth_bound_on_streaming():
    array = FlashArray(CFG)
    # Stream many pages from alternating dies of one channel: throughput
    # should approach the channel's 1 GB/s.
    last = 0.0
    n = 64
    for i in range(n):
        rec = array.service_read(ppa(die=i % 2, chip=(i // 2) % 2, page=(i // 4) % 8, block=(i // 32) % 4), 0.0)
        last = max(last, rec.done_ns)
    achieved = n * CFG.page_bytes / last
    assert achieved >= 0.9 * CFG.channel_bandwidth_bytes_per_ns


def test_write_requires_erased_page():
    array = FlashArray(CFG)
    target = ppa(block=1, page=0)
    array.service_write(target, 0.0, data=b"abc")
    with pytest.raises(FlashError):
        array.service_write(target, 0.0, data=b"again")


def test_erase_resets_pages_and_counts_wear():
    array = FlashArray(CFG)
    target = ppa(block=2, page=3)
    array.service_write(target, 0.0, data=b"x")
    chip = array.chips[0][0]
    assert chip.page_state(0, 0, 2, 3) is PageState.PROGRAMMED
    array.erase(target, 1_000_000.0)
    assert chip.page_state(0, 0, 2, 3) is PageState.ERASED
    assert chip.erase_counts[(0, 0, 2)] == 1
    assert chip.read_data(0, 0, 2, 3) is None


def test_functional_data_roundtrip():
    array = FlashArray(CFG)
    payload = bytes(range(64))
    array.service_write(ppa(block=3), 0.0, data=payload)
    assert array.chips[0][0].read_data(0, 0, 3, 0) == payload


def test_page_data_size_checked():
    chip = FlashChip(CFG, 0, 0)
    with pytest.raises(FlashError):
        chip.start_program(0, 0, 0, 0, 0.0, data=b"x" * (CFG.page_bytes + 1))


def test_geometry_bounds_checked():
    chip = FlashChip(CFG, 0, 0)
    with pytest.raises(FlashError):
        chip.start_read(0, 0, 0, CFG.pages_per_block, 0.0)
    with pytest.raises(FlashError):
        chip.start_read(CFG.dies_per_chip, 0, 0, 0, 0.0)


def test_program_latency_dominates_write():
    array = FlashArray(CFG)
    rec = array.service_write(ppa(block=1), 0.0)
    assert rec.done_ns == pytest.approx(CFG.page_transfer_ns + CFG.program_latency_ns)


def test_channel_stats():
    array = FlashArray(CFG)
    array.service_read(ppa(), 0.0)
    array.service_read(ppa(channel=1), 0.0)
    assert array.channel_bytes() == [CFG.page_bytes, CFG.page_bytes]
    assert array.reads_served == 2
    utils = array.channel_utilisations(array.horizon_ns)
    assert all(0 < u <= 1 for u in utils)


def test_onfi_profiles():
    paper = ONFI_PROFILES["paper"]
    assert paper.transfer_bytes_per_ns == 1.0
    assert paper.page_transfer_ns(4096) == pytest.approx(4096.0)
    assert ONFI_PROFILES["onfi4.2-16b"].transfer_bytes_per_ns == pytest.approx(3.2)
