"""Property tests for GF(2^8) arithmetic and RAID-6 parity algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.gf256 import (
    GF_EXP,
    GF_LOG,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul2_word,
    gf_pow,
    raid6_pq,
    raid6_recover_two_data,
)

byte = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_tables_consistent():
    for x in range(1, 256):
        assert GF_EXP[GF_LOG[x]] == x


def test_mul_identities():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0
        assert gf_mul(0, a) == 0


@given(byte, byte)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(byte, byte, byte)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(byte, byte, byte)
def test_mul_distributes_over_xor(a, b, c):
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


@given(nonzero)
def test_inverse(a):
    assert gf_mul(a, gf_inv(a)) == 1


def test_inv_zero_raises():
    with pytest.raises(KernelError):
        gf_inv(0)


@given(nonzero, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert gf_mul(gf_div(a, b), b) == a


@given(byte, st.integers(min_value=0, max_value=600))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    for _ in range(n):
        expected = gf_mul(expected, a)
    assert gf_pow(a, n) == expected


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_swar_mul2_matches_bytewise(word):
    swar = gf_mul2_word(word)
    for lane in range(4):
        b = (word >> (8 * lane)) & 0xFF
        assert (swar >> (8 * lane)) & 0xFF == gf_mul(b, 2)


def test_raid6_pq_known_small():
    p, q = raid6_pq([b"\x01", b"\x02", b"\x04"])
    assert p == b"\x07"
    # Q = D0 ^ 2*D1 ^ 4*D2 = 1 ^ 4 ^ 16 = 21
    assert q == bytes([1 ^ gf_mul(2, 2) ^ gf_mul(4, 4)])


def test_raid6_rejects_unequal_stripes():
    with pytest.raises(KernelError):
        raid6_pq([b"ab", b"c"])
    with pytest.raises(KernelError):
        raid6_pq([])


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=1_000_000),
)
def test_raid6_recovers_any_two_lost_stripes(k, length, seed):
    import random

    rng = random.Random(seed)
    stripes = [rng.randbytes(length) for _ in range(k)]
    p, q = raid6_pq(stripes)
    x, y = rng.sample(range(k), 2)
    if x > y:
        x, y = y, x
    survivors = [s if i not in (x, y) else b"" for i, s in enumerate(stripes)]
    dx, dy = raid6_recover_two_data(survivors, p, q, (x, y))
    assert dx == stripes[x]
    assert dy == stripes[y]


def test_recover_rejects_same_index():
    with pytest.raises(KernelError):
        raid6_recover_two_data([b"", b""], b"\x00", b"\x00", (1, 1))
