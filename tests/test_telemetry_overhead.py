"""Telemetry overhead guard: instrumentation must not change results.

The fingerprints below were captured with the default NullTracer (same
configs, same seeds). A run with a recording Tracer must reproduce them
bit for bit: the tracer only observes, it never perturbs timing, ordering,
or tallies.

Re-captured at the integer-ns kernel migration (`repro.sim`): command
counts, byte totals, fault tallies, and the dispatched-event count are
unchanged from the pre-telemetry floats; per-tenant latencies moved by
less than one nanosecond of rounding (e.g. hot mean 81811.562039 →
81811.0), within the refactor's documented ≤0.5% tolerance.

Re-captured again when the host link and channel buses gained DMA-style
backfill (idle gaps ahead of far-future bookings become usable): command
counts and byte totals are unchanged, read-heavy latencies dropped (e.g.
reader mean 138121.6 → 96306.3) because reads no longer queue behind
transfers whose data is not ready yet.
"""

from repro.config import FaultConfig, ServeConfig, named_config
from repro.faults.campaign import run_campaign
from repro.serve import default_tenants
from repro.serve.scheduler import ServingLayer
from repro.ssd.device import ComputationalSSD
from repro.telemetry import Telemetry

SERVE_DURATION_NS = 300_000.0
SERVE_SEED = 42

# AssasinSb, default_tenants(), ServeConfig(), duration 300 us, seed 42.
SERVE_FP = (
    ("hot", 13, 13, 0, 425984, 0, 82707.461538, 100151.0, 0, 0, 0, 0),
    ("batch", 11, 11, 0, 720896, 0, 118152.545455, 148995.0, 0, 0, 0, 0),
    ("reader", 19, 19, 0, 311296, 311296, 96306.315789, 181643.0, 0, 0, 0, 0),
    405458,
    (),
    0,
)
SERVE_EVENTS_PROCESSED = 86

# run_campaign(AssasinSb, FaultConfig(seed=7), duration 200 us, seed 7).
CAMPAIGN_FP = (
    (
        ("reader", 6, 6, 0, 98304, 98304, 28209.5, 53557.0, 0, 0, 0, 0),
        ("scanner", 4, 4, 0, 131072, 0, 53057.0, 53057.0, 0, 0, 0, 0),
        225318,
        (),
        0,
    ),
    512,
    128,
    0,
    640,
    0,
    (),
)


def serve_run(telemetry=None):
    device = ComputationalSSD(named_config("AssasinSb"), telemetry=telemetry)
    layer = ServingLayer(device, default_tenants(), config=ServeConfig(), seed=SERVE_SEED)
    report = layer.run(SERVE_DURATION_NS)
    return report, layer


def rounded(fp):
    return tuple(round(x, 6) if isinstance(x, float) else x for x in fp)


def test_null_tracer_serve_matches_pre_telemetry_baseline():
    report, layer = serve_run()
    assert rounded(report.fingerprint()) == SERVE_FP
    assert layer.events.processed == SERVE_EVENTS_PROCESSED


def test_recording_tracer_changes_nothing():
    baseline, base_layer = serve_run()
    traced, traced_layer = serve_run(telemetry=Telemetry.tracing())
    assert traced.fingerprint() == baseline.fingerprint()
    assert traced_layer.events.processed == base_layer.events.processed
    assert traced_layer.telemetry.tracer.num_events > 0


def test_null_tracer_campaign_matches_pre_telemetry_baseline():
    report = run_campaign(
        named_config("AssasinSb"), FaultConfig(seed=7), duration_ns=200_000.0, seed=7
    )
    assert report.fingerprint() == CAMPAIGN_FP


def test_recording_tracer_campaign_changes_nothing():
    baseline = run_campaign(
        named_config("AssasinSb"), FaultConfig(seed=7), duration_ns=200_000.0, seed=7
    )
    traced = run_campaign(
        named_config("AssasinSb"),
        FaultConfig(seed=7),
        duration_ns=200_000.0,
        seed=7,
        telemetry=Telemetry.tracing(),
    )
    assert traced.fingerprint() == baseline.fingerprint()
    assert traced.fingerprint() == CAMPAIGN_FP


def test_registry_backed_metrics_keep_percentile_semantics():
    # Satellite regression: the histogram-backed TenantMetrics must report
    # the same nearest-rank p50/p95/p99 the private lists used to.
    from repro.utils.stats import percentile

    report, _ = serve_run()
    for metrics in report.tenants.values():
        samples = metrics.latencies_ns
        if not samples:
            continue
        assert metrics.p50_latency_ns == percentile(samples, 50.0)
        assert metrics.p95_latency_ns == percentile(samples, 95.0)
        assert metrics.p99_latency_ns == percentile(samples, 99.0)
        assert metrics.mean_latency_ns == sum(samples) / len(samples)


def test_serve_histograms_publish_into_device_registry():
    report, layer = serve_run()
    snap = layer.telemetry.counters.snapshot()
    for name, metrics in report.tenants.items():
        assert snap[f"serve.{name}.latency_ns.count"] == metrics.completed
    assert snap["flash.reads_served"] > 0
    assert snap["host.bytes_to_host"] > 0


def test_devices_never_share_registries():
    _, first = serve_run()
    _, second = serve_run()
    a = first.telemetry.counters.snapshot()
    b = second.telemetry.counters.snapshot()
    assert a == b  # same run, same tallies ...
    assert first.telemetry.counters is not second.telemetry.counters  # ... own registries
