"""Tests for the workload-survey data (Tables I and II)."""

from repro.kernels import KERNEL_NAMES
from repro.survey.functions import (
    FUNCTIONS,
    STUDIES,
    Domain,
    domain_counts,
    functions_by_domain,
    streaming_fraction,
)


def test_table1_has_22_studies():
    assert len(STUDIES) == 22
    assert len({s.name for s in STUDIES}) == 22


def test_every_study_has_a_domain():
    for study in STUDIES:
        assert study.domains, study.name
        assert all(isinstance(d, Domain) for d in study.domains)


def test_domain_counts_sum():
    counts = domain_counts()
    assert sum(counts.values()) == sum(len(s.domains) for s in STUDIES)
    assert counts[Domain.DATABASE] >= 10  # DB offloads dominate the survey


def test_table2_has_14_function_families():
    assert len(FUNCTIONS) == 14


def test_most_functions_are_streaming():
    # The paper's core claim from Section IV.
    assert streaming_fraction() >= 12 / 14


def test_function_state_is_bounded():
    # "random accesses to function states of limited size": everything fits
    # the 64 KiB scratchpad of Table IV.
    for fn in FUNCTIONS:
        assert fn.state_bound_bytes <= 64 * 1024, fn.name


def test_referenced_kernels_exist():
    for fn in FUNCTIONS:
        if fn.kernel is not None:
            assert fn.kernel in KERNEL_NAMES, fn.name


def test_functions_by_domain_partition():
    groups = functions_by_domain()
    names = [f.name for fns in groups.values() for f in fns]
    assert sorted(names) == sorted(f.name for f in FUNCTIONS)
