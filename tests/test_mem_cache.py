"""Tests for the set-associative cache timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import Cache


def small_cache(size=1024, ways=2, line=64):
    return Cache(CacheConfig(size_bytes=size, ways=ways, line_bytes=line))


def test_first_access_misses_then_hits():
    cache = small_cache()
    assert not cache.lookup(0x100, is_write=False, cycle=0).hit
    assert cache.lookup(0x100, is_write=False, cycle=1).hit
    assert cache.lookup(0x13F, is_write=False, cycle=2).hit  # same 64B line
    assert not cache.lookup(0x140, is_write=False, cycle=3).hit  # next line


def test_lru_eviction_order():
    # 1024B / (2 ways * 64B) = 8 sets. Lines mapping to set 0: 0, 8, 16 (*64B).
    cache = small_cache()
    s = 8 * 64  # set stride in bytes
    cache.lookup(0 * s, False, 0)
    cache.lookup(1 * s, False, 1)
    cache.lookup(0 * s, False, 2)  # refresh line 0 -> line 1 is now LRU
    cache.lookup(2 * s, False, 3)  # evicts line 1
    assert cache.lookup(0 * s, False, 4).hit
    assert not cache.lookup(1 * s, False, 5).hit


def test_dirty_eviction_reports_writeback():
    cache = small_cache()
    s = 8 * 64
    cache.lookup(0 * s, is_write=True, cycle=0)
    cache.lookup(1 * s, is_write=False, cycle=1)
    result = cache.lookup(2 * s, is_write=False, cycle=2)  # evicts dirty line 0
    assert result.writeback
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = small_cache()
    s = 8 * 64
    cache.lookup(0 * s, False, 0)
    cache.lookup(1 * s, False, 1)
    assert not cache.lookup(2 * s, False, 2).writeback


def test_prefetch_hit_and_late_prefetch_wait():
    cache = small_cache()
    assert cache.prefetch(0x200, ready_cycle=100)
    early = cache.lookup(0x200, False, cycle=50)
    assert early.hit and early.extra_wait == pytest.approx(50)
    assert cache.stats.late_prefetch_hits == 1
    # A second access after readiness has no residual wait.
    later = cache.lookup(0x200, False, cycle=150)
    assert later.hit and later.extra_wait == 0


def test_prefetch_into_present_line_is_noop():
    cache = small_cache()
    cache.lookup(0x80, False, 0)
    assert not cache.prefetch(0x80, ready_cycle=10)
    assert cache.stats.prefetches_issued == 0


def test_flush_counts_dirty_lines():
    cache = small_cache()
    cache.lookup(0x0, True, 0)
    cache.lookup(0x40, False, 1)
    assert cache.flush() == 1
    assert cache.occupancy == 0


def test_stats_rates():
    cache = small_cache()
    cache.lookup(0, False, 0)
    cache.lookup(0, False, 1)
    cache.lookup(0, False, 2)
    assert cache.stats.accesses == 3
    assert cache.stats.hit_rate == pytest.approx(2 / 3)
    assert cache.stats.miss_rate == pytest.approx(1 / 3)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(addresses):
    cache = small_cache(size=512, ways=2, line=64)  # 8 lines total
    for i, addr in enumerate(addresses):
        cache.lookup(addr, is_write=bool(addr & 1), cycle=i)
    assert cache.occupancy <= 8
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2047), min_size=1, max_size=200))
def test_immediate_reaccess_always_hits(addresses):
    cache = small_cache()
    for i, addr in enumerate(addresses):
        cache.lookup(addr, False, cycle=2 * i)
        assert cache.lookup(addr, False, cycle=2 * i + 1).hit
