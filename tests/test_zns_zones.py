"""Property tests for the ZNS zone state machine (``repro.ftl.zoned``).

Hypothesis drives random operation sequences against a `ZonedFTL` and a
trivial shadow model, checking the four contract properties: write-pointer
monotonicity (rewinds only on reset), open-zone-limit enforcement,
reset-to-empty transitions, and wear accounting on reset.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FlashConfig
from repro.errors import ZnsError
from repro.ftl.zoned import ZoneState, ZonedFTL

TINY = FlashConfig(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=3,
    pages_per_block=4,
    page_bytes=512,
)
NUM_ZONES = 2 * 2 * 3
ZONE_PAGES = 2 * 2 * 4
MAX_OPEN = 3

_zone = st.integers(min_value=0, max_value=NUM_ZONES - 1)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), _zone, st.integers(min_value=1, max_value=ZONE_PAGES)),
        st.tuples(st.just("reset"), _zone, st.just(0)),
        st.tuples(st.just("open"), _zone, st.just(0)),
        st.tuples(st.just("close"), _zone, st.just(0)),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_zone_state_machine_properties(ops):
    ftl = ZonedFTL(TINY, max_open_zones=MAX_OPEN)
    model_wp = {z: 0 for z in range(NUM_ZONES)}
    model_resets = {z: 0 for z in range(NUM_ZONES)}

    for op, zone, arg in ops:
        before_wp = ftl.write_pointer(zone)
        try:
            if op == "append":
                lba, ppas = ftl.append(zone, arg)
                # Assigned LBA is exactly the pre-append write pointer.
                assert lba == ftl.zone_slba(zone) + before_wp
                assert len(ppas) == arg
                model_wp[zone] += arg
            elif op == "reset":
                ftl.reset_zone(zone)
                if before_wp:
                    model_resets[zone] += 1
                model_wp[zone] = 0
                assert ftl.state(zone) is ZoneState.EMPTY
            elif op == "open":
                ftl.open_zone(zone)
            elif op == "close":
                ftl.close_zone(zone)
        except ZnsError:
            # Rejected transitions must not move the write pointer.
            assert ftl.write_pointer(zone) == before_wp
        # Invariant 1: write pointer only grows, except a reset rewinds to 0.
        assert ftl.write_pointer(zone) == model_wp[zone]
        # Invariant 2: the open-zone bound holds after every operation.
        assert len(ftl.open_zones) <= MAX_OPEN
        # Invariant 3: state/write-pointer coherence.
        state = ftl.state(zone)
        if state is ZoneState.EMPTY:
            assert ftl.write_pointer(zone) == 0
        if state is ZoneState.FULL:
            assert ftl.write_pointer(zone) == ZONE_PAGES
        if ftl.write_pointer(zone) not in (0, ZONE_PAGES) and state in (
            ZoneState.EMPTY,
            ZoneState.FULL,
        ):
            pytest.fail(f"zone {zone} wp={ftl.write_pointer(zone)} in state {state}")

    # Invariant 4: wear accounting — each effective reset erased every block
    # of the zone's group exactly once.
    for z in range(NUM_ZONES):
        for key in ftl.zone_blocks(z):
            assert ftl.wear.erase_count(key) == model_resets[z]
    assert ftl.wear.total_erases == sum(model_resets.values()) * ftl.units_per_zone
    assert ftl.resets == sum(model_resets.values())


def test_open_zone_limit_enforced():
    ftl = ZonedFTL(TINY, max_open_zones=MAX_OPEN)
    for z in range(MAX_OPEN):
        ftl.open_zone(z)
    with pytest.raises(ZnsError):
        ftl.open_zone(MAX_OPEN)
    with pytest.raises(ZnsError):
        ftl.append(MAX_OPEN, 1)  # implicit open also counts against the limit
    # Closing one frees a resource; filling one to FULL frees it too.
    ftl.close_zone(0)
    ftl.open_zone(MAX_OPEN)
    ftl.append(1, ZONE_PAGES - ftl.write_pointer(1))
    assert ftl.state(1) is ZoneState.FULL
    assert 1 not in ftl.open_zones
    ftl.open_zone(NUM_ZONES - 1)


def test_reset_returns_block_group_and_is_idempotent_on_empty():
    ftl = ZonedFTL(TINY, max_open_zones=MAX_OPEN)
    assert ftl.reset_zone(4) == []  # never-written zone: no erase, no wear
    assert ftl.wear.total_erases == 0
    ftl.append(4, 5)
    erased = ftl.reset_zone(4)
    assert len(erased) == ftl.units_per_zone
    assert ftl.state(4) is ZoneState.EMPTY
    assert ftl.write_pointer(4) == 0
    assert ftl.wear.total_erases == ftl.units_per_zone
    # All erased blocks belong to the zone's (channel, chip, block) group.
    channel, chip, block = ftl.zone_group(4)
    assert {(p.channel, p.chip, p.block) for p in erased} == {(channel, chip, block)}


def test_lookup_and_report_follow_the_write_pointer():
    ftl = ZonedFTL(TINY, max_open_zones=MAX_OPEN)
    lba, ppas = ftl.append(2, 3)
    assert lba == ftl.zone_slba(2)
    assert ftl.is_mapped(lba + 2) and not ftl.is_mapped(lba + 3)
    assert ftl.lookup(lba + 1) == ppas[1]
    # Plane striping: consecutive slots land on distinct (die, plane) units.
    assert len({(p.die, p.plane) for p in ppas}) == 3
    report = ftl.zone_report(first=2, count=1)[0]
    assert report.write_pointer == 3
    assert report.state is ZoneState.OPEN
    assert report.capacity == ZONE_PAGES


def test_offline_zone_rejects_io():
    ftl = ZonedFTL(TINY, max_open_zones=MAX_OPEN)
    ftl.append(0, 2)
    ftl.offline_zone(0)
    with pytest.raises(ZnsError):
        ftl.append(0, 1)
    with pytest.raises(ZnsError):
        ftl.reset_zone(0)
    assert not ftl.is_mapped(0)


def test_random_write_surface_raises():
    ftl = ZonedFTL(TINY)
    with pytest.raises(ZnsError):
        ftl.write(0)
    with pytest.raises(ZnsError):
        ftl.populate([0, 1])
    with pytest.raises(ZnsError):
        ftl.trim(0)
    assert ftl.invalid_pages == set()
    assert ftl.allocator.open_blocks() == set()
