"""Functional tests for the k-way sorted-merge kernel (LSM compaction)."""

import struct

import pytest

from repro.config import assasin_sb_core, assasin_sp_core, baseline_core
from repro.core.core import CoreModel
from repro.errors import KernelError
from repro.kernels import get_kernel
from repro.kernels.merge import (
    SENTINEL_RECORD,
    MergeKernel,
    record_key,
    strip_sentinels,
)
from repro.kernels.tuples import TUPLE_BYTES

SIZE = 4096


def run_stream(kernel, inputs):
    return CoreModel(assasin_sb_core()).run(kernel, inputs)


def run_memory(kernel, inputs, core=None):
    return CoreModel(core or baseline_core()).run(kernel, inputs)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_reference_merges_sorted(k):
    kernel = MergeKernel(k=k)
    inputs = kernel.make_inputs(SIZE, seed=3)
    merged = strip_sentinels(kernel.reference(inputs)[0])
    keys = [record_key(merged[o : o + TUPLE_BYTES]) for o in range(0, len(merged), TUPLE_BYTES)]
    assert keys == sorted(keys)
    # Every real input record survives the merge exactly once.
    real = sum(len(strip_sentinels(run)) for run in inputs)
    assert len(merged) == real


@pytest.mark.parametrize("k", [2, 4])
def test_merge_all_forms_bit_exact(k):
    kernel = get_kernel("merge", k=k)
    inputs = kernel.make_inputs(SIZE, seed=7)
    expected = kernel.reference(inputs)[0]
    assert run_stream(kernel, inputs).outputs[0] == expected
    # Memory form matches when the runs fit one staged chunk (raid6-style
    # caveat); 4 KiB comfortably does on both staged engines.
    assert run_memory(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected


def test_merge_handles_duplicate_keys_and_uneven_consumption():
    kernel = MergeKernel(k=2)

    def run_bytes(keys):
        out = bytearray()
        for key in keys:
            out += struct.pack("<I", key) + b"\x00" * (TUPLE_BYTES - 4)
        out += SENTINEL_RECORD
        return bytes(out)

    a = run_bytes([1, 1, 2, 9, 9])
    b = run_bytes([1, 3, 3, 3, 9])
    expected_keys = sorted([1, 1, 2, 9, 9, 1, 3, 3, 3, 9])
    merged = strip_sentinels(kernel.reference([a, b])[0])
    got = [record_key(merged[o : o + TUPLE_BYTES]) for o in range(0, len(merged), TUPLE_BYTES)]
    assert got == expected_keys
    assert run_stream(kernel, [a, b]).outputs[0] == kernel.reference([a, b])[0]


def test_merge_rejects_bad_shapes():
    with pytest.raises(KernelError):
        MergeKernel(k=1)
    with pytest.raises(KernelError):
        MergeKernel(k=7)
    kernel = MergeKernel(k=2)
    with pytest.raises(KernelError):
        kernel.reference([SENTINEL_RECORD])  # wrong stream count
    with pytest.raises(KernelError):
        kernel.reference([SENTINEL_RECORD, SENTINEL_RECORD * 2])  # unequal


def test_strip_sentinels():
    rec = struct.pack("<I", 5) + b"\x01" * (TUPLE_BYTES - 4)
    assert strip_sentinels(rec + SENTINEL_RECORD * 3) == rec
    assert strip_sentinels(SENTINEL_RECORD) == b""
    assert strip_sentinels(rec) == rec
