"""End-to-end fleet campaign tests: determinism, device loss, routing."""

import pytest

from repro.config import named_config
from repro.errors import FleetError
from repro.fleet import (
    FleetCampaign,
    FleetConfig,
    ShardedWorkloadGenerator,
    simulate_fleet,
)
from repro.serve.workload import TenantSpec

CONFIG = named_config("AssasinSb")


def small_tenants():
    """Compact regions: preload (ECC-bound) dominates campaign wall-clock."""
    return [
        TenantSpec(
            name="hot", weight=4.0, kind="scomp", kernel="stat",
            pages_per_command=4, interarrival_ns=12_000.0, region_pages=256,
        ),
        TenantSpec(
            name="reader", weight=1.0, kind="read",
            pages_per_command=4, interarrival_ns=10_000.0, region_pages=256,
        ),
        TenantSpec(
            name="writer", weight=1.0, kind="write",
            pages_per_command=4, interarrival_ns=30_000.0, region_pages=128,
        ),
    ]


@pytest.fixture(scope="module")
def healthy_report():
    return simulate_fleet(
        CONFIG, FleetConfig(num_devices=4), tenants=small_tenants(),
        duration_ns=250_000.0, seed=5,
    )


@pytest.fixture(scope="module")
def kill_report():
    return simulate_fleet(
        CONFIG,
        FleetConfig(num_devices=4, kill_device=1, kill_at_ns=100_000.0),
        tenants=small_tenants(),
        duration_ns=250_000.0,
        seed=5,
    )


# -- healthy fleet -------------------------------------------------------------


def test_healthy_fleet_serves_commands(healthy_report):
    r = healthy_report
    assert r.completed > 20
    assert r.failed == 0 and r.corruption_events == 0
    assert r.success_rate == 1.0
    assert r.sim_events > 0 and r.commands_per_second > 0


def test_fleet_totals_match_device_stats(healthy_report):
    r = healthy_report
    assert sum(s.completed for s in r.devices.values()) == r.completed
    assert sum(s.hedges_issued for s in r.devices.values()) == r.hedges_issued
    assert len(r.latencies_ns) == r.completed
    assert r.hedges_won <= r.hedges_issued
    assert len(r.devices) == 4 and not any(s.dead for s in r.devices.values())


def test_same_seed_same_fingerprint(healthy_report):
    again = simulate_fleet(
        CONFIG, FleetConfig(num_devices=4), tenants=small_tenants(),
        duration_ns=250_000.0, seed=5,
    )
    assert again.fingerprint() == healthy_report.fingerprint()
    assert again.fingerprint_hex() == healthy_report.fingerprint_hex()


def test_different_seed_different_fingerprint(healthy_report):
    other = simulate_fleet(
        CONFIG, FleetConfig(num_devices=4), tenants=small_tenants(),
        duration_ns=250_000.0, seed=6,
    )
    assert other.fingerprint_hex() != healthy_report.fingerprint_hex()


def test_render_mentions_tail_and_fingerprint(healthy_report):
    text = healthy_report.render()
    assert "p99.9" in text and "skew" in text and "fingerprint" in text


# -- device loss ---------------------------------------------------------------


def test_killed_device_zero_corruption_high_success(kill_report):
    r = kill_report
    assert r.devices[1].dead
    assert r.success_rate >= 0.99
    assert r.corruption_events == 0
    assert r.integrity_pages_checked > 0 and r.integrity_pages_bad == 0
    assert r.reconstructions > 0 and r.pages_rebuilt > 0
    assert r.recovery_goodput_gbps > 0


def test_killed_device_stops_completing_after_kill(kill_report):
    # The dead device still appears in the report, but the fleet keeps
    # serving: live devices carry more completions than the casualty.
    r = kill_report
    live_done = [s.completed for d, s in r.devices.items() if d != 1]
    assert min(live_done) >= 0 and sum(live_done) > r.devices[1].completed


def test_kill_report_is_deterministic(kill_report):
    again = simulate_fleet(
        CONFIG,
        FleetConfig(num_devices=4, kill_device=1, kill_at_ns=100_000.0),
        tenants=small_tenants(),
        duration_ns=250_000.0,
        seed=5,
    )
    assert again.fingerprint_hex() == kill_report.fingerprint_hex()


# -- router knobs --------------------------------------------------------------


def test_hedging_disabled_issues_no_hedges():
    r = simulate_fleet(
        CONFIG, FleetConfig(num_devices=4, hedging=False),
        tenants=small_tenants(), duration_ns=150_000.0, seed=5,
    )
    assert r.hedges_issued == 0 and r.hedges_won == 0
    assert not r.hedging


def test_load_placement_policy_runs():
    r = simulate_fleet(
        CONFIG, FleetConfig(num_devices=4, placement="load"),
        tenants=small_tenants(), duration_ns=150_000.0, seed=5,
    )
    assert r.placement == "load"
    assert r.completed > 0 and r.corruption_events == 0


def test_campaign_exposes_wiring():
    campaign = FleetCampaign(
        CONFIG, FleetConfig(num_devices=3), tenants=small_tenants(),
        duration_ns=100_000.0, seed=2,
    )
    report = campaign.run()
    assert len(campaign.devices) == 3
    # One shared event kernel drives the whole fleet.
    assert report.sim_events == campaign.router.sim.processed
    assert len(campaign.page_map) > 0
    assert len(campaign.raid_map) > 0
    # Every fleet page's home device matches the page map.
    for fleet_lpa, (device, _) in list(campaign.page_map.items())[:64]:
        assert 0 <= device < 3
    assert report.num_devices == 3


# -- sharded workload ----------------------------------------------------------


def _spec(**kw):
    base = dict(
        name="t", weight=1.0, kind="read", pages_per_command=4,
        interarrival_ns=10_000.0, region_pages=256,
    )
    base.update(kw)
    return TenantSpec(**base)


class _Ids:
    def __init__(self):
        self.n = 0

    def next_id(self):
        self.n += 1
        return self.n


def test_sharded_generator_confines_commands_to_one_shard():
    gen = ShardedWorkloadGenerator(_spec(), index=0, seed=9, lpa_base=1000, shard_pages=64)
    ids = _Ids()
    for _ in range(200):
        cmd = gen.make_command(ids, 0.0)
        lpas = cmd.command.lpas if hasattr(cmd.command, "lpas") else cmd.command.lpa_lists[0]
        first_shard = (lpas[0] - 1000) // 64
        assert all((lpa - 1000) // 64 == first_shard for lpa in lpas)
        assert all(1000 <= lpa < 1000 + 256 for lpa in lpas)


def test_sharded_generator_rejects_oversized_commands():
    with pytest.raises(FleetError):
        ShardedWorkloadGenerator(
            _spec(pages_per_command=100, region_pages=256),
            index=0, seed=0, lpa_base=0, shard_pages=64,
        )
    with pytest.raises(FleetError):
        ShardedWorkloadGenerator(
            _spec(region_pages=32), index=0, seed=0, lpa_base=0, shard_pages=64
        )


def test_fleet_config_validation():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        FleetConfig(num_devices=1)
    with pytest.raises(ConfigError):
        FleetConfig(placement="nope")
    with pytest.raises(ConfigError):
        FleetConfig(kill_device=9, num_devices=4)
    assert FleetConfig(num_devices=3, raid_k=8).effective_raid_k == 2
