"""Tests for Table III stream-extension encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.isa.instructions import Instr
from repro.isa.stream_ext import STREAM_OPCODE, decode_stream_instr, encode_stream_instr


def test_opcode_is_custom0():
    assert STREAM_OPCODE == 0b0001011


def test_encode_sload_fields():
    word = encode_stream_instr(Instr("sload", rd=5, sid=3, width=4))
    assert word & 0x7F == STREAM_OPCODE
    assert (word >> 7) & 0x1F == 5  # rd
    assert (word >> 12) & 0x7 == 0  # funct3
    assert (word >> 15) & 0x1F == 3  # sid
    assert (word >> 25) & 0x7F == 2  # log2(4)


def test_encode_rejects_non_stream():
    with pytest.raises(AssemblyError):
        encode_stream_instr(Instr("add", rd=1, rs1=2, rs2=3))


def test_decode_rejects_wrong_opcode():
    with pytest.raises(AssemblyError):
        decode_stream_instr(0x33)  # OP opcode


def test_decode_rejects_unknown_funct3():
    bad = STREAM_OPCODE | (0b111 << 12)
    with pytest.raises(AssemblyError):
        decode_stream_instr(bad)


def test_sskip_immediate_range():
    encode_stream_instr(Instr("sskip", sid=0, imm=4095))
    with pytest.raises(AssemblyError):
        encode_stream_instr(Instr("sskip", sid=0, imm=4096))


@given(
    st.sampled_from(["sload", "sstore"]),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=15),
    st.sampled_from([1, 2, 4, 8]),
)
def test_load_store_roundtrip(op, reg, sid, width):
    if op == "sload":
        instr = Instr(op, rd=reg, sid=sid, width=width)
    else:
        instr = Instr(op, rs2=reg, sid=sid, width=width)
    assert decode_stream_instr(encode_stream_instr(instr)) == instr


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=4095))
def test_sskip_roundtrip(sid, imm):
    instr = Instr("sskip", sid=sid, imm=imm)
    assert decode_stream_instr(encode_stream_instr(instr)) == instr


@given(st.sampled_from(["savail", "seos"]), st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=15))
def test_ctrl_roundtrip(op, rd, sid):
    instr = Instr(op, rd=rd, sid=sid)
    assert decode_stream_instr(encode_stream_instr(instr)) == instr
