"""Tests for the tracer and its Chrome ``trace_event`` export.

The exported JSON must be loadable by Perfetto (schema invariants) and
byte-identical across same-seed runs (determinism), and a traced serve run
must cover every component track the issue names: tenant queues, the
scheduler, firmware service, flash channels, stream cores.
"""

import json

import pytest

from repro.config import ServeConfig, named_config
from repro.serve import default_tenants, simulate_serve
from repro.telemetry import (
    NULL_TRACER,
    Telemetry,
    TraceError,
    Tracer,
    make_tracer,
    span_tracks,
    validate_chrome_trace,
)

DURATION_NS = 120_000.0


def traced_serve(seed: int = 42):
    telemetry = Telemetry.tracing("serve")
    report = simulate_serve(
        named_config("AssasinSb"),
        default_tenants(),
        ServeConfig(),
        duration_ns=DURATION_NS,
        seed=seed,
        telemetry=telemetry,
    )
    return report, telemetry


# -- unit behaviour -----------------------------------------------------------


def test_null_tracer_is_inert():
    NULL_TRACER.begin("t", "x", 0.0)
    NULL_TRACER.end("t", 1.0)
    NULL_TRACER.complete("t", "x", 0.0, 1.0)
    NULL_TRACER.instant("t", "x", 0.0)
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.to_chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ns"}


def test_make_tracer_picks_implementation():
    assert make_tracer(False) is NULL_TRACER
    assert isinstance(make_tracer(True), Tracer) and make_tracer(True).enabled


def test_complete_and_instant_round_trip():
    t = Tracer()
    t.complete("ch0", "xfer", 100.0, 250.0)
    t.instant("sched", "submit:hot", 50.0)
    assert t.num_events == 3
    assert t.track_names() == ["ch0", "sched"]
    assert t.events_on("ch0") == [(100.0, "B", "xfer"), (250.0, "E", "xfer")]


def test_begin_end_nest_and_unbalanced_end_raises():
    t = Tracer()
    t.begin("fw", "outer", 0.0)
    t.begin("fw", "inner", 5.0)
    t.end("fw", 7.0)
    t.end("fw", 9.0)
    assert [name for _, ph, name in t.events_on("fw") if ph == "E"] == ["inner", "outer"]
    with pytest.raises(TraceError):
        t.end("fw", 10.0)


def test_backwards_span_raises():
    with pytest.raises(TraceError):
        Tracer().complete("t", "x", 10.0, 5.0)


def test_export_refuses_unclosed_spans():
    t = Tracer()
    t.begin("t", "open", 0.0)
    with pytest.raises(TraceError):
        t.to_chrome_trace()


def test_chrome_trace_shape():
    t = Tracer(process_name="proc")
    t.complete("track-a", "span", 2_000.0, 4_000.0)
    t.instant("track-a", "tick", 3_000.0)
    trace = t.to_chrome_trace()
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    timeline = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    # ts is microseconds (simulated ns / 1000), sorted nondecreasing.
    assert [e["ts"] for e in timeline] == [2.0, 3.0, 4.0]
    instant = next(e for e in timeline if e["ph"] == "i")
    assert instant["s"] == "t"
    assert validate_chrome_trace(trace) == []


# -- schema validation --------------------------------------------------------


def test_validator_flags_broken_traces():
    assert validate_chrome_trace({}) == ["top-level 'traceEvents' list is missing"]
    bad_keys = {"traceEvents": [{"ph": "B"}]}
    assert any("missing keys" in p for p in validate_chrome_trace(bad_keys))
    dangling = {
        "traceEvents": [{"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]
    }
    assert any("left spans open" in p for p in validate_chrome_trace(dangling))
    mismatched = {
        "traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 0},
        ]
    }
    assert any("closes B named" in p for p in validate_chrome_trace(mismatched))
    backwards = {
        "traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 0},
            {"name": "b", "ph": "i", "ts": 1, "pid": 1, "tid": 0},
        ]
    }
    assert any("precedes" in p for p in validate_chrome_trace(backwards))


# -- traced serve run ---------------------------------------------------------


def test_serve_trace_validates_and_covers_component_tracks():
    _, telemetry = traced_serve()
    trace = telemetry.tracer.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    tracks = span_tracks(trace)
    assert any(t.startswith("queue/") for t in tracks)
    assert "scheduler" in tracks
    assert any(t.startswith("firmware/") for t in tracks)
    assert any(t.startswith("flash/ch") for t in tracks)
    assert any(t.startswith("core/") for t in tracks)
    assert "host-link" in tracks
    assert len(tracks) >= 5


def test_serve_trace_required_event_keys():
    _, telemetry = traced_serve()
    for event in telemetry.tracer.to_chrome_trace()["traceEvents"]:
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in event
        assert event["name"], "events must be named"


def test_scheduler_instants_carry_event_labels():
    # Satellite: every serve-layer schedule() call site passes a label, so
    # no scheduler instant falls back to the anonymous "event" name.
    _, telemetry = traced_serve()
    names = [
        name for _, ph, name in telemetry.tracer.events_on("scheduler") if ph == "i"
    ]
    assert names, "the event queue must stamp dispatch instants"
    assert "event" not in names
    assert any(n.startswith("arrive:") for n in names)
    assert any(n.startswith("complete:") for n in names)


def test_same_seed_traces_are_byte_identical():
    _, first = traced_serve(seed=42)
    _, second = traced_serve(seed=42)
    a, b = first.tracer.to_json(), second.tracer.to_json()
    assert a == b
    # And really deterministic JSON: stable key order + separators.
    assert json.loads(a) == first.tracer.to_chrome_trace()


def test_different_seed_traces_differ():
    _, first = traced_serve(seed=42)
    _, second = traced_serve(seed=43)
    assert first.tracer.to_json() != second.tracer.to_json()


def test_trace_write_round_trips(tmp_path):
    _, telemetry = traced_serve()
    path = tmp_path / "trace.json"
    telemetry.tracer.write(str(path))
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    assert loaded == telemetry.tracer.to_chrome_trace()
