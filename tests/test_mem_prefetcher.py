"""Tests for stride and DCPT prefetchers."""

from repro.config import PrefetcherKind
from repro.mem.prefetcher import (
    DCPTPrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)


def test_factory_dispatch():
    assert isinstance(make_prefetcher(PrefetcherKind.NONE), NullPrefetcher)
    assert isinstance(make_prefetcher(PrefetcherKind.STRIDE), StridePrefetcher)
    assert isinstance(make_prefetcher(PrefetcherKind.DCPT), DCPTPrefetcher)


def test_null_never_predicts():
    pf = NullPrefetcher()
    for addr in range(0, 1024, 64):
        assert pf.observe(0x400, addr) == []


def test_stride_learns_constant_stride():
    pf = StridePrefetcher(degree=2)
    pc = 0x400
    predictions = []
    for addr in range(0, 64 * 10, 64):
        predictions = pf.observe(pc, addr)
    # Confident by now: predicts the next two lines.
    last = 64 * 9
    assert predictions == [last + 64, last + 128]


def test_stride_loses_confidence_on_random():
    pf = StridePrefetcher(degree=2)
    pc = 0x400
    for addr in [0, 64, 128, 192]:
        pf.observe(pc, addr)
    assert pf.observe(pc, 5000) == [] or True  # confidence decays
    assert pf.observe(pc, 9000) == []


def test_dcpt_sequential_stream():
    pf = DCPTPrefetcher(degree=4)
    pc = 0x400
    out = []
    for addr in range(0, 64 * 8, 64):
        out = pf.observe(pc, addr)
    assert out, "DCPT should predict on a steady stream"
    assert all(a > 64 * 7 for a in out)
    assert all((a % 64) == 0 for a in out)


def test_dcpt_no_duplicate_predictions():
    pf = DCPTPrefetcher(degree=4)
    pc = 0x10
    seen = set()
    for addr in range(0, 64 * 64, 64):
        for p in pf.observe(pc, addr):
            assert p not in seen, "prefetcher re-predicted the same address"
            seen.add(p)


def test_dcpt_replays_repeating_pattern():
    # Pattern of deltas 8, 8, 48 repeating (struct walk): DCPT should lock on.
    pf = DCPTPrefetcher(degree=3)
    pc = 0x20
    addr = 0
    out = []
    deltas = [8, 8, 48] * 6
    for d in deltas:
        addr += d
        out = pf.observe(pc, addr)
    assert out, "DCPT should recognise the repeating delta pattern"


def test_dcpt_tracks_pcs_independently():
    pf = DCPTPrefetcher(degree=2)
    for i in range(8):
        pf.observe(0x100, i * 64)
        pf.observe(0x200, 100_000 + i * 128)
    a = pf.observe(0x100, 8 * 64)
    b = pf.observe(0x200, 100_000 + 8 * 128)
    assert a and b
    assert all(x < 100_000 for x in a)
    assert all(x > 100_000 for x in b)


def test_dcpt_silent_on_irregular_stream():
    pf = DCPTPrefetcher(degree=4)
    irregular = [0, 977, 64, 14000, 3, 5500, 129, 77777]
    outs = [pf.observe(0x1, a) for a in irregular]
    assert outs[-1] == []
