"""Tests for the serving-layer arbitration policies."""

import pytest

from repro.errors import ServeError
from repro.serve.arbiter import (
    DeficitRoundRobinArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.serve.queues import QueuePair, ServeCommand
from repro.ssd.host_interface import ReadCommand


def _pair(name, weight=1.0, depth=1024):
    return QueuePair.create(name, weight, depth)


def _fill(pair, count, pages=1):
    for i in range(count):
        cmd = ServeCommand(
            tenant=pair.tenant,
            command=ReadCommand(command_id=i, lpas=list(range(pages))),
            submitted_ns=0.0,
            pages=pages,
        )
        assert pair.sq.push(cmd)


def _drain(arbiter, pairs, rounds):
    served = {p.tenant: 0 for p in pairs}
    for _ in range(rounds):
        pair = arbiter.select(pairs)
        if pair is None:
            break
        pair.sq.pop()
        served[pair.tenant] += 1
    return served


def test_rr_cycles_and_skips_empty():
    pairs = [_pair("a"), _pair("b"), _pair("c")]
    _fill(pairs[0], 4)
    _fill(pairs[2], 4)
    arbiter = RoundRobinArbiter()
    order = [arbiter.select(pairs).tenant for _ in range(4)]
    for p in pairs:
        if p.sq:
            p.sq.pop()
    # b is empty and must never be selected; a and c alternate.
    assert "b" not in order
    assert set(order) == {"a", "c"}


def test_rr_gives_equal_shares():
    pairs = [_pair("a"), _pair("b")]
    _fill(pairs[0], 100)
    _fill(pairs[1], 100)
    served = _drain(RoundRobinArbiter(), pairs, 100)
    assert served == {"a": 50, "b": 50}


def test_rr_returns_none_when_all_empty():
    pairs = [_pair("a"), _pair("b")]
    assert RoundRobinArbiter().select(pairs) is None


def test_wrr_shares_proportional_to_weight():
    pairs = [_pair("a", weight=3.0), _pair("b", weight=1.0)]
    _fill(pairs[0], 400)
    _fill(pairs[1], 400)
    served = _drain(WeightedRoundRobinArbiter(), pairs, 400)
    assert served["a"] == 300
    assert served["b"] == 100


def test_wrr_is_smooth_not_bursty():
    # Smooth WRR with weights 2:1 never serves the light tenant twice in a row.
    pairs = [_pair("a", weight=2.0), _pair("b", weight=1.0)]
    _fill(pairs[0], 60)
    _fill(pairs[1], 60)
    arbiter = WeightedRoundRobinArbiter()
    order = []
    for _ in range(30):
        pair = arbiter.select(pairs)
        pair.sq.pop()
        order.append(pair.tenant)
    assert "b b" not in " ".join(order)


def test_wrr_work_conserving_when_heavy_idle():
    pairs = [_pair("a", weight=9.0), _pair("b", weight=1.0)]
    _fill(pairs[1], 10)
    served = _drain(WeightedRoundRobinArbiter(), pairs, 10)
    assert served == {"a": 0, "b": 10}


def test_drr_shares_pages_not_commands():
    # a issues 8-page commands, b issues 1-page commands, equal weights:
    # DRR should equalise *pages* served, i.e. b gets ~8x the commands.
    pairs = [_pair("a"), _pair("b")]
    for i in range(200):
        pairs[0].sq.push(
            ServeCommand("a", ReadCommand(command_id=i, lpas=list(range(8))), 0.0, pages=8)
        )
    _fill(pairs[1], 800, pages=1)
    arbiter = DeficitRoundRobinArbiter(quantum_pages=8)
    pages = {"a": 0, "b": 0}
    for _ in range(400):
        pair = arbiter.select(pairs)
        cmd = pair.sq.pop()
        pages[pair.tenant] += cmd.pages
    assert pages["a"] == pytest.approx(pages["b"], rel=0.1)


def test_drr_weight_shifts_page_share():
    pairs = [_pair("a", weight=4.0), _pair("b", weight=1.0)]
    _fill(pairs[0], 500, pages=2)
    _fill(pairs[1], 500, pages=2)
    served = _drain(DeficitRoundRobinArbiter(quantum_pages=2), pairs, 500)
    assert served["a"] == pytest.approx(400, abs=5)
    assert served["b"] == pytest.approx(100, abs=5)


def test_drr_progresses_when_quantum_below_command_size():
    # Deficit accumulates across visits, so even quantum=1 eventually
    # dispatches a 16-page command instead of livelocking.
    pairs = [_pair("a")]
    pairs[0].sq.push(
        ServeCommand("a", ReadCommand(command_id=1, lpas=list(range(16))), 0.0, pages=16)
    )
    arbiter = DeficitRoundRobinArbiter(quantum_pages=1)
    assert arbiter.select(pairs).tenant == "a"


def test_make_arbiter_registry():
    assert make_arbiter("rr").name == "rr"
    assert make_arbiter("wrr").name == "wrr"
    assert make_arbiter("drr", quantum_pages=4).name == "drr"
    with pytest.raises(ServeError):
        make_arbiter("fifo")
    with pytest.raises(ServeError):
        DeficitRoundRobinArbiter(quantum_pages=0)
