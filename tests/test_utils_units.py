"""Tests for unit constants and formatting helpers."""

import pytest

from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    bytes_per_cycle_to_gbps,
    fmt_bytes,
    fmt_rate,
    fmt_time_ns,
)


def test_binary_units_scale():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_one_byte_per_cycle_at_1ghz_is_1gbps():
    # The identity the paper uses for the 1 GB/s-per-core scan bound.
    assert bytes_per_cycle_to_gbps(1.0, clock_ghz=1.0) == pytest.approx(1.0)


def test_bytes_per_cycle_scales_with_clock():
    assert bytes_per_cycle_to_gbps(1.0, clock_ghz=2.0) == pytest.approx(2.0)
    assert bytes_per_cycle_to_gbps(0.5, clock_ghz=1.124) == pytest.approx(0.562)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(64 * KIB) == "64.0 KiB"
    assert fmt_bytes(2 * GIB) == "2.0 GiB"


def test_fmt_rate():
    assert fmt_rate(1.6e9) == "1.60 GB/s"
    assert fmt_rate(500) == "500.00 B/s"


def test_fmt_time_ns():
    assert fmt_time_ns(12.5) == "12.50 ns"
    assert fmt_time_ns(2_500) == "2.50 us"
    assert fmt_time_ns(3_000_000) == "3.00 ms"
