"""Tests for write-path scomp offloads (Section V-D)."""

import pytest

from repro.config import assasin_sb_config, baseline_config
from repro.errors import DeviceError
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD

DATA = 8 << 20


def test_raid6_ingest_writes_data_plus_parity():
    device = ComputationalSSD(assasin_sb_config())
    result = device.offload_write_path(get_kernel("raid6"), DATA)
    # RAID6 k=4 stores the data (1.0) plus P and Q parity (0.5) to flash.
    assert result.bytes_out == pytest.approx(1.5 * result.bytes_in, rel=0.02)
    assert device.array.writes_served > 0
    assert device.array.reads_served == 0  # pure ingest: nothing read


def test_aes_ingest_writes_only_ciphertext():
    device = ComputationalSSD(assasin_sb_config())
    result = device.offload_write_path(get_kernel("aes"), DATA)
    assert result.bytes_out == pytest.approx(result.bytes_in, rel=0.02)


def test_assasin_beats_baseline_on_raid_ingest():
    base = ComputationalSSD(baseline_config()).offload_write_path(get_kernel("raid6"), DATA)
    sb = ComputationalSSD(assasin_sb_config()).offload_write_path(get_kernel("raid6"), DATA)
    assert sb.throughput_gbps > 1.4 * base.throughput_gbps


def test_write_path_bounded_by_host_link():
    # Even a free kernel cannot ingest faster than PCIe delivers.
    device = ComputationalSSD(assasin_sb_config())
    result = device.offload_write_path(get_kernel("scan"), DATA)
    assert result.throughput_gbps <= device.config.host.bandwidth_bytes_per_ns + 0.01


def test_write_path_records_host_traffic():
    device = ComputationalSSD(assasin_sb_config())
    result = device.offload_write_path(get_kernel("aes"), DATA)
    assert device.host.bytes_from_host == result.bytes_in
    assert device.host.submissions[0].write_path


def test_write_path_rejects_empty():
    device = ComputationalSSD(assasin_sb_config())
    with pytest.raises(DeviceError):
        device.offload_write_path(get_kernel("aes"), 0)


def test_baseline_write_path_pays_dram_both_ways():
    device = ComputationalSSD(baseline_config())
    result = device.offload_write_path(get_kernel("raid4"), DATA)
    traffic = result.dram_traffic
    # Host staging in + compute read-back + results/data staged out.
    assert traffic.staging_in >= 1.0
    assert traffic.staging_out >= 1.0
    assert traffic.total >= 3.0
