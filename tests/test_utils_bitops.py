"""Tests for 32-bit helpers, including hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_select,
    popcount,
    rotl32,
    rotr32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_to_signed32_examples():
    assert to_signed32(0xFFFFFFFF) == -1
    assert to_signed32(0x80000000) == -(2**31)
    assert to_signed32(0x7FFFFFFF) == 2**31 - 1
    assert to_signed32(0) == 0


def test_sign_extend_examples():
    assert sign_extend(0xFF, 8) == -1
    assert sign_extend(0x7F, 8) == 127
    assert sign_extend(0x800, 12) == -2048


def test_sign_extend_rejects_nonpositive_bits():
    with pytest.raises(ValueError):
        sign_extend(1, 0)


@given(u32)
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned32(to_signed32(value)) == value


@given(u32, st.integers(min_value=0, max_value=100))
def test_rotl_rotr_inverse(value, amount):
    assert rotr32(rotl32(value, amount), amount) == value


@given(u32)
def test_rotl32_by_32_identity(value):
    assert rotl32(value, 32) == value


@given(u32)
def test_popcount_matches_bin(value):
    assert popcount(value) == bin(value).count("1")


def test_bit_select():
    assert bit_select(0b1011_0000, 7, 4) == 0b1011
    assert bit_select(0xFFFFFFFF, 31, 31) == 1
    with pytest.raises(ValueError):
        bit_select(0, 3, 5)
