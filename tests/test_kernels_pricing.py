"""Unit tests for the memoized kernel-pricing cache (`repro.kernels.pricing`).

The campaign-level proof that memoized pricing changes nothing observable
lives in test_sim_differential.py; these tests pin the cache mechanics —
off by default, hit/miss accounting, config-digest invalidation, and the
scoping context managers.
"""

import dataclasses

import pytest

from repro.config import SimConfig, assasin_sb_config
from repro.kernels import get_kernel
from repro.kernels.pricing import (
    PRICING_CACHE,
    KernelPricingCache,
    use_pricing_cache,
)
from repro.ssd.device import ComputationalSSD


@pytest.fixture(autouse=True)
def _pristine_cache():
    """Tests must never leak enabled state or entries into the suite."""
    PRICING_CACHE.disable()
    PRICING_CACHE.clear()
    yield
    PRICING_CACHE.disable()
    PRICING_CACHE.clear()


def test_cache_is_off_by_default():
    cache = KernelPricingCache()
    assert not cache.enabled
    config = assasin_sb_config()
    cache.put(config, "stat", 4096, object())
    assert len(cache) == 0
    assert cache.get(config, "stat", 4096) is None
    assert cache.hits == 0 and cache.misses == 0


def test_sample_kernel_hits_after_one_miss():
    config = assasin_sb_config()
    with use_pricing_cache() as cache:
        first = ComputationalSSD(config).sample_kernel(get_kernel("stat"))
        assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1
        second = ComputationalSSD(config).sample_kernel(get_kernel("stat"))
        assert cache.misses == 1 and cache.hits == 1
        # The memo shares the sampled run object itself.
        assert second is first


def test_distinct_kernels_and_sizes_are_distinct_entries():
    config = assasin_sb_config()
    with use_pricing_cache() as cache:
        device = ComputationalSSD(config)
        device.sample_kernel(get_kernel("stat"))
        device.sample_kernel(get_kernel("scan"))
        device.sample_kernel(get_kernel("stat"), sample_bytes=8192)
        assert cache.misses == 3 and cache.hits == 0 and len(cache) == 3


def test_config_change_invalidates_by_construction():
    base = assasin_sb_config()
    changed = dataclasses.replace(base, name=base.name + "-variant")
    cache = KernelPricingCache()
    cache.enable()
    assert cache.config_digest(base) != cache.config_digest(changed)
    # Equal-valued configs share a digest even as distinct objects.
    assert cache.config_digest(base) == cache.config_digest(assasin_sb_config())
    cache.put(base, "stat", 4096, "sample-a")
    assert cache.get(changed, "stat", 4096) is None
    assert cache.get(base, "stat", 4096) == "sample-a"


def test_pipeline_model_and_params_change_the_digest():
    """Timing-model knobs live outside the kernel's architectural inputs but
    change its cycle price, so they must be part of the cache key."""
    from repro.core.pipeline import PipelineParams

    base = assasin_sb_config()
    predictive = base.with_pipeline_model("predictive")
    cache = KernelPricingCache()
    cache.enable()
    assert cache.config_digest(base) != cache.config_digest(predictive)
    default = PipelineParams()
    tweaked = PipelineParams(mispredict_penalty=5)
    assert (cache.config_digest(base, default)
            != cache.config_digest(base, tweaked))
    assert (cache.config_digest(base, default)
            == cache.config_digest(base, PipelineParams()))
    cache.put(base, "stat", 4096, "static-sample", pipeline_params=default)
    assert cache.get(predictive, "stat", 4096, pipeline_params=default) is None
    assert cache.get(base, "stat", 4096, pipeline_params=tweaked) is None
    assert cache.get(base, "stat", 4096, pipeline_params=default) == "static-sample"


def test_digest_memo_is_value_keyed_not_id_keyed():
    """Regression: the digest memo was once keyed by ``id(config)``.  A dead
    config's recycled id could then alias a *different* config to a stale
    digest.  Value-keying makes equal configs share and unequal configs
    miss, regardless of object identity or lifetime."""
    cache = KernelPricingCache()
    cache.enable()
    digests = set()
    for i in range(50):
        # Fresh throwaway objects each round: with id-keying these recycle
        # CPython ids almost immediately.
        variant = dataclasses.replace(assasin_sb_config(), name=f"v{i}")
        digests.add(cache.config_digest(variant))
        del variant
    assert len(digests) == 50
    # Equal-valued but distinct objects share one memo entry and digest.
    a, b = assasin_sb_config(), assasin_sb_config()
    assert a is not b
    assert cache.config_digest(a) == cache.config_digest(b)


def test_use_pricing_cache_restores_and_clears():
    assert not PRICING_CACHE.enabled
    with use_pricing_cache():
        assert PRICING_CACHE.enabled
        PRICING_CACHE.put(assasin_sb_config(), "stat", 4096, "sample")
        assert len(PRICING_CACHE) == 1
    assert not PRICING_CACHE.enabled
    assert len(PRICING_CACHE) == 0


def test_sim_config_activated_scopes_the_cache():
    with SimConfig(memoize_pricing=True).activated():
        assert PRICING_CACHE.enabled
    assert not PRICING_CACHE.enabled
    # And the flag itself defaults to off.
    with SimConfig().activated():
        assert not PRICING_CACHE.enabled
