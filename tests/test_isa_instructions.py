"""Tests for instruction definitions, kinds and validation, plus the
table-driven sign-extension/overflow edge-case audit that locks both
execution engines to RV32IM semantics (SRA on negatives, SLTU wraparound,
MULH* variants, div/rem overflow, misaligned/ring-wrapping StreamLoads)."""

import pytest

from repro.config import StreamBufferConfig
from repro.errors import AssemblyError
from repro.isa.fastpath import FastEngine
from repro.isa.instructions import Instr, InstrKind, kind_of, validate_instr
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.mem.memory import FlatMemory
from repro.mem.streambuffer import StreamBufferSet


def test_kind_classification():
    assert kind_of("add") is InstrKind.ALU
    assert kind_of("addi") is InstrKind.ALU
    assert kind_of("lui") is InstrKind.ALU
    assert kind_of("mul") is InstrKind.MUL
    assert kind_of("divu") is InstrKind.DIV
    assert kind_of("lw") is InstrKind.LOAD
    assert kind_of("sb") is InstrKind.STORE
    assert kind_of("beq") is InstrKind.BRANCH
    assert kind_of("jal") is InstrKind.JUMP
    assert kind_of("sload") is InstrKind.STREAM_LOAD
    assert kind_of("sstore") is InstrKind.STREAM_STORE
    assert kind_of("savail") is InstrKind.STREAM_CTRL
    assert kind_of("halt") is InstrKind.SYSTEM


def test_kind_of_unknown_raises():
    with pytest.raises(AssemblyError):
        kind_of("vadd")


def test_validate_accepts_good_instrs():
    validate_instr(Instr("addi", rd=1, rs1=2, imm=2047))
    validate_instr(Instr("addi", rd=1, rs1=2, imm=-2048))
    validate_instr(Instr("sload", rd=5, sid=7, width=4))
    validate_instr(Instr("lui", rd=1, imm=0xFFFFF))
    validate_instr(Instr("slli", rd=1, rs1=1, imm=31))


def test_validate_rejects_bad_immediates():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("addi", rd=1, rs1=2, imm=5000))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("slli", rd=1, rs1=1, imm=32))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("lw", rd=1, rs1=2, imm=4096))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("lui", rd=1, imm=1 << 20))


def test_validate_rejects_bad_stream_fields():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sload", rd=1, sid=0, width=3))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sload", rd=1, sid=16, width=4))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sskip", sid=0, imm=0))


def test_validate_rejects_bad_registers():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("add", rd=32, rs1=0, rs2=0))


def test_str_forms():
    assert str(Instr("sload", rd=5, sid=0, width=4)) == "sload x5, s0, 4"
    assert str(Instr("halt")) == "halt"
    assert "beq" in str(Instr("beq", rs1=1, rs2=2, imm=7, label="loop"))
    assert str(Instr("lw", rd=3, rs1=2, imm=8)) == "lw x3, 8(x2)"


# ---------------------------------------------------------------------------
# Sign-extension / overflow edge-case audit, run on BOTH execution engines.
# ---------------------------------------------------------------------------

ENGINES = ("reference", "fast")

INT_MIN = 0x80000000
ALL_ONES = 0xFFFFFFFF


def _run_instr(instr, engine, regs=()):
    """Execute one instruction (then halt) and return the register file."""
    program = Program("edge", (instr, Instr("halt")))
    interp = Interpreter(program, FlatMemory(64))
    for reg, value in regs:
        interp.regs.write(reg, value)
    if engine == "fast":
        FastEngine(program).run(interp)
    else:
        interp.run()
    return interp.regs


# (op, rs1 value, rs2 value, expected rd) — register-register forms.
RR_EDGE_CASES = [
    # SRA on negative values: arithmetic shift must replicate the sign bit.
    ("sra", INT_MIN, 1, 0xC0000000),
    ("sra", INT_MIN, 31, ALL_ONES),
    ("sra", INT_MIN, 0, INT_MIN),
    ("sra", ALL_ONES, 4, ALL_ONES),
    ("sra", 0x7FFFFFFF, 31, 0),
    ("sra", 0xF0000000, 35, 0xFE000000),  # shift amount masked to 3
    # Logical shifts: amount masked to 5 bits, zero fill.
    ("srl", INT_MIN, 31, 1),
    ("srl", ALL_ONES, 32, ALL_ONES),  # 32 & 31 == 0
    ("sll", 1, 33, 2),  # 33 & 31 == 1
    ("sll", ALL_ONES, 4, 0xFFFFFFF0),
    # SLT/SLTU wraparound: 0x80000000 is INT_MIN signed but huge unsigned.
    ("slt", INT_MIN, 0x7FFFFFFF, 1),
    ("sltu", INT_MIN, 0x7FFFFFFF, 0),
    ("slt", ALL_ONES, 0, 1),  # -1 < 0 signed
    ("sltu", ALL_ONES, 0, 0),  # 2^32-1 > 0 unsigned
    ("sltu", 0, ALL_ONES, 1),
    ("sltu", 5, 5, 0),
    # MULH* variants: upper 32 bits under each signedness combination.
    ("mul", INT_MIN, ALL_ONES, INT_MIN),
    ("mulh", INT_MIN, INT_MIN, 0x40000000),
    ("mulh", ALL_ONES, ALL_ONES, 0),
    ("mulh", INT_MIN, ALL_ONES, 0),
    ("mulhu", ALL_ONES, ALL_ONES, 0xFFFFFFFE),
    ("mulhu", INT_MIN, 2, 1),
    ("mulhsu", ALL_ONES, ALL_ONES, ALL_ONES),
    ("mulhsu", INT_MIN, ALL_ONES, INT_MIN),
    ("mulhsu", 0x7FFFFFFF, ALL_ONES, 0x7FFFFFFE),
    # Division: RV32 overflow case INT_MIN / -1, division by zero, and
    # truncation toward zero for mixed signs.
    ("div", INT_MIN, ALL_ONES, INT_MIN),
    ("rem", INT_MIN, ALL_ONES, 0),
    ("div", 7, 0, ALL_ONES),
    ("divu", 7, 0, ALL_ONES),
    ("rem", 0xFFFFFFF9, 0, 0xFFFFFFF9),  # rem by zero returns dividend
    ("remu", 7, 0, 7),
    ("div", 0xFFFFFFF9, 2, 0xFFFFFFFD),  # -7 / 2 == -3 (truncating)
    ("rem", 0xFFFFFFF9, 2, ALL_ONES),  # -7 % 2 == -1
    ("div", 7, 0xFFFFFFFE, 0xFFFFFFFD),  # 7 / -2 == -3
    ("rem", 7, 0xFFFFFFFE, 1),  # 7 % -2 == 1
    ("divu", ALL_ONES, 2, 0x7FFFFFFF),
    ("remu", ALL_ONES, 0xFFFFFFFE, 1),
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("op,a,b,expected", RR_EDGE_CASES)
def test_rr_edge_case(op, a, b, expected, engine):
    regs = _run_instr(Instr(op, rd=3, rs1=1, rs2=2), engine,
                      regs=[(1, a), (2, b)])
    assert regs.read(3) == expected, f"{op}({a:#x}, {b:#x})"


# (op, rs1 value, imm, expected rd) — immediate forms.
IMM_EDGE_CASES = [
    ("srai", INT_MIN, 1, 0xC0000000),
    ("srai", ALL_ONES, 31, ALL_ONES),
    ("srli", INT_MIN, 31, 1),
    ("slti", 0, -1, 0),  # 0 < -1 is false signed
    ("sltiu", 0, -1, 1),  # imm sign-extends to 0xFFFFFFFF unsigned
    ("sltiu", ALL_ONES, -1, 0),
    ("slti", 0xFFFFFFFE, -1, 1),  # -2 < -1 signed
    ("andi", 0xF0F0F0F0, -1, 0xF0F0F0F0),  # imm -1 masks to all ones
    ("ori", 0, -2048, 0xFFFFF800),
    ("xori", ALL_ONES, -1, 0),
    ("addi", ALL_ONES, 1, 0),  # wraparound add
    ("addi", 0, -1, ALL_ONES),
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("op,a,imm,expected", IMM_EDGE_CASES)
def test_imm_edge_case(op, a, imm, expected, engine):
    regs = _run_instr(Instr(op, rd=3, rs1=1, imm=imm), engine,
                      regs=[(1, a)])
    assert regs.read(3) == expected, f"{op}({a:#x}, {imm})"


@pytest.mark.parametrize("engine", ENGINES)
def test_writes_to_x0_are_discarded(engine):
    regs = _run_instr(Instr("addi", rd=0, rs1=0, imm=123), engine)
    assert regs.read(0) == 0


# ---------------------------------------------------------------------------
# Misaligned / ring-wrapping StreamLoad offsets.
# ---------------------------------------------------------------------------

_SB_SMALL = StreamBufferConfig(num_streams=1, pages_per_stream=2,
                               page_bytes=64)  # 128-byte ring


def _run_stream_program(instrs, buffers, engine):
    mem = FlatMemory(64)
    outs = StreamBufferSet(_SB_SMALL, "output")
    program = Program("sedge", tuple(instrs) + (Instr("halt"),))
    interp = Interpreter(program, mem, in_streams=buffers, out_streams=outs)
    if engine == "fast":
        FastEngine(program).run(interp)
    else:
        interp.run()
    return interp


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("skip,width", [(1, 2), (1, 4), (3, 4), (5, 2),
                                        (7, 4)])
def test_misaligned_stream_load(skip, width, engine):
    """sload has no alignment requirement: byte offsets assemble LE."""
    payload = bytes(range(1, 33))
    ins = StreamBufferSet(_SB_SMALL, "input")
    ins[0].push(payload)
    ins[0].finish_producing()
    interp = _run_stream_program(
        [Instr("sskip", sid=0, imm=skip),
         Instr("sload", rd=5, sid=0, width=width)], ins, engine)
    expected = int.from_bytes(payload[skip:skip + width], "little")
    assert interp.regs.read(5) == expected
    assert interp.in_streams[0].head == skip + width
    assert interp.stream_bytes_in == skip + width


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("width", [2, 4])
def test_stream_load_across_ring_wrap(width, engine):
    """A load spanning the circular-buffer wrap point splits correctly and
    the head CSR (head mod capacity) wraps with it."""
    cap = _SB_SMALL.pages_per_stream * _SB_SMALL.page_bytes
    first = bytes(range(100))
    ins = StreamBufferSet(_SB_SMALL, "input")
    ins[0].push(first)
    assert ins[0].consume(100) == first
    second = bytes(range(100, 160))  # tail wraps past `cap`
    ins[0].push(second)
    ins[0].finish_producing()
    skip = cap - 100 - (width // 2)  # place the load across the wrap point
    interp = _run_stream_program(
        [Instr("sskip", sid=0, imm=skip),
         Instr("sload", rd=5, sid=0, width=width)], ins, engine)
    expected = int.from_bytes(second[skip:skip + width], "little")
    assert interp.regs.read(5) == expected
    head = interp.in_streams[0].head
    assert head == 100 + skip + width
    assert interp.in_streams[0].head_csr == head % cap
    assert head > cap  # the load really crossed the wrap point


@pytest.mark.parametrize("engine", ENGINES)
def test_trailing_partial_element_stalls_not_eos(engine):
    """Fewer buffered bytes than the sload width is a stall (firmware must
    pad or the program hangs), not EOS — EOS needs an empty buffer."""
    ins = StreamBufferSet(_SB_SMALL, "input")
    ins[0].push(b"abc")
    ins[0].finish_producing()
    program = Program("trail", (Instr("sload", rd=5, sid=0, width=4),
                                Instr("halt")))
    interp = Interpreter(program, FlatMemory(64), in_streams=ins,
                         out_streams=StreamBufferSet(_SB_SMALL, "output"))
    with pytest.raises(Exception, match="unresolvable stream stall"):
        if engine == "fast":
            FastEngine(program).run(interp)
        else:
            interp.run()
    assert not interp.finished
    assert interp.steps == 0
    assert ins[0].available == 3  # nothing consumed
