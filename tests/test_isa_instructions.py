"""Tests for instruction definitions, kinds and validation."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import Instr, InstrKind, kind_of, validate_instr


def test_kind_classification():
    assert kind_of("add") is InstrKind.ALU
    assert kind_of("addi") is InstrKind.ALU
    assert kind_of("lui") is InstrKind.ALU
    assert kind_of("mul") is InstrKind.MUL
    assert kind_of("divu") is InstrKind.DIV
    assert kind_of("lw") is InstrKind.LOAD
    assert kind_of("sb") is InstrKind.STORE
    assert kind_of("beq") is InstrKind.BRANCH
    assert kind_of("jal") is InstrKind.JUMP
    assert kind_of("sload") is InstrKind.STREAM_LOAD
    assert kind_of("sstore") is InstrKind.STREAM_STORE
    assert kind_of("savail") is InstrKind.STREAM_CTRL
    assert kind_of("halt") is InstrKind.SYSTEM


def test_kind_of_unknown_raises():
    with pytest.raises(AssemblyError):
        kind_of("vadd")


def test_validate_accepts_good_instrs():
    validate_instr(Instr("addi", rd=1, rs1=2, imm=2047))
    validate_instr(Instr("addi", rd=1, rs1=2, imm=-2048))
    validate_instr(Instr("sload", rd=5, sid=7, width=4))
    validate_instr(Instr("lui", rd=1, imm=0xFFFFF))
    validate_instr(Instr("slli", rd=1, rs1=1, imm=31))


def test_validate_rejects_bad_immediates():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("addi", rd=1, rs1=2, imm=5000))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("slli", rd=1, rs1=1, imm=32))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("lw", rd=1, rs1=2, imm=4096))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("lui", rd=1, imm=1 << 20))


def test_validate_rejects_bad_stream_fields():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sload", rd=1, sid=0, width=3))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sload", rd=1, sid=16, width=4))
    with pytest.raises(AssemblyError):
        validate_instr(Instr("sskip", sid=0, imm=0))


def test_validate_rejects_bad_registers():
    with pytest.raises(AssemblyError):
        validate_instr(Instr("add", rd=32, rs1=0, rs2=0))


def test_str_forms():
    assert str(Instr("sload", rd=5, sid=0, width=4)) == "sload x5, s0, 4"
    assert str(Instr("halt")) == "halt"
    assert "beq" in str(Instr("beq", rs1=1, rs2=2, imm=7, label="loop"))
    assert str(Instr("lw", rd=3, rs1=2, imm=8)) == "lw x3, 8(x2)"
