"""Unit tests for the pluggable cycle costers (``repro.core.coster``).

The differential suite proves the costers behave identically across
engines; these tests pin the *intended* microarchitectural semantics —
divider early exit, the load-use latch, predictor warm-up and training,
BTB tag/target matching — so a refactor cannot silently change the model
while staying self-consistent.
"""

import pytest

from repro.config import PIPELINE_MODELS
from repro.core.coster import (
    BRANCH_PREDICTORS,
    COSTER_MODELS,
    PredictiveCoster,
    StaticCoster,
    div_latency,
    instr_reads,
    make_coster,
)
from repro.core.pipeline import PipelineParams
from repro.errors import ConfigError
from repro.isa.instructions import Instr

P = PipelineParams()


def _coster(**overrides) -> PredictiveCoster:
    return PredictiveCoster(PipelineParams(**overrides))


# ---------------------------------------------------------------------------
# Model registry
# ---------------------------------------------------------------------------

def test_model_registries_agree():
    # config.PIPELINE_MODELS and coster.COSTER_MODELS are duplicated to
    # avoid an import cycle; they must never drift apart.
    assert PIPELINE_MODELS == COSTER_MODELS


def test_make_coster_dispatch():
    assert isinstance(make_coster("static", P), StaticCoster)
    assert isinstance(make_coster("predictive", P), PredictiveCoster)
    assert make_coster("static", P).is_static
    assert not make_coster("predictive", P).is_static
    with pytest.raises(ConfigError, match="unknown pipeline model"):
        make_coster("oracle", P)


def test_knob_validation():
    with pytest.raises(ConfigError, match="unknown branch predictor"):
        _coster(branch_predictor="perceptron")
    for knob in ("btb_entries", "bimodal_entries", "gshare_entries",
                 "chooser_entries", "div_bits_per_cycle"):
        with pytest.raises(ConfigError, match=knob):
            _coster(**{knob: 0})
    with pytest.raises(ConfigError, match="history_bits"):
        _coster(history_bits=-1)
    assert BRANCH_PREDICTORS == ("tournament", "none")


# ---------------------------------------------------------------------------
# Divider latency
# ---------------------------------------------------------------------------

def test_div_latency_early_exit_cases():
    base = P.div_base_cycles
    # Division by zero and |a| < |b| resolve in pre/post-processing alone.
    assert div_latency(0, 5, False, P) == base
    assert div_latency(7, 0, False, P) == base
    assert div_latency(3, 4, False, P) == base
    # One quotient bit still costs one iteration cycle.
    assert div_latency(1, 1, False, P) == base + 1
    # Full-width quotient: 32 bits at 4 bits/cycle = 8 iteration cycles.
    assert div_latency(0xFFFFFFFF, 1, False, P) == base + 8


def test_div_latency_signed_magnitudes():
    # -8 / 2 signed: |a|=8 (4 bits), |b|=2 (2 bits) -> 3 quotient bits.
    neg8 = 0x100000000 - 8
    assert div_latency(neg8, 2, True, P) == P.div_base_cycles + 1
    # The same bit patterns unsigned: huge |a| -> near-full quotient.
    assert div_latency(neg8, 2, False, P) > div_latency(neg8, 2, True, P)
    # INT_MIN / -1 (the classic overflow case): |quotient| is full-width,
    # so the divider runs all 32/4 iteration cycles.
    assert div_latency(0x80000000, 0xFFFFFFFF, True, P) == P.div_base_cycles + 8


def test_div_latency_early_exit_disabled_is_static_worst_case():
    fixed = PipelineParams(div_early_exit=False)
    for a, b in ((0, 5), (7, 0), (1, 1), (0xFFFFFFFF, 1)):
        assert div_latency(a, b, False, fixed) == fixed.div_extra_cycles


def test_div_latency_monotone_in_quotient_width():
    latencies = [div_latency((1 << n) - 1, 1, False, P) for n in range(1, 33)]
    assert latencies == sorted(latencies)


# ---------------------------------------------------------------------------
# Load-use hazard latch
# ---------------------------------------------------------------------------

def test_load_use_bubble_only_when_dependent():
    c = _coster()
    assert c.mem((0,), load_rd=5) == 0       # the load itself
    assert c.simple((5,)) == P.load_use_bubble  # dependent consumer: bubble
    assert c.simple((5,)) == 0               # latch cleared by the consumer


def test_independent_op_clears_latch_without_bubble():
    c = _coster()
    c.mem((), load_rd=5)
    assert c.simple((3,)) == 0   # independent op: forwarding covers it
    assert c.simple((5,)) == 0   # one cycle later the value is in the regfile


def test_store_does_not_latch():
    c = _coster()
    c.mem((2, 3), load_rd=0)     # store: load_rd=0 means no latch
    assert c.simple((2, 3)) == 0


def test_stream_load_latches_like_a_load():
    c = _coster()
    assert c.stream_load((), rd=7) == 0
    extra, hz = c.mul((7, 7))
    assert (extra, hz) == (P.mul_cycles, P.load_use_bubble)


def test_hazard_detection_knob_disables_bubbles():
    c = _coster(hazard_detection=False)
    c.mem((), load_rd=5)
    assert c.simple((5,)) == 0


def test_div_and_branch_see_hazards_too():
    c = _coster()
    c.mem((), load_rd=4)
    extra, hz = c.div((4,), 8, 2, False)
    assert hz == P.load_use_bubble
    c.mem((), load_rd=4)
    _, hz, _ = c.branch(0, (4,), taken=False, target=3)
    assert hz == P.load_use_bubble


# ---------------------------------------------------------------------------
# Branch prediction
# ---------------------------------------------------------------------------

def test_cold_taken_branch_mispredicts_then_learns():
    c = _coster()
    pen, _, miss = c.branch(4, (), taken=True, target=1)
    assert (pen, miss) == (P.mispredict_penalty, True)   # cold: counters weak
    pen, _, miss = c.branch(4, (), taken=True, target=1)
    assert (pen, miss) == (0, False)  # counters trained, BTB installed


def test_cold_not_taken_branch_predicts_correctly():
    c = _coster()
    pen, _, miss = c.branch(4, (), taken=False, target=1)
    assert (pen, miss) == (0, False)  # weakly-not-taken init matches


def test_btb_target_mismatch_counts_as_mispredict():
    c = _coster()
    c.branch(4, (), taken=True, target=1)   # warm up the direction counters
    c.branch(4, (), taken=True, target=1)
    # Same slot, different target (aliasing pc + btb_entries): direction says
    # taken but the BTB redirects to the wrong place -> mispredict.
    alias = 4 + P.btb_entries * P.bimodal_entries * P.chooser_entries
    pen, _, miss = c.branch(alias, (), taken=True, target=9)
    assert miss and pen == P.mispredict_penalty


def test_loop_branch_converges_to_zero_penalty():
    c = _coster()
    total = 0
    for _ in range(64):
        pen, _, _ = c.branch(8, (), taken=True, target=2)
        total += pen
    # Only the cold iteration pays; a learned loop branch is free.
    assert total == P.mispredict_penalty


def test_predictor_none_restores_flat_taken_penalty():
    c = _coster(branch_predictor="none")
    for _ in range(3):
        pen, _, miss = c.branch(8, (), taken=True, target=2)
        assert (pen, miss) == (P.taken_branch_penalty, False)
    pen, _, miss = c.branch(8, (), taken=False, target=2)
    assert (pen, miss) == (0, False)


def test_jump_btb_miss_then_hit():
    c = _coster()
    pen, _ = c.jump(6, (), target=0)
    assert pen == P.jump_penalty          # cold BTB
    pen, _ = c.jump(6, (), target=0)
    assert pen == 0                       # installed on the miss
    pen, _ = c.jump(6, (), target=3)      # same pc, new target (jalr)
    assert pen == P.jump_penalty


def test_jump_with_predictor_none_always_pays():
    c = _coster(branch_predictor="none")
    for _ in range(2):
        pen, _ = c.jump(6, (), target=0)
        assert pen == P.jump_penalty


def test_gshare_distinguishes_history_contexts():
    """An alternating branch defeats bimodal but is gshare-predictable;
    the tournament must converge to (near) zero steady-state penalty."""
    c = _coster()
    outcomes = [True, False] * 64
    penalties = [c.branch(12, (), taken=t, target=5)[0] for t in outcomes]
    assert sum(penalties[-32:]) == 0


# ---------------------------------------------------------------------------
# instr_reads
# ---------------------------------------------------------------------------

def test_instr_reads_shapes():
    assert instr_reads(Instr("add", rd=3, rs1=1, rs2=2)) == (1, 2)
    assert instr_reads(Instr("addi", rd=3, rs1=4, imm=1)) == (4,)
    assert instr_reads(Instr("sw", rs1=1, rs2=2, imm=0)) == (1, 2)
    assert instr_reads(Instr("beq", rs1=5, rs2=5, imm=0)) == (5,)  # dedup
    assert instr_reads(Instr("jalr", rd=1, rs1=6, imm=0)) == (6,)
    assert instr_reads(Instr("sstore", rs2=7, sid=0, width=4)) == (7,)
    # x0 is hardwired zero: never a hazard source.
    assert instr_reads(Instr("add", rd=3, rs1=0, rs2=0)) == ()
    for op in ("lui", "jal", "halt", "sload", "savail", "seos"):
        kwargs = {"sid": 0} if op in ("sload", "savail", "seos") else {}
        assert instr_reads(Instr(op, rd=1, imm=0, **kwargs)) == ()
