"""End-to-end tests for the multi-tenant serving layer."""

import pytest

from repro.config import ServeConfig, assasin_sb_config
from repro.errors import ConfigError, ServeError
from repro.kernels import get_kernel
from repro.serve import ServingLayer, TenantSpec, simulate_serve
from repro.ssd.device import ComputationalSSD


@pytest.fixture(scope="module")
def stat_sample():
    device = ComputationalSSD(assasin_sb_config())
    return {"stat": device.sample_kernel(get_kernel("stat"))}


def _trio(interarrival_ns=9_000.0, heavy_weight=4.0):
    return [
        TenantSpec(
            name="gold", weight=heavy_weight, kind="scomp", kernel="stat",
            pages_per_command=4, interarrival_ns=interarrival_ns,
        ),
        TenantSpec(
            name="silver", weight=1.0, kind="scomp", kernel="stat",
            pages_per_command=4, interarrival_ns=interarrival_ns,
        ),
        TenantSpec(
            name="bronze", weight=1.0, kind="scomp", kernel="stat",
            pages_per_command=4, interarrival_ns=interarrival_ns,
        ),
    ]


def test_serve_config_validation():
    with pytest.raises(ConfigError):
        ServeConfig(queue_depth=0)
    with pytest.raises(ConfigError):
        ServeConfig(max_inflight=0)
    with pytest.raises(ConfigError):
        ServeConfig(quantum_pages=-1)
    with pytest.raises(ConfigError):
        ServeConfig(arbitration="lottery")
    with pytest.raises(ConfigError):
        ServeConfig(weights=(1.0, 0.0))


def test_serve_requires_tenants():
    device = ComputationalSSD(assasin_sb_config())
    with pytest.raises(ServeError):
        ServingLayer(device, [])


def test_same_seed_identical_metrics(stat_sample):
    tenants = _trio()
    kwargs = dict(
        serve_config=ServeConfig(arbitration="wrr"),
        duration_ns=400_000.0,
        seed=21,
        samples=stat_sample,
    )
    a = simulate_serve(assasin_sb_config(), tenants, **kwargs)
    b = simulate_serve(assasin_sb_config(), tenants, **kwargs)
    assert a.fingerprint() == b.fingerprint()
    assert a.total_completed > 0


def test_different_seed_different_schedule(stat_sample):
    tenants = _trio()
    a = simulate_serve(
        assasin_sb_config(), tenants, duration_ns=400_000.0, seed=1, samples=stat_sample
    )
    b = simulate_serve(
        assasin_sb_config(), tenants, duration_ns=400_000.0, seed=2, samples=stat_sample
    )
    assert a.fingerprint() != b.fingerprint()


def test_mixed_scomp_read_write_completes(stat_sample):
    tenants = [
        TenantSpec(name="compute", weight=2.0, kind="scomp", kernel="stat",
                   pages_per_command=4, interarrival_ns=15_000.0),
        TenantSpec(name="reader", weight=1.0, kind="read",
                   pages_per_command=4, interarrival_ns=15_000.0),
        TenantSpec(name="writer", weight=1.0, kind="write",
                   pages_per_command=4, interarrival_ns=15_000.0),
    ]
    report = simulate_serve(
        assasin_sb_config(), tenants, duration_ns=400_000.0, seed=5, samples=stat_sample
    )
    for name in ("compute", "reader", "writer"):
        t = report.tenants[name]
        assert t.completed > 0
        assert t.bytes_in == t.completed * 4 * 4096
        assert t.p99_latency_ns >= t.p50_latency_ns > 0
    # Reads and scomp results crossed the link; writes came in from the host.
    device_horizon = report.horizon_ns
    assert device_horizon > 0
    assert report.throughput_gbps > 0
    assert any(u > 0 for u in report.core_utilisation)
    assert any(u > 0 for u in report.channel_utilisation)


def test_completions_posted_to_host_and_cq(stat_sample):
    device = ComputationalSSD(assasin_sb_config())
    layer = ServingLayer(
        device,
        _trio(interarrival_ns=20_000.0),
        ServeConfig(arbitration="drr"),
        seed=3,
        samples=stat_sample,
    )
    report = layer.run(duration_ns=200_000.0)
    assert len(device.host.completions) == report.total_completed
    assert sum(len(p.cq) for p in layer.pairs) == report.total_completed
    # Every submitted-but-not-dropped command was accepted by the host interface.
    accepted = sum(t.submitted - t.dropped for t in report.tenants.values())
    assert len(device.host.submissions) == accepted


def test_closed_loop_bounds_outstanding(stat_sample):
    tenants = [
        TenantSpec(name="batch", kind="scomp", kernel="stat", pages_per_command=4,
                   closed_loop=True, outstanding=3, think_ns=1_000.0),
    ]
    report = simulate_serve(
        assasin_sb_config(), tenants, duration_ns=300_000.0, seed=9, samples=stat_sample
    )
    t = report.tenants["batch"]
    assert t.completed > 10
    assert t.dropped == 0
    # Closed loop: never more than `outstanding` queued at once.
    assert t.max_queue_depth <= 3


def test_open_loop_overload_drops_commands(stat_sample):
    tenants = [
        TenantSpec(name="flood", kind="scomp", kernel="stat", pages_per_command=8,
                   interarrival_ns=500.0),
    ]
    report = simulate_serve(
        assasin_sb_config(),
        tenants,
        ServeConfig(queue_depth=8),
        duration_ns=300_000.0,
        seed=4,
        samples=stat_sample,
    )
    t = report.tenants["flood"]
    assert t.dropped > 0
    assert t.submitted == t.completed + t.dropped
    assert t.max_queue_depth <= 8


def test_weighted_arbitration_shifts_p99(stat_sample):
    """The acceptance property: under identical offered load, WRR gives the
    heavy tenant strictly lower p99 than equal-share round-robin."""
    tenants = _trio(interarrival_ns=9_000.0, heavy_weight=4.0)
    common = dict(duration_ns=800_000.0, seed=7, samples=stat_sample)
    rr = simulate_serve(
        assasin_sb_config(), tenants, ServeConfig(arbitration="rr"), **common
    )
    wrr = simulate_serve(
        assasin_sb_config(), tenants, ServeConfig(arbitration="wrr"), **common
    )
    assert wrr.tenants["gold"].p99_latency_ns < rr.tenants["gold"].p99_latency_ns
    # And the isolation is material, not noise: at least 2x.
    assert wrr.tenants["gold"].p99_latency_ns * 2 < rr.tenants["gold"].p99_latency_ns


def test_weight_overrides_apply(stat_sample):
    tenants = _trio()
    report = simulate_serve(
        assasin_sb_config(),
        tenants,
        ServeConfig(arbitration="wrr", weights=(1.0, 8.0, 1.0)),
        duration_ns=300_000.0,
        seed=13,
        samples=stat_sample,
    )
    assert report.tenants["silver"].weight == 8.0
    assert report.tenants["gold"].weight == 1.0


def test_scomp_without_sample_errors():
    device = ComputationalSSD(assasin_sb_config())
    layer = ServingLayer(
        device,
        [TenantSpec(name="t", kind="read", pages_per_command=2)],
        seed=0,
    )
    from repro.serve.queues import ServeCommand
    from repro.ssd.host_interface import ScompCommand

    rogue = ServeCommand(
        tenant="t",
        command=ScompCommand(command_id=999, kernel="stat", lpa_lists=[[0, 1]]),
        submitted_ns=0.0,
        pages=2,
    )
    with pytest.raises(ServeError):
        layer._service(rogue, 0.0)


def test_serve_duration_must_be_positive(stat_sample):
    device = ComputationalSSD(assasin_sb_config())
    layer = ServingLayer(device, _trio(), samples=stat_sample)
    with pytest.raises(ServeError):
        layer.run(duration_ns=0.0)


def test_device_serve_entry_point(stat_sample):
    device = ComputationalSSD(assasin_sb_config())
    report = device.serve(
        _trio(interarrival_ns=20_000.0),
        duration_ns=200_000.0,
        seed=2,
        samples=stat_sample,
    )
    assert report.config_name == "AssasinSb"
    assert report.total_completed > 0
