"""Tests for scratchpad and ping-pong buffer models."""

import pytest

from repro.config import ScratchpadConfig
from repro.errors import MemoryError_
from repro.mem.scratchpad import PingPongBuffer, Scratchpad
from repro.utils.units import KIB


def test_address_containment():
    sp = Scratchpad(ScratchpadConfig(size_bytes=64 * KIB), base_addr=0x1000_0000)
    assert sp.contains(0x1000_0000)
    assert sp.contains(0x1000_0000 + 64 * KIB - 1)
    assert not sp.contains(0x1000_0000 + 64 * KIB)
    assert not sp.contains(0x0FFF_FFFF)
    assert sp.contains(0x1000_0000, size=64 * KIB)
    assert not sp.contains(0x1000_0000 + 1, size=64 * KIB)


def test_access_latency_beats():
    sp = Scratchpad(ScratchpadConfig(size_bytes=1024, access_latency_cycles=1, port_width_bytes=8))
    assert sp.access_latency(1) == 1
    assert sp.access_latency(8) == 1
    assert sp.access_latency(9) == 2
    assert sp.access_latency(64) == 8


def test_two_cycle_scratchpad_doubles_latency():
    sp = Scratchpad(ScratchpadConfig(size_bytes=1024, access_latency_cycles=2, port_width_bytes=8))
    assert sp.access_latency(8) == 2
    assert sp.access_latency(16) == 4


def test_access_latency_rejects_nonpositive():
    sp = Scratchpad(ScratchpadConfig(size_bytes=1024))
    with pytest.raises(MemoryError_):
        sp.access_latency(0)


def test_stats_recording():
    sp = Scratchpad(ScratchpadConfig(size_bytes=1024))
    sp.record(8, is_write=False)
    sp.record(4, is_write=True)
    assert sp.stats.reads == 1 and sp.stats.bytes_read == 8
    assert sp.stats.writes == 1 and sp.stats.bytes_written == 4


def test_pingpong_layout_and_swap():
    cfg = ScratchpadConfig(size_bytes=4 * KIB)
    pp = PingPongBuffer(cfg, base_addr=0x2000)
    assert pp.ping.base_addr == 0x2000
    assert pp.pong.base_addr == 0x2000 + 4 * KIB
    assert pp.active is pp.ping and pp.shadow is pp.pong
    pp.swap()
    assert pp.active is pp.pong and pp.shadow is pp.ping
    assert pp.swaps == 1
    pp.swap()
    assert pp.active is pp.ping
    assert pp.buffer_bytes == 4 * KIB


def test_pingpong_contains_both_halves():
    cfg = ScratchpadConfig(size_bytes=4 * KIB)
    pp = PingPongBuffer(cfg, base_addr=0)
    assert pp.contains(0) and pp.contains(4 * KIB) and pp.contains(8 * KIB - 1)
    assert not pp.contains(8 * KIB)
