"""Tests for tenant specs and deterministic workload generation."""

import pytest

from repro.config import HostInterfaceConfig
from repro.errors import ServeError
from repro.serve.workload import TenantSpec, WorkloadGenerator, default_tenants
from repro.ssd.host_interface import HostInterface, ReadCommand, ScompCommand, WriteCommand


def _host():
    return HostInterface(HostInterfaceConfig())


def test_spec_validation():
    with pytest.raises(ServeError):
        TenantSpec(name="")
    with pytest.raises(ServeError):
        TenantSpec(name="t", weight=0.0)
    with pytest.raises(ServeError):
        TenantSpec(name="t", kind="erase")
    with pytest.raises(ServeError):
        TenantSpec(name="t", arrival="bursty")
    with pytest.raises(ServeError):
        TenantSpec(name="t", pages_per_command=0)
    with pytest.raises(ServeError):
        TenantSpec(name="t", interarrival_ns=0.0)
    with pytest.raises(ServeError):
        TenantSpec(name="t", closed_loop=True, outstanding=0)
    with pytest.raises(ServeError):
        TenantSpec(name="t", think_ns=-1.0)
    with pytest.raises(ServeError):
        TenantSpec(name="t", pages_per_command=8, region_pages=4)


def test_same_seed_same_arrivals_and_lpas():
    spec = TenantSpec(name="t", pages_per_command=4, region_pages=64)
    a = WorkloadGenerator(spec, index=0, seed=11, lpa_base=0)
    b = WorkloadGenerator(spec, index=0, seed=11, lpa_base=0)
    assert [a.next_interarrival_ns() for _ in range(20)] == [
        b.next_interarrival_ns() for _ in range(20)
    ]
    lpas_a = [a.make_command(_host(), 0.0).command.lpa_lists for _ in range(5)]
    lpas_b = [b.make_command(_host(), 0.0).command.lpa_lists for _ in range(5)]
    assert lpas_a == lpas_b


def test_different_seed_or_index_decorrelates():
    spec = TenantSpec(name="t")
    a = WorkloadGenerator(spec, index=0, seed=1, lpa_base=0)
    b = WorkloadGenerator(spec, index=0, seed=2, lpa_base=0)
    c = WorkloadGenerator(spec, index=1, seed=1, lpa_base=0)
    draws = lambda g: [g.next_interarrival_ns() for _ in range(8)]
    da, db, dc = draws(a), draws(b), draws(c)
    assert da != db and da != dc


def test_fixed_arrival_process_is_constant():
    spec = TenantSpec(name="t", arrival="fixed", interarrival_ns=500.0)
    gen = WorkloadGenerator(spec, index=0, seed=0, lpa_base=0)
    assert {gen.next_interarrival_ns() for _ in range(10)} == {500.0}


def test_commands_stay_inside_tenant_region():
    spec = TenantSpec(name="t", kind="read", pages_per_command=8, region_pages=32)
    gen = WorkloadGenerator(spec, index=0, seed=3, lpa_base=1000)
    host = _host()
    for _ in range(50):
        cmd = gen.make_command(host, 0.0)
        assert min(cmd.command.lpas) >= 1000
        assert max(cmd.command.lpas) < 1032
        # Contiguous run of the right length.
        assert cmd.command.lpas == list(
            range(cmd.command.lpas[0], cmd.command.lpas[0] + 8)
        )


def test_command_kinds_map_to_nvme_types():
    host = _host()
    scomp = WorkloadGenerator(
        TenantSpec(name="s", kind="scomp", kernel="scan"), 0, 0, 0
    ).make_command(host, 5.0)
    read = WorkloadGenerator(TenantSpec(name="r", kind="read"), 1, 0, 0).make_command(host, 5.0)
    write = WorkloadGenerator(TenantSpec(name="w", kind="write"), 2, 0, 0).make_command(host, 5.0)
    assert isinstance(scomp.command, ScompCommand) and scomp.command.kernel == "scan"
    assert isinstance(read.command, ReadCommand)
    assert isinstance(write.command, WriteCommand)
    assert scomp.submitted_ns == 5.0
    # Ids minted from one host interface never collide.
    ids = {scomp.command.command_id, read.command.command_id, write.command.command_id}
    assert len(ids) == 3


def test_default_tenants_are_a_mixed_trio():
    specs = default_tenants()
    assert len(specs) == 3
    kinds = {s.kind for s in specs}
    assert "scomp" in kinds and "read" in kinds
    assert max(s.weight for s in specs) > min(s.weight for s in specs)
