"""Tests for the host cost model and the end-to-end offload engine."""

import pytest

from repro.analytics.cost import HostCostModel
from repro.analytics.engine import AnalyticsEngine
from repro.analytics.queries import query_meta, query_numbers
from repro.analytics.relalg import ExecutionStats
from repro.errors import AnalyticsError
from repro.utils.stats import geomean


@pytest.fixture(scope="module")
def engine():
    return AnalyticsEngine(gen_scale_factor=0.004, target_scale_factor=10.0)


def test_cost_model_linear_in_work():
    cost = HostCostModel()
    stats = ExecutionStats(rows_filtered_in=100, rows_joined=50, build_rows=10,
                           rows_aggregated=20, rows_sorted=5)
    once = cost.relational_ns(stats, 1.0)
    assert cost.relational_ns(stats, 3.0) == pytest.approx(3 * once)
    assert once > 0


def test_parse_slower_than_binary_ingest():
    cost = HostCostModel()
    assert cost.parse_text_ns(1000) > 5 * cost.ingest_binary_ns(1000)


def test_engine_validates_scale(engine):
    with pytest.raises(AnalyticsError):
        AnalyticsEngine(gen_scale_factor=1.0, target_scale_factor=0.5)
    with pytest.raises(AnalyticsError):
        engine.offloaded_latency(1, 0.0)


def test_scanned_bytes_scale_to_target(engine):
    from repro.analytics.schema import SCHEMA

    bytes_q6 = engine.scanned_text_bytes(6)
    assert bytes_q6 == SCHEMA["lineitem"].bytes_at(10.0)
    assert engine.scanned_text_bytes(6, "lineitem") == bytes_q6


def test_offload_beats_pure_cpu_on_lineitem_queries(engine):
    for n in (1, 6, 14):
        pure = engine.pure_cpu_latency(n)
        off = engine.offloaded_latency(n, device_psf_bytes_per_ns=0.63)
        assert off.total_ns < pure.total_ns


def test_faster_device_means_lower_latency(engine):
    slow = engine.offloaded_latency(6, 0.5)
    fast = engine.offloaded_latency(6, 1.0)
    assert fast.total_ns < slow.total_ns


def test_figure15_shape(engine):
    """Paper: Baseline ~1.9x over pure CPU; AssasinSb 1.1-1.5x over Baseline."""
    rates = {"Baseline": 0.63, "AssasinSb": 0.90}
    out = engine.figure15(rates)
    pure_over_base = []
    base_over_sb = []
    for n in query_numbers():
        pure_over_base.append(out["PureCPU"][n].total_ns / out["Baseline"][n].total_ns)
        base_over_sb.append(out["Baseline"][n].total_ns / out["AssasinSb"][n].total_ns)
    assert 1.6 <= geomean(pure_over_base) <= 2.3
    assert 1.1 <= geomean(base_over_sb) <= 1.5
    assert all(1.0 <= s <= 1.6 for s in base_over_sb)


def test_non_lineitem_queries_still_benefit_from_pushdown(engine):
    # Q2 scans no lineitem but its dimension scans are still pushed down.
    meta = query_meta(2)
    assert not meta.uses_lineitem
    pure = engine.pure_cpu_latency(2)
    off = engine.offloaded_latency(2, 0.9)
    assert off.total_ns < pure.total_ns


def test_latency_decomposition_sums(engine):
    lat = engine.pure_cpu_latency(6)
    assert lat.total_ns == pytest.approx(max(lat.storage_ns, lat.host_parse_ns + lat.host_ops_ns))
    off = engine.offloaded_latency(6, 0.8)
    assert off.total_ns == pytest.approx(off.storage_ns + off.host_parse_ns + off.host_ops_ns)


def test_profiles_cached(engine):
    first = engine.profile(3)
    second = engine.profile(3)
    assert first is second
