"""AES-128 reference: FIPS-197 known-answer tests and table properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.aes import (
    SBOX,
    INV_SBOX,
    T_TABLES,
    encrypt_block,
    encrypt_ecb,
    expand_key,
)
from repro.kernels.aes_kernel import LE_T_TABLES


def test_sbox_known_values():
    # FIPS-197 Figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_is_inverse():
    for x in range(256):
        assert INV_SBOX[SBOX[x]] == x


def test_key_expansion_fips197_appendix_a():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    rks = expand_key(key)
    assert rks[0][0] == 0x2B7E1516
    assert rks[1][0] == 0xA0FAFE17  # w[4]
    assert rks[10][3] == 0xB6630CA6  # w[43]


def test_encrypt_block_fips197_appendix_b():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
    assert encrypt_block(plaintext, expand_key(key)) == expected


def test_encrypt_block_nist_sp800_38a_vector():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
    assert encrypt_ecb(plaintext, key) == expected


def test_ecb_multi_block_is_per_block():
    key = bytes(16)
    data = bytes(range(32))
    out = encrypt_ecb(data, key)
    assert out[:16] == encrypt_block(data[:16], expand_key(key))
    assert out[16:] == encrypt_block(data[16:], expand_key(key))


def test_bad_lengths_rejected():
    with pytest.raises(KernelError):
        encrypt_ecb(b"short", bytes(16))
    with pytest.raises(KernelError):
        expand_key(b"short")
    with pytest.raises(KernelError):
        encrypt_block(b"x" * 15, expand_key(bytes(16)))


def test_t_tables_consistent_with_sbox():
    # T0 packs (2s, s, s, 3s) big-endian.
    for x in (0, 1, 0x53, 0xFF):
        s = SBOX[x]
        word = T_TABLES[0][x]
        assert (word >> 16) & 0xFF == s
        assert (word >> 8) & 0xFF == s


def test_le_t_tables_lane_structure():
    # LT_r lane 'row' holds MC coefficient column r applied to S[x].
    from repro.kernels.aes import _gmul

    for x in (0, 7, 0xAB):
        s = SBOX[x]
        assert LE_T_TABLES[0][x] & 0xFF == _gmul(s, 2)
        assert (LE_T_TABLES[0][x] >> 24) & 0xFF == _gmul(s, 3)
        assert LE_T_TABLES[1][x] & 0xFF == _gmul(s, 3)
        assert (LE_T_TABLES[2][x] >> 8) & 0xFF == _gmul(s, 3)


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_encryption_is_key_sensitive(block, key):
    out = encrypt_block(block, expand_key(key))
    assert len(out) == 16
    assert out != block or block == encrypt_block(block, expand_key(key))
