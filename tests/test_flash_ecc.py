"""Tests for the SECDED page ECC, including exhaustive-ish properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlashError
from repro.flash.ecc import (
    ECCStatus,
    decode_page,
    decode_word,
    encode_page,
    encode_word,
    inject_bit_errors,
)

word64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_clean_word_roundtrip():
    for word in (0, 1, 0xDEADBEEFCAFEF00D, (1 << 64) - 1):
        ecc = encode_word(word)
        result = decode_word(word, ecc)
        assert result.status is ECCStatus.CLEAN
        assert result.word == word


@given(word64, st.integers(min_value=0, max_value=63))
def test_single_bit_error_corrected(word, bit):
    ecc = encode_word(word)
    corrupted = word ^ (1 << bit)
    result = decode_word(corrupted, ecc)
    assert result.status is ECCStatus.CORRECTED
    assert result.word == word
    assert result.corrected_bit == bit


@given(word64, st.integers(min_value=0, max_value=7))
def test_single_parity_bit_error_harmless(word, parity_bit):
    """A flip in the spare byte itself must not corrupt the data."""
    ecc = encode_word(word) ^ (1 << parity_bit)
    result = decode_word(word, ecc)
    assert result.word == word
    assert result.status in (ECCStatus.CORRECTED, ECCStatus.CLEAN)


@settings(max_examples=200, deadline=None)
@given(
    word64,
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=0, max_value=63),
)
def test_double_bit_error_detected_not_miscorrected(word, a, b):
    if a == b:
        return
    ecc = encode_word(word)
    corrupted = word ^ (1 << a) ^ (1 << b)
    result = decode_word(corrupted, ecc)
    assert result.status is ECCStatus.UNCORRECTABLE
    # SECDED guarantee: never silently "corrects" to wrong data.
    assert result.word == corrupted


def test_encode_word_rejects_oversize():
    with pytest.raises(FlashError):
        encode_word(1 << 64)


def test_page_roundtrip_and_correction():
    page = bytes(range(256)) * 16  # 4096 bytes
    spare = encode_page(page)
    assert len(spare) == len(page) // 8
    # Clean.
    decoded, status, n = decode_page(page, spare)
    assert decoded == page and status is ECCStatus.CLEAN and n == 0
    # Scatter 5 single-bit errors into distinct codewords and correct them.
    corrupted = bytearray(page)
    for i, off in enumerate((3, 100, 555, 2048, 4000)):
        corrupted[off] ^= 1 << (i % 8)
    decoded, status, n = decode_page(bytes(corrupted), spare)
    assert decoded == page
    assert status is ECCStatus.CORRECTED
    assert n == 5


def test_page_uncorrectable_double_error():
    page = b"\xa5" * 64
    spare = encode_page(page)
    corrupted = bytearray(page)
    corrupted[0] ^= 0b11  # two flips in the same codeword
    _, status, _ = decode_page(bytes(corrupted), spare)
    assert status is ECCStatus.UNCORRECTABLE


def test_page_validation():
    with pytest.raises(FlashError):
        encode_page(b"123")  # not a multiple of 8
    with pytest.raises(FlashError):
        decode_page(b"\x00" * 16, b"\x00")


def test_inject_bit_errors_flips_exactly_n():
    data = bytes(64)
    flipped = inject_bit_errors(data, 7, seed=9)
    diff = sum(bin(a ^ b).count("1") for a, b in zip(data, flipped))
    assert diff == 7
    with pytest.raises(FlashError):
        inject_bit_errors(b"\x00", 9)


def test_raw_bit_error_rate_recovery():
    """A page with sparse random raw errors is fully recovered."""
    page = bytes((i * 37) & 0xFF for i in range(4096))
    spare = encode_page(page)
    # One error per ~1KB: virtually always one per codeword at most.
    corrupted = bytearray(page)
    for off, bit in ((10, 0), (1300, 4), (2900, 7), (3900, 2)):
        corrupted[off] ^= 1 << bit
    decoded, status, n = decode_page(bytes(corrupted), spare)
    assert decoded == page and n == 4


def test_chip_integrated_ecc_corrects_raw_errors():
    """The chip's checked read path repairs sparse raw-NAND upsets."""
    from repro.config import FlashConfig
    from repro.flash.chip import FlashChip

    chip = FlashChip(FlashConfig(), 0, 0)
    payload = bytes((i * 13) & 0xFF for i in range(4096))
    chip.start_program(0, 0, 0, 0, 0.0, data=payload)
    # Clean read.
    data, status = chip.read_data_checked(0, 0, 0, 0)
    assert data == payload and status is ECCStatus.CLEAN
    # Sparse upsets: correctable.
    chip.corrupt_page(0, 0, 0, 0, nbits=3, seed=5)
    data, status = chip.read_data_checked(0, 0, 0, 0)
    assert status in (ECCStatus.CORRECTED, ECCStatus.UNCORRECTABLE)
    if status is ECCStatus.CORRECTED:
        assert data == payload
        assert chip.ecc_corrections >= 1


def test_chip_ecc_flags_heavy_corruption():
    from repro.config import FlashConfig
    from repro.flash.chip import FlashChip

    chip = FlashChip(FlashConfig(), 0, 0)
    payload = b"\x5a" * 64
    chip.start_program(0, 0, 1, 0, 0.0, data=payload)
    chip.corrupt_page(0, 0, 1, 0, nbits=40, seed=2)  # way past SECDED
    _, status = chip.read_data_checked(0, 0, 1, 0)
    assert status is ECCStatus.UNCORRECTABLE
    assert chip.ecc_failures == 1


def test_chip_corrupt_requires_data():
    from repro.config import FlashConfig
    from repro.flash.chip import FlashChip

    chip = FlashChip(FlashConfig(), 0, 0)
    with pytest.raises(FlashError):
        chip.corrupt_page(0, 0, 0, 0, nbits=1)


def test_page_double_error_detected_in_every_codeword():
    """Two flips land in *any* one codeword of a page: always detected."""
    page = bytes((i * 59) & 0xFF for i in range(256))  # 32 codewords
    spare = encode_page(page)
    for word in range(len(page) // 8):
        corrupted = bytearray(page)
        corrupted[word * 8] ^= 1 << 1
        corrupted[word * 8 + 5] ^= 1 << 6
        decoded, status, _ = decode_page(bytes(corrupted), spare)
        assert status is ECCStatus.UNCORRECTABLE
        # The other codewords decode untouched — no collateral damage.
        for other in range(len(page) // 8):
            if other != word:
                assert decoded[other * 8 : other * 8 + 8] == page[other * 8 : other * 8 + 8]


def test_page_spare_area_corruption_leaves_data_intact():
    """A flip in the parity byte itself must never alter the data."""
    page = bytes(range(128))
    spare = encode_page(page)
    for index in (0, 7, len(spare) - 1):
        for bit in range(8):
            bad_spare = bytearray(spare)
            bad_spare[index] ^= 1 << bit
            decoded, status, _ = decode_page(page, bytes(bad_spare))
            assert decoded == page
            assert status in (ECCStatus.CLEAN, ECCStatus.CORRECTED)


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=8, max_size=512), st.integers(min_value=0, max_value=2**31))
def test_seeded_random_page_roundtrip(raw, seed):
    """Random pages round-trip clean, and any single flip is repaired."""
    page = raw + b"\x00" * (-len(raw) % 8)
    spare = encode_page(page)
    decoded, status, n = decode_page(page, spare)
    assert decoded == page and status is ECCStatus.CLEAN and n == 0
    corrupted = inject_bit_errors(page, 1, seed=seed)
    decoded, status, n = decode_page(corrupted, spare)
    assert decoded == page and status is ECCStatus.CORRECTED and n == 1
