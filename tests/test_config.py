"""Tests for the Table IV configuration definitions."""

import pytest

from repro.config import (
    CONFIG_NAMES,
    CacheConfig,
    CoreConfig,
    DataSource,
    EngineKind,
    FlashConfig,
    PrefetcherKind,
    ScratchpadConfig,
    StreamBufferConfig,
    all_configs,
    assasin_sb_config,
    assasin_sp_config,
    baseline_config,
    named_config,
    udp_config,
)
from repro.errors import ConfigError
from repro.utils.units import KIB


def test_all_six_table4_configs_exist():
    assert CONFIG_NAMES == ("Baseline", "UDP", "Prefetch", "AssasinSp", "AssasinSb", "AssasinSb$")
    configs = all_configs()
    assert set(configs) == set(CONFIG_NAMES)


def test_named_config_rejects_unknown():
    with pytest.raises(ConfigError):
        named_config("NotAConfig")


def test_baseline_matches_table4():
    cfg = baseline_config()
    assert cfg.num_cores == 8
    assert cfg.core.frequency_ghz == 1.0
    assert cfg.core.data_source is DataSource.DRAM
    assert cfg.core.l1d.size_bytes == 32 * KIB and cfg.core.l1d.ways == 8
    assert cfg.core.l2.size_bytes == 256 * KIB and cfg.core.l2.ways == 16
    assert cfg.core.l1d.line_bytes == 64
    assert not cfg.core.stream_isa


def test_udp_is_accelerator_with_256k_scratchpad():
    cfg = udp_config()
    assert cfg.core.engine is EngineKind.UDP
    assert cfg.core.scratchpad.size_bytes == 256 * KIB
    assert cfg.core.data_source is DataSource.DRAM


def test_prefetch_uses_dcpt():
    cfg = named_config("Prefetch")
    assert cfg.core.prefetcher is PrefetcherKind.DCPT
    assert cfg.core.l1d is not None and cfg.core.l2 is not None


def test_assasin_sp_has_pingpong_and_bypasses_dram():
    cfg = assasin_sp_config()
    assert cfg.core.data_source is DataSource.FLASH_STREAM
    assert cfg.core.bypasses_dram
    assert cfg.core.pingpong.size_bytes == 32 * KIB  # one half; 2x32 = "64KB I"
    assert cfg.core.scratchpad.size_bytes == 64 * KIB
    assert cfg.core.streambuffer is None


def test_assasin_sb_streambuffer_s8_p2():
    cfg = assasin_sb_config()
    sb = cfg.core.streambuffer
    assert sb.num_streams == 8 and sb.pages_per_stream == 2
    assert sb.capacity_bytes == 64 * KIB
    assert cfg.core.stream_isa


def test_assasin_sb_cache_adds_l1d():
    cfg = named_config("AssasinSb$")
    assert cfg.core.l1d is not None
    assert cfg.core.streambuffer is not None and cfg.core.stream_isa


def test_flash_array_is_8gbps():
    flash = FlashConfig()
    assert flash.channels == 8
    assert flash.array_bandwidth_bytes_per_ns == pytest.approx(8.0)
    assert flash.page_transfer_ns == pytest.approx(4096.0)


def test_flash_capacity_consistent():
    flash = FlashConfig()
    assert flash.capacity_bytes == (
        flash.channels
        * flash.chips_per_channel
        * flash.dies_per_chip
        * flash.planes_per_die
        * flash.blocks_per_plane
        * flash.pages_per_block
        * flash.page_bytes
    )


def test_cache_config_validates_geometry():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=1000, ways=3, line_bytes=64)
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=0, ways=1)


def test_stream_isa_requires_streambuffer():
    with pytest.raises(ConfigError):
        CoreConfig(name="bad", stream_isa=True)


def test_flash_stream_source_needs_buffering():
    with pytest.raises(ConfigError):
        CoreConfig(name="bad", data_source=DataSource.FLASH_STREAM)


def test_prefetcher_requires_l1():
    with pytest.raises(ConfigError):
        CoreConfig(name="bad", prefetcher=PrefetcherKind.DCPT)


def test_channel_local_requires_core_per_channel():
    from repro.config import SSDConfig, assasin_sb_core

    with pytest.raises(ConfigError):
        SSDConfig(name="x", core=assasin_sb_core(), num_cores=4, crossbar=False)
    # One core per channel is legal (the Figure 7 alternative architecture).
    cfg = SSDConfig(name="x", core=assasin_sb_core(), num_cores=8, crossbar=False)
    assert cfg.num_cores == cfg.flash.channels


def test_with_cores_copies():
    cfg = assasin_sb_config()
    scaled = cfg.with_cores(4)
    assert scaled.num_cores == 4 and cfg.num_cores == 8
    assert scaled.core == cfg.core


def test_pipeline_model_validated_and_defaults_static():
    from repro.config import PIPELINE_MODELS, CoreConfig

    assert PIPELINE_MODELS == ("static", "predictive")
    assert assasin_sb_config().core.pipeline_model == "static"
    with pytest.raises(ConfigError, match="pipeline model"):
        CoreConfig(name="x", pipeline_model="oracle")


def test_with_pipeline_model_copies():
    import dataclasses

    cfg = assasin_sb_config()
    predictive = cfg.with_pipeline_model("predictive")
    assert predictive.core.pipeline_model == "predictive"
    assert cfg.core.pipeline_model == "static"  # original untouched
    assert predictive.core == dataclasses.replace(
        cfg.core, pipeline_model="predictive"
    )
    with pytest.raises(ConfigError, match="pipeline model"):
        cfg.with_pipeline_model("oracle")


def test_scratchpad_validation():
    with pytest.raises(ConfigError):
        ScratchpadConfig(size_bytes=-1)
    with pytest.raises(ConfigError):
        ScratchpadConfig(size_bytes=1024, access_latency_cycles=0)


def test_streambuffer_validation():
    with pytest.raises(ConfigError):
        StreamBufferConfig(num_streams=0)
    with pytest.raises(ConfigError):
        StreamBufferConfig(page_bytes=100)
