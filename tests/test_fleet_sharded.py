"""Unit tests for sharded fleet execution (`repro.fleet.sharded`).

The byte-identical differential against the shared loop lives in
test_sim_differential.py; these tests pin the machinery around it —
eligibility rules, device-subset campaign restriction, the worker
protocol, and the checked playback that refuses to diverge silently.
"""

import pytest

from repro.config import FaultConfig, SimConfig, assasin_sb_config
from repro.errors import FleetError
from repro.fleet import (
    FleetConfig,
    FleetCampaign,
    assert_shardable,
    shardable_reasons,
    simulate_fleet,
    simulate_fleet_sharded,
)
from repro.fleet.campaign import default_fleet_tenants
from repro.serve import TenantSpec

DURATION_NS = 120_000.0
SEED = 7


def _shardable_config(devices=3):
    return FleetConfig(num_devices=devices, hedging=False)


def test_default_fleet_config_is_not_shardable_and_reasons_accumulate():
    # The stock config hedges, so it is ineligible out of the box...
    assert shardable_reasons(FleetConfig(), default_fleet_tenants())
    # ... and every violating feature contributes its own reason.
    config = FleetConfig(
        num_devices=4,
        placement="load",
        hedging=True,
        fault=FaultConfig(),
        slow_device=1,
        slow_read_rate=0.2,
        kill_device=2,
        kill_at_ns=1.0,
    )
    tenants = list(default_fleet_tenants()) + [
        TenantSpec(name="closed", kind="read", closed_loop=True, outstanding=2)
    ]
    reasons = " | ".join(shardable_reasons(config, tenants))
    for needle in ("placement", "hedging", "fault", "slow", "killed", "closed-loop"):
        assert needle in reasons, needle
    with pytest.raises(FleetError, match="not shardable"):
        assert_shardable(config, tenants)


def test_shardable_config_has_no_reasons():
    assert shardable_reasons(_shardable_config(), default_fleet_tenants()) == []


def test_sharded_run_rejects_ineligible_campaigns():
    with pytest.raises(FleetError, match="hedging"):
        simulate_fleet_sharded(
            assasin_sb_config(), FleetConfig(num_devices=2, hedging=True),
            duration_ns=DURATION_NS, seed=SEED,
        )


def test_sharded_run_requires_workers():
    with pytest.raises(FleetError, match="shard_workers"):
        simulate_fleet_sharded(
            assasin_sb_config(), _shardable_config(),
            duration_ns=DURATION_NS, seed=SEED, sim=SimConfig(shard_workers=0),
        )


def test_device_subset_validates_indices():
    with pytest.raises(FleetError):
        FleetCampaign(
            assasin_sb_config(), fleet_config=_shardable_config(3),
            duration_ns=DURATION_NS, seed=SEED, device_subset=[0, 3],
        )


def test_restricted_campaign_cannot_run_directly():
    campaign = FleetCampaign(
        assasin_sb_config(), fleet_config=_shardable_config(3),
        duration_ns=DURATION_NS, seed=SEED, device_subset=[0],
    )
    with pytest.raises(FleetError, match="device_subset"):
        campaign.run()


def test_more_workers_than_devices_collapses(monkeypatch):
    """Worker count is clamped to the device count; the report still
    matches the shared loop."""
    monkeypatch.setenv("REPRO_SHARD_INPROCESS", "1")
    reference = simulate_fleet(
        assasin_sb_config(), _shardable_config(2),
        duration_ns=DURATION_NS, seed=SEED,
    )
    sharded = simulate_fleet_sharded(
        assasin_sb_config(), _shardable_config(2),
        duration_ns=DURATION_NS, seed=SEED, sim=SimConfig(shard_workers=8),
    )
    assert sharded.fingerprint_hex() == reference.fingerprint_hex()


def test_simulate_fleet_dispatches_to_sharded(monkeypatch):
    """`simulate_fleet(sim=SimConfig(shard_workers>0))` is the one public
    entry point; it must route through the sharded executor."""
    monkeypatch.setenv("REPRO_SHARD_INPROCESS", "1")
    from repro.fleet import sharded as sharded_mod

    calls = []
    original = sharded_mod.simulate_fleet_sharded

    def spy(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(sharded_mod, "simulate_fleet_sharded", spy)
    simulate_fleet(
        assasin_sb_config(), _shardable_config(2),
        duration_ns=DURATION_NS, seed=SEED,
        sim=SimConfig(engine="fast", shard_workers=2),
    )
    assert calls == [1]


@pytest.mark.parametrize("tamper", ["drop", "extra"])
def test_playback_divergence_raises_not_silently_wrong(monkeypatch, tamper):
    """Corrupt one worker's record stream: the checked playback must raise
    (underrun on a lost record, unconsumed-leftover on an invented one)."""
    monkeypatch.setenv("REPRO_SHARD_INPROCESS", "1")
    from repro.fleet import sharded as sharded_mod

    original = sharded_mod._ShardWorker.handle

    def corrupted(self, msg):
        reply = original(self, msg)
        if msg[0] == "collect":
            kind, records, counters, processed = reply
            for recs in records.values():
                if recs:
                    if tamper == "drop":
                        recs.pop()
                    else:
                        last = recs[-1]
                        recs.append((last[0] + 1_000_000,) + last[1:])
                    break
            return (kind, records, counters, processed)
        return reply

    monkeypatch.setattr(sharded_mod._ShardWorker, "handle", corrupted)
    expected = "underrun" if tamper == "drop" else "unconsumed"
    with pytest.raises(FleetError, match=expected):
        simulate_fleet_sharded(
            assasin_sb_config(), _shardable_config(2),
            duration_ns=DURATION_NS, seed=SEED, sim=SimConfig(shard_workers=2),
        )
