"""Tests for the flat functional memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.memory import FlatMemory


def test_roundtrip_widths():
    mem = FlatMemory(1024)
    mem.store_u8(0, 0xAB)
    mem.store_u16(2, 0xBEEF)
    mem.store_u32(4, 0xDEADBEEF)
    assert mem.load_u8(0) == 0xAB
    assert mem.load_u16(2) == 0xBEEF
    assert mem.load_u32(4) == 0xDEADBEEF


def test_little_endian_layout():
    mem = FlatMemory(16)
    mem.store_u32(0, 0x04030201)
    assert mem.load_bytes(0, 4) == bytes([1, 2, 3, 4])


def test_values_are_masked():
    mem = FlatMemory(16)
    mem.store_u8(0, 0x1FF)
    assert mem.load_u8(0) == 0xFF
    mem.store_u32(4, -1)
    assert mem.load_u32(4) == 0xFFFFFFFF


def test_bounds_checked():
    mem = FlatMemory(8)
    with pytest.raises(MemoryError_):
        mem.load_u32(6)
    with pytest.raises(MemoryError_):
        mem.store_bytes(7, b"ab")
    with pytest.raises(MemoryError_):
        mem.load_bytes(-1, 2)


def test_fill():
    mem = FlatMemory(32)
    mem.fill(8, 8, 0x5A)
    assert mem.load_bytes(8, 8) == b"\x5a" * 8
    assert mem.load_u8(7) == 0 and mem.load_u8(16) == 0


def test_zero_size_memory_rejected():
    with pytest.raises(MemoryError_):
        FlatMemory(0)


@given(st.integers(min_value=0, max_value=60), st.binary(min_size=1, max_size=4))
def test_store_load_bytes_roundtrip(addr, data):
    mem = FlatMemory(64)
    mem.store_bytes(addr, data)
    assert mem.load_bytes(addr, len(data)) == data
