"""Functional tests for the Table II extension kernels."""

import pytest

from repro.config import assasin_sb_core, assasin_sp_core, baseline_core
from repro.core.core import CoreModel
from repro.kernels import get_kernel
from repro.kernels.extensions import (
    DEDUP_BLOCK,
    RLECompressKernel,
    dedup_fingerprint,
)

SIZE = 4096


def run_stream(kernel, inputs):
    return CoreModel(assasin_sb_core()).run(kernel, inputs)


def run_memory(kernel, inputs, core=None):
    return CoreModel(core or baseline_core()).run(kernel, inputs)


def test_replicate_all_forms():
    kernel = get_kernel("replicate")
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)
    r = run_stream(kernel, inputs)
    assert r.outputs == expected
    m = run_memory(kernel, inputs)
    assert m.outputs[0] == expected[0] + expected[1]  # replicas concatenated


def test_dedup_fingerprint_properties():
    a = dedup_fingerprint(b"\x00" * DEDUP_BLOCK)
    b = dedup_fingerprint(b"\x01" + b"\x00" * (DEDUP_BLOCK - 1))
    assert a != 0 and b != 0  # zero is reserved for empty slots
    assert a != b
    assert dedup_fingerprint(b"\x00" * DEDUP_BLOCK) == a  # deterministic


def test_dedup_reference_finds_duplicates():
    kernel = get_kernel("dedup")
    block_a = bytes(range(64))
    block_b = bytes(reversed(range(64)))
    data = block_a + block_b + block_a + block_a
    out = kernel.reference([data])[0]
    indices = [int.from_bytes(out[i : i + 4], "little") for i in range(0, len(out), 4)]
    assert indices == [2, 3]


def test_dedup_all_forms():
    kernel = get_kernel("dedup")
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    assert expected, "generated input should contain duplicates"
    assert run_stream(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected


def test_rle_reference_roundtrip():
    kernel = RLECompressKernel()
    inputs = kernel.make_inputs(SIZE)
    encoded = kernel.reference(inputs)[0]
    assert RLECompressKernel.decompress(encoded) == inputs[0]
    assert len(encoded) < len(inputs[0])  # runs of 1..32 compress


def test_rle_long_runs_split_at_255():
    kernel = RLECompressKernel()
    encoded = kernel.reference([b"\x07" * 600])[0]
    assert encoded == bytes([255, 7, 255, 7, 90, 7])


def test_rle_stream_form_with_state_flush():
    kernel = get_kernel("compress")
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    r = run_stream(kernel, inputs)
    # The final in-progress run stays in function state at EOS; the firmware
    # appends it (length @ +4, value @ +0).
    value = int.from_bytes(r.final_state[0:4], "little")
    length = int.from_bytes(r.final_state[4:8], "little")
    flushed = r.outputs[0] + bytes([length, value])
    assert flushed == expected


def test_rle_memory_form_with_state_flush():
    kernel = get_kernel("compress")
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    m = run_memory(kernel, inputs, assasin_sp_core())
    value = int.from_bytes(m.final_state[0:4], "little")
    length = int.from_bytes(m.final_state[4:8], "little")
    assert m.outputs[0] + bytes([length, value]) == expected


def test_stats_summary_all_forms():
    kernel = get_kernel("stats_summary")
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference_state(inputs)
    assert run_stream(kernel, inputs).final_state == expected
    assert run_memory(kernel, inputs).final_state == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).final_state == expected


def test_stats_summary_known_values():
    kernel = get_kernel("stats_summary")
    data = b"".join(v.to_bytes(4, "little") for v in (5, 1, 9, 3))
    state = kernel.reference_state([data])
    count, total, lo, hi = (
        int.from_bytes(state[i : i + 4], "little") for i in range(0, 16, 4)
    )
    assert (count, total, lo, hi) == (4, 18, 1, 9)
