"""Tests for the ASCII chart renderers."""

from repro.utils.charts import bar_chart, grouped_bar_chart, series_sparkline


def test_bar_chart_scales_to_max():
    out = bar_chart([("a", 4.0), ("b", 2.0)], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 10  # the max fills the width
    assert lines[1].count("#") == 5
    assert "4.00" in lines[0] and "2.00" in lines[1]


def test_bar_chart_labels_aligned():
    out = bar_chart([("long-label", 1.0), ("x", 1.0)])
    lines = out.splitlines()
    assert lines[0].index("|") == lines[1].index("|")


def test_bar_chart_explicit_max_and_title():
    out = bar_chart([("a", 4.0)], width=10, max_value=8.0, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 5  # 4/8 of the width


def test_bar_chart_clamps_overflow():
    out = bar_chart([("a", 20.0)], width=10, max_value=10.0)
    assert out.count("#") == 10


def test_bar_chart_empty():
    assert bar_chart([], title="nothing") == "nothing"


def test_grouped_chart_shares_scale():
    out = grouped_bar_chart(
        [("g1", [("a", 8.0)]), ("g2", [("b", 4.0)])], width=8
    )
    lines = out.splitlines()
    bars = [l for l in lines if "|" in l]
    assert bars[0].count("#") == 8
    assert bars[1].count("#") == 4
    assert "[g1]" in out and "[g2]" in out


def test_sparkline_monotonic():
    spark = series_sparkline([1, 2, 4, 8], width=4)
    assert len(spark) == 4
    assert spark == "".join(sorted(spark, key=spark.index))  # trivially itself


def test_sparkline_empty():
    assert series_sparkline([]) == ""
