"""Tests for cross-device RAID-4 striping and XOR reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet.replication import CrossDeviceRaidMap, xor_pages

PAGE = 64  # bytes; small pages keep hypothesis examples cheap


def _pages(seed, count, width=PAGE):
    return [bytes((seed * 131 + i * 7 + j) & 0xFF for j in range(width)) for i in range(count)]


# -- xor_pages -----------------------------------------------------------------


def test_xor_identity_and_involution():
    a, b = _pages(1, 2)
    assert xor_pages([a]) == a
    assert xor_pages([a, b, b]) == a
    assert xor_pages([xor_pages([a, b]), b]) == a


def test_xor_rejects_empty_and_ragged():
    with pytest.raises(FleetError):
        xor_pages([])
    with pytest.raises(FleetError):
        xor_pages([b"ab", b"abc"])


@settings(deadline=None, max_examples=50)
@given(
    data=st.lists(st.binary(min_size=32, max_size=32), min_size=2, max_size=6),
    lost=st.integers(0, 5),
)
def test_any_lost_page_rebuilds_from_mates(data, lost):
    lost %= len(data)
    parity = xor_pages(data)
    mates = [page for i, page in enumerate(data) if i != lost] + [parity]
    assert xor_pages(mates) == data[lost]


# -- CrossDeviceRaidMap.build --------------------------------------------------


def _alloc_from(counters):
    def alloc(device):
        counters[device] = counters.get(device, 0) + 1
        return 10_000 + counters[device]

    return alloc


def _build(placements, raid_k, device_ids):
    return CrossDeviceRaidMap.build(placements, raid_k, device_ids, _alloc_from({}))


def test_build_covers_every_placement_exactly_once():
    placements = [(d, lpa) for d in range(4) for lpa in range(16)]
    raid = _build(placements, raid_k=3, device_ids=range(4))
    seen = []
    for g in range(len(raid)):
        seen.extend(raid.members(g))
    assert sorted(seen) == sorted(placements)


def test_build_stripes_are_device_disjoint_with_external_parity():
    placements = [(d, lpa) for d in range(5) for lpa in range(9)]
    raid = _build(placements, raid_k=4, device_ids=range(5))
    for g in range(len(raid)):
        member_devices = [d for d, _ in raid.members(g)]
        assert len(set(member_devices)) == len(member_devices)
        assert raid.parity(g)[0] not in member_devices


def test_build_spreads_parity_across_devices():
    placements = [(d, lpa) for d in range(4) for lpa in range(32)]
    raid = _build(placements, raid_k=3, device_ids=range(4))
    homes = [device for device, _ in raid.parity_pages]
    counts = {d: homes.count(d) for d in set(homes)}
    assert len(counts) == 4  # every device carries some parity
    assert max(counts.values()) - min(counts.values()) <= 1


def test_build_two_devices_degenerates_to_replication():
    placements = [(0, 0), (0, 1), (1, 0)]
    raid = _build(placements, raid_k=4, device_ids=[0, 1])
    for g in range(len(raid)):
        (members, parity) = raid.members(g), raid.parity(g)
        assert len(members) == 1  # k clamps to num_devices - 1 == 1
        assert parity[0] != members[0][0]


def test_build_rejects_tiny_fleets_and_stray_devices():
    with pytest.raises(FleetError):
        _build([(0, 0)], raid_k=2, device_ids=[0])
    with pytest.raises(FleetError):
        _build([(7, 0)], raid_k=2, device_ids=[0, 1])


@settings(deadline=None, max_examples=40)
@given(
    per_device=st.lists(st.integers(0, 12), min_size=2, max_size=6),
    raid_k=st.integers(2, 6),
)
def test_build_invariants_hold_for_arbitrary_backlogs(per_device, raid_k):
    device_ids = list(range(len(per_device)))
    placements = [(d, lpa) for d, n in enumerate(per_device) for lpa in range(n)]
    raid = _build(placements, raid_k, device_ids)
    k = min(raid_k, len(device_ids) - 1)
    covered = set()
    for g in range(len(raid)):
        members, parity = raid.members(g), raid.parity(g)
        devices = [d for d, _ in members]
        assert 1 <= len(members) <= k
        assert len(set(devices)) == len(devices)
        assert parity[0] not in devices
        covered.update(members)
    assert covered == set(placements)


# -- constructor validation and queries ----------------------------------------


def test_constructor_rejects_repeated_member_device():
    with pytest.raises(FleetError):
        CrossDeviceRaidMap([(((0, 1), (0, 2)), (1, 9))])


def test_constructor_rejects_parity_on_member_device():
    with pytest.raises(FleetError):
        CrossDeviceRaidMap([(((0, 1), (1, 2)), (0, 9))])


def test_constructor_rejects_page_in_two_stripes():
    with pytest.raises(FleetError):
        CrossDeviceRaidMap(
            [(((0, 1), (1, 2)), (2, 9)), (((0, 1), (3, 2)), (2, 8))]
        )


def test_stripe_mates_resolution():
    raid = CrossDeviceRaidMap([(((0, 1), (1, 2)), (2, 9))])
    assert raid.stripe_mates((0, 1)) == [(1, 2), (2, 9)]
    assert raid.stripe_mates((2, 9)) == [(0, 1), (1, 2)]  # parity -> members
    assert raid.stripe_mates((3, 3)) is None
    assert raid.group_for((1, 2)) == 0
    assert raid.device_pages(2) == [(2, 9)]


def test_end_to_end_rebuild_with_map_and_xor():
    # Stripe three data pages on devices 0-2, parity on 3; losing any
    # device leaves every one of its pages recoverable via stripe_mates.
    data = {(0, 1): _pages(3, 1)[0], (1, 5): _pages(4, 1)[0], (2, 7): _pages(5, 1)[0]}
    parity_addr = (3, 11)
    raid = CrossDeviceRaidMap([(tuple(data), parity_addr)])
    store = dict(data)
    store[parity_addr] = xor_pages(list(data.values()))
    for lost_addr, want in store.items():
        mates = raid.stripe_mates(lost_addr)
        assert xor_pages([store[m] for m in mates]) == want
