"""Same-seed determinism: two identical runs must be byte-identical.

The unified kernel's ordering contract — integer-ns time, events dispatched
by ``(time_ns, priority, seq)`` with ``seq`` in global insertion order — is
what makes whole-device runs reproducible. These tests run the same
workload twice (fresh devices, same seeds) and diff the *full* Perfetto
trace export and the counter-registry snapshot byte for byte; any
nondeterminism in tie-breaking, resource arbitration, or iteration order
shows up as a trace diff.
"""

from repro.config import FaultConfig, ServeConfig, assasin_sb_config, named_config
from repro.faults.campaign import run_campaign
from repro.kernels import get_kernel
from repro.serve import default_tenants
from repro.serve.scheduler import ServingLayer
from repro.ssd.device import ComputationalSSD
from repro.telemetry import Telemetry

DATA = 4 << 20


def concurrent_run():
    telemetry = Telemetry.tracing()
    device = ComputationalSSD(assasin_sb_config(), telemetry=telemetry)
    results = device.offload_concurrent(
        [(get_kernel("stat"), DATA), (get_kernel("scan"), DATA)]
    )
    return results, telemetry


def serve_run():
    telemetry = Telemetry.tracing()
    device = ComputationalSSD(assasin_sb_config(), telemetry=telemetry)
    layer = ServingLayer(device, default_tenants(), config=ServeConfig(), seed=21)
    report = layer.run(400_000.0)
    return report, telemetry


def campaign_run():
    telemetry = Telemetry.tracing()
    report = run_campaign(
        named_config("AssasinSb"),
        FaultConfig(seed=5),
        duration_ns=200_000.0,
        seed=5,
        telemetry=telemetry,
    )
    return report, telemetry


def test_concurrent_offload_double_run_is_byte_identical():
    first, telemetry_a = concurrent_run()
    second, telemetry_b = concurrent_run()
    assert [r.completion_ns for r in first] == [r.completion_ns for r in second]
    assert telemetry_a.tracer.to_json() == telemetry_b.tracer.to_json()
    assert telemetry_a.counters.snapshot() == telemetry_b.counters.snapshot()
    assert telemetry_a.tracer.num_events > 0


def test_serve_double_run_is_byte_identical():
    first, telemetry_a = serve_run()
    second, telemetry_b = serve_run()
    assert first.fingerprint() == second.fingerprint()
    assert telemetry_a.tracer.to_json() == telemetry_b.tracer.to_json()
    assert telemetry_a.counters.snapshot() == telemetry_b.counters.snapshot()
    assert telemetry_a.tracer.num_events > 0


def test_fault_campaign_double_run_is_byte_identical():
    first, telemetry_a = campaign_run()
    second, telemetry_b = campaign_run()
    assert first.fingerprint() == second.fingerprint()
    assert telemetry_a.tracer.to_json() == telemetry_b.tracer.to_json()
    assert telemetry_a.counters.snapshot() == telemetry_b.counters.snapshot()
