"""Concurrent scomp requests: diverse functions share the device (§I, §V-D)."""

import pytest

from repro.config import SSDConfig, assasin_sb_config, assasin_sb_core
from repro.errors import DeviceError
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD
from repro.ssd.firmware import BackgroundIO

DATA = 16 << 20


def test_two_kernels_share_the_device():
    device = ComputationalSSD(assasin_sb_config())
    results = device.offload_concurrent(
        [(get_kernel("stat"), DATA), (get_kernel("raid6"), DATA)]
    )
    assert len(results) == 2
    stat, raid6 = results
    assert stat.kernel_name == "stat" and raid6.kernel_name == "raid6"
    # Cores were partitioned, not shared.
    assert stat.num_cores + raid6.num_cores == 8
    assert stat.num_cores >= 1 and raid6.num_cores >= 1
    # Both make real progress.
    assert stat.throughput_gbps > 1.0
    assert raid6.throughput_gbps > 0.5
    # Aggregate flash consumption stays within the array.
    assert stat.throughput_gbps + raid6.throughput_gbps <= 8.3


def test_concurrency_costs_throughput_vs_exclusive():
    device = ComputationalSSD(assasin_sb_config())
    exclusive = device.offload(get_kernel("stat"), DATA)
    shared_device = ComputationalSSD(assasin_sb_config())
    shared = shared_device.offload_concurrent(
        [(get_kernel("stat"), DATA), (get_kernel("scan"), DATA)]
    )[0]
    assert shared.num_cores < 8
    assert shared.throughput_gbps < exclusive.throughput_gbps


def test_core_partition_proportional_to_data():
    device = ComputationalSSD(assasin_sb_config())
    big, small = device.offload_concurrent(
        [(get_kernel("scan"), 24 << 20), (get_kernel("scan"), 8 << 20)]
    )
    assert big.num_cores > small.num_cores
    # Similar completion times: the partition balances the work.
    assert big.completion_ns == pytest.approx(small.completion_ns, rel=0.35)


def test_concurrent_rejects_channel_local():
    cfg = SSDConfig(name="local", core=assasin_sb_core(), num_cores=8, crossbar=False)
    device = ComputationalSSD(cfg)
    with pytest.raises(DeviceError):
        device.offload_concurrent([(get_kernel("scan"), DATA), (get_kernel("stat"), DATA)])


def test_concurrent_rejects_too_many_requests():
    device = ComputationalSSD(assasin_sb_config())
    with pytest.raises(DeviceError):
        device.offload_concurrent([(get_kernel("scan"), 4 << 20)] * 9)
    with pytest.raises(DeviceError):
        device.firmware.simulate_concurrent([])


def test_pre_kernel_shims_are_gone():
    """The deprecation window is closed: the pre-kernel names no longer exist.

    `Firmware.run_concurrent` (alias of `simulate_concurrent`) and the
    `repro.utils.events.EventQueue` alias of `repro.sim.Simulator` shipped
    one release as deprecated shims; both are now removed so stale callers
    fail loudly instead of drifting.
    """
    device = ComputationalSSD(assasin_sb_config())
    assert not hasattr(device.firmware, "run_concurrent")
    with pytest.raises(ImportError):
        from repro.utils.events import EventQueue  # noqa: F401
    import repro.utils

    assert not hasattr(repro.utils, "EventQueue")
    assert not hasattr(repro.utils, "Event")


def test_background_io_coexists_with_offload():
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("scan")
    sample = device.sample_kernel(kernel)
    background = BackgroundIO(lpas=list(range(0, 512, 5)), interval_ns=8192.0)
    result = device.offload(kernel, DATA, sample=sample, background=background)
    assert background.latencies_ns, "background reads were serviced"
    assert background.mean_latency_ns < 1e6  # stays sub-millisecond
    assert result.throughput_gbps > 5.0  # offload barely perturbed at 0.5 GB/s
