"""Unit tests for the experiment drivers (small sizes; shapes only)."""

import pytest

from repro.config import all_configs, assasin_sb_config, assasin_sp_config, udp_config
from repro.experiments import tables
from repro.experiments.common import (
    adjusted_config,
    offload_throughputs,
    render_table,
    speedups_vs,
)
from repro.experiments import fig05, fig20


def test_render_table_alignment():
    out = render_table(("a", "bee"), [(1, 2.5), (30, 4.0)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "---" in lines[2]
    assert lines[3].endswith("2.500")


def test_adjusted_config_sb_raises_frequency():
    cfg = adjusted_config(assasin_sb_config())
    assert cfg.core.frequency_ghz > 1.05
    assert cfg.core.scratchpad.access_latency_cycles == 2


def test_adjusted_config_sp_two_cycle_scratchpad():
    cfg = adjusted_config(assasin_sp_config())
    assert cfg.core.frequency_ghz == pytest.approx(1.0)
    assert cfg.core.scratchpad.access_latency_cycles == 2
    assert cfg.core.pingpong.access_latency_cycles == 2


def test_adjusted_config_udp_untouched():
    cfg = udp_config()
    assert adjusted_config(cfg) is cfg


def test_offload_throughputs_subset():
    configs = {k: v for k, v in all_configs().items() if k in ("Baseline", "AssasinSb")}
    results = offload_throughputs("scan", data_bytes=4 << 20, configs=configs)
    assert set(results) == {"Baseline", "AssasinSb"}
    speedups = speedups_vs(results)
    assert speedups["Baseline"] == pytest.approx(1.0)
    assert speedups["AssasinSb"] > 1.0


def test_fig05_result_properties():
    result = fig05.run(sample_bytes=16 * 1024)
    assert result.memory_slowdown > 1.0
    assert result.compute_cycles > 0
    assert "Figure 5" in fig05.render(result)


def test_fig20_render_contains_anchors():
    out = fig20.render(fig20.run())
    assert "SB head FIFO" in out
    assert "AssasinSb" in out


def test_tables_render():
    assert "Table I" in tables.render_table1()
    assert "streaming fraction" in tables.render_table2()
    t4 = tables.render_table4()
    assert "AssasinSb$" in t4 and "S=8 P=2" in t4
