"""Tests for crossbar, DRAM buffer, and host interface components."""

import pytest

from repro.config import CoreConfig, DRAMConfig, HostInterfaceConfig, baseline_core, udp_core
from repro.config import assasin_sb_core
from repro.errors import DeviceError
from repro.ssd.crossbar import CROSSBAR_LATENCY_NS, Crossbar
from repro.ssd.dram_buffer import DRAMBuffer
from repro.ssd.host_interface import HostInterface, ReadCommand, ScompCommand


class TestCrossbar:
    def test_enabled_routes_anywhere(self):
        xbar = Crossbar(8, 4, enabled=True)
        assert xbar.allowed(3, 7)
        latency = xbar.route(3, 7, 4096)
        assert latency == CROSSBAR_LATENCY_NS
        assert xbar.core_bytes[3] == 4096
        assert xbar.channel_bytes[7] == 4096

    def test_channel_local_restricts(self):
        xbar = Crossbar(8, 8, enabled=False)
        assert xbar.allowed(2, 2)
        assert not xbar.allowed(2, 3)
        assert xbar.route(2, 2, 100) == 0.0
        with pytest.raises(DeviceError):
            xbar.route(2, 3, 100)

    def test_channel_local_needs_matching_ports(self):
        with pytest.raises(DeviceError):
            Crossbar(8, 4, enabled=False)

    def test_port_bounds(self):
        xbar = Crossbar(2, 2)
        with pytest.raises(DeviceError):
            xbar.route(2, 0, 1)
        with pytest.raises(DeviceError):
            xbar.route(0, 2, 1)


class TestDRAMBuffer:
    def test_staging_occupancy(self):
        buf = DRAMBuffer(DRAMConfig())
        buf.stage(1000)
        buf.stage(500)
        assert buf.staged_bytes == 1500
        buf.release(700)
        assert buf.staged_bytes == 800
        assert buf.peak_staged_bytes == 1500
        with pytest.raises(DeviceError):
            buf.release(10_000)

    def test_staging_overflow(self):
        buf = DRAMBuffer(DRAMConfig(capacity_bytes=1024))
        with pytest.raises(DeviceError):
            buf.stage(2048)

    def test_traffic_baseline_doubles(self):
        # Figure 4's blue arrows: staged in, read back; results go both ways.
        t = DRAMBuffer.traffic_per_input_byte(baseline_core(), 1.0, 0.0)
        assert t.total == pytest.approx(2.0)
        t = DRAMBuffer.traffic_per_input_byte(baseline_core(), 1.0, 0.5)
        assert t.total == pytest.approx(3.0)

    def test_traffic_assasin_bypasses(self):
        t = DRAMBuffer.traffic_per_input_byte(assasin_sb_core(), 0.0, 0.5)
        assert t.total == pytest.approx(0.0)

    def test_traffic_udp_includes_copy(self):
        t = DRAMBuffer.traffic_per_input_byte(udp_core(), 1.0, 0.0)
        assert t.staging_in == 1.0 and t.core_reads >= 1.0

    def test_bandwidth_cap(self):
        buf = DRAMBuffer(DRAMConfig(bandwidth_bytes_per_ns=8.0))
        t = DRAMBuffer.traffic_per_input_byte(baseline_core(), 1.0, 0.0)
        assert buf.bandwidth_cap_bytes_per_ns(t) == pytest.approx(4.0)
        zero = DRAMBuffer.traffic_per_input_byte(assasin_sb_core(), 0.0, 0.0)
        assert buf.bandwidth_cap_bytes_per_ns(zero) == float("inf")


class TestHostInterface:
    def test_transfer_timing(self):
        host = HostInterface(HostInterfaceConfig(bandwidth_bytes_per_ns=8.0, latency_ns=1000.0))
        done = host.transfer(8000, ready_ns=0.0, to_host=True)
        assert done == pytest.approx(1000.0 + 1000.0)
        assert host.bytes_to_host == 8000

    def test_link_serialises(self):
        host = HostInterface(HostInterfaceConfig(bandwidth_bytes_per_ns=8.0, latency_ns=0.0))
        first = host.transfer(8000, 0.0, to_host=True)
        second = host.transfer(8000, 0.0, to_host=False)
        assert second == pytest.approx(first + 1000.0)

    def test_scomp_command_shape(self):
        cmd = ScompCommand(command_id=1, kernel="filter", lpa_lists=[[0, 1, 2], [3]])
        assert cmd.num_streams() == 2
        assert cmd.total_pages() == 4

    def test_duplicate_command_rejected(self):
        host = HostInterface(HostInterfaceConfig())
        host.submit(ReadCommand(command_id=5))
        with pytest.raises(DeviceError):
            host.submit(ReadCommand(command_id=5))

    def test_completion_latency(self):
        host = HostInterface(HostInterfaceConfig())
        cmd = ReadCommand(command_id=host.next_id())
        completion = host.complete(cmd, submitted_ns=100.0, completed_ns=600.0, bytes_transferred=42)
        assert completion.latency_ns == pytest.approx(500.0)
        assert host.completions == [completion]
