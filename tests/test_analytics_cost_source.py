"""CostSource interface: calibrated static fallback and live telemetry."""

import pytest

from repro.analytics.cost import HostCostModel, StaticCostSource
from repro.errors import AnalyticsError
from repro.sql.cost import LiveCostSource
from repro.sql.session import SqlSession
from repro.config import assasin_sb_config
from repro.ssd.device import ComputationalSSD


@pytest.fixture(scope="module")
def device():
    return ComputationalSSD(assasin_sb_config())


def test_host_scan_overlaps_link_and_parse():
    src = StaticCostSource(device_ns_per_page={"psf": 1000.0})
    host = HostCostModel()
    nbytes = 1 << 20
    expected = max(nbytes / src.link_bytes_per_ns, host.parse_text_ns(nbytes))
    assert src.host_scan_ns(nbytes) == pytest.approx(expected)


def test_calibrate_samples_device_rates(device):
    src = StaticCostSource.calibrate(device)
    assert set(src.device_ns_per_page) == {"psf", "parse"}
    assert all(rate > 0 for rate in src.device_ns_per_page.values())
    assert src.num_cores == device.config.num_cores
    assert src.page_bytes == device.config.flash.page_bytes
    # Device scans parallelise across the core pool.
    one = src.device_scan_ns(1)
    assert src.device_scan_ns(16) == pytest.approx(16 * one)


def test_unknown_kernel_rejected(device):
    src = StaticCostSource.calibrate(device)
    with pytest.raises(AnalyticsError):
        src.device_scan_ns(4, kernel="no-such-kernel")


def test_nonpositive_core_count_rejected():
    with pytest.raises(AnalyticsError):
        StaticCostSource(num_cores=0)


def test_live_source_matches_static_on_idle_device():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    assert isinstance(live, LiveCostSource)
    static = StaticCostSource.calibrate(session.device)
    # No completions observed, empty queues, no collectible garbage: the
    # live estimate degrades exactly to the calibrated static one.
    assert live.observations == 0
    assert live.collectible_invalid_pages() == 0
    for pages in (1, 64, 500):
        assert live.device_scan_ns(pages) == pytest.approx(
            static.device_scan_ns(pages)
        )
        assert live.host_scan_ns(pages * 4096) == pytest.approx(
            static.host_scan_ns(pages * 4096)
        )


def test_live_source_learns_from_completions():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    session.drain(session.submit("SELECT COUNT(*) AS n FROM lineitem"))
    assert live.observations > 0
    assert live.ewma_ns_per_page is not None and live.ewma_ns_per_page > 0
    assert live.ewma_cmd_ns is not None and live.ewma_cmd_ns > 0
    counters = session.layer.telemetry.counters
    assert counters.counter("sql.cost.observations").value == live.observations


def test_live_pressure_terms_are_nonnegative():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    session.drain(session.submit("SELECT COUNT(*) AS n FROM orders"))
    now = session.layer.events.now
    assert live.core_backlog_ns(now) >= 0.0
    assert live.queue_pressure_ns() >= 0.0
    assert live.gc_backlog_ns() >= 0.0
