"""CostSource interface: calibrated static fallback and live telemetry."""

import pytest

from repro.analytics.cost import HostCostModel, StaticCostSource
from repro.errors import AnalyticsError
from repro.sql.cost import LiveCostSource
from repro.sql.session import SqlSession
from repro.config import assasin_sb_config
from repro.ssd.device import ComputationalSSD


@pytest.fixture(scope="module")
def device():
    return ComputationalSSD(assasin_sb_config())


def test_host_scan_overlaps_link_and_parse():
    src = StaticCostSource(device_ns_per_page={"psf": 1000.0})
    host = HostCostModel()
    nbytes = 1 << 20
    expected = max(nbytes / src.link_bytes_per_ns, host.parse_text_ns(nbytes))
    assert src.host_scan_ns(nbytes) == pytest.approx(expected)


def test_calibrate_samples_device_rates(device):
    src = StaticCostSource.calibrate(device)
    assert set(src.device_ns_per_page) == {"psf", "parse"}
    assert all(rate > 0 for rate in src.device_ns_per_page.values())
    assert src.num_cores == device.config.num_cores
    assert src.page_bytes == device.config.flash.page_bytes
    # Device scans parallelise across the core pool.
    one = src.device_scan_ns(1)
    assert src.device_scan_ns(16) == pytest.approx(16 * one)


def test_unknown_kernel_rejected(device):
    src = StaticCostSource.calibrate(device)
    with pytest.raises(AnalyticsError):
        src.device_scan_ns(4, kernel="no-such-kernel")


def test_nonpositive_core_count_rejected():
    with pytest.raises(AnalyticsError):
        StaticCostSource(num_cores=0)


def test_live_source_matches_static_on_idle_device():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    assert isinstance(live, LiveCostSource)
    static = StaticCostSource.calibrate(session.device)
    # No completions observed, empty queues, no collectible garbage: the
    # live estimate degrades exactly to the calibrated static one.
    assert live.observations == 0
    assert live.collectible_invalid_pages() == 0
    for pages in (1, 64, 500):
        assert live.device_scan_ns(pages) == pytest.approx(
            static.device_scan_ns(pages)
        )
        assert live.host_scan_ns(pages * 4096) == pytest.approx(
            static.host_scan_ns(pages * 4096)
        )


def test_live_source_learns_from_completions():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    session.drain(session.submit("SELECT COUNT(*) AS n FROM lineitem"))
    assert live.observations > 0
    assert live.ewma_ns_per_page is not None and live.ewma_ns_per_page > 0
    assert live.ewma_cmd_ns is not None and live.ewma_cmd_ns > 0
    counters = session.layer.telemetry.counters
    assert counters.counter("sql.cost.observations").value == live.observations


def test_live_pressure_terms_are_nonnegative():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6)
    live = session.cost
    session.drain(session.submit("SELECT COUNT(*) AS n FROM orders"))
    now = session.layer.events.now
    assert live.core_backlog_ns(now) >= 0.0
    assert live.queue_pressure_ns() >= 0.0
    assert live.gc_backlog_ns() >= 0.0


# -- sampled-predicate selectivity ---------------------------------------------

#: Full-width scan with one highly selective pushed predicate: l_quantity is
#: uniform on 1..50, so ~4% of rows survive. With the column fraction at 1.0
#: the static bound prices the device output at full table width.
SELECTIVE_SQL = "SELECT * FROM lineitem WHERE l_quantity <= 2"

#: Cost constants chosen so the fraction-only bound and the sampled estimate
#: land on opposite sides of the host rate. With text_bytes T, fraction 1.0
#: and BINARY_DENSITY 0.6: host = 0.30*T; device(sel=1.0) ~= 0.35*T (loses);
#: device(sel~0.04) ~= 0.13*T (wins). The placement flip below is exactly
#: the sampled estimate doing its job.
FLIP_HOST = HostCostModel(text_parse_ns_per_byte=0.30)
FLIP_DEVICE_RATES = {"psf": 4000.0, "parse": 4000.0}


def _auto_session():
    session = SqlSession(gen_scale_factor=0.002, duration_ns=5e6, policy="auto")
    live = session.cost
    assert isinstance(live, LiveCostSource)
    live.host = FLIP_HOST
    live.device_ns_per_page = dict(FLIP_DEVICE_RATES)
    return session, live


def test_sampled_selectivity_estimates_the_surviving_fraction():
    session, live = _auto_session()
    table = session.db["lineitem"]
    estimate = live.scan_selectivity(table, lambda row: row["l_quantity"] <= 2)
    assert 0.0 < estimate < 0.15  # ~4% of a uniform 1..50 column
    gauge = session.layer.telemetry.counters.gauge("sql.cost.scan_selectivity")
    assert gauge.value == pytest.approx(estimate)
    # Conservative fallbacks: no predicate, un-evaluable predicate.
    assert live.scan_selectivity(table, None) == 1.0

    def explodes(row):
        raise KeyError("no such column")

    assert live.scan_selectivity(table, explodes) == 1.0
    # Floored at one surviving sample row, never exactly zero.
    assert live.scan_selectivity(table, lambda row: False) > 0.0


def test_static_source_keeps_the_conservative_bound():
    src = StaticCostSource(host=FLIP_HOST, device_ns_per_page=FLIP_DEVICE_RATES)
    assert src.scan_selectivity(object(), lambda row: False) == 1.0


def test_sampled_selectivity_flips_placement_on_selective_filter():
    # Fraction-only pricing (selectivity forced to 1.0) keeps the scan on
    # the host: the full-width output looks too expensive to ship up.
    session, live = _auto_session()
    live.scan_selectivity = lambda table, predicate, at_ns=0.0: 1.0
    record = session.drain(session.submit(SELECTIVE_SQL))
    (bound,) = record.placements
    assert bound.est_selectivity == 1.0
    assert bound.site == "host"

    # The sampled estimate sees ~4% survivors and flips the scan down.
    session, live = _auto_session()
    record = session.drain(session.submit(SELECTIVE_SQL))
    (sampled,) = record.placements
    assert sampled.pushdown and sampled.kernel == "psf"
    assert 0.0 < sampled.est_selectivity < 0.15
    assert sampled.site == "device"
    assert sampled.est_device_ns < sampled.est_host_ns
