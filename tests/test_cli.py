"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "stat" in out and "AssasinSb" in out


def test_offload_command(capsys):
    code, out = run_cli(
        capsys, "offload", "--kernel", "scan", "--config", "AssasinSb", "--data-mib", "4"
    )
    assert code == 0
    assert "throughput" in out and "GB/s" in out
    assert "AssasinSb" in out


def test_offload_with_skew(capsys):
    code, out = run_cli(
        capsys, "offload", "--kernel", "scan", "--config", "AssasinSb",
        "--data-mib", "4", "--skew", "1.0",
    )
    assert code == 0
    # All data on one channel caps the device at ~1 GB/s.
    line = next(l for l in out.splitlines() if "throughput" in l)
    gbps = float(line.split(":")[1].split("GB/s")[0])
    assert gbps <= 1.05


SERVE_ARGS = (
    "serve",
    "--tenants",
    "hot:4:scomp:stat:4:10,batch:1:scomp:scan:8:25,reader:1:read:-:4:15",
    "--duration-us", "300",
    "--seed", "11",
)


def test_serve_command_mixed_tenants(capsys):
    code, out = run_cli(capsys, *SERVE_ARGS)
    assert code == 0
    assert "policy=wrr" in out
    assert "hot" in out and "batch" in out and "reader" in out
    assert "scomp" in out and "read" in out
    assert "p99 us" in out and "core util" in out


def test_serve_command_is_deterministic(capsys):
    _, first = run_cli(capsys, *SERVE_ARGS)
    _, second = run_cli(capsys, *SERVE_ARGS)
    assert first == second


def test_serve_policy_flag(capsys):
    code, out = run_cli(capsys, *SERVE_ARGS, "--policy", "drr")
    assert code == 0
    assert "policy=drr" in out


def test_serve_rejects_bad_tenant_spec(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--tenants", "only-a-name"])


FAULTS_ARGS = ("faults", "--duration-us", "100", "--seed", "7")


def test_faults_command(capsys):
    code, out = run_cli(capsys, *FAULTS_ARGS)
    assert code == 0  # exit status reflects campaign health
    assert "fault campaign" in out and "HEALTHY" in out
    assert "integrity" in out and "golden data" in out


def test_faults_command_is_deterministic(capsys):
    _, first = run_cli(capsys, *FAULTS_ARGS)
    _, second = run_cli(capsys, *FAULTS_ARGS)
    assert first == second


def test_faults_baseline_comparison(capsys):
    code, out = run_cli(capsys, *FAULTS_ARGS, "--baseline")
    assert code == 0
    assert "vs clean baseline" in out and "goodput" in out


@pytest.mark.parametrize("number", ["1", "2", "3", "4"])
def test_table_commands(capsys, number):
    code, out = run_cli(capsys, "table", number)
    assert code == 0
    assert f"Table" in out


def test_figure_20_command(capsys):
    code, out = run_cli(capsys, "figure", "20")
    assert code == 0
    assert "SB head FIFO" in out


def test_figure_5_command(capsys):
    code, out = run_cli(capsys, "figure", "5")
    assert code == 0
    assert "cycle decomposition" in out


def test_tpch_command(capsys):
    code, out = run_cli(capsys, "tpch", "6", "--scale-factor", "0.002")
    assert code == 0
    assert "Q 6" in out


def test_tpch_policy_flag_forces_site(capsys):
    code, out = run_cli(
        capsys, "tpch", "6", "--scale-factor", "0.002", "--policy", "host"
    )
    assert code == 0
    assert "[H]" in out
    code, out = run_cli(
        capsys, "tpch", "6", "--scale-factor", "0.002", "--policy", "device"
    )
    assert code == 0
    assert "[D]" in out


def test_tpch_command_is_deterministic(capsys):
    args = ("tpch", "6", "14", "--scale-factor", "0.002", "--seed", "11")
    _, first = run_cli(capsys, *args)
    _, second = run_cli(capsys, *args)
    assert first == second


def test_sql_execute_flag(capsys):
    code, out = run_cli(
        capsys, "sql", "-e", "SELECT COUNT(*) AS n FROM nation",
        "--scale-factor", "0.002",
    )
    assert code == 0
    assert "| 25 |" in out
    assert "ms simulated" in out


def test_sql_file_batch(tmp_path, capsys):
    script = tmp_path / "queries.sql"
    script.write_text(
        "SELECT COUNT(*) AS n FROM region;\n"
        "SELECT n_name FROM nation ORDER BY n_name LIMIT 1;\n"
    )
    code, out = run_cli(
        capsys, "sql", "-f", str(script), "--scale-factor", "0.002"
    )
    assert code == 0
    assert "| 5 |" in out
    assert "ALGERIA" in out


def test_sql_with_background_tenants(capsys):
    code, out = run_cli(
        capsys, "sql", "-e", "SELECT COUNT(*) AS n FROM orders",
        "--scale-factor", "0.002", "--policy", "device",
        "--tenants", "hot:4:scomp:stat:4:50",
    )
    assert code == 0
    assert "orders->device" in out


def test_unknown_figure_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "99"])


def test_reproduce_writes_report(tmp_path, capsys, monkeypatch):
    # Patch the step list down to the fast static tables to keep this quick.
    from repro.experiments import runner, tables

    monkeypatch.setattr(
        runner,
        "_steps",
        lambda fast: [("Table I", tables.render_table1), ("Table II", tables.render_table2)],
    )
    out_file = tmp_path / "report.txt"
    code, out = run_cli(capsys, "reproduce", "--out", str(out_file))
    assert code == 0
    text = out_file.read_text()
    assert "### Table I" in text and "### Table II" in text


def test_trace_command_writes_valid_chrome_json(tmp_path, capsys):
    import json

    from repro.telemetry import validate_chrome_trace

    out_file = tmp_path / "trace.json"
    code, out = run_cli(
        capsys, "trace", "--duration-us", "120", "--out", str(out_file), "--counters"
    )
    assert code == 0
    assert "trace written" in out and "span tracks" in out
    assert "perfetto" in out.lower()
    assert "flash.reads_served" in out  # --counters dump
    trace = json.loads(out_file.read_text())
    assert validate_chrome_trace(trace) == []


def test_trace_command_is_deterministic(tmp_path, capsys):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    for path in (first, second):
        code, _ = run_cli(
            capsys, "trace", "--duration-us", "120", "--seed", "42", "--out", str(path)
        )
        assert code == 0
    assert first.read_bytes() == second.read_bytes()


FLEET_TENANTS = (
    "hot:4:scomp:stat:4:12:256,reader:1:read:-:4:10:256,writer:1:write:-:4:30:128"
)
FLEET_ARGS = (
    "fleet", "--devices", "4", "--seed", "7",
    "--tenants", FLEET_TENANTS, "--duration-us", "250",
)


def test_fleet_command(capsys):
    code, out = run_cli(capsys, *FLEET_ARGS)
    assert code == 0
    assert "devices=4" in out and "placement=hash" in out and "hedging=on" in out
    assert "fleet tail" in out and "p99.9" in out
    assert "skew" in out and "fingerprint" in out


def test_fleet_command_is_deterministic(capsys):
    _, first = run_cli(capsys, *FLEET_ARGS)
    _, second = run_cli(capsys, *FLEET_ARGS)
    assert first == second


def test_fleet_kill_device_recovers(capsys):
    code, out = run_cli(
        capsys, *FLEET_ARGS, "--kill-device", "1", "--kill-at-us", "100"
    )
    assert code == 0  # exit status reflects integrity of the sweep
    assert "integrity" in out and "[OK]" in out
    assert "cross-device rebuilds" in out


def test_fleet_no_hedge_flag(capsys):
    code, out = run_cli(capsys, *FLEET_ARGS, "--no-hedge")
    assert code == 0
    assert "hedging=off" in out


def test_profile_command_prints_attribution(capsys):
    code, out = run_cli(capsys, "profile", "--kernel", "scan", "--top", "5")
    assert code == 0
    assert "profile scan on AssasinSb" in out
    assert "attribution" in out and "compute" in out


def test_profile_command_aes_memory_config(capsys):
    code, out = run_cli(
        capsys, "profile", "--kernel", "aes", "--config", "Baseline", "--sample-kib", "32"
    )
    assert code == 0
    assert "profile aes on Baseline" in out
