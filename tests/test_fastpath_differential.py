"""Differential conformance suite: fast-path engine vs reference interpreter.

The fast engine (:mod:`repro.isa.fastpath`) must be *bit-identical* to the
reference interpreter — same register files, memory, stream-buffer head/tail
CSRs, retired-instruction counts, cycle totals, and the same exceptions at
trap boundaries. Three layers of evidence:

1. every registered kernel, run through :class:`CoreModel` on both engines
   across the stream, ping-pong, and cache data paths, comparing the full
   :class:`CoreRunResult` (cycles, stall buckets, pipeline stats, DRAM
   traffic, page-touch trace, outputs, final regs/state);
2. a deterministic corpus of >=500 seeded random RV32IM+stream programs
   (loops, faults, stalls, EOS) compared on full architectural state;
3. hypothesis-generated programs for adversarial edge discovery.

Run the seeded corpus alone (the CI smoke job does) with::

    pytest tests/test_fastpath_differential.py -k seeded
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StreamBufferConfig, named_config
from repro.core.core import CoreModel
from repro.errors import ExecutionError
from repro.isa.fastpath import FastEngine
from repro.isa.instructions import Instr
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.kernels.registry import KERNEL_NAMES, get_kernel
from repro.mem.memory import FlatMemory
from repro.mem.streambuffer import StreamBufferSet

# ---------------------------------------------------------------------------
# Shared machinery: run one program on both engines, capture full state.
# ---------------------------------------------------------------------------

MEM_BYTES = 512
SB_CFG = StreamBufferConfig(num_streams=4, pages_per_stream=2, page_bytes=256)
MAX_STEPS = 3000

_ALU_R = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
          "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"]
_ALU_I = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_SHIFT_I = ["slli", "srli", "srai"]
_LOADS = ["lb", "lbu", "lh", "lhu", "lw"]
_STORES = ["sb", "sh", "sw"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

REGS = list(range(1, 16))


def _execute(program, fast, seeds, mem_image, stream_data, open_streams=()):
    """Run on one engine; return (interp, in_set, out_set, error-or-None)."""
    mem = FlatMemory(MEM_BYTES)
    if mem_image:
        mem.store_bytes(0, mem_image)
    ins = StreamBufferSet(SB_CFG, "input")
    outs = StreamBufferSet(SB_CFG, "output")
    for sid, data in enumerate(stream_data):
        if data:
            ins[sid].push(data)
        if sid not in open_streams:
            ins[sid].finish_producing()
    interp = Interpreter(program, mem, in_streams=ins, out_streams=outs)
    for reg, value in seeds:
        interp.regs.write(reg, value)
    err = None
    try:
        if fast:
            FastEngine(program).run(interp, max_steps=MAX_STEPS)
        else:
            interp.run(max_steps=MAX_STEPS)
    except Exception as exc:  # compared across engines below
        err = (type(exc).__name__, str(exc))
    return interp, ins, outs, err


def _state(interp, ins, outs, err):
    streams = []
    for sset in (ins, outs):
        for s in sset.streams:
            streams.append((s.head, s.tail, s.head_csr, s.tail_csr,
                            s.underflows, s.overflow_rejects, s.state.value))
    return {
        "err": err,
        "regs": interp.regs.snapshot(),
        "mem": interp.memory.load_bytes(0, MEM_BYTES),
        "pc": interp.pc,
        "steps": interp.steps,
        "finished": interp.finished,
        "halted": interp.halted,
        "counts": {k.value: v for k, v in interp.instr_counts.items() if v},
        "bytes_in": interp.stream_bytes_in,
        "bytes_out": interp.stream_bytes_out,
        "streams": streams,
    }


def assert_engines_agree(program, seeds=(), mem_image=b"", stream_data=(),
                         open_streams=()):
    ref = _state(*_execute(program, False, seeds, mem_image, stream_data,
                           open_streams))
    fast = _state(*_execute(program, True, seeds, mem_image, stream_data,
                            open_streams))
    if (ref["err"] and ref["err"][1].startswith("exceeded max_steps")
            and fast["err"] == ref["err"]):
        # Runaway-loop backstop: the fast engine checks the budget per
        # superblock dispatch, not per instruction, so mid-run state at the
        # trap may differ by part of one straight-line run. The trap itself
        # (type and message) must still be identical.
        return
    assert fast == ref, f"\nfast={fast}\nref={ref}\nprogram={program.instrs}"


# ---------------------------------------------------------------------------
# Layer 1: every registered kernel through CoreModel, all data paths.
# ---------------------------------------------------------------------------

# Stream path (AssasinSb), ping-pong memory path (AssasinSp), DRAM cache
# path (Baseline). Other configs reuse these three execution shapes.
_KERNEL_CONFIGS = ("AssasinSb", "AssasinSp", "Baseline")
_KERNEL_BYTES = 12 * 1024  # 3 flash pages per stream: exercises refill/wrap


def _core_result(config_name, kernel_name, engine):
    cfg = named_config(config_name).with_exec_engine(engine)
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(_KERNEL_BYTES, seed=23)
    return CoreModel(cfg.core).run(kernel, inputs)


@pytest.mark.parametrize("config_name", _KERNEL_CONFIGS)
@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
def test_kernel_runs_identical(config_name, kernel_name):
    fast = _core_result(config_name, kernel_name, "fast")
    ref = _core_result(config_name, kernel_name, "reference")
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert fast.bytes_in == ref.bytes_in
    assert fast.bytes_out == ref.bytes_out
    assert fast.outputs == ref.outputs
    assert fast.final_state == ref.final_state
    assert fast.final_regs == ref.final_regs
    assert fast.buckets == ref.buckets
    assert fast.pipeline == ref.pipeline
    assert fast.dram_traffic == ref.dram_traffic
    assert fast.page_touches == ref.page_touches
    assert fast.chunks == ref.chunks


# ---------------------------------------------------------------------------
# Layer 1b: pluggable timing models — both costers x both engines (PR-10).
#
# The predictive coster is stateful (predictor tables, hazard latch), so
# engine equivalence is a much stronger claim than for the static model:
# both engines must consult the coster for exactly the same instructions in
# exactly the same order. Any divergence (e.g. costing an aborted sload)
# desynchronises the predictor and shows up as a cycle mismatch here.
# ---------------------------------------------------------------------------


def _model_result(config_name, kernel_name, engine, model):
    cfg = (named_config(config_name)
           .with_exec_engine(engine)
           .with_pipeline_model(model))
    kernel = get_kernel(kernel_name)
    inputs = kernel.make_inputs(_KERNEL_BYTES, seed=23)
    return CoreModel(cfg.core).run(kernel, inputs)


@pytest.mark.parametrize("config_name", _KERNEL_CONFIGS)
@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
def test_predictive_kernel_runs_identical(config_name, kernel_name):
    fast = _model_result(config_name, kernel_name, "fast", "predictive")
    ref = _model_result(config_name, kernel_name, "reference", "predictive")
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert fast.outputs == ref.outputs
    assert fast.final_state == ref.final_state
    assert fast.final_regs == ref.final_regs
    assert fast.buckets == ref.buckets
    assert fast.pipeline == ref.pipeline  # incl. hazard stalls + mispredicts
    assert fast.dram_traffic == ref.dram_traffic
    assert fast.page_touches == ref.page_touches


@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
def test_predictive_changes_cpi_not_architecture(kernel_name):
    """The predictive model reprices cycles but must not perturb execution:
    identical outputs, registers, and retired-instruction counts, with a
    different cycle total whenever the kernel has any priced work."""
    static = _model_result("AssasinSb", kernel_name, "fast", "static")
    pred = _model_result("AssasinSb", kernel_name, "fast", "predictive")
    assert pred.outputs == static.outputs
    assert pred.final_state == static.final_state
    assert pred.final_regs == static.final_regs
    assert pred.instructions == static.instructions
    assert pred.bytes_in == static.bytes_in
    assert pred.bytes_out == static.bytes_out
    if pred.pipeline.hazard_stall_cycles or pred.pipeline.branch_mispredicts:
        assert pred.cycles != static.cycles


def test_predictive_prices_branch_heavy_kernel_differently():
    """Acceptance pin: at least one kernel must actually exercise the
    predictor and hazard logic (otherwise the model proves nothing)."""
    pred = _model_result("AssasinSb", "stat", "fast", "predictive")
    static = _model_result("AssasinSb", "stat", "fast", "static")
    assert pred.cycles != static.cycles
    assert pred.pipeline.hazard_stall_cycles > 0


def test_engine_pipeline_model_mismatch_guard():
    from repro.core.pipeline import PipelineModel, PipelineParams

    program = Program("g", (Instr("halt"),))
    interp = Interpreter(program, FlatMemory(64))
    static_engine = FastEngine(program)
    predictive_pipeline = PipelineModel(None, PipelineParams(), model="predictive")
    with pytest.raises(ExecutionError, match="other timing model"):
        static_engine.run(interp, pipeline=predictive_pipeline)

    predictive_engine = FastEngine(program, model="predictive")
    static_pipeline = PipelineModel(None, PipelineParams(), model="static")
    with pytest.raises(ExecutionError, match="other timing model"):
        predictive_engine.run(interp, pipeline=static_pipeline)


def test_unknown_pipeline_model_rejected():
    with pytest.raises(ExecutionError, match="unknown pipeline model"):
        FastEngine(Program("u", (Instr("halt"),)), model="oracle")


# ---------------------------------------------------------------------------
# Layer 2: deterministic seeded corpus (>=500 random RV32IM+stream programs).
# ---------------------------------------------------------------------------

N_SEEDED_PROGRAMS = 500


def _random_instr(rng, n_hint):
    roll = rng.random()
    if roll < 0.40:  # register/imm ALU, all RV32IM ops incl. MULH*/SRA edges
        sub = rng.random()
        if sub < 0.5:
            return Instr(rng.choice(_ALU_R), rd=rng.choice(REGS),
                         rs1=rng.choice(REGS), rs2=rng.choice(REGS))
        if sub < 0.8:
            return Instr(rng.choice(_ALU_I), rd=rng.choice(REGS),
                         rs1=rng.choice(REGS), imm=rng.randint(-2048, 2047))
        if sub < 0.95:
            return Instr(rng.choice(_SHIFT_I), rd=rng.choice(REGS),
                         rs1=rng.choice(REGS), imm=rng.randint(0, 31))
        return Instr("lui", rd=rng.choice(REGS), imm=rng.randint(0, 0xFFFFF))
    if roll < 0.58:  # loads/stores; occasionally a wild base -> memory fault
        wild = rng.random() < 0.05
        rs1 = rng.choice(REGS) if wild else 0
        imm = rng.randint(0, MEM_BYTES - 8)
        if rng.random() < 0.5:
            return Instr(rng.choice(_LOADS), rd=rng.choice(REGS), rs1=rs1,
                         imm=imm)
        return Instr(rng.choice(_STORES), rs2=rng.choice(REGS), rs1=rs1,
                     imm=imm)
    if roll < 0.80:  # stream extension
        sid = rng.randint(0, SB_CFG.num_streams - 1)
        sub = rng.random()
        if sub < 0.40:
            return Instr("sload", rd=rng.choice(REGS), sid=sid,
                         width=rng.choice((1, 2, 4)))
        if sub < 0.55:
            return Instr("sskip", sid=sid, imm=rng.randint(1, 8))
        if sub < 0.80:
            return Instr("sstore", rs2=rng.choice(REGS), sid=sid,
                         width=rng.choice((1, 2, 4)))
        if sub < 0.90:
            return Instr("savail", rd=rng.choice(REGS), sid=sid)
        return Instr("seos", rd=rng.choice(REGS), sid=sid)
    if roll < 0.95:  # control flow, targets fixed up after assembly
        if rng.random() < 0.8:
            return Instr(rng.choice(_BRANCHES), rs1=rng.choice(REGS),
                         rs2=rng.choice(REGS), imm=-1)
        return Instr("jal", rd=rng.choice(REGS), imm=-1)
    # jalr: register-indirect jump; usually traps on a wild PC, which both
    # engines must report (and leave state) identically.
    return Instr("jalr", rd=rng.choice(REGS), rs1=rng.choice(REGS),
                 imm=rng.randint(0, n_hint))


def _random_program(rng):
    body = [_random_instr(rng, 32) for _ in range(rng.randint(1, 24))]
    if rng.random() < 0.5:
        # Wrap in a guaranteed-bounded counter loop: superblock re-entry from
        # a backward branch is the fast path's bread and butter.
        count = rng.randint(1, 5)
        body = ([Instr("addi", rd=30, rs1=0, imm=count)] + body
                + [Instr("addi", rd=30, rs1=30, imm=-1),
                   Instr("bne", rs1=30, rs2=0, imm=1)])
    body.append(Instr("halt"))
    for pos, instr in enumerate(body):
        if instr.imm == -1 and (instr.op in _BRANCHES or instr.op == "jal"):
            body[pos] = Instr(instr.op, rd=instr.rd, rs1=instr.rs1,
                              rs2=instr.rs2, imm=rng.randint(0, len(body) - 1))
    return Program("seeded", tuple(body))


def _random_environment(rng):
    seeds = [(r, rng.randint(0, 0xFFFFFFFF)) for r in rng.sample(REGS, 6)]
    mem_image = bytes(rng.getrandbits(8) for _ in range(64))
    stream_data = []
    for _ in range(SB_CFG.num_streams):
        n = rng.choice((0, rng.randint(1, 40), rng.randint(200, 512)))
        stream_data.append(bytes(rng.getrandbits(8) for _ in range(n)))
    # Occasionally leave one empty stream producing: sloads on it stall
    # forever and both engines must raise the same unresolvable-stall trap.
    open_streams = (0,) if rng.random() < 0.1 and not stream_data[0] else ()
    return seeds, mem_image, stream_data, open_streams


def test_seeded_corpus_bit_identical():
    rng = random.Random(0xA55A51)
    for _ in range(N_SEEDED_PROGRAMS):
        program = _random_program(rng)
        seeds, mem_image, stream_data, open_streams = _random_environment(rng)
        assert_engines_agree(program, seeds, mem_image, stream_data,
                             open_streams)


# ---------------------------------------------------------------------------
# Layer 3: hypothesis edge discovery.
# ---------------------------------------------------------------------------

alu_instr = st.one_of(
    st.builds(lambda op, rd, rs1, rs2: Instr(op, rd=rd, rs1=rs1, rs2=rs2),
              st.sampled_from(_ALU_R), st.sampled_from(REGS),
              st.sampled_from(REGS), st.sampled_from(REGS)),
    st.builds(lambda op, rd, rs1, imm: Instr(op, rd=rd, rs1=rs1, imm=imm),
              st.sampled_from(_ALU_I), st.sampled_from(REGS),
              st.sampled_from(REGS), st.integers(-2048, 2047)),
    st.builds(lambda op, rd, rs1, imm: Instr(op, rd=rd, rs1=rs1, imm=imm),
              st.sampled_from(_SHIFT_I), st.sampled_from(REGS),
              st.sampled_from(REGS), st.integers(0, 31)),
    st.builds(lambda rd, imm: Instr("lui", rd=rd, imm=imm),
              st.sampled_from(REGS), st.integers(0, 0xFFFFF)),
)
mem_instr = st.one_of(
    st.builds(lambda op, rd, imm: Instr(op, rd=rd, rs1=0, imm=imm),
              st.sampled_from(_LOADS), st.sampled_from(REGS),
              st.integers(0, MEM_BYTES - 8)),
    st.builds(lambda op, rs2, imm: Instr(op, rs2=rs2, rs1=0, imm=imm),
              st.sampled_from(_STORES), st.sampled_from(REGS),
              st.integers(0, MEM_BYTES - 8)),
)
stream_instr = st.one_of(
    st.builds(lambda rd, sid, w: Instr("sload", rd=rd, sid=sid, width=w),
              st.sampled_from(REGS), st.integers(0, 3),
              st.sampled_from((1, 2, 4))),
    st.builds(lambda sid, imm: Instr("sskip", sid=sid, imm=imm),
              st.integers(0, 3), st.integers(1, 8)),
    st.builds(lambda rs2, sid, w: Instr("sstore", rs2=rs2, sid=sid, width=w),
              st.sampled_from(REGS), st.integers(0, 3),
              st.sampled_from((1, 2, 4))),
    st.builds(lambda rd, sid: Instr("savail", rd=rd, sid=sid),
              st.sampled_from(REGS), st.integers(0, 3)),
    st.builds(lambda rd, sid: Instr("seos", rd=rd, sid=sid),
              st.sampled_from(REGS), st.integers(0, 3)),
)
any_instr = st.one_of(alu_instr, mem_instr, stream_instr)
reg_seeds = st.lists(
    st.tuples(st.sampled_from(REGS), st.integers(0, 0xFFFFFFFF)),
    max_size=8)
stream_payloads = st.lists(st.binary(max_size=96), min_size=4, max_size=4)


@settings(max_examples=150, deadline=None)
@given(st.lists(any_instr, min_size=1, max_size=40), reg_seeds,
       stream_payloads)
def test_straightline_programs_bit_identical(instrs, seeds, stream_data):
    program = Program("hyp", tuple(instrs) + (Instr("halt"),))
    assert_engines_agree(program, seeds, b"", stream_data)


@settings(max_examples=80, deadline=None)
@given(st.lists(any_instr, min_size=1, max_size=12), st.integers(1, 6),
       reg_seeds, stream_payloads)
def test_counter_loops_bit_identical(body, count, seeds, stream_data):
    """Backward branches: superblock re-entry each iteration."""
    instrs = ([Instr("addi", rd=28, rs1=0, imm=count)] + body
              + [Instr("addi", rd=28, rs1=28, imm=-1),
                 Instr("bne", rs1=28, rs2=0, imm=1),
                 Instr("halt")])
    assert_engines_agree(Program("hyploop", tuple(instrs)), seeds, b"",
                         stream_data)


# ---------------------------------------------------------------------------
# Targeted trap-boundary cases.
# ---------------------------------------------------------------------------

def test_fall_off_end_traps_identically():
    program = Program("falloff", (Instr("addi", rd=1, rs1=0, imm=5),))
    assert_engines_agree(program)


def test_branch_to_program_length_traps_identically():
    program = Program("branchoff", (Instr("beq", rs1=0, rs2=0, imm=3),
                                    Instr("halt")))
    assert_engines_agree(program)


def test_memory_fault_traps_identically():
    program = Program("oob", (Instr("lui", rd=5, imm=0x80000),
                              Instr("lw", rd=6, rs1=5, imm=0),
                              Instr("halt")))
    assert_engines_agree(program)


def test_unresolvable_stall_traps_identically():
    program = Program("stall", (Instr("sload", rd=5, sid=0, width=4),
                                Instr("halt")))
    assert_engines_agree(program, stream_data=(b"",), open_streams=(0,))


def test_trailing_partial_element_traps_identically():
    # 3 bytes buffered but a 4-byte sload: permanent underflow stall (the
    # firmware pads real streams), reported identically by both engines.
    program = Program("partial", (Instr("sload", rd=5, sid=0, width=4),
                                  Instr("halt")))
    assert_engines_agree(program, stream_data=(b"abc",))


def test_empty_drained_stream_is_eos():
    program = Program("eos", (Instr("sload", rd=5, sid=0, width=4),
                              Instr("halt")))
    assert_engines_agree(program, stream_data=(b"",))


def test_output_overflow_stall_traps_identically():
    cap = SB_CFG.pages_per_stream * SB_CFG.page_bytes
    instrs = ([Instr("addi", rd=7, rs1=0, imm=1)]
              + [Instr("sstore", rs2=7, sid=0, width=4)] * (cap // 4 + 1)
              + [Instr("halt")])
    assert_engines_agree(Program("ovf", tuple(instrs)))


def test_strict_mode_matches_core_model_stall_error():
    program = Program("strict", (Instr("sload", rd=5, sid=0, width=4),
                                 Instr("halt"),))
    mem = FlatMemory(MEM_BYTES)
    ins = StreamBufferSet(SB_CFG, "input")
    outs = StreamBufferSet(SB_CFG, "output")
    interp = Interpreter(program, mem, in_streams=ins, out_streams=outs)
    with pytest.raises(ExecutionError,
                       match="unresolved stream stall at pc=0"):
        FastEngine(program).run(interp, strict_stalls=True)


def test_finished_program_run_is_noop():
    program = Program("done", (Instr("halt"),))
    interp = Interpreter(program, FlatMemory(MEM_BYTES))
    engine = FastEngine(program)
    engine.run(interp)
    assert interp.halted and interp.steps == 1
    engine.run(interp)  # reference run() is a no-op on a finished program
    assert interp.steps == 1


def test_fractional_pipeline_params_fall_back_to_reference():
    """Non-integer latencies break exact batched accounting, so the fast
    path refuses to compile and CoreModel silently uses the reference."""
    from repro.core.pipeline import PipelineParams
    from repro.isa.fastpath import FastpathUnsupported

    odd = PipelineParams(mul_extra_cycles=2.5)
    with pytest.raises(FastpathUnsupported, match="mul_extra_cycles"):
        FastEngine(Program("p", (Instr("halt"),)), odd)

    cfg = named_config("AssasinSb")
    kernel = get_kernel("stat")
    inputs = kernel.make_inputs(4 * 1024, seed=9)
    via_fast_cfg = CoreModel(cfg.core, pipeline_params=odd).run(kernel, inputs)
    via_reference = CoreModel(
        cfg.with_exec_engine("reference").core, pipeline_params=odd
    ).run(kernel, inputs)
    assert via_fast_cfg.cycles == via_reference.cycles
    assert via_fast_cfg.instructions == via_reference.instructions
    assert via_fast_cfg.outputs == via_reference.outputs


def test_engine_rejects_foreign_interpreter():
    engine = FastEngine(Program("a", (Instr("halt"),)))
    other = Interpreter(Program("b", (Instr("halt"),)), FlatMemory(64))
    with pytest.raises(ExecutionError, match="different program"):
        engine.run(other)


def test_run_summary_matches_reference_summary():
    from repro.isa.fastpath import run_summary

    program = Program("sum", (Instr("addi", rd=1, rs1=0, imm=3),
                              Instr("mul", rd=2, rs1=1, rs2=1),
                              Instr("halt")))
    ref = Interpreter(program, FlatMemory(64))
    expected = ref.run()
    fast = Interpreter(program, FlatMemory(64))
    FastEngine(program).run(fast)
    assert run_summary(fast) == expected


def test_exceeded_max_steps_raises_like_reference():
    program = Program("spin", (Instr("beq", rs1=0, rs2=0, imm=0),))
    interp = Interpreter(program, FlatMemory(64))
    with pytest.raises(ExecutionError, match="exceeded max_steps=50"):
        FastEngine(program).run(interp, max_steps=50)


def test_profiled_core_model_uses_reference_and_matches_fast():
    """Profiler attribution (PR-3) is untouched: profiled runs fall back to
    the reference loop yet produce the same architectural result."""
    from repro.telemetry.profiler import IsaProfiler

    cfg = named_config("AssasinSb")
    kernel = get_kernel("stat")
    inputs = kernel.make_inputs(8 * 1024, seed=5)
    plain = CoreModel(cfg.core).run(kernel, inputs)
    profiled_core = CoreModel(cfg.core)
    profiled_core.profiler = IsaProfiler()
    profiled = profiled_core.run(kernel, inputs)
    assert profiled.cycles == plain.cycles
    assert profiled.instructions == plain.instructions
    assert profiled.outputs == plain.outputs
    assert profiled_core.profiler.total_cycles == pytest.approx(profiled.cycles)
    assert profiled_core.profiler.total_instructions == profiled.instructions
