"""Tests for the design-space exploration harness (``repro.dse``).

Pins the sweep grid shape, per-point pricing plumbing, Pareto dominance
semantics, and — the acceptance-critical property — byte-identical JSON
reports across same-seed runs.
"""

import json

import pytest

from repro.config import DataSource
from repro.dse import (
    PointResult,
    SweepSpec,
    dominates,
    evaluate_point,
    mark_pareto,
    point_config,
    point_core,
    render_table,
    report_json,
    run_sweep,
)
from repro.errors import ConfigError

# A 2-point spec keeps unit runs fast; the full default grid is exercised
# once by the (MiB-scale) determinism test and by the benchmark job.
_TINY = SweepSpec(
    cores=(4,),
    geometries=("sb-S8P2", "sp"),
    pipeline_models=("static",),
    kernels=("stat",),
    data_bytes=1 << 20,
    sample_bytes=4 * 1024,
)


# ---------------------------------------------------------------------------
# Spec and geometry parsing
# ---------------------------------------------------------------------------

def test_default_grid_has_at_least_12_points():
    assert SweepSpec().num_points >= 12


def test_geometry_parsing():
    sb = point_core("sb-S4P2", "static")
    assert sb.streambuffer.num_streams == 4
    assert sb.streambuffer.pages_per_stream == 2
    assert sb.stream_isa and sb.data_source is DataSource.FLASH_STREAM
    sp = point_core("sp", "predictive")
    assert sp.pingpong is not None and sp.streambuffer is None
    assert sp.pipeline_model == "predictive"
    with pytest.raises(ConfigError, match="unknown geometry"):
        point_core("l1-32k", "static")


def test_point_config_carries_label_and_cores():
    cfg = point_config("sb-S8P2", 4, "predictive", "lbl")
    assert cfg.name == "lbl" and cfg.core.name == "lbl"
    assert cfg.num_cores == 4
    assert cfg.core.pipeline_model == "predictive"


def test_spec_validates_axes():
    with pytest.raises(ConfigError, match="at least one value"):
        SweepSpec(cores=())
    with pytest.raises(ConfigError, match="unknown geometry"):
        SweepSpec(geometries=("tape",))
    with pytest.raises(ConfigError, match="unknown pipeline model"):
        SweepSpec(pipeline_models=("oracle",))
    with pytest.raises(ConfigError, match="unknown arbitration"):
        SweepSpec(arbitrations=("fifo",))
    with pytest.raises(ConfigError, match="positive"):
        SweepSpec(data_bytes=0)


# ---------------------------------------------------------------------------
# Point evaluation
# ---------------------------------------------------------------------------

def test_evaluate_point_prices_all_axes():
    point = evaluate_point(_TINY, 4, "sb-S8P2", "static", "wrr")
    assert point.label == "c4-sb-S8P2-static-wrr"
    assert point.perf_gbps > 0
    assert point.power_mw > 0 and point.area_mm2 > 0
    assert set(point.throughput_gbps) == {"stat"}
    assert point.instructions > 0 and point.sample_cycles > 0
    assert point.frequency_ghz == pytest.approx(1 / point.period_ns)
    assert point.serve_p99_us is None  # probe off for a 1-policy sweep


def test_predictive_point_differs_from_static():
    static = evaluate_point(_TINY, 4, "sb-S8P2", "static", "wrr")
    pred = evaluate_point(_TINY, 4, "sb-S8P2", "predictive", "wrr")
    assert pred.sample_cycles != static.sample_cycles
    assert pred.hazard_stall_cycles > 0
    # The predictor SRAM makes the predictive core cost real silicon.
    assert pred.power_mw > static.power_mw
    assert pred.area_mm2 > static.area_mm2


def test_serve_probe_runs_when_arbitrations_swept():
    spec = SweepSpec(
        cores=(4,), geometries=("sb-S8P2",), pipeline_models=("static",),
        arbitrations=("rr", "wrr"), kernels=("stat",),
        data_bytes=1 << 20, sample_bytes=4 * 1024,
    )
    point = evaluate_point(spec, 4, "sb-S8P2", "static", "rr")
    assert point.serve_p99_us is not None and point.serve_p99_us > 0


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------

def _pt(label, perf, power, area):
    return PointResult(
        label=label, num_cores=4, geometry="sp", pipeline_model="static",
        arbitration="wrr", period_ns=1.0, frequency_ghz=1.0,
        perf_gbps=perf, power_mw=power, area_mm2=area,
    )


def test_dominates_semantics():
    a = _pt("a", 2.0, 50.0, 1.0)
    worse = _pt("b", 1.0, 60.0, 2.0)
    tied = _pt("c", 2.0, 50.0, 1.0)
    tradeoff = _pt("d", 3.0, 80.0, 1.0)
    assert dominates(a, worse)
    assert not dominates(worse, a)
    assert not dominates(a, tied) and not dominates(tied, a)  # equal: neither
    assert not dominates(a, tradeoff) and not dominates(tradeoff, a)


def test_mark_pareto_keeps_only_non_dominated():
    pts = [
        _pt("best-perf", 3.0, 80.0, 2.0),
        _pt("best-power", 1.0, 40.0, 1.5),
        _pt("dominated", 0.9, 50.0, 1.6),
        _pt("balanced", 2.0, 60.0, 1.0),
    ]
    mark_pareto(pts)
    assert [p.label for p in pts if p.pareto] == [
        "best-perf", "best-power", "balanced"
    ]


def test_sweep_marks_a_nonempty_proper_frontier():
    result = run_sweep(_TINY)
    assert len(result.points) == _TINY.num_points == 2
    assert 1 <= len(result.pareto_points) <= len(result.points)


# ---------------------------------------------------------------------------
# Report determinism and rendering
# ---------------------------------------------------------------------------

def test_same_seed_reports_byte_identical():
    first = report_json(run_sweep(_TINY))
    second = report_json(run_sweep(_TINY))
    assert first == second


def test_report_round_trips_as_json():
    result = run_sweep(_TINY)
    report = json.loads(report_json(result))
    assert report["num_points"] == 2
    assert len(report["points"]) == 2
    assert set(report["pareto"]) <= {p["label"] for p in report["points"]}
    assert report["spec"]["kernels"] == ["stat"]
    for record in report["points"]:
        assert record["perf_gbps"] > 0


def test_render_table_stars_frontier_rows():
    result = run_sweep(_TINY)
    text = render_table(result)
    assert "Pareto frontier" in text
    starred = [ln for ln in text.splitlines() if ln.startswith("* ")]
    assert len(starred) == len(result.pareto_points)


def test_cli_dse_smoke(capsys):
    from repro.__main__ import main

    rc = main([
        "dse", "--cores", "4", "--geometries", "sp",
        "--pipeline-models", "static", "--kernels", "stat",
        "--data-mib", "1", "--sample-kib", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "c4-sp-static-wrr" in out and "Pareto frontier" in out
