"""Functional equivalence: ISA programs (both forms) vs Python references.

Every kernel is executed through the CoreModel on three engine classes —
stream (AssasinSb), DRAM-staged (Baseline) and ping-pong-staged (AssasinSp)
— and must reproduce its reference outputs/state bit-exactly.
"""

import pytest

from repro.config import assasin_sb_core, assasin_sp_core, baseline_core
from repro.core.core import CoreModel
from repro.kernels import get_kernel

SIZE = 4096  # small windows keep the interpreted runs fast


def run_stream(kernel, inputs):
    return CoreModel(assasin_sb_core()).run(kernel, inputs)


def run_memory(kernel, inputs, core=None):
    return CoreModel(core or baseline_core()).run(kernel, inputs)


@pytest.mark.parametrize("name", ["stat", "scan"])
def test_state_kernels_all_forms(name):
    kernel = get_kernel(name)
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference_state(inputs)
    assert run_stream(kernel, inputs).final_state == expected
    assert run_memory(kernel, inputs).final_state == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).final_state == expected


@pytest.mark.parametrize("name", ["filter", "select", "parse"])
def test_output_kernels_all_forms(name):
    kernel = get_kernel(name)
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    assert run_stream(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected


def test_psf_all_forms():
    kernel = get_kernel("psf", filter_lo=2_000_000, filter_hi=8_000_000)
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    assert expected, "test input should select some rows"
    assert run_stream(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected


def test_raid4_all_forms():
    kernel = get_kernel("raid4", k=4)
    inputs = kernel.make_inputs(SIZE)
    expected = kernel.reference(inputs)[0]
    assert run_stream(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected


def test_raid6_stream_form():
    kernel = get_kernel("raid6", k=4)
    inputs = kernel.make_inputs(SIZE)
    p, q = kernel.reference(inputs)
    result = run_stream(kernel, inputs)
    assert result.outputs[0] == p
    assert result.outputs[1] == q


def test_raid6_memory_form_single_chunk():
    # The memory form lays out P then Q per chunk; with one chunk the
    # concatenated output splits cleanly.
    kernel = get_kernel("raid6", k=4)
    inputs = kernel.make_inputs(2048)
    p, q = kernel.reference(inputs)
    result = run_memory(kernel, inputs)
    stripe = len(inputs[0])
    assert result.outputs[0][:stripe] == p
    assert result.outputs[0][stripe:] == q


def test_aes_stream_and_memory_forms():
    kernel = get_kernel("aes")
    inputs = kernel.make_inputs(512)  # AES is ~60 cyc/B; keep it small
    expected = kernel.reference(inputs)[0]
    assert run_stream(kernel, inputs).outputs[0] == expected
    assert run_memory(kernel, inputs).outputs[0] == expected


def test_chunked_memory_run_matches_unchunked():
    # AssasinSp staging chunks at 32 KiB halves: a 80 KiB input forces
    # multiple chunks; parser state must survive the chunk boundary.
    kernel = get_kernel("parse")
    inputs = kernel.make_inputs(80 * 1024)
    expected = kernel.reference(inputs)[0]
    result = run_memory(kernel, inputs, assasin_sp_core())
    assert result.chunks > 1
    assert result.outputs[0] == expected


def test_filter_selectivity_reasonable():
    kernel = get_kernel("filter")
    inputs = kernel.make_inputs(256 * 1024)
    selected = len(kernel.reference(inputs)[0]) / len(inputs[0])
    assert 0.2 * kernel.expected_selectivity < selected < 5 * kernel.expected_selectivity


def test_bytes_accounting():
    kernel = get_kernel("select")
    inputs = kernel.make_inputs(SIZE)
    result = run_stream(kernel, inputs)
    assert result.bytes_in == len(inputs[0])
    assert result.bytes_out == len(inputs[0]) // 32 * 12
    assert result.instructions > 0
    assert result.cycles >= result.instructions  # scalar in-order
