"""Tests for the fleet consistent-hash ring and placement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet.placement import HashRing, Placement, ring_hash

KEYS = [f"tenant{t}/{s}" for t in range(4) for s in range(500)]


def test_ring_hash_is_stable_and_unsalted():
    # blake2b, not the process-salted builtin hash(): the same key must map
    # to the same point in every process, or same-seed runs would diverge.
    assert ring_hash("tenant0/0") == ring_hash("tenant0/0")
    assert ring_hash("tenant0/0") != ring_hash("tenant0/1")
    assert ring_hash("x") == int.from_bytes(
        __import__("hashlib").blake2b(b"x", digest_size=8).digest(), "big"
    )


def test_lookup_deterministic_across_ring_instances():
    a = HashRing([0, 1, 2, 3], virtual_nodes=64)
    b = HashRing([0, 1, 2, 3], virtual_nodes=64)
    assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]


def test_devices_property_preserves_insertion_order():
    ring = HashRing([3, 1, 2], virtual_nodes=8)
    assert ring.devices == [3, 1, 2]


def test_imbalance_bounded_at_64_virtual_nodes():
    # Large flat key population: the per-key noise of the tenant/shard set
    # washes out and the ring's intrinsic spread is what's measured.
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    flat = [f"k/{i}" for i in range(5000)]
    assert ring.imbalance(flat) <= 0.15


def test_more_virtual_nodes_smooth_the_distribution():
    coarse = HashRing(list(range(8)), virtual_nodes=4)
    fine = HashRing(list(range(8)), virtual_nodes=256)
    assert fine.imbalance(KEYS) < coarse.imbalance(KEYS)


def test_shard_counts_cover_every_key():
    ring = HashRing([0, 1, 2], virtual_nodes=64)
    counts = ring.shard_counts(KEYS)
    assert sum(counts.values()) == len(KEYS)
    assert set(counts) <= {0, 1, 2}


def test_add_device_moves_only_keys_bound_for_it():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.add_device(4)
    after = {k: ring.lookup(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    # Consistent hashing: a key either stays put or lands on the newcomer.
    assert all(after[k] == 4 for k in moved)
    # And roughly 1/(n+1) of the keyspace moves, not all of it.
    assert len(moved) / len(KEYS) < 2 / 5


def test_remove_device_moves_only_its_keys():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    before = {k: ring.lookup(k) for k in KEYS}
    ring.remove_device(2)
    after = {k: ring.lookup(k) for k in KEYS}
    for k in KEYS:
        if before[k] != 2:
            assert after[k] == before[k]
        else:
            assert after[k] != 2


@settings(deadline=None, max_examples=40)
@given(
    devices=st.lists(st.integers(0, 31), min_size=2, max_size=8, unique=True),
    newcomer=st.integers(32, 40),
    vnodes=st.integers(4, 64),
)
def test_minimal_remap_property(devices, newcomer, vnodes):
    keys = [f"k/{i}" for i in range(200)]
    ring = HashRing(devices, virtual_nodes=vnodes)
    before = {k: ring.lookup(k) for k in keys}
    ring.add_device(newcomer)
    for k in keys:
        assert ring.lookup(k) in (before[k], newcomer)
    ring.remove_device(newcomer)
    assert {k: ring.lookup(k) for k in keys} == before


def test_candidates_are_distinct_and_in_ring_order():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    for key in KEYS[:32]:
        cands = ring.candidates(key, 3)
        assert len(cands) == 3
        assert len(set(cands)) == 3
        assert cands[0] == ring.lookup(key)


# -- Placement policies --------------------------------------------------------


def test_placement_home_matches_ring_lookup():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    placement = Placement(ring)
    for key in KEYS[:32]:
        assert placement.home(key) == ring.lookup(key)


def test_placement_route_skips_dead_devices():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    key = KEYS[0]
    home = ring.lookup(key)
    placement = Placement(ring, fanout=4, healthy=lambda d: d != home)
    target = placement.route(key)
    assert target is not None and target != home


def test_placement_route_none_when_all_dead():
    ring = HashRing([0, 1], virtual_nodes=16)
    placement = Placement(ring, healthy=lambda d: False)
    assert placement.route(KEYS[0]) is None


def test_load_policy_prefers_idle_candidate_for_spread_traffic():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    key = KEYS[0]
    home = ring.lookup(key)
    loads = {d: 0.0 for d in range(4)}
    loads[home] = 100.0
    placement = Placement(ring, policy="load", fanout=4, load_of=loads.__getitem__)
    assert placement.route(key, spread=True) != home
    # Reads keep data gravity: without spread, the home wins regardless.
    assert placement.route(key) == home


def test_peers_excludes_and_filters():
    ring = HashRing([0, 1, 2, 3], virtual_nodes=64)
    placement = Placement(ring, healthy=lambda d: d != 2)
    peers = placement.peers(KEYS[0], exclude=0)
    assert 0 not in peers and 2 not in peers
    assert set(peers) == {1, 3}


def test_empty_ring_lookup_rejected():
    ring = HashRing([0], virtual_nodes=8)
    ring.remove_device(0)
    with pytest.raises(FleetError):
        ring.lookup("k")


def test_duplicate_device_rejected():
    with pytest.raises(FleetError):
        HashRing([0, 0], virtual_nodes=8)
