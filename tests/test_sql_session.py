"""SqlSession: extents, placement policies, serve integration, GC, REPL."""

import dataclasses
import io
import math

import pytest

from repro.analytics.schema import SCHEMA, TABLE_NAMES
from repro.config import assasin_sb_config
from repro.errors import SqlError
from repro.serve.workload import TenantSpec
from repro.sql.repl import SqlRepl, render_table
from repro.sql.session import MORSEL_PAGES, SQL_TENANT, QueryRecord, SqlSession


def make_session(**kwargs):
    kwargs.setdefault("gen_scale_factor", 0.002)
    kwargs.setdefault("duration_ns", 5e6)
    return SqlSession(**kwargs)


def test_extents_tile_the_tenant_region_contiguously():
    session = make_session()
    base = session.layer.region_base[SQL_TENANT]
    cursor = base
    page = session.device.config.flash.page_bytes
    for name in TABLE_NAMES:
        extent = session.extents[name]
        assert extent.base_lpa == cursor
        assert extent.pages == max(1, math.ceil(extent.text_bytes / page))
        cursor += extent.pages


def test_morsel_count_matches_extent_pages():
    session = make_session(policy="device")
    record = session.drain(session.submit("SELECT COUNT(*) AS n FROM lineitem"))
    extent = session.extents["lineitem"]
    assert record.commands == math.ceil(extent.pages / MORSEL_PAGES)


def test_policy_forces_placement_site():
    for policy, attr in (("host", "host_scans"), ("device", "device_scans")):
        session = make_session(policy=policy)
        record = session.drain(
            session.submit("SELECT COUNT(*) AS n FROM orders")
        )
        assert getattr(record, attr) == len(record.placements) == 1


def test_sql_tenant_appears_in_serve_report():
    session = make_session(policy="device")
    records = session.run_serial(
        ["SELECT COUNT(*) AS n FROM nation", "SELECT COUNT(*) AS n FROM region"]
    )
    report = session.finish()
    assert report.policy == session.policy
    sql_stats = report.serve.tenants[SQL_TENANT]
    assert sql_stats.completed == sum(r.commands for r in records)


def test_gc_fires_under_overwrite_traffic():
    cfg = assasin_sb_config()
    cfg = dataclasses.replace(
        cfg,
        flash=dataclasses.replace(
            cfg.flash,
            channels=4, chips_per_channel=2, dies_per_chip=1,
            planes_per_die=2, pages_per_block=64, blocks_per_plane=256,
        ),
    )
    writer = TenantSpec(
        name="writer", weight=1.0, kind="write", overwrite=True,
        pages_per_command=16, interarrival_ns=50_000.0, region_pages=2048,
    )
    session = make_session(
        config=cfg, policy="device", tenants=(writer,), duration_ns=3e7,
    )
    session.drain(session.submit("SELECT COUNT(*) AS n FROM lineitem"))
    session.finish()
    counters = session.layer.telemetry.counters
    assert counters.counter("gc.collections").value > 0
    assert counters.counter("gc.pages_relocated").value > 0


def test_invalid_policy_rejected():
    with pytest.raises(SqlError):
        make_session(policy="gpu")


def test_incomplete_record_has_no_latency_or_fingerprint():
    record = QueryRecord(sql="", policy="auto", submitted_ns=0.0)
    with pytest.raises(SqlError):
        record.latency_ns
    with pytest.raises(SqlError):
        record.fingerprint()


# -- REPL ------------------------------------------------------------------


def repl(**kwargs):
    out = io.StringIO()
    return SqlRepl(make_session(**kwargs), out=out), out


def test_repl_batch_runs_sql_and_prints_timing():
    shell, out = repl()
    code = shell.run_batch("SELECT COUNT(*) AS n FROM nation;")
    text = out.getvalue()
    assert code == 0
    assert "| 25 |" in text
    assert "ms simulated" in text
    assert "nation->" in text


def test_repl_batch_mixes_sql_and_backslash_commands():
    shell, out = repl()
    shell.run_batch(
        "SELECT COUNT(*) AS n FROM region;\n"
        "\\policy\n"
        "SELECT COUNT(*) AS n FROM nation;\n"
    )
    text = out.getvalue()
    assert "| 5 |" in text
    assert "placement policy: auto" in text
    assert "| 25 |" in text


def test_repl_reports_errors_without_raising():
    shell, out = repl()
    shell.run_batch("SELECT nope FROM nowhere;")
    assert "error:" in out.getvalue()


def test_repl_backslash_commands():
    shell, out = repl()
    assert shell.run_statement("\\tables")
    assert shell.run_statement("\\schema nation")
    assert shell.run_statement("\\policy")
    assert shell.run_statement("\\nonsense")
    assert not shell.run_statement("\\q")
    text = out.getvalue()
    assert "lineitem" in text
    assert "n_name" in text
    assert "placement policy: auto" in text
    assert "unknown command" in text


def test_repl_tpch_shortcut():
    shell, out = repl(gen_scale_factor=0.004)
    assert shell.run_statement("\\tpch 6")
    assert "revenue" in out.getvalue()
    shell.run_statement("\\tpch nope")
    assert "usage: \\tpch" in out.getvalue()


def test_repl_interactive_reads_until_semicolon():
    shell, out = repl()
    stdin = io.StringIO(
        "SELECT COUNT(*) AS n\nFROM region;\n\\policy\n\\q\n"
    )
    assert shell.run_interactive(stdin=stdin) == 0
    text = out.getvalue()
    assert "| 5 |" in text
    assert "placement policy" in text


def test_render_table_truncates_display_only():
    table = make_session().db["nation"]
    text = render_table(table, limit=10)
    assert "... 15 more rows" in text
    assert "(25 rows)" in text
