"""DMA-style backfill on FIFO reservation timelines.

A strict-FIFO timeline penalises requesters whose data is ready early:
one far-future booking advances the free-at pointer past idle time that
later, already-ready transfers could have used. ``FifoResource`` with
``backfill=True`` (the host link and channel buses) first-fits those
transfers into the idle gaps instead. The key equivalence: when ready
times arrive non-decreasing — every offload-path booking pattern — no
usable gap exists and backfill produces bit-identical grants, which is
why the offload goldens did not move when the flag was introduced.
"""

import random

from repro.sim.resources import FifoResource, _Timeline


def test_backfill_uses_gap_before_far_future_booking():
    lane = FifoResource("bus", backfill=True)
    far = lane.acquire(100_000, 10)  # data ready far in the future
    assert far.start_ns == 100_000
    early = lane.acquire(0, 50)  # ready now: the idle gap [0, 100000) fits
    assert early.start_ns == 0
    assert early.done_ns == 50
    # The tail pointer still reflects the far booking.
    assert lane.free_at_ns == 100_010


def test_backfill_first_fit_prefers_earliest_gap_after_ready():
    lane = FifoResource("bus", backfill=True)
    lane.acquire(1_000, 100)  # busy [1000, 1100)
    lane.acquire(5_000, 100)  # busy [5000, 5100)
    grant = lane.acquire(1_050, 200)
    # Earliest idle slot at or after ready=1050 that fits 200 is [1100, 1300).
    assert (grant.start_ns, grant.done_ns) == (1_100, 1_300)


def test_backfill_falls_back_to_tail_when_no_gap_fits():
    lane = FifoResource("bus", backfill=True)
    lane.acquire(1_000, 100)  # busy [1000, 1100)
    lane.acquire(1_200, 100)  # busy [1200, 1300); gap of 100 at [1100, 1200)
    grant = lane.acquire(0, 150)  # needs 150: no gap fits (0..1000 does!)
    assert grant.start_ns == 0  # the pre-first-interval gap counts too
    lane2 = FifoResource("bus2", backfill=True)
    lane2.acquire(0, 100)  # busy [0, 100)
    lane2.acquire(1_200, 100)  # busy [1200, 1300); gap [100, 1200)
    tail = lane2.acquire(0, 2_000)  # nothing fits before the tail
    assert tail.start_ns == 1_300


def test_backfill_busy_accounting_is_exact():
    lane = FifoResource("bus", backfill=True)
    lane.acquire(10_000, 100)
    lane.acquire(0, 100)  # backfilled into [0, 100)
    assert lane.busy_ns == 200
    assert lane.busy_within(100) == 100
    assert lane.busy_within(10_050) == 150
    assert lane.utilisation(10_100) == 200 / 10_100


def test_backfill_coalesces_adjacent_intervals():
    tl = _Timeline()
    tl.reserve(0, 100)  # [0, 100)
    tl.reserve(200, 100)  # [200, 300)
    tl.reserve_backfill(100, 100)  # exactly fills [100, 200)
    assert tl._intervals == [(0, 300)]
    assert tl._starts == [0]


def test_monotone_ready_sequences_match_plain_fifo_exactly():
    rng = random.Random(7)
    plain = _Timeline()
    backfill = _Timeline()
    ready = 0
    for _ in range(500):
        ready += rng.randrange(0, 2_000)
        duration = rng.randrange(0, 5_000)
        a = plain.reserve(ready, duration)
        b = backfill.reserve_backfill(ready, duration)
        assert (a.start_ns, a.done_ns) == (b.start_ns, b.done_ns)
    assert plain.free_at_ns == backfill.free_at_ns
    assert plain.busy_ns == backfill.busy_ns


def test_random_backfill_grants_never_overlap():
    rng = random.Random(11)
    tl = _Timeline()
    grants = []
    for _ in range(400):
        ready = rng.randrange(0, 200_000)
        duration = rng.randrange(1, 3_000)
        grant = tl.reserve_backfill(ready, duration)
        assert grant.start_ns >= ready
        grants.append(grant)
    grants.sort()
    for prev, cur in zip(grants, grants[1:]):
        assert prev.done_ns <= cur.start_ns
    # Interval bookkeeping stayed sorted, disjoint, and coalesced.
    for (s0, d0), (s1, d1) in zip(tl._intervals, tl._intervals[1:]):
        assert d0 < s1
    assert tl._starts == [s for s, _ in tl._intervals]
    assert tl.busy_ns == sum(g.done_ns - g.start_ns for g in grants)


def test_non_backfill_resource_keeps_strict_fifo():
    lane = FifoResource("bus")  # default: strict FIFO
    lane.acquire(100_000, 10)
    late = lane.acquire(0, 50)
    assert late.start_ns == 100_010  # queued behind the far booking
