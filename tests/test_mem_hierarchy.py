"""Tests for the composed per-core memory hierarchy timing model."""

import pytest

from repro.config import (
    DRAMConfig,
    assasin_sb_cache_core,
    assasin_sp_core,
    baseline_core,
    prefetch_core,
    udp_core,
)
from repro.mem.hierarchy import (
    PINGPONG_BASE,
    SCRATCHPAD_BASE,
    AccessType,
    build_hierarchy,
)


def test_baseline_levels_and_latencies():
    h = build_hierarchy(baseline_core())
    # Cold miss goes to DRAM: L2 probe latency + DRAM latency.
    r0 = h.access(pc=0x400, addr=0x1000, size=4, access=AccessType.LOAD, cycle=0)
    assert r0.level == "dram"
    assert r0.stall_cycles == pytest.approx(12 + 60)
    assert r0.dram_bytes == 64
    # Second access to the same line hits L1 with no stall (pipelined).
    r1 = h.access(0x400, 0x1004, 4, AccessType.LOAD, 200)
    assert r1.level == "l1" and r1.stall_cycles == 0 and r1.dram_bytes == 0


def test_l2_hit_after_l1_eviction():
    h = build_hierarchy(baseline_core())
    # Touch enough distinct lines mapping to one L1 set to evict from L1
    # while the (much larger) L2 retains them. L1: 32KiB/8way/64B = 64 sets.
    set_stride = 64 * 64  # one L1 set apart
    for i in range(9):  # 9 > 8 ways
        h.access(0x400, i * set_stride, 4, AccessType.LOAD, cycle=i * 1000)
    r = h.access(0x400, 0, 4, AccessType.LOAD, cycle=100_000)
    assert r.level == "l2"
    assert r.stall_cycles == pytest.approx(12)


def test_scratchpad_access_no_dram_traffic():
    h = build_hierarchy(assasin_sp_core())
    r = h.access(0x400, SCRATCHPAD_BASE + 16, 4, AccessType.LOAD, 0)
    assert r.level == "scratchpad"
    assert r.stall_cycles == 0  # 1-cycle pad is fully pipelined
    assert r.dram_bytes == 0
    assert h.dram.traffic.total == 0


def test_pingpong_region_detected():
    h = build_hierarchy(assasin_sp_core())
    r = h.access(0x400, PINGPONG_BASE + 100, 8, AccessType.LOAD, 0)
    assert r.level == "pingpong"
    assert r.dram_bytes == 0


def test_udp_core_without_cache_pays_dram_every_access():
    h = build_hierarchy(udp_core(), DRAMConfig())
    r0 = h.access(0x400, 0x2000, 4, AccessType.LOAD, 0)
    r1 = h.access(0x400, 0x2004, 4, AccessType.LOAD, 200)
    assert r0.level == "dram" and r1.level == "dram"
    assert r0.stall_cycles == pytest.approx(60)
    assert h.dram.traffic.core_fill == 8


def test_prefetcher_hides_latency_on_streaming():
    plain = build_hierarchy(baseline_core())
    pf = build_hierarchy(prefetch_core())
    cycle_plain = 0.0
    cycle_pf = 0.0
    pc = 0x400
    for addr in range(0x0, 0x8000, 8):  # 32 KiB sequential stream
        cycle_plain += 1 + plain.access(pc, addr, 8, AccessType.LOAD, cycle_plain).stall_cycles
        cycle_pf += 1 + pf.access(pc, addr, 8, AccessType.LOAD, cycle_pf).stall_cycles
    assert cycle_pf < cycle_plain, "DCPT should reduce total cycles on a stream"


def test_stall_buckets_accumulate():
    h = build_hierarchy(baseline_core())
    h.access(0x400, 0x1000, 4, AccessType.LOAD, 0)
    assert h.buckets.dram_stall == pytest.approx(60)
    assert h.buckets.l2_stall == pytest.approx(12)
    h.add_compute_cycles(10)
    h.add_stream_stall(5)
    d = h.buckets.as_dict()
    assert d["compute"] == 10 and d["stream_stall"] == 5
    assert h.buckets.total_stall == pytest.approx(77)


def test_writeback_traffic_counted():
    h = build_hierarchy(baseline_core())
    # Dirty a line, then evict it from both L1 and L2 by sweeping one set.
    # L2: 256KiB/16way/64B = 256 sets -> set stride 256*64 = 16 KiB.
    h.access(0x400, 0x0, 4, AccessType.STORE, 0)
    stride = 256 * 64
    for i in range(1, 18):
        h.access(0x400, i * stride, 4, AccessType.LOAD, i * 1000)
    assert h.dram.traffic.core_writeback >= 64


def test_reset_stats_clears_everything():
    h = build_hierarchy(baseline_core())
    h.access(0x400, 0x1000, 4, AccessType.LOAD, 0)
    h.reset_stats()
    assert h.buckets.total_stall == 0
    assert h.l1.stats.accesses == 0
    r = h.access(0x400, 0x1000, 4, AccessType.LOAD, 0)
    assert r.level == "dram"  # caches were flushed


def test_sb_cache_core_has_cache_and_scratchpad():
    h = build_hierarchy(assasin_sb_cache_core())
    assert h.l1 is not None and h.scratchpad is not None
    r = h.access(0x400, SCRATCHPAD_BASE, 4, AccessType.LOAD, 0)
    assert r.level == "scratchpad"
    r2 = h.access(0x400, 0x500, 4, AccessType.LOAD, 1)
    assert r2.level == "dram"  # falls back to the DRAM-backed cache path
