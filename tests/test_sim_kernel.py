"""Unit tests for the unified discrete-event kernel (`repro.sim`)."""

import math

import pytest

from repro.sim import (
    FifoResource,
    PooledResource,
    SimTimeError,
    Simulator,
    as_ns,
)


# -- integer-ns time --------------------------------------------------------


def test_as_ns_rounds_to_nearest_integer():
    assert as_ns(10) == 10
    assert as_ns(10.4) == 10
    assert as_ns(10.6) == 11
    assert as_ns(0.0) == 0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_as_ns_rejects_non_finite(bad):
    with pytest.raises(SimTimeError):
        as_ns(bad)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_schedule_rejects_non_finite_delay(bad):
    sim = Simulator()
    with pytest.raises(SimTimeError) as err:
        sim.schedule(bad, lambda: None)
    assert "non-finite" in str(err.value)


def test_schedule_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_rejects_the_past():
    sim = Simulator()
    sim.schedule_at(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


# -- deterministic ordering -------------------------------------------------


def test_ties_dispatch_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule_at(100, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_beats_insertion_order_at_equal_times():
    sim = Simulator()
    order = []
    sim.schedule_at(100, lambda: order.append("late"), priority=1)
    sim.schedule_at(100, lambda: order.append("early"), priority=0)
    sim.run()
    assert order == ["early", "late"]


def test_run_until_advances_clock_to_bound():
    sim = Simulator()
    fired = []
    sim.schedule_at(50, lambda: fired.append(50))
    sim.schedule_at(500, lambda: fired.append(500))
    sim.run(until_ns=200)
    assert fired == [50]
    assert sim.now == 200
    sim.run()
    assert fired == [50, 500]


# -- processes --------------------------------------------------------------


def test_process_waits_and_completes():
    sim = Simulator()
    marks = []

    def flow():
        marks.append(("start", sim.now))
        yield sim.wait(100)
        marks.append(("mid", sim.now))
        yield sim.wait_until(500)
        marks.append(("end", sim.now))

    proc = sim.spawn(flow())
    sim.run()
    assert marks == [("start", 0), ("mid", 100), ("end", 500)]
    assert not proc.alive


def test_process_bare_number_yield_is_a_delay():
    sim = Simulator()
    marks = []

    def flow():
        yield 40
        marks.append(sim.now)
        yield 2.6  # floats round at the scheduling boundary
        marks.append(sim.now)

    sim.spawn(flow())
    sim.run()
    assert marks == [40, 43]


def test_wait_until_the_past_resumes_now():
    sim = Simulator()
    marks = []

    def flow():
        yield sim.wait(100)
        yield sim.wait_until(10)  # analytic schedule already passed
        marks.append(sim.now)

    sim.spawn(flow())
    sim.run()
    assert marks == [100]


def test_same_instant_processes_round_robin():
    # Two processes waking at the same instants interleave in spawn order —
    # the property the firmware engine flows rely on for FIFO bus fairness.
    sim = Simulator()
    order = []

    def flow(tag):
        for step in range(3):
            yield sim.wait_until(step * 10)
            order.append((step, tag))

    sim.spawn(flow("a"))
    sim.spawn(flow("b"))
    sim.run()
    assert order == [(0, "a"), (0, "b"), (1, "a"), (1, "b"), (2, "a"), (2, "b")]


# -- FifoResource -----------------------------------------------------------


def test_fifo_resource_grants_in_call_order():
    bus = FifoResource("bus")
    first = bus.acquire(0, 100)
    second = bus.acquire(0, 50)
    third = bus.acquire(500, 25)
    assert (first.start_ns, first.done_ns) == (0, 100)
    assert (second.start_ns, second.done_ns) == (100, 150)
    assert (third.start_ns, third.done_ns) == (500, 525)
    assert bus.free_at_ns == 525
    assert bus.busy_ns == 175
    assert bus.grants == 3


def test_fifo_resource_rejects_bad_times():
    bus = FifoResource("bus")
    with pytest.raises(ValueError):
        bus.acquire(0, -1)
    with pytest.raises(SimTimeError):
        bus.acquire(float("nan"), 10)


def test_utilisation_clips_transfer_straddling_the_window():
    # Regression for the historical ChannelBus.utilisation over-count: a
    # transfer straddling until_ns was counted in full and the result
    # clamped with min(1.0, ...). The busy overlap must be computed within
    # [0, until_ns] exactly.
    bus = FifoResource("bus")
    bus.acquire(0, 60)  # [0, 60)
    bus.acquire(80, 40)  # [80, 120), straddles until=100
    assert bus.busy_within(100) == 80
    assert bus.utilisation(100) == pytest.approx(0.8)
    # The old code computed min(1.0, (60 + 40) / 100) == 1.0.
    assert bus.utilisation(100) < 1.0
    assert bus.utilisation(0) == 0.0
    assert bus.utilisation(1000) == pytest.approx(100 / 1000)


def test_channel_bus_utilisation_uses_exact_overlap():
    from repro.config import FlashConfig
    from repro.flash.channel import ChannelBus

    cfg = FlashConfig()
    bus = ChannelBus(cfg, 0)  # 1 B/ns default bandwidth
    bus.transfer(4096, 0)  # [0, 4096)
    bus.transfer(4096, 6000)  # [6000, 10096)
    expected = (4096 + 2000) / 8000
    assert bus.utilisation(8000) == pytest.approx(expected)
    assert bus.utilisation(8000) < 1.0


def test_back_to_back_grants_coalesce():
    bus = FifoResource("bus")
    for _ in range(10):
        bus.acquire(0, 10)  # saturated: one coalesced interval [0, 100)
    assert bus.busy_within(55) == 55
    assert bus.utilisation(100) == pytest.approx(1.0)


# -- PooledResource ---------------------------------------------------------


def test_pooled_least_loaded_ties_to_lowest_index():
    pool = PooledResource("cores", 3)
    assert pool.least_loaded() == 0
    first = pool.acquire(0, 100)
    assert first.unit == 0
    second = pool.acquire(0, 50)
    assert second.unit == 1
    assert pool.least_loaded() == 2
    pool.acquire(0, 10, unit=2)
    # 2 frees at 10, before 1 (50) and 0 (100).
    assert pool.least_loaded() == 2


def test_pooled_occupy_moves_free_at_forward_only():
    pool = PooledResource("cores", 2)
    pool.occupy(0, 100, 300, busy_ns=50)
    assert pool.free_at(0) == 300
    assert pool.busy_ns(0) == 50
    pool.occupy(0, 120, 200)  # ends before current horizon
    assert pool.free_at(0) == 300
    assert pool.horizon_ns == 300


def test_pooled_resource_validates():
    with pytest.raises(ValueError):
        PooledResource("empty", 0)
    pool = PooledResource("cores", 2)
    with pytest.raises(ValueError):
        pool.acquire(0, -5)


# -- cross-subsystem composition -------------------------------------------


def test_gc_process_contends_with_offload_on_shared_kernel():
    from repro.config import FlashConfig, SSDConfig, assasin_sb_core
    from repro.ftl.gc import GarbageCollector
    from repro.kernels import get_kernel
    from repro.ssd.device import ComputationalSSD

    # Small blocks so populate closes them (open write points are never
    # reclaimed) and one rewrite round yields a GC victim.
    flash = FlashConfig(
        channels=8,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=32,
    )

    def build():
        config = SSDConfig(name="gc-rig", core=assasin_sb_core(), num_cores=8, flash=flash)
        device = ComputationalSSD(config)
        lpas = device.mount_dataset(2 << 20)
        # Out-of-place rewrites invalidate half of each populated block —
        # alternating channel-stripe rows, since consecutive LPAs spread
        # across channels — so the victim still holds valid pages the
        # collector must relocate; deterministic, so both devices end up
        # in identical FTL state.
        for index, lpa in enumerate(lpas):
            if (index // flash.channels) % 2 == 0:
                device.ftl.write(lpa)
        gc = GarbageCollector(device.ftl, device.array)
        assert gc.pick_victim() is not None
        return device, lpas, gc

    device, lpas, _ = build()
    kernel = get_kernel("scan")
    sample = device.sample_kernel(kernel)
    solo = device.firmware.run_offload(kernel, sample, lpas)

    device, lpas, gc = build()
    sim = Simulator()
    sim.spawn(gc.collect_process(sim, at_ns=0), label="gc")
    shared = device.firmware.run_offload(kernel, sample, lpas, sim=sim)

    assert gc.last_result is not None
    assert gc.last_result.relocated > 0
    # GC relocations stole plane/bus slots from the offload's reads.
    assert shared.completion_ns >= solo.completion_ns
    assert shared.flash_stall_ns >= solo.flash_stall_ns


# -- engine parity: crashes and cancellation --------------------------------
#
# Both engines must agree on the cold paths too: a crashed process is marked
# dead and re-raised with its label and instant, and lazily-cancelled events
# are skipped without being dispatched, counted, or allowed to move the
# clock.  (The hypothesis suite in test_sim_property.py sweeps the hot
# paths; test_sim_differential.py pins the campaign-level equivalence.)

ENGINE_CASES = pytest.mark.parametrize("engine", ["reference", "fast"])


@ENGINE_CASES
def test_crashed_process_is_marked_dead_and_chained(engine):
    from repro.sim import SimProcessError

    sim = Simulator(engine=engine)

    def body():
        yield 25
        raise RuntimeError("flash went sideways")

    process = sim.spawn(body(), label="victim")
    with pytest.raises(SimProcessError) as err:
        sim.run()
    assert not process.alive
    assert "victim" in str(err.value)
    assert "t=25ns" in str(err.value)
    assert isinstance(err.value.__cause__, RuntimeError)
    # The crash happened *at* the resume instant, and the dispatch that
    # crashed was still counted — the clock and counters stay coherent.
    assert sim.now == 25
    assert sim.processed == 2


@ENGINE_CASES
def test_crashed_process_chains_under_event_budget(engine):
    """The budgeted loop (distinct code path in the fast engine) applies
    the same crash protocol."""
    from repro.sim import SimProcessError

    sim = Simulator(engine=engine)

    def body():
        raise RuntimeError("dead on arrival")
        yield  # pragma: no cover - unreachable

    process = sim.spawn(body(), label="doa")
    with pytest.raises(SimProcessError) as err:
        sim.run(max_events=10)
    assert not process.alive
    assert isinstance(err.value.__cause__, RuntimeError)


@ENGINE_CASES
def test_cancelled_event_is_skipped_not_dispatched(engine):
    sim = Simulator(engine=engine)
    fired = []
    keep = sim.schedule(10, lambda: fired.append("keep"))
    drop = sim.schedule(10, lambda: fired.append("drop"))
    assert drop.cancel() is True
    assert drop.cancel() is False  # second cancel is a no-op
    sim.run()
    assert fired == ["keep"]
    assert sim.processed == 1
    assert keep.fired and not drop.fired


@ENGINE_CASES
def test_cancel_after_firing_returns_false(engine):
    sim = Simulator(engine=engine)
    event = sim.schedule(5, lambda: None)
    sim.run()
    assert event.fired
    assert event.cancel() is False


@ENGINE_CASES
def test_cancel_at_the_same_instant_is_honoured(engine):
    """An action cancelling a later event scheduled for the *same* instant:
    the fast engine has already batched both into the live bucket."""
    sim = Simulator(engine=engine)
    fired = []
    victim = sim.schedule(10, lambda: fired.append("victim"))
    sim.schedule(10, lambda: victim.cancel(), priority=-1)  # runs first
    sim.run()
    assert fired == []
    assert sim.processed == 1


@ENGINE_CASES
def test_fully_cancelled_instant_does_not_advance_the_clock(engine):
    sim = Simulator(engine=engine)
    sim.schedule(10, lambda: None).cancel()
    sim.run()
    assert sim.now == 0
    assert sim.processed == 0
    assert sim.peek_time() is None


@ENGINE_CASES
def test_len_counts_unreaped_cancelled_entries(engine):
    sim = Simulator(engine=engine)
    live = sim.schedule(10, lambda: None)
    dead = sim.schedule(20, lambda: None)
    dead.cancel()
    # Cancellation is lazy: the entry stays queued until its instant.
    assert len(sim) == 2 and bool(sim)
    sim.run()
    assert len(sim) == 0 and not bool(sim)
    assert live.fired and not dead.fired


@ENGINE_CASES
def test_single_stepping_matches_run_semantics(engine):
    """`step()` (the SQL session's incremental drain) dispatches exactly
    one live event per call, skipping cancelled entries, on both engines."""
    sim = Simulator(engine=engine)
    order = []
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(10, lambda: order.append("b"), priority=-1)
    sim.schedule(20, lambda: order.append("late")).cancel()
    sim.schedule(30, lambda: order.append("c"))

    def spinner():
        order.append("proc")
        yield 15
        order.append("proc-again")

    sim.spawn(spinner(), label="spinner")

    steps = []
    while sim.step():
        steps.append((sim.now, sim.processed, tuple(order)))
    assert order == ["proc", "b", "a", "proc-again", "c"]
    assert steps[-1] == (30, 5, tuple(order))
    assert sim.step() is False  # drained: further steps are no-ops
    assert sim.now == 30


@ENGINE_CASES
def test_peek_time_skips_cancelled_entries(engine):
    sim = Simulator(engine=engine)
    first = sim.schedule(10, lambda: None)
    sim.schedule(10, lambda: None).cancel()
    later = sim.schedule(20, lambda: None)
    assert sim.peek_time() == 10
    first.cancel()
    # The whole t=10 instant is cancelled now: peek reaps past it.
    assert sim.peek_time() == 20
    later.cancel()
    assert sim.peek_time() is None
    sim.run()
    assert sim.now == 0 and sim.processed == 0


@ENGINE_CASES
def test_peek_time_sees_process_resumes(engine):
    sim = Simulator(engine=engine)

    def body():
        yield 40

    sim.spawn(body(), label="p")
    assert sim.peek_time() == 0  # the spawn resume itself
    sim.step()
    assert sim.peek_time() == 40
