"""The sim differential suite: every fast path is bit-identical to reference.

This is the tentpole proof for the fast simulator core.  Each test runs
the *same* seeded campaign twice — once under the reference heapq engine
and once under an optimisation (``fast`` calendar-queue engine, memoized
kernel pricing, sharded fleet workers) — and asserts the campaign
fingerprint is byte-identical.  The fingerprints hash the full observable
surface (per-command latencies, per-tenant stats, recovery counters,
integrity results), so any divergence in dispatch order, clock values, or
service outcomes fails loudly.

Horizons are short smoke versions of the four campaign families; the
benchmarks run the long ones.
"""

import pytest

from repro.config import (
    FaultConfig,
    ServeConfig,
    SimConfig,
    assasin_sb_config,
)
from repro.faults import run_campaign
from repro.fleet import FleetConfig, simulate_fleet
from repro.kernels.pricing import PRICING_CACHE, use_pricing_cache
from repro.serve import default_tenants, simulate_serve
from repro.sim import use_engine
from repro.zns import ZnsConfig, run_zns

SEED = 7


def _serve_fingerprint():
    report = simulate_serve(
        assasin_sb_config(), default_tenants(), ServeConfig(),
        duration_ns=300_000.0, seed=SEED,
    )
    return report.fingerprint()


def _fleet_fingerprint():
    report = simulate_fleet(
        assasin_sb_config(), FleetConfig(num_devices=4),
        duration_ns=150_000.0, seed=SEED,
    )
    return report.fingerprint_hex()


def _zns_fingerprint():
    return run_zns(ZnsConfig(duration_ns=500_000.0, seed=SEED)).fingerprint_hex()


def _faults_fingerprint():
    report = run_campaign(
        assasin_sb_config(), FaultConfig(), duration_ns=200_000.0, seed=SEED,
    )
    return report.fingerprint()


CAMPAIGNS = {
    "serve": _serve_fingerprint,
    "fleet": _fleet_fingerprint,
    "zns": _zns_fingerprint,
    "faults": _faults_fingerprint,
}


@pytest.mark.parametrize("campaign", sorted(CAMPAIGNS))
def test_fast_engine_campaigns_are_byte_identical(campaign):
    run = CAMPAIGNS[campaign]
    with use_engine("reference"):
        reference = run()
    with use_engine("fast"):
        fast = run()
    assert fast == reference


def test_memoized_pricing_is_byte_identical_and_actually_hits():
    with use_engine("fast"):
        baseline = _serve_fingerprint()
    with use_pricing_cache() as cache, use_engine("fast"):
        first = _serve_fingerprint()
        hits_after_first = cache.hits
        second = _serve_fingerprint()
        # The second campaign priced its kernels entirely from the memo
        # (counters are read inside the block: exit clears the cache).
        assert cache.misses >= 1
        assert cache.hits > hits_after_first
    assert first == baseline
    assert second == baseline


def test_sim_config_activated_composes_engine_and_pricing():
    baseline = _serve_fingerprint()
    sim = SimConfig(engine="fast", memoize_pricing=True)
    with sim.activated():
        assert PRICING_CACHE.enabled
        combined = _serve_fingerprint()
    assert not PRICING_CACHE.enabled
    PRICING_CACHE.clear()
    assert combined == baseline


def test_sharded_fleet_is_byte_identical(monkeypatch):
    # In-process lanes: same sharded code path minus the fork, so this
    # differential runs (and is coverage-instrumented) on any host.
    monkeypatch.setenv("REPRO_SHARD_INPROCESS", "1")
    fleet_config = FleetConfig(num_devices=4, hedging=False)
    reference = simulate_fleet(
        assasin_sb_config(), fleet_config, duration_ns=150_000.0, seed=SEED,
    )
    sharded = simulate_fleet(
        assasin_sb_config(), fleet_config, duration_ns=150_000.0, seed=SEED,
        sim=SimConfig(engine="fast", shard_workers=2),
    )
    assert sharded.fingerprint_hex() == reference.fingerprint_hex()
    # The playback skeleton replays the *full* event structure, so even the
    # event count matches the shared-loop run.
    assert sharded.sim_events == reference.sim_events
    # Per-worker counter snapshots merge into the same per-device telemetry
    # the shared loop records.
    assert set(sharded.device_counters) == {0, 1, 2, 3}
    for index, counters in sharded.device_counters.items():
        assert counters == reference.device_counters[index], index
