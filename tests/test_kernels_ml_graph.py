"""Functional tests for the NN-inference, graph, and decompress kernels."""

import pytest

from repro.config import assasin_sb_core, assasin_sp_core, baseline_core
from repro.core.core import DRAM_OUT_BASE, CoreModel, DRAM_DATA_BASE
from repro.errors import KernelError
from repro.isa.interpreter import Interpreter
from repro.kernels import get_kernel
from repro.kernels.extensions import RLECompressKernel
from repro.mem.memory import FlatMemory

SIZE = 8192


def run_stream(kernel, inputs):
    return CoreModel(assasin_sb_core()).run(kernel, inputs)


def run_memory(kernel, inputs, core=None):
    return CoreModel(core or baseline_core()).run(kernel, inputs)


class TestNNInference:
    def test_all_forms_match_reference(self):
        kernel = get_kernel("nn_inference")
        inputs = kernel.make_inputs(SIZE)
        expected = kernel.reference(inputs)[0]
        assert run_stream(kernel, inputs).outputs[0] == expected
        assert run_memory(kernel, inputs).outputs[0] == expected
        assert run_memory(kernel, inputs, assasin_sp_core()).outputs[0] == expected

    def test_score_known_vector(self):
        kernel = get_kernel("nn_inference", dims=4, seed=0)
        features = [1, 2, 3, 4]
        expected = sum(w * x for w, x in zip(kernel.weights, features)) & 0xFFFFFFFF
        assert kernel.score(features) == expected

    def test_weights_are_stationary_state(self):
        kernel = get_kernel("nn_inference", dims=8)
        assert kernel.state_bytes == 32
        mem = FlatMemory(1 << 16)
        kernel.init_state(mem, 0x100)
        for i, w in enumerate(kernel.weights):
            assert mem.load_u32(0x100 + 4 * i) == w & 0xFFFFFFFF

    def test_dims_validated(self):
        with pytest.raises(KernelError):
            get_kernel("nn_inference", dims=1)
        with pytest.raises(KernelError):
            get_kernel("nn_inference", dims=100)

    def test_different_dims_work(self):
        kernel = get_kernel("nn_inference", dims=32)
        inputs = kernel.make_inputs(4096)
        expected = kernel.reference(inputs)[0]
        assert run_stream(kernel, inputs).outputs[0] == expected


class TestGraphDegree:
    def test_all_forms_match_reference(self):
        kernel = get_kernel("graph_degree", num_vertices=256)
        inputs = kernel.make_inputs(SIZE)
        expected = kernel.reference_state(inputs)
        assert run_stream(kernel, inputs).final_state == expected
        assert run_memory(kernel, inputs).final_state == expected
        assert run_memory(kernel, inputs, assasin_sp_core()).final_state == expected

    def test_degree_sum_is_twice_edge_count(self):
        kernel = get_kernel("graph_degree", num_vertices=64)
        inputs = kernel.make_inputs(800)
        state = kernel.reference_state(inputs)
        degrees = [int.from_bytes(state[i : i + 4], "little") for i in range(0, len(state), 4)]
        assert sum(degrees) == 2 * (len(inputs[0]) // 8)

    def test_vertex_count_validated(self):
        with pytest.raises(KernelError):
            get_kernel("graph_degree", num_vertices=100)  # not a power of two
        with pytest.raises(KernelError):
            get_kernel("graph_degree", num_vertices=1 << 16)  # exceeds scratchpad

    def test_hubs_receive_more_edges(self):
        kernel = get_kernel("graph_degree", num_vertices=1024)
        state = kernel.reference_state(kernel.make_inputs(64 * 1024))
        degrees = [int.from_bytes(state[i : i + 4], "little") for i in range(0, len(state), 4)]
        hubs = sum(degrees[:16]) / 16
        tail = sum(degrees[16:]) / (len(degrees) - 16)
        assert hubs > 3 * tail  # the generator's power-law-ish skew


class TestRLEDecompress:
    def test_stream_form_matches_reference(self):
        kernel = get_kernel("decompress")
        inputs = kernel.make_inputs(2048)
        expected = kernel.reference(inputs)[0]
        result = run_stream(kernel, inputs)
        assert result.outputs[0] == expected
        assert result.bytes_out > result.bytes_in  # expansion

    def test_memory_form_on_dram_engine(self):
        # The memory form needs a large output region (expansion), so it is
        # exercised on the DRAM-staged Baseline engine.
        kernel = get_kernel("decompress")
        inputs = kernel.make_inputs(2048)
        expected = kernel.reference(inputs)[0]
        assert run_memory(kernel, inputs).outputs[0] == expected

    def test_roundtrip_with_compress(self):
        compress = get_kernel("compress")
        raw = compress.make_inputs(4096)[0]
        encoded = compress.reference([raw])[0]
        decompress = get_kernel("decompress")
        assert decompress.reference([encoded])[0] == raw

    def test_memory_form_survives_mid_pair_chunk_split(self):
        """A (count, value) pair split across chunk invocations must decode."""
        kernel = get_kernel("decompress")
        encoded = bytes([3, 0x41, 2, 0x42, 4, 0x43])  # AAABBCCCC
        program = kernel.build_memory_program(0x0100_0000)
        mem = FlatMemory(0x0110_0000)
        kernel.init_state(mem, 0x0100_0000)
        out = bytearray()
        # Split after 3 bytes: the second pair's count arrives chunk 1,
        # its value chunk 2.
        for chunk in (encoded[:3], encoded[3:]):
            mem.store_bytes(DRAM_DATA_BASE, chunk)
            interp = Interpreter(program, mem)
            interp.regs.write_name("a0", DRAM_DATA_BASE)
            interp.regs.write_name("a1", len(chunk))
            interp.regs.write_name("a2", DRAM_OUT_BASE)
            interp.run()
            nbytes = interp.regs.read_name("a0")
            out += mem.load_bytes(DRAM_OUT_BASE, nbytes)
        assert bytes(out) == b"AAABBCCCC"

    def test_inputs_are_valid_rle(self):
        kernel = get_kernel("decompress")
        encoded = kernel.make_inputs(1024)[0]
        assert len(encoded) % 2 == 0
        decoded = RLECompressKernel.decompress(encoded)
        assert len(decoded) >= len(encoded) // 2
