"""Tests for the ISA-level cycle-attribution profiler.

The load-bearing invariant: the profile is an exact decomposition of the
run — per-PC cycles sum to the run's cycle count and per-PC execution
counts sum to its instruction count, for both the stream path (AssasinSb)
and the chunked memory path (Baseline caches).
"""

import pytest

from repro.config import named_config
from repro.core.core import CoreModel
from repro.kernels import get_kernel
from repro.telemetry import IsaProfiler, basic_block_ranges, profile_kernel


@pytest.mark.parametrize("kernel_name", ["scan", "aes"])
def test_profile_totals_match_run_exactly(kernel_name):
    profile = profile_kernel(get_kernel(kernel_name))
    assert profile.total_cycles == profile.cycles
    assert profile.total_instructions == profile.instructions
    stats = profile.profiler.pc_stats()
    assert sum(s.count for s in stats) == profile.instructions
    assert sum(s.cycles for s in stats) == pytest.approx(profile.cycles)


@pytest.mark.parametrize("kernel_name", ["scan", "aes"])
def test_attribution_buckets_decompose_each_pc(kernel_name):
    profile = profile_kernel(get_kernel(kernel_name))
    for s in profile.profiler.pc_stats():
        assert s.cycles == pytest.approx(s.compute + s.mem_stall + s.stream_stall)
        assert s.count > 0


def test_memory_path_profile_accumulates_across_chunks():
    # Baseline runs the memory program chunk by chunk through the caches;
    # the profiler must absorb every chunk and still balance exactly.
    core = named_config("Baseline").core
    profile = profile_kernel(get_kernel("scan"), core_config=core, sample_bytes=32 * 1024)
    assert profile.total_cycles == profile.cycles
    assert profile.total_instructions == profile.instructions
    # Cache-based loads pay memory stalls somewhere in the loop.
    assert sum(s.mem_stall for s in profile.profiler.pc_stats()) > 0


def test_stream_kernel_attributes_to_stream_ops():
    profile = profile_kernel(get_kernel("scan"))
    by_op = {}
    for s in profile.profiler.pc_stats():
        by_op.setdefault(s.op, 0.0)
        by_op[s.op] += s.cycles
    # The stream ISA's point: the hot loop runs on sloads + ALU ops.
    assert any(op.startswith("sload") for op in by_op)


def test_basic_blocks_partition_the_program():
    program = get_kernel("scan").build_stream_program(0x1000)
    ranges = basic_block_ranges(program)
    covered = []
    for start, end in ranges:
        assert start <= end
        covered.extend(range(start, end + 1))
    assert covered == list(range(len(program.instrs)))


def test_block_rollup_balances_with_pc_stats():
    profile = profile_kernel(get_kernel("scan"))
    blocks = profile.profiler.basic_blocks()
    assert sum(b.cycles for b in blocks) == pytest.approx(profile.cycles)


def test_profiler_requires_program_for_blocks():
    with pytest.raises(ValueError):
        IsaProfiler().basic_blocks()


def test_report_renders_hotspots():
    profile = profile_kernel(get_kernel("scan"))
    text = profile.report(top=5)
    assert "profile scan on AssasinSb" in text
    assert "attribution" in text and "compute" in text
    assert "block" in text and "pc" in text


def test_profiler_attaches_to_core_model():
    core = named_config("AssasinSb").core
    engine = CoreModel(core)
    engine.profiler = IsaProfiler()
    kernel = get_kernel("scan")
    result = engine.run(kernel, kernel.make_inputs(16 * 1024))
    assert engine.profiler.total_cycles == result.cycles
    assert engine.profiler.total_instructions == result.instructions
    assert engine.profiler.program is not None


def test_unprofiled_run_is_unchanged():
    core = named_config("AssasinSb").core
    kernel = get_kernel("scan")
    inputs = kernel.make_inputs(16 * 1024)
    plain = CoreModel(core).run(kernel, inputs)
    profiled_engine = CoreModel(core)
    profiled_engine.profiler = IsaProfiler()
    profiled = profiled_engine.run(kernel, inputs)
    assert plain.cycles == profiled.cycles
    assert plain.instructions == profiled.instructions
    assert plain.outputs == profiled.outputs
