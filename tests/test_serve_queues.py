"""Tests for per-tenant NVMe queue pairs."""

import pytest

from repro.errors import ServeError
from repro.serve.queues import QueuePair, ServeCommand, SubmissionQueue, make_queue_pairs
from repro.serve.workload import TenantSpec
from repro.ssd.host_interface import ReadCommand, ScompCommand, WriteCommand


def _cmd(tenant="t", command_id=1, pages=4, submitted=0.0, kind="read"):
    if kind == "scomp":
        nvme = ScompCommand(command_id=command_id, kernel="stat", lpa_lists=[list(range(pages))])
    elif kind == "write":
        nvme = WriteCommand(command_id=command_id, lpas=list(range(pages)))
    else:
        nvme = ReadCommand(command_id=command_id, lpas=list(range(pages)))
    return ServeCommand(tenant=tenant, command=nvme, submitted_ns=submitted, pages=pages)


def test_submission_queue_is_fifo():
    sq = SubmissionQueue("t", depth=8)
    for i in range(3):
        assert sq.push(_cmd(command_id=i))
    assert sq.head().command.command_id == 0
    assert [sq.pop().command.command_id for _ in range(3)] == [0, 1, 2]
    assert not sq


def test_submission_queue_bounded_depth_rejects():
    sq = SubmissionQueue("t", depth=2)
    assert sq.push(_cmd(command_id=1))
    assert sq.push(_cmd(command_id=2))
    assert not sq.push(_cmd(command_id=3))
    assert sq.total_rejected == 1
    assert sq.peak_depth == 2
    sq.pop()
    assert sq.push(_cmd(command_id=4))


def test_pop_empty_queue_raises():
    sq = SubmissionQueue("t", depth=2)
    with pytest.raises(ServeError):
        sq.pop()
    with pytest.raises(ServeError):
        sq.head()


def test_command_kind_and_latency():
    cmd = _cmd(kind="scomp", submitted=100.0)
    assert cmd.kind == "scomp"
    with pytest.raises(ServeError):
        cmd.latency_ns
    cmd.dispatched_ns = 150.0
    cmd.completed_ns = 400.0
    assert cmd.wait_ns == 50.0
    assert cmd.latency_ns == 300.0
    assert _cmd(kind="write").kind == "write"
    assert _cmd(kind="read").kind == "read"


def test_make_queue_pairs_weights_and_overrides():
    specs = [TenantSpec(name="a", weight=2.0), TenantSpec(name="b", weight=1.0)]
    pairs = make_queue_pairs(specs, queue_depth=4)
    assert [p.weight for p in pairs] == [2.0, 1.0]
    pairs = make_queue_pairs(specs, queue_depth=4, weight_overrides=(5.0, 3.0))
    assert [p.weight for p in pairs] == [5.0, 3.0]
    with pytest.raises(ServeError):
        make_queue_pairs(specs, queue_depth=4, weight_overrides=(1.0,))


def test_duplicate_tenant_names_rejected():
    specs = [TenantSpec(name="a"), TenantSpec(name="a")]
    with pytest.raises(ServeError):
        make_queue_pairs(specs, queue_depth=4)


def test_queue_pair_requires_positive_weight():
    with pytest.raises(ServeError):
        QueuePair.create("t", weight=0.0, depth=4)
