"""Tests for the pipeline timing model, CoreModel behaviours, and UDP lane."""

import pytest

from repro.config import (
    assasin_sb_core,
    assasin_sp_core,
    baseline_core,
    prefetch_core,
    udp_core,
)
from repro.core.core import CoreModel, PageTouch
from repro.core.pipeline import PipelineModel, PipelineParams
from repro.core.udp import UDP_ISA_FACTORS, UDPLaneModel
from repro.errors import KernelError
from repro.isa.interpreter import Interpreter
from repro.isa.program import Asm
from repro.kernels import get_kernel
from repro.mem.hierarchy import build_hierarchy
from repro.mem.memory import FlatMemory

SIZE = 16 * 1024


def run_timed(asm, core=None, params=PipelineParams()):
    """Run a small program through the pipeline model; returns cycles."""
    hierarchy = build_hierarchy(core or baseline_core())
    pipeline = PipelineModel(hierarchy, params)
    interp = Interpreter(asm.build(), FlatMemory(4096))
    cycles = 0.0
    while not interp.finished:
        info = interp.step()
        cycles += pipeline.cost(info, cycles)
    return cycles, pipeline


def test_alu_program_is_one_ipc():
    a = Asm("alu")
    for i in range(50):
        a.addi("t0", "t0", 1)
    a.halt()
    cycles, _ = run_timed(a)
    assert cycles == pytest.approx(51)  # 50 ALU + halt


def test_mul_div_occupancy():
    a = Asm("muldiv")
    a.li("t0", 6).li("t1", 3)
    a.mul("t2", "t0", "t1")
    a.divu("t3", "t0", "t1")
    a.halt()
    cycles, pipeline = run_timed(a)
    # 2 li + mul(1+2) + div(1+11) + halt = 2 + 3 + 12 + 1
    assert cycles == pytest.approx(18)
    assert pipeline.stats.muldiv_extra_cycles == pytest.approx(13)


def test_taken_branch_penalty():
    a = Asm("br")
    a.li("t0", 10)
    a.label("loop")
    a.addi("t0", "t0", -1)
    a.bnez("t0", "loop")
    a.halt()
    cycles, pipeline = run_timed(a)
    # li + 10*(addi + bnez) + halt; 9 taken branches pay +1 each.
    assert cycles == pytest.approx(1 + 20 + 9 + 1)
    assert pipeline.stats.branch_penalty_cycles == pytest.approx(9)


def test_memory_stalls_flow_through():
    a = Asm("mem")
    a.li("t0", 0x100)
    a.lw("t1", "t0", 0)  # cold miss
    a.lw("t2", "t0", 4)  # same line: L1 hit
    a.halt()
    cycles, _ = run_timed(a)
    assert cycles == pytest.approx(1 + (1 + 72) + 1 + 1)


def test_core_model_rejects_wrong_input_count():
    kernel = get_kernel("raid4", k=4)
    with pytest.raises(KernelError):
        CoreModel(assasin_sb_core()).run(kernel, [b"only-one" * 4])


def test_page_touches_monotonic_stream():
    kernel = get_kernel("stat")
    result = CoreModel(assasin_sb_core()).run(kernel, kernel.make_inputs(SIZE))
    touches = [t for t in result.page_touches if t.stream == 0]
    pages = [t.page for t in touches]
    assert pages == sorted(pages)
    needs = [t.needed_cycle for t in touches]
    assert needs == sorted(needs)
    # With P=2 buffering, page k's request slot frees one page earlier.
    assert all(t.requested_cycle <= t.needed_cycle for t in touches)


def test_page_touches_cover_all_pages():
    kernel = get_kernel("stat")
    result = CoreModel(assasin_sb_core()).run(kernel, kernel.make_inputs(SIZE))
    assert len({t.page for t in result.page_touches}) == SIZE // 4096


def test_dram_config_paths_differ_in_traffic():
    kernel = get_kernel("stat")
    inputs = kernel.make_inputs(SIZE)
    base = CoreModel(baseline_core()).run(kernel, inputs)
    sb = CoreModel(assasin_sb_core()).run(kernel, inputs)
    assert base.dram_traffic.total > 0
    assert sb.dram_traffic.total == 0


def test_prefetch_reduces_cycles_on_streaming():
    kernel = get_kernel("stat")
    inputs = kernel.make_inputs(SIZE)
    base = CoreModel(baseline_core()).run(kernel, inputs)
    pf = CoreModel(prefetch_core()).run(kernel, inputs)
    assert pf.cycles < base.cycles


def test_stream_isa_saves_cycles_on_multistream():
    kernel = get_kernel("raid4", k=4)
    inputs = kernel.make_inputs(SIZE)
    sp = CoreModel(assasin_sp_core()).run(kernel, inputs)
    sb = CoreModel(assasin_sb_core()).run(kernel, inputs)
    # Paper: ~10% from eliminating pointer management (Section VI-B).
    assert 1.05 <= sp.cycles / sb.cycles <= 1.35


def test_udp_lane_applies_isa_factor():
    kernel = get_kernel("parse")
    inputs = kernel.make_inputs(SIZE)
    plain = CoreModel(udp_core()).run(kernel, inputs)
    lane = UDPLaneModel().run(kernel, inputs)
    factor = kernel.udp_isa_factor
    assert lane.cycles == pytest.approx(plain.cycles * factor, rel=0.01)
    assert lane.config_name == "UDP"


def test_udp_factors_favour_unstructured_parsing():
    assert UDP_ISA_FACTORS["parse"] < UDP_ISA_FACTORS["stat"]


def test_udp_lane_charges_staging_traffic():
    kernel = get_kernel("stat")
    inputs = kernel.make_inputs(SIZE)
    lane = UDPLaneModel()
    result = lane.run(kernel, inputs)
    assert result.dram_traffic.core_fill >= result.bytes_in


def test_compute_intensity_ordering():
    """Paper Section VI-B: Stat/RAID4 < RAID6 < AES in ops per byte."""
    cpbs = {}
    for name, size in (("stat", SIZE), ("raid4", SIZE), ("raid6", 8192), ("aes", 2048)):
        kernel = get_kernel(name)
        result = CoreModel(assasin_sb_core()).run(kernel, kernel.make_inputs(size))
        cpbs[name] = result.cycles_per_byte
    assert cpbs["stat"] < cpbs["raid6"] < cpbs["aes"]
    assert cpbs["raid4"] < cpbs["raid6"]
