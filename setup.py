"""Thin setup.py shim: the offline environment lacks the `wheel` package, so
modern PEP-660 editable installs fail; `python setup.py develop` (used by
`pip install -e .` on legacy paths) still works. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
