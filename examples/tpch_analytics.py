#!/usr/bin/env python3
"""End-to-end data analytics with computational-storage pushdown (Figure 15).

Generates a TPC-H database, runs real query plans on the mini relational
engine, measures device PSF throughput on three SSD architectures, and
prints per-query end-to-end latencies for disaggregated storage (pure CPU)
versus offloaded execution.

    python examples/tpch_analytics.py [query ...]
"""

import sys

from repro.analytics.engine import AnalyticsEngine
from repro.analytics.queries import query_numbers, run_query
from repro.experiments.fig15 import measure_psf_rates
from repro.utils.stats import geomean


def main() -> None:
    queries = [int(a) for a in sys.argv[1:]] or [1, 3, 6, 14, 2]

    print("Generating TPC-H data and running the query plans...")
    engine = AnalyticsEngine(gen_scale_factor=0.004, target_scale_factor=10.0)
    for n in queries:
        result = run_query(engine.db, n)
        print(f"  Q{n}: {result.nrows} result rows, columns {tuple(result.columns)[:4]}...")

    print("\nMeasuring device PSF throughput per architecture (SSD simulator)...")
    rates = measure_psf_rates(("Baseline", "AssasinSp", "AssasinSb"))
    for name, rate in rates.items():
        print(f"  {name:10s}: {rate:.2f} GB/s in-device Parse-Select-Filter")

    print("\nEnd-to-end latency at SF10 (ms):")
    out = engine.figure15(rates, queries=queries)
    header = ["query", "PureCPU"] + list(rates)
    print("  " + "  ".join(f"{h:>10s}" for h in header))
    for n in queries:
        cells = [f"Q{n}", f"{out['PureCPU'][n].total_ms:.0f}"]
        cells += [f"{out[name][n].total_ms:.0f}" for name in rates]
        print("  " + "  ".join(f"{c:>10s}" for c in cells))

    all_q = query_numbers()
    full = engine.figure15(rates, queries=all_q)
    base_speedup = geomean(
        [full["PureCPU"][n].total_ns / full["Baseline"][n].total_ns for n in all_q]
    )
    sb_speedup = geomean(
        [full["Baseline"][n].total_ns / full["AssasinSb"][n].total_ns for n in all_q]
    )
    print(f"\nAcross all 22 queries (GeoMean):")
    print(f"  Baseline CSD over pure CPU : {base_speedup:.2f}x  (paper ~1.9x)")
    print(f"  ASSASIN over Baseline CSD  : {sb_speedup:.2f}x  (paper ~1.3x, range 1.1-1.5x)")


if __name__ == "__main__":
    main()
