#!/usr/bin/env python3
"""Scalability and layout-skew robustness (Figures 16-19).

Shows the ASSASIN SSD's crossbar at work: linear compute scaling up to the
flash array's bandwidth, near-perfect core utilisation, balanced channels
under the unmodified FTL, and graceful degradation when the requested
data's layout is skewed — where the channel-local alternative architecture
collapses.

    python examples/scaling_and_skew.py
"""

from repro.experiments import fig16, fig19


def main() -> None:
    print("=" * 72)
    print("Scaling ASSASIN cores against an 8 GB/s flash array (Figures 16-18)")
    print("=" * 72)
    scaling = fig16.run(core_counts=(1, 2, 4, 8, 12), data_bytes=16 << 20)
    print(fig16.render(scaling))

    print()
    print("=" * 72)
    print("Layout skew: SSD-level crossbar vs channel-local compute (Figure 19)")
    print("=" * 72)
    skew = fig19.run(data_bytes=16 << 20, skews=(0.0, 0.5, 1.0))
    print(fig19.render(skew))
    print()
    print("The crossbar lets every core consume pages from whichever channel")
    print("holds them, so compute pools against hot channels; channel-local")
    print("engines strand the cores whose channels hold little data.")


if __name__ == "__main__":
    main()
