#!/usr/bin/env python3
"""Quickstart: offload one function to a computational SSD and compare
architectures.

Runs the Stat kernel (sum a column — the paper's least compute-intensive
offload) on the state-of-the-art Baseline architecture and on ASSASIN,
showing the memory wall and how stream computing removes it.

    python examples/quickstart.py
"""

from repro.config import assasin_sb_config, baseline_config
from repro.kernels import get_kernel
from repro.ssd import simulate_offload

DATA_BYTES = 32 << 20  # logical dataset per run


def main() -> None:
    kernel = get_kernel("stat")

    print(f"Offloading '{kernel.name}' over {DATA_BYTES >> 20} MiB on two SSDs...\n")
    for config in (baseline_config(), assasin_sb_config()):
        result = simulate_offload(config, kernel, data_bytes=DATA_BYTES)
        traffic = result.dram_traffic
        print(f"[{config.name}]")
        print(f"  throughput      : {result.throughput_gbps:.2f} GB/s")
        print(f"  limited by      : {result.limiter}")
        print(f"  core utilisation: {result.mean_utilisation:.1%}")
        print(
            "  SSD-DRAM traffic: "
            f"{traffic.total:.2f} bytes per input byte "
            f"(staging {traffic.staging_in:.2f}, core {traffic.core_reads:.2f})"
        )
        print()

    base = simulate_offload(baseline_config(), kernel, data_bytes=DATA_BYTES)
    sb = simulate_offload(assasin_sb_config(), kernel, data_bytes=DATA_BYTES)
    print(
        f"ASSASIN speedup: {sb.throughput_gbps / base.throughput_gbps:.2f}x "
        "(paper Figure 13: 1.3x-2.0x on memory-intensive offloads)"
    )


if __name__ == "__main__":
    main()
