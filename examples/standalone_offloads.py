#!/usr/bin/env python3
"""Standalone function offloads: the paper's Figure 5 and Figure 13 story.

First reproduces the motivating example (Section III-A): one baseline core
running Filter is stuck well under the flash channel bandwidth because of
SSD-DRAM stalls. Then sweeps the four standalone functions across all six
Table IV configurations.

    python examples/standalone_offloads.py
"""

from repro.experiments import fig05, fig13


def main() -> None:
    print("=" * 72)
    print("Motivating example: why computational SSDs hit a memory wall")
    print("=" * 72)
    print(fig05.render(fig05.run()))

    print()
    print("=" * 72)
    print("Standalone offloads across the six configurations (Figure 13)")
    print("=" * 72)
    result = fig13.run(data_bytes=16 << 20)
    print(fig13.render(result))

    print()
    print("Reading the table:")
    print(" * Stat/RAID4 demand more DRAM bandwidth than LPDDR5 offers, so")
    print("   Baseline and Prefetch cap out at ~4 GB/s (the memory wall);")
    print("   ASSASIN streams directly from flash and reaches ~7 GB/s.")
    print(" * RAID6 adds Galois-field math: compute starts to matter.")
    print(" * AES is compute-bound, so every architecture looks the same —")
    print("   exactly the trend of the paper's Figure 13.")


if __name__ == "__main__":
    main()
