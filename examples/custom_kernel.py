#!/usr/bin/env python3
"""Writing a custom offload kernel against the ASSASIN programming model.

Implements a new storage function end to end — a newline counter ("wc -l"
in-SSD) — showing the three pieces every kernel provides:

1. a Python reference (ground truth),
2. a stream program using the stream ISA (paper Listing 1 style),
3. a memory program for the DRAM/scratchpad architectures,

then validates them against each other and simulates the offload at device
level on two architectures.

    python examples/custom_kernel.py
"""

import random
from typing import List

from repro.config import assasin_sb_config, assasin_sb_core, baseline_config
from repro.core.core import CoreModel
from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.registry import register_kernel
from repro.mem.memory import FlatMemory
from repro.ssd import simulate_offload


class LineCountKernel(Kernel):
    """Count newline bytes; the count is scratchpad-resident function state."""

    name = "linecount"
    num_inputs = 1
    num_outputs = 0
    block_bytes = 1
    state_bytes = 4

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        self._expected_state = inputs[0].count(b"\n").to_bytes(4, "little")
        return []

    def reference_state(self, inputs: List[bytes]) -> bytes:
        self.reference(inputs)
        return self._expected_state

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        out = bytearray()
        while len(out) < total_bytes:
            out += bytes(rng.randrange(32, 127) for _ in range(rng.randint(5, 80)))
            out += b"\n"
        return [bytes(out[:total_bytes])]

    def _build_stream_program(self, state_base: int) -> Program:
        # while True: c = StreamLoad(0, 1); if c == '\n': count += 1
        a = Asm("linecount-stream")
        a.li("t6", state_base)
        a.li("t3", 0x0A)
        a.lw("s1", "t6", 0)
        a.label("loop")
        a.sload("t0", 0, 1)
        a.bne("t0", "t3", "loop")
        a.addi("s1", "s1", 1)
        a.sw("s1", "t6", 0)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("linecount-memory")
        a.li("t6", state_base)
        a.li("t3", 0x0A)
        a.lw("s1", "t6", 0)
        a.add("t2", "a0", "a1")
        a.label("loop")
        a.bgeu("a0", "t2", "done")
        a.lbu("t0", "a0", 0)
        a.addi("a0", "a0", 1)
        a.bne("t0", "t3", "loop")
        a.addi("s1", "s1", 1)
        a.j("loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.li("a0", 0)
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.store_u32(state_base, 0)


def main() -> None:
    kernel = LineCountKernel()
    register_kernel("linecount", LineCountKernel)

    print("Validating the two program forms against the reference...")
    inputs = kernel.make_inputs(8192)
    expected = kernel.reference_state(inputs)
    stream = CoreModel(assasin_sb_core()).run(kernel, inputs)
    memory = CoreModel(baseline_config().core).run(kernel, inputs)
    assert stream.final_state == expected, "stream form disagrees"
    assert memory.final_state == expected, "memory form disagrees"
    lines = int.from_bytes(expected, "little")
    print(f"  OK: all three implementations count {lines} lines")
    print(f"  stream form: {stream.cycles_per_byte:.2f} cycles/byte")
    print(f"  memory form: {memory.cycles_per_byte:.2f} cycles/byte (baseline core)")

    print("\nDevice-level offload of the new kernel:")
    for config in (baseline_config(), assasin_sb_config()):
        result = simulate_offload(config, LineCountKernel(), data_bytes=16 << 20)
        print(
            f"  {config.name:10s}: {result.throughput_gbps:.2f} GB/s "
            f"(limited by {result.limiter})"
        )


if __name__ == "__main__":
    main()
