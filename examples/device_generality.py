#!/usr/bin/env python3
"""The generality story: write-path scomp, concurrent functions, mixed I/O.

The paper's Sections I and V argue ASSASIN is *general purpose*: it serves
read-path and write-path computational requests, runs diverse functions
concurrently on its pooled engines, and keeps serving conventional reads
throughout. This example exercises all three on one device model.

    python examples/device_generality.py
"""

from repro.config import assasin_sb_config, baseline_config
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD
from repro.ssd.firmware import BackgroundIO

DATA = 16 << 20


def main() -> None:
    print("1) Write-path scomp: erasure coding while ingesting data")
    print("   (host -> engines -> data+parity to flash)")
    for make in (baseline_config, assasin_sb_config):
        device = ComputationalSSD(make())
        result = device.offload_write_path(get_kernel("raid6"), DATA)
        print(
            f"   {make().name:10s}: {result.throughput_gbps:.2f} GB/s ingest, "
            f"{result.bytes_out >> 20} MiB programmed (data + P + Q)"
        )

    print("\n2) Concurrent functions: statistics and erasure coding share cores")
    device = ComputationalSSD(assasin_sb_config())
    stat, raid6 = device.offload_concurrent(
        [(get_kernel("stat"), DATA), (get_kernel("raid6"), DATA)]
    )
    for result in (stat, raid6):
        print(
            f"   {result.kernel_name:6s}: {result.num_cores} cores, "
            f"{result.throughput_gbps:.2f} GB/s"
        )

    print("\n3) Conventional host reads during an offload (FTL untouched)")
    device = ComputationalSSD(assasin_sb_config())
    kernel = get_kernel("scan")
    background = BackgroundIO(lpas=list(range(0, 1024, 3)), interval_ns=4096.0)  # 1 GB/s
    result = device.offload(kernel, DATA, background=background)
    print(
        f"   offload: {result.throughput_gbps:.2f} GB/s while the host reads "
        f"1 GB/s; host read latency mean "
        f"{background.mean_latency_ns / 1e3:.0f} us, "
        f"p99 {background.p99_latency_ns / 1e3:.0f} us"
    )


if __name__ == "__main__":
    main()
