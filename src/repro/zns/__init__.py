"""``repro.zns`` — zoned-namespace mode with LSM compaction offload.

The ZNS counterpart of the block-device stack: the device runs the
:class:`~repro.ftl.zoned.ZonedFTL` (zone append / reset / report instead of
random writes + page GC), an LSM engine writes sorted runs into zones, and
leveled compaction runs either on the host or inside the SSD via the
``merge`` stream kernel — the placement question this package exists to
answer with numbers.
"""

from repro.zns.config import COMPACTION_POLICIES, ZnsConfig, zns_flash_config
from repro.zns.firmware import ZnsFirmware
from repro.zns.lsm import CompactionPick, LsmTree, Segment, SortedRun
from repro.zns.metrics import ZnsReport
from repro.zns.workload import ZnsCampaign, run_zns

__all__ = [
    "COMPACTION_POLICIES",
    "CompactionPick",
    "LsmTree",
    "Segment",
    "SortedRun",
    "ZnsCampaign",
    "ZnsConfig",
    "ZnsFirmware",
    "ZnsReport",
    "zns_flash_config",
    "run_zns",
]
