"""Metrics for ZNS LSM campaigns: one report, renderable and fingerprintable.

Follows the ``repro.fleet`` idiom: the report is a plain dataclass of
counters; :meth:`fingerprint` is a value tuple whose SHA-256
(:meth:`fingerprint_hex`) byte-identifies a run — two same-seed campaigns
must produce equal hex digests (the determinism gate in CI).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.stats import percentile


@dataclass
class ZnsReport:
    """Everything a ZNS campaign run produced."""

    policy: str = "auto"
    seed: int = 0
    duration_ns: float = 0.0
    # -- foreground ---------------------------------------------------------------
    puts: int = 0
    gets: int = 0
    get_memtable_hits: int = 0
    get_run_hits: int = 0
    get_misses: int = 0
    get_latencies_ns: List[float] = field(default_factory=list)
    # -- background ---------------------------------------------------------------
    flushes: int = 0
    flush_pages: int = 0
    compactions: int = 0
    compactions_host: int = 0
    compactions_device: int = 0
    #: Bytes the *compaction path* moved over the host link (the offload
    #: headline: device-side compaction keeps this near zero).
    compaction_link_bytes: int = 0
    #: Bytes of run data a compaction read + wrote (either placement).
    compaction_data_bytes: int = 0
    # -- device -------------------------------------------------------------------
    bytes_to_host: int = 0
    bytes_from_host: int = 0
    zone_resets: int = 0
    zone_appends: int = 0
    zones_in_use: int = 0
    wear_total: int = 0
    # -- tree / sim ---------------------------------------------------------------
    levels_runs: List[int] = field(default_factory=list)
    live_records: int = 0
    sim_events: int = 0
    horizon_ns: float = 0.0

    # -- derived ------------------------------------------------------------------

    @property
    def link_bytes_total(self) -> int:
        return self.bytes_to_host + self.bytes_from_host

    def get_percentile_ns(self, pct: float) -> float:
        if not self.get_latencies_ns:
            return 0.0
        return percentile(self.get_latencies_ns, pct)

    @property
    def get_p50_ns(self) -> float:
        return self.get_percentile_ns(50.0)

    @property
    def get_p99_ns(self) -> float:
        return self.get_percentile_ns(99.0)

    @property
    def ops_per_sec(self) -> float:
        if self.horizon_ns <= 0:
            return 0.0
        return (self.puts + self.gets) / (self.horizon_ns * 1e-9)

    # -- identity -----------------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """The run's observable behaviour as one value tuple."""
        return (
            self.policy,
            self.seed,
            round(self.duration_ns, 3),
            self.puts,
            self.gets,
            self.get_memtable_hits,
            self.get_run_hits,
            self.get_misses,
            tuple(round(v, 3) for v in self.get_latencies_ns),
            self.flushes,
            self.flush_pages,
            self.compactions,
            self.compactions_host,
            self.compactions_device,
            self.compaction_link_bytes,
            self.compaction_data_bytes,
            self.bytes_to_host,
            self.bytes_from_host,
            self.zone_resets,
            self.zone_appends,
            self.zones_in_use,
            self.wear_total,
            tuple(self.levels_runs),
            self.live_records,
            self.sim_events,
            round(self.horizon_ns, 3),
        )

    def fingerprint_hex(self) -> str:
        return hashlib.sha256(repr(self.fingerprint()).encode()).hexdigest()

    def to_dict(self) -> Dict:
        """JSON-friendly summary (latency list reduced to percentiles)."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "puts": self.puts,
            "gets": self.gets,
            "get_memtable_hits": self.get_memtable_hits,
            "get_run_hits": self.get_run_hits,
            "get_misses": self.get_misses,
            "get_p50_ns": self.get_p50_ns,
            "get_p99_ns": self.get_p99_ns,
            "ops_per_sec": self.ops_per_sec,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "compactions_host": self.compactions_host,
            "compactions_device": self.compactions_device,
            "compaction_link_bytes": self.compaction_link_bytes,
            "compaction_data_bytes": self.compaction_data_bytes,
            "link_bytes_total": self.link_bytes_total,
            "zone_resets": self.zone_resets,
            "zone_appends": self.zone_appends,
            "zones_in_use": self.zones_in_use,
            "wear_total": self.wear_total,
            "levels_runs": list(self.levels_runs),
            "live_records": self.live_records,
            "sim_events": self.sim_events,
            "fingerprint": self.fingerprint_hex(),
        }

    def render(self) -> str:
        lines = [
            f"zns campaign  : policy={self.policy} seed={self.seed} "
            f"horizon={self.horizon_ns / 1e6:.2f} ms",
            f"foreground    : {self.puts} puts, {self.gets} gets "
            f"({self.get_memtable_hits} memtable / {self.get_run_hits} run / "
            f"{self.get_misses} miss), {self.ops_per_sec / 1e6:.2f} Mops/s",
            f"get latency   : p50 {self.get_p50_ns / 1e3:.1f} us, "
            f"p99 {self.get_p99_ns / 1e3:.1f} us",
            f"lsm           : {self.flushes} flushes, {self.compactions} compactions "
            f"({self.compactions_host} host / {self.compactions_device} device), "
            f"runs per level {list(self.levels_runs)}",
            f"compaction IO : {self.compaction_data_bytes >> 10} KiB moved, "
            f"{self.compaction_link_bytes >> 10} KiB over the host link",
            f"host link     : {self.bytes_to_host >> 10} KiB up, "
            f"{self.bytes_from_host >> 10} KiB down",
            f"zones         : {self.zones_in_use} in use, {self.zone_resets} resets, "
            f"{self.zone_appends} appends, wear {self.wear_total}",
            f"sim           : {self.sim_events} events, "
            f"fingerprint {self.fingerprint_hex()[:16]}",
        ]
        return "\n".join(lines)
