"""ZNS firmware: zone commands serviced on the shared simulation kernel.

The firmware sits between the NVMe-style host interface and the zoned FTL.
Each command books real work on the existing device timelines — the host
link (:class:`~repro.ssd.host_interface.HostInterface`), the flash channels
and planes (:class:`~repro.flash.array.FlashArray`) — so zone appends,
resets, and reports contend with everything else running on the same
:class:`~repro.sim.Simulator` (foreground reads, compaction traffic).

Two layers:

* *timed primitives* (``zone_append`` / ``read_lbas`` / ``zone_reset`` /
  ``zone_report``) book resources and return completion times, usable from
  inside any sim process;
* :meth:`execute` dispatches an :class:`~repro.ssd.host_interface.NVMeCommand`
  through a primitive and posts the completion-queue entry — zone append
  completions carry the assigned LBA, as the ZNS spec requires.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ZnsError
from repro.ftl.zoned import ZoneDescriptor
from repro.ssd.host_interface import (
    NVMeCommand,
    ReadCommand,
    ZoneAppendCommand,
    ZoneReportCommand,
    ZoneResetCommand,
)

#: Wire size of one zone descriptor in a Zone Report (ZNS spec: 64 B).
DESCRIPTOR_BYTES = 64


class ZnsFirmware:
    """Services zone commands against a zoned :class:`ComputationalSSD`."""

    def __init__(self, device, sim) -> None:
        if not getattr(device, "zoned", False):
            raise ZnsError("ZnsFirmware needs a device built with zoned=True")
        self.device = device
        self.sim = sim
        self.array = device.array
        self.ftl = device.ftl
        self.host = device.host
        self.page_bytes = device.config.flash.page_bytes

    # -- timed primitives --------------------------------------------------------

    def zone_append(
        self, zone_id: int, npages: int, issue_ns: float, from_host: bool = True
    ) -> Tuple[int, float]:
        """Append ``npages`` at the zone's write pointer; returns (LBA, done).

        Host appends ship the data over the link first; device-internal
        appends (compaction output) skip the link entirely.
        """
        ready = issue_ns
        if from_host:
            ready = self.host.transfer(
                npages * self.page_bytes, issue_ns, to_host=False
            )
        lba, ppas = self.ftl.append(zone_id, npages)
        done = ready
        for ppa in ppas:
            record = self.array.service_write(ppa, ready)
            done = max(done, record.done_ns)
        return lba, done

    def read_lbas(
        self, lbas: Sequence[int], issue_ns: float, to_host: bool = True
    ) -> float:
        """Read pages by LBA; optionally ship them up the link afterwards."""
        done = issue_ns
        for lba in lbas:
            record = self.array.service_read(self.ftl.lookup(lba), issue_ns)
            done = max(done, record.done_ns)
        if to_host and lbas:
            done = self.host.transfer(len(lbas) * self.page_bytes, done, to_host=True)
        return done

    def zone_reset(self, zone_id: int, issue_ns: float) -> float:
        """Reset a zone: erase its block group (this *is* the GC here)."""
        done = issue_ns
        for ppa in self.ftl.reset_zone(zone_id):
            done = max(done, self.array.erase(ppa, issue_ns))
        return done

    def zone_report(
        self, issue_ns: float, first: int = 0, count: Optional[int] = None
    ) -> Tuple[List[ZoneDescriptor], float]:
        """Zone Management Receive: descriptors plus their link transfer."""
        descriptors = self.ftl.zone_report(first, count)
        done = self.host.transfer(
            DESCRIPTOR_BYTES * len(descriptors), issue_ns, to_host=True
        )
        return descriptors, done

    # -- command dispatch --------------------------------------------------------

    def submit(self, command: NVMeCommand) -> NVMeCommand:
        self.host.submit(command)
        return command

    def execute(self, command: NVMeCommand, issue_ns: float):
        """Run one zone/read command; returns ``(result, done_ns)``.

        Posts the completion-queue entry. The *result* is the assigned LBA
        for appends, the descriptor list for reports, ``None`` otherwise.
        """
        if isinstance(command, ZoneAppendCommand):
            lba, done = self.zone_append(command.zone_id, command.npages, issue_ns)
            nbytes = command.npages * self.page_bytes
            self.host.complete(command, issue_ns, done, nbytes)
            return lba, done
        if isinstance(command, ZoneResetCommand):
            done = self.zone_reset(command.zone_id, issue_ns)
            self.host.complete(command, issue_ns, done, 0)
            return None, done
        if isinstance(command, ZoneReportCommand):
            descriptors, done = self.zone_report(
                issue_ns, command.first_zone, command.count or None
            )
            self.host.complete(
                command, issue_ns, done, DESCRIPTOR_BYTES * len(descriptors)
            )
            return descriptors, done
        if isinstance(command, ReadCommand):
            done = self.read_lbas(command.lpas, issue_ns)
            self.host.complete(
                command, issue_ns, done, len(command.lpas) * self.page_bytes
            )
            return None, done
        raise ZnsError(f"ZNS firmware cannot service {type(command).__name__}")

    def process(self, command: NVMeCommand, on_complete=None):
        """Generator form of :meth:`execute` for :meth:`Simulator.spawn`."""
        self.submit(command)
        result, done = self.execute(command, self.sim.now)
        yield self.sim.wait_until(done)
        if on_complete is not None:
            on_complete(result, done)
