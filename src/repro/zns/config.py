"""Configuration for the ZNS LSM campaign (``python -m repro zns``).

The flash geometry is deliberately small-zone: a zone is one block group
(same block index across every die/plane of one chip), so shrinking
``blocks_per_plane`` and ``pages_per_block`` gives many small zones —
512 zones of 32 pages (128 KiB) here — which keeps flush/compaction churn
high enough to exercise zone allocation, resets, and the open-zone limit
within a few simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import FlashConfig, SSDConfig, assasin_sb_config
from repro.errors import ConfigError

#: Compaction placement policies (:class:`ZnsConfig.compaction`).
COMPACTION_POLICIES = ("host", "device", "auto")


def zns_flash_config() -> FlashConfig:
    """Small-zone geometry: 4ch x 2chip x (2die x 2plane) x 64blk x 8pg.

    -> 512 zones, each 2*2*8 = 32 pages (128 KiB), 64 MiB total. The
    timings are SLC-mode (small zones are how ZNS drives expose their SLC
    region): 8 us reads, 30 us programs, 0.5 ms erases.
    """
    return FlashConfig(
        channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=64,
        pages_per_block=8,
        read_latency_ns=8_000.0,
        program_latency_ns=30_000.0,
        erase_latency_ns=500_000.0,
    )


@dataclass(frozen=True)
class ZnsConfig:
    """One seeded ZNS LSM campaign: tenants, tree shape, placement policy."""

    seed: int = 7
    duration_ns: float = 6_000_000.0
    #: Closed-loop put issuers with open-loop (spawned) gets.
    num_tenants: int = 4
    mean_interarrival_ns: float = 400.0
    put_fraction: float = 0.9
    key_space: int = 20_000
    #: Host-side latency charged to memtable hits / bloom-filter misses.
    probe_ns: float = 250.0
    # -- LSM tree shape --------------------------------------------------------
    memtable_records: int = 1024
    l0_runs_trigger: int = 4
    fanout: int = 4
    max_levels: int = 4
    #: Victim runs per compaction; bounded by the merge kernel's k <= 4.
    compaction_runs: int = 4
    #: Cap on pages per run segment: long runs stripe across this many
    #: pages per zone, so their appends spread over several chips.
    run_segment_pages: int = 8
    compaction_check_ns: float = 50_000.0
    # -- device ----------------------------------------------------------------
    max_open_zones: int = 8
    #: "host" reads runs up and writes the merge back; "device" runs the
    #: k-way merge kernel in the SSD; "auto" asks the CostSource.
    compaction: str = "auto"

    def __post_init__(self) -> None:
        if self.compaction not in COMPACTION_POLICIES:
            raise ConfigError(
                f"compaction policy {self.compaction!r} not in {COMPACTION_POLICIES}"
            )
        if not 2 <= self.compaction_runs <= 4:
            raise ConfigError("compaction_runs must match the merge kernel's 2..4")
        if self.l0_runs_trigger < 2 or self.fanout < 1:
            raise ConfigError("need l0_runs_trigger >= 2 and fanout >= 1")
        if self.num_tenants <= 0 or self.memtable_records <= 0:
            raise ConfigError("ZnsConfig needs tenants and a positive memtable")
        if not 0.0 <= self.put_fraction <= 1.0:
            raise ConfigError("put_fraction must be a fraction")

    def ssd(self) -> SSDConfig:
        """The AssasinSb device, re-geometried for small zones."""
        return assasin_sb_config(flash=zns_flash_config())

    def with_policy(self, compaction: str) -> "ZnsConfig":
        return replace(self, compaction=compaction)
