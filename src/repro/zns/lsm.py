"""A small LSM-tree model over zoned storage (``repro.zns``).

The tree is bookkeeping only — record *contents* never materialise; what
matters for the simulation is which pages live in which zones and how much
data each flush/compaction moves. A memtable flush becomes a sorted run
written at zone write pointers; leveled compaction merges the oldest runs
of an overfull level into the next one (k <= 4 victims, matching the
``merge`` kernel's fan-in).

Runs own their zones exclusively: a run is a list of *segments*
``(zone_id, first_lba, pages)``, one zone per segment, so retiring a run
retires whole zones — zone reset replaces page-level GC.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ZnsError
from repro.kernels.tuples import TUPLE_BYTES

#: On-flash record size: the :mod:`repro.kernels.tuples` layout.
RECORD_BYTES = TUPLE_BYTES


@dataclass
class Segment:
    """A contiguous zone-resident piece of a run."""

    zone_id: int
    first_lba: int
    pages: int


@dataclass
class SortedRun:
    """One immutable sorted run: unique keys, newest ``seq`` per key."""

    run_id: int
    level: int
    keys: List[int]  # sorted, unique
    seqs: Dict[int, int]
    segments: List[Segment] = field(default_factory=list)
    records_per_page: int = 128
    compacting: bool = False

    @property
    def pages(self) -> int:
        return sum(segment.pages for segment in self.segments)

    @property
    def records(self) -> int:
        return len(self.keys)

    def __contains__(self, key: int) -> bool:
        return key in self.seqs

    def lba_for_key(self, key: int) -> int:
        """The LBA of the page holding ``key`` (key must be present)."""
        index = bisect.bisect_left(self.keys, key)
        if index >= len(self.keys) or self.keys[index] != key:
            raise ZnsError(f"key {key} not in run {self.run_id}")
        page = index // self.records_per_page
        for segment in self.segments:
            if page < segment.pages:
                return segment.first_lba + page
            page -= segment.pages
        raise ZnsError(f"run {self.run_id} pages do not cover key {key}")

    def all_lbas(self) -> List[int]:
        return [
            segment.first_lba + i
            for segment in self.segments
            for i in range(segment.pages)
        ]


@dataclass(frozen=True)
class CompactionPick:
    """A planned compaction: victims (oldest first) and the target level."""

    level: int
    victims: Tuple[SortedRun, ...]
    target: int


class LsmTree:
    """Memtable + leveled runs; placement-agnostic bookkeeping."""

    def __init__(
        self,
        memtable_records: int,
        l0_runs_trigger: int,
        fanout: int,
        max_levels: int,
        compaction_runs: int = 4,
        records_per_page: int = 128,
    ) -> None:
        self.memtable_records = memtable_records
        self.l0_runs_trigger = l0_runs_trigger
        self.fanout = fanout
        self.max_levels = max_levels
        self.compaction_runs = compaction_runs
        self.records_per_page = records_per_page
        self.memtable: Dict[int, int] = {}
        #: levels[i] ordered oldest-first; lookups scan newest-first.
        self.levels: List[List[SortedRun]] = [[] for _ in range(max_levels)]
        self._next_run_id = 0
        self.flushes = 0
        self.compactions = 0

    # -- write path --------------------------------------------------------------

    def put(self, key: int, seq: int) -> bool:
        """Insert; returns True when the memtable is ripe for flushing."""
        self.memtable[key] = seq
        return len(self.memtable) >= self.memtable_records

    def take_memtable(self) -> List[Tuple[int, int]]:
        """Swap in a fresh memtable; returns sorted (key, seq) entries."""
        entries = sorted(self.memtable.items())
        self.memtable = {}
        return entries

    def new_run(self, level: int, entries: Iterable[Tuple[int, int]]) -> SortedRun:
        """Build a run from sorted (key, seq) entries (segments added later)."""
        keys = []
        seqs = {}
        for key, seq in entries:
            keys.append(key)
            seqs[key] = seq
        run = SortedRun(
            run_id=self._next_run_id,
            level=level,
            keys=keys,
            seqs=seqs,
            records_per_page=self.records_per_page,
        )
        self._next_run_id += 1
        return run

    def add_run(self, run: SortedRun, level: int = 0) -> None:
        run.level = level
        self.levels[level].append(run)
        if level == 0:
            self.flushes += 1

    # -- read path ---------------------------------------------------------------

    def locate(self, key: int) -> Tuple[str, Optional[SortedRun]]:
        """('memtable'|'run'|'miss', run) — newest version wins."""
        if key in self.memtable:
            return "memtable", None
        for level in self.levels:
            for run in reversed(level):  # newest runs searched first
                if key in run:
                    return "run", run
        return "miss", None

    # -- compaction planning ------------------------------------------------------

    def pick_compaction(self) -> Optional[CompactionPick]:
        """The next leveled compaction, or None when the tree is in shape."""
        ready0 = [run for run in self.levels[0] if not run.compacting]
        if len(ready0) >= self.l0_runs_trigger:
            victims = tuple(ready0[: min(self.compaction_runs, len(ready0))])
            return CompactionPick(level=0, victims=victims, target=1)
        for level in range(1, self.max_levels):
            ready = [run for run in self.levels[level] if not run.compacting]
            if len(ready) > self.fanout:
                victims = tuple(ready[: min(self.compaction_runs, len(ready))])
                target = min(level + 1, self.max_levels - 1)
                return CompactionPick(level=level, victims=victims, target=target)
        return None

    @staticmethod
    def merge_entries(victims: Iterable[SortedRun]) -> List[Tuple[int, int]]:
        """Merge victim runs newest-wins; victims must be oldest-first."""
        merged: Dict[int, int] = {}
        for run in victims:  # later (newer) runs overwrite earlier ones
            merged.update(run.seqs)
        return sorted(merged.items())

    def apply_compaction(self, pick: CompactionPick, new_run: SortedRun) -> None:
        """Swap victims for the merged run (which is newest at its level)."""
        for victim in pick.victims:
            self.levels[victim.level].remove(victim)
        self.add_run(new_run, pick.target)
        self.compactions += 1
