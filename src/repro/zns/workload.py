"""The ZNS LSM campaign: YCSB-ish tenants + compaction on one simulator.

Everything shares a single :class:`~repro.sim.Simulator` and one zoned
:class:`~repro.ssd.device.ComputationalSSD`:

* *tenants* issue puts (memtable inserts) and gets (spawned as their own
  processes, so a slow read never stalls the issue loop) at seeded
  exponential interarrivals;
* a *flush* process turns each ripe memtable into a sorted L0 run written
  through ``ZoneAppendCommand``s;
* a *compaction manager* polls the tree and runs leveled compactions either
  **host-side** (victim runs stream up the link, merge on the host, stream
  back down) or **device-side** (the ``merge`` kernel consumes the runs
  inside the SSD and only a completion crosses the link). ``auto`` asks
  the calibrated :class:`~repro.analytics.cost.StaticCostSource`.

The contended resources are real: zone appends/reads book flash-channel
and plane timelines, host-path compaction occupies the same link the
foreground gets complete over — which is exactly where device-side
compaction wins its tail-latency improvement.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List

from repro.analytics.cost import StaticCostSource
from repro.errors import ZnsError
from repro.ftl.zoned import ZoneState
from repro.sim import Simulator
from repro.ssd.device import ComputationalSSD
from repro.ssd.host_interface import ReadCommand, ScompCommand, ZoneAppendCommand, ZoneResetCommand
from repro.zns.config import ZnsConfig
from repro.zns.firmware import ZnsFirmware
from repro.zns.lsm import RECORD_BYTES, CompactionPick, LsmTree, Segment, SortedRun
from repro.zns.metrics import ZnsReport

#: Completion-queue entry shipped up the link by a device-side compaction.
COMPLETION_BYTES = 64


class ZnsCampaign:
    """One seeded run of the ZNS workload; :meth:`run` returns the report."""

    def __init__(self, config: ZnsConfig) -> None:
        self.cfg = config
        self.sim = Simulator()
        self.device = ComputationalSSD(
            config.ssd(), zoned=True, max_open_zones=config.max_open_zones
        )
        self.fw = ZnsFirmware(self.device, self.sim)
        self.ftl = self.device.ftl
        self.host = self.device.host
        self.page_bytes = self.device.config.flash.page_bytes
        self.records_per_page = self.page_bytes // RECORD_BYTES
        self.lsm = LsmTree(
            memtable_records=config.memtable_records,
            l0_runs_trigger=config.l0_runs_trigger,
            fanout=config.fanout,
            max_levels=config.max_levels,
            compaction_runs=config.compaction_runs,
            records_per_page=self.records_per_page,
        )
        #: Free zones as a min-heap keyed ``(block, chip, zone_id)``:
        #: consecutive allocations stripe across chips (a zone is one
        #: chip's block group, so same-chip zones serialise on tPROG).
        blocks = self.device.config.flash.blocks_per_plane
        self._free_zones: List[tuple] = [
            (zid % blocks, zid // blocks, zid) for zid in range(self.ftl.num_zones)
        ]
        heapq.heapify(self._free_zones)
        #: Memtable snapshots currently being flushed (still readable).
        self._flushing: List[Dict[int, int]] = []
        self._compacting = False
        self._seq = 0
        #: Device rates sampled from the simulator itself (merge kernel).
        self.cost = StaticCostSource.calibrate(self.device, kernels=("merge",))
        self.report = ZnsReport(
            policy=config.compaction, seed=config.seed, duration_ns=config.duration_ns
        )

    # -- zone allocation ---------------------------------------------------------

    def _take_zone(self) -> int:
        if not self._free_zones:
            raise ZnsError("out of free zones; campaign overruns device capacity")
        return heapq.heappop(self._free_zones)[2]

    def _release_zone(self, zone_id: int) -> None:
        blocks = self.device.config.flash.blocks_per_plane
        heapq.heappush(self._free_zones, (zone_id % blocks, zone_id // blocks, zone_id))

    # -- run writing -------------------------------------------------------------

    def _append_run(self, run: SortedRun, from_host: bool):
        """Write a run's pages at fresh zone write pointers.

        Segments are issued back to back — they land on different chips
        thanks to striped allocation, so their programs overlap — and the
        generator waits once for the slowest one.
        """
        pages_left = math.ceil(run.records / self.records_per_page)
        segment_cap = min(self.cfg.run_segment_pages, self.ftl.zone_pages)
        done = self.sim.now
        while pages_left:
            zone_id = self._take_zone()
            npages = min(pages_left, segment_cap)
            if from_host:
                command = ZoneAppendCommand(
                    self.host.next_id(), zone_id=zone_id, npages=npages
                )
                self.fw.submit(command)
                lba, seg_done = self.fw.execute(command, self.sim.now)
            else:
                lba, seg_done = self.fw.zone_append(
                    zone_id, npages, self.sim.now, from_host=False
                )
            done = max(done, seg_done)
            run.segments.append(Segment(zone_id, lba, npages))
            if self.ftl.state(zone_id) is ZoneState.OPEN:
                self.ftl.close_zone(zone_id)  # free the open-zone slot
            pages_left -= npages
        yield self.sim.wait_until(done)

    def _retire_run_zones(self, run: SortedRun) -> None:
        """Zone reset is the GC: retire a victim's zones and recycle them.

        Books the erases and returns immediately — the plane timelines
        carry the reset cost, and any later append to a recycled zone
        queues behind its erase on the same plane resources.
        """
        for segment in run.segments:
            command = ZoneResetCommand(self.host.next_id(), zone_id=segment.zone_id)
            self.fw.submit(command)
            self.fw.execute(command, self.sim.now)
            self._release_zone(segment.zone_id)

    # -- foreground --------------------------------------------------------------

    def _tenant(self, index: int):
        cfg = self.cfg
        rng = random.Random((cfg.seed + 1) * 1_000_003 + index * 7_919)
        while True:
            yield self.sim.wait(max(1, round(rng.expovariate(1.0 / cfg.mean_interarrival_ns))))
            key = rng.randrange(cfg.key_space)
            if rng.random() < cfg.put_fraction:
                self._put(key)
            else:
                self.sim.spawn(self._get(key), label=f"get-{index}")

    def _put(self, key: int) -> None:
        self._seq += 1
        self.report.puts += 1
        if self.lsm.put(key, self._seq):
            entries = self.lsm.take_memtable()
            snapshot = dict(entries)
            self._flushing.append(snapshot)
            self.sim.spawn(self._flush(entries, snapshot), label="flush")

    def _get(self, key: int):
        start = self.sim.now
        self.report.gets += 1
        kind, run = self.lsm.locate(key)
        if kind == "memtable" or any(key in snap for snap in self._flushing):
            self.report.get_memtable_hits += 1
            yield self.sim.wait(self.cfg.probe_ns)
            self.report.get_latencies_ns.append(self.sim.now - start)
            return
        if run is None:
            self.report.get_misses += 1
            yield self.sim.wait(self.cfg.probe_ns)
            self.report.get_latencies_ns.append(self.sim.now - start)
            return
        self.report.get_run_hits += 1
        lba = run.lba_for_key(key)
        command = ReadCommand(self.host.next_id(), lpas=[lba])
        self.fw.submit(command)
        _, done = self.fw.execute(command, start)
        yield self.sim.wait_until(done)
        self.report.get_latencies_ns.append(done - start)

    # -- background --------------------------------------------------------------

    def _flush(self, entries, snapshot) -> None:
        run = self.lsm.new_run(0, entries)
        yield from self._append_run(run, from_host=True)
        self.lsm.add_run(run, 0)
        self._flushing.remove(snapshot)
        self.report.flush_pages += run.pages

    def _compaction_manager(self):
        while True:
            yield self.sim.wait(self.cfg.compaction_check_ns)
            if self._compacting:
                continue
            pick = self.lsm.pick_compaction()
            if pick is not None:
                self._compacting = True
                self.sim.spawn(self._compact(pick), label="compaction")

    def _padded_pages(self, pick: CompactionPick) -> int:
        """Merge-kernel contract: equal-length runs, >=1 trailing sentinel."""
        pad = max(victim.pages for victim in pick.victims)
        if any(
            victim.pages == pad
            and victim.records == pad * self.records_per_page
            for victim in pick.victims
        ):
            pad += 1  # an exactly-full run needs a sentinel page
        return pad

    def _choose_site(self, pages_in: int, bytes_in: int, bytes_out: int) -> str:
        if self.cfg.compaction != "auto":
            return self.cfg.compaction
        link = self.cost.link_bytes_per_ns
        host_ns = (
            bytes_in / link
            + self.cost.ingest_binary_ns(bytes_in)
            + bytes_out / link
        )
        device_ns = (
            self.cost.device_scan_ns(pages_in, kernel="merge", at_ns=self.sim.now)
            + COMPLETION_BYTES / link
        )
        return "device" if device_ns <= host_ns else "host"

    def _compact(self, pick: CompactionPick):
        for victim in pick.victims:
            victim.compacting = True
        k = len(pick.victims)
        pad_pages = self._padded_pages(pick)
        lbas = [lba for victim in pick.victims for lba in victim.all_lbas()]
        data_in = len(lbas) * self.page_bytes
        kernel_bytes = k * pad_pages * self.page_bytes
        merged = self.lsm.merge_entries(pick.victims)
        new_run = self.lsm.new_run(pick.target, merged)
        data_out = math.ceil(len(merged) / self.records_per_page) * self.page_bytes
        site = self._choose_site(k * pad_pages, data_in, data_out)

        start = self.sim.now
        if site == "host":
            # Victim runs stream up the link, merge on the host, stream back.
            command = ReadCommand(self.host.next_id(), lpas=lbas)
            self.fw.submit(command)
            _, done = self.fw.execute(command, start)
            yield self.sim.wait_until(done)
            yield self.sim.wait(self.cost.ingest_binary_ns(kernel_bytes))
            yield from self._append_run(new_run, from_host=True)
            self.report.compactions_host += 1
            self.report.compaction_link_bytes += data_in + new_run.pages * self.page_bytes
        else:
            # Device-side: the merge kernel eats the runs in the SSD; only a
            # completion crosses the link.
            command = ScompCommand(
                self.host.next_id(),
                kernel="merge",
                lpa_lists=[victim.all_lbas() for victim in pick.victims],
            )
            self.fw.submit(command)
            done = self.fw.read_lbas(lbas, start, to_host=False)
            yield self.sim.wait_until(done)
            yield self.sim.wait(
                self.cost.device_scan_ns(k * pad_pages, kernel="merge")
            )
            yield from self._append_run(new_run, from_host=False)
            completion = self.host.transfer(COMPLETION_BYTES, self.sim.now, to_host=True)
            self.host.complete(command, start, completion, COMPLETION_BYTES)
            yield self.sim.wait_until(completion)
            self.report.compactions_device += 1
            self.report.compaction_link_bytes += COMPLETION_BYTES

        self.lsm.apply_compaction(pick, new_run)
        self.report.compaction_data_bytes += data_in + new_run.pages * self.page_bytes
        for victim in pick.victims:
            self._retire_run_zones(victim)
        self._compacting = False

    # -- entry point -------------------------------------------------------------

    def run(self) -> ZnsReport:
        for index in range(self.cfg.num_tenants):
            self.sim.spawn(self._tenant(index), label=f"tenant-{index}")
        self.sim.spawn(self._compaction_manager(), label="compaction-manager")
        self.sim.run(until_ns=self.cfg.duration_ns)
        report = self.report
        report.flushes = self.lsm.flushes
        report.compactions = self.lsm.compactions
        report.bytes_to_host = self.host.bytes_to_host
        report.bytes_from_host = self.host.bytes_from_host
        report.zone_resets = self.ftl.resets
        report.zone_appends = self.ftl.appends
        report.zones_in_use = self.ftl.num_zones - len(self._free_zones)
        report.wear_total = self.ftl.wear.total_erases
        report.levels_runs = [len(level) for level in self.lsm.levels]
        report.live_records = len(self.lsm.memtable) + sum(
            run.records for level in self.lsm.levels for run in level
        )
        report.sim_events = self.sim.processed
        report.horizon_ns = self.sim.now
        return report


def run_zns(config: ZnsConfig) -> ZnsReport:
    """Build and run one campaign (the ``python -m repro zns`` backend)."""
    return ZnsCampaign(config).run()
