"""NVMe-style host interface with the ``scomp`` command extension.

Regular reads/writes move data over the host link; the ``scomp`` command
(paper Section V-D, Figure 9) carries ``(compute, pData,
List[List[LPA]])`` — a kernel name, a host buffer handle, and the logical
page lists forming the input (read-path) or output (write-path) streams.
Only *results* cross the link on a read-path scomp, which is where
computational storage's traffic reduction comes from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from repro.config import HostInterfaceConfig
from repro.errors import DeviceError
from repro.sim import FifoResource, as_ns


@dataclass(frozen=True)
class NVMeCommand:
    """Base class for commands in the submission queue."""

    command_id: int


@dataclass(frozen=True)
class ReadCommand(NVMeCommand):
    lpas: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class WriteCommand(NVMeCommand):
    lpas: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class ScompCommand(NVMeCommand):
    """Computational storage request: (compute, pData, List[List[LPA]])."""

    kernel: str = ""
    p_data: int = 0  # host buffer handle (opaque in the model)
    lpa_lists: List[List[int]] = field(default_factory=list)
    write_path: bool = False

    def num_streams(self) -> int:
        return len(self.lpa_lists)

    def total_pages(self) -> int:
        return sum(len(lst) for lst in self.lpa_lists)


@dataclass(frozen=True)
class ZoneAppendCommand(NVMeCommand):
    """ZNS Zone Append: sequential-write ``npages`` at the zone's write
    pointer; the completion carries the assigned LBA (``repro.zns``)."""

    zone_id: int = 0
    npages: int = 1


@dataclass(frozen=True)
class ZoneResetCommand(NVMeCommand):
    """ZNS Zone Reset: rewind the write pointer, erase the block group."""

    zone_id: int = 0


@dataclass(frozen=True)
class ZoneReportCommand(NVMeCommand):
    """ZNS Zone Management Receive: report zone descriptors to the host."""

    first_zone: int = 0
    count: int = 0  # 0 = all zones


@dataclass(frozen=True)
class Completion:
    """Completion-queue entry."""

    command_id: int
    submitted_ns: float
    completed_ns: float
    bytes_transferred: int

    @property
    def latency_ns(self) -> float:
        return self.completed_ns - self.submitted_ns


class HostInterface:
    """Submission/completion queues plus link-transfer timing.

    Link occupancy is traced as spans on the ``host-link`` track and the
    directional byte totals publish into the device's counter registry
    (no-ops under the default :class:`~repro.telemetry.tracer.NullTracer`).
    """

    def __init__(self, config: HostInterfaceConfig, telemetry=None) -> None:
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.config = config
        self._ids = itertools.count(1)
        self._issued_ids: set = set()
        self.submissions: List[NVMeCommand] = []
        self.completions: List[Completion] = []
        #: The PCIe link as a FIFO reservation timeline on the unified
        #: integer-ns simulation kernel (shared by both directions).
        self._link = FifoResource("host-link", backfill=True)
        self._tracer = telemetry.tracer
        self._to_host = telemetry.counters.counter("host.bytes_to_host")
        self._from_host = telemetry.counters.counter("host.bytes_from_host")

    @property
    def bytes_to_host(self) -> int:
        return int(self._to_host.value)

    @property
    def bytes_from_host(self) -> int:
        return int(self._from_host.value)

    def next_id(self) -> int:
        return next(self._ids)

    def submit(self, command: NVMeCommand) -> None:
        if command.command_id in self._issued_ids:
            raise DeviceError(f"duplicate command id {command.command_id}")
        self._issued_ids.add(command.command_id)
        self.submissions.append(command)

    @property
    def link_free_at_ns(self) -> int:
        """When the link next frees (integer ns on the unified clock)."""
        return self._link.free_at_ns

    def transfer(self, nbytes: int, ready_ns, to_host: bool) -> int:
        """Move ``nbytes`` over the link; returns completion time."""
        if nbytes < 0:
            raise DeviceError("negative transfer")
        ready = as_ns(ready_ns + self.config.latency_ns)
        duration = as_ns(nbytes / self.config.bandwidth_bytes_per_ns)
        grant = self._link.acquire(ready, duration)
        if to_host:
            self._to_host.inc(nbytes)
            self._tracer.complete("host-link", "to-host", grant.start_ns, grant.done_ns)
        else:
            self._from_host.inc(nbytes)
            self._tracer.complete("host-link", "from-host", grant.start_ns, grant.done_ns)
        return grant.done_ns

    def complete(self, command: NVMeCommand, submitted_ns: float, completed_ns: float,
                 bytes_transferred: int) -> Completion:
        completion = Completion(command.command_id, submitted_ns, completed_ns, bytes_transferred)
        self.completions.append(completion)
        return completion

    def transfer_time_ns(self, nbytes: int) -> float:
        """Pure link occupancy for ``nbytes`` (no queueing)."""
        return nbytes / self.config.bandwidth_bytes_per_ns
