"""Device-level computational SSD: firmware, crossbar, host interface.

:func:`simulate_offload` is the package's main entry point: it runs a
kernel on a Table IV configuration end to end — core-phase sampling, flash
retiming through the FTL and crossbar, and the SSD-DRAM bandwidth wall —
and reports device throughput plus per-core/per-channel observability.
"""

from repro.ssd.crossbar import Crossbar
from repro.ssd.dram_buffer import DRAMBuffer
from repro.ssd.host_interface import (
    HostInterface,
    NVMeCommand,
    ReadCommand,
    ScompCommand,
    WriteCommand,
)
from repro.ssd.firmware import Firmware, OffloadResult
from repro.ssd.device import ComputationalSSD, simulate_offload

__all__ = [
    "Crossbar",
    "DRAMBuffer",
    "HostInterface",
    "NVMeCommand",
    "ReadCommand",
    "WriteCommand",
    "ScompCommand",
    "Firmware",
    "OffloadResult",
    "ComputationalSSD",
    "simulate_offload",
]
