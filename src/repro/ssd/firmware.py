"""Firmware control plane: scomp scheduling and flash retiming (Figure 10/11).

The firmware knows every ``scomp`` command's full LPA lists upfront, so it
queues flash reads eagerly (a bounded number of pages ahead per core) and
feeds compute engines as pages arrive. This module implements the paper's
*retiming* step: the core phase produced a compute-only timeline (cycles
per page); here each page is pushed through the flash array + FTL +
crossbar, and whenever a page arrives later than the compute engine first
needs it, the engine's timeline shifts by the difference.

Each engine's command flow runs as a generator *process* on the unified
:class:`repro.sim.Simulator` kernel: the process wakes at each page's
issue instant, reserves the flash/FTL/crossbar resources for that page,
shifts its compute timeline by any flash-induced stall, and emits result
pages back onto the shared buses as compute progresses.  Background host
reads, result writes, and (optionally) garbage-collection passes are
sibling processes on the same kernel, so their interference is part of the
one coherent timeline rather than a post-hoc merge.

The result captures, mechanically:

* flash-bandwidth saturation (channels serialise transfers),
* layout-skew hotspots (a heavy channel delays everyone who needs it),
* the crossbar's compute pooling vs channel-local engines (Figure 7/19),
* the SSD-DRAM memory wall as a post-hoc bandwidth cap on the DRAM-staged
  data paths (Section III).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import FaultConfig, SSDConfig
from repro.core.core import CoreRunResult
from repro.errors import DeviceError
from repro.flash.array import FlashArray
from repro.flash.ecc import ECCStatus
from repro.ftl.mapping import PageMapFTL
from repro.sim import FifoResource, Simulator
from repro.ssd.crossbar import Crossbar
from repro.ssd.dram_buffer import DRAMBuffer, TrafficBreakdown
from repro.telemetry.counters import Histogram

#: Pages of read-ahead the firmware keeps in flight per engine. The scomp
#: LPA lists are known upfront, so controllers can queue deeply; 32 pages
#: (128 KiB) is a realistic controller queue depth.
EAGER_WINDOW_PAGES = 32


@dataclass
class BackgroundIO:
    """Conventional host reads interleaved with an offload (Section V-A).

    The paper's generality argument: ASSASIN supports "flexible interleaving
    of read/write requests that do not exploit computational storage with
    computational storage operations". One page read is issued every
    ``interval_ns`` over ``lpas`` (cycling); measured service latencies land
    in the :attr:`latency` histogram.
    """

    lpas: List[int]
    interval_ns: float
    latency: Histogram = field(default_factory=lambda: Histogram("bg_latency_ns"))

    @property
    def latencies_ns(self) -> List[float]:
        """Raw latency samples (the histogram's backing list)."""
        return self.latency.values

    @property
    def mean_latency_ns(self) -> float:
        return self.latency.mean

    @property
    def p99_latency_ns(self) -> float:
        return self.latency.percentile(99.0)


@dataclass
class _CoreTask:
    """Retiming state for one engine's slice of the request."""

    core_id: int
    lpas: List[int]
    cpp_ns: float  # compute time per input page
    out_ratio: float
    next_k: int = 0
    shift_ns: float = 0.0  # accumulated flash-induced stall
    pending_out_bytes: float = 0.0
    out_pages_written: int = 0
    last_write_done_ns: float = 0.0

    def issue_ns(self) -> float:
        k = self.next_k
        return max(0.0, (k - EAGER_WINDOW_PAGES) * self.cpp_ns) + self.shift_ns

    def needed_ns(self, k: int) -> float:
        return k * self.cpp_ns + self.shift_ns

    @property
    def compute_ns(self) -> float:
        return len(self.lpas) * self.cpp_ns

    @property
    def completion_ns(self) -> float:
        if not self.lpas:
            return 0.0
        return max(self.compute_ns + self.shift_ns, self.last_write_done_ns)

    @property
    def utilisation(self) -> float:
        total = self.completion_ns
        return self.compute_ns / total if total > 0 else 1.0


@dataclass
class OffloadResult:
    """Device-level outcome of one offloaded function (paper Figures 13-19)."""

    kernel_name: str
    config_name: str
    num_cores: int
    bytes_in: int
    bytes_out: int
    completion_ns: float
    limiter: str  # 'core' | 'flash' | 'dram'
    per_core_utilisation: List[float]
    per_core_completion_ns: List[float]
    channel_bytes: List[int]
    dram_traffic: TrafficBreakdown
    dram_cap_bytes_per_ns: float
    core_sample: CoreRunResult
    flash_stall_ns: float = 0.0

    @property
    def throughput_bytes_per_ns(self) -> float:
        return self.bytes_in / self.completion_ns if self.completion_ns > 0 else 0.0

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bytes_per_ns  # 1 B/ns == 1 GB/s

    @property
    def mean_utilisation(self) -> float:
        cores = [u for u in self.per_core_utilisation if u > 0]
        return sum(cores) / len(cores) if cores else 0.0


class Firmware:
    """Schedules scomp work across engines and retimes against the flash."""

    def __init__(
        self,
        config: SSDConfig,
        array: FlashArray,
        ftl: PageMapFTL,
        crossbar: Crossbar,
        dram: DRAMBuffer,
    ) -> None:
        self.config = config
        self.array = array
        self.ftl = ftl
        self.crossbar = crossbar
        self.dram = dram
        self._out_lpa = itertools.count(1 << 40)  # result namespace

    # -- work decomposition --------------------------------------------------

    def assign_lpas(self, lpas: Sequence[int]) -> List[List[int]]:
        """Split a request's pages across engines.

        With the crossbar, pages interleave across cores (placement is
        irrelevant — any core reaches any channel). In channel-local mode
        each page *must* be processed by the core at its channel, so the
        split follows the FTL's physical placement; skewed layouts then
        produce unbalanced work (the Figure 19 effect).
        """
        n = self.config.num_cores
        if self.crossbar.enabled:
            # Interleave pages across engines. With the FTL's channel
            # striping this de-phases the engines' channel access patterns
            # (a contiguous split would march all engines across the same
            # channel in lockstep, creating transient hotspots).
            return [list(lpas[i::n]) for i in range(n)]
        groups: List[List[int]] = [[] for _ in range(n)]
        for lpa in lpas:
            groups[self.ftl.lookup(lpa).channel].append(lpa)
        return groups

    # -- the retiming loop ------------------------------------------------------

    def run_offload(
        self,
        kernel,
        sample: CoreRunResult,
        lpas: Sequence[int],
        background: Optional[BackgroundIO] = None,
        sim: Optional[Simulator] = None,
    ) -> OffloadResult:
        """Retime the sampled compute against flash service for ``lpas``.

        ``background`` interleaves conventional host page reads with the
        offload on the same channels (the Section V-A generality property);
        their latencies are recorded on the BackgroundIO object.  ``sim``
        lets a caller share one kernel between the offload and other
        processes (e.g. a garbage-collection pass) so they contend on the
        same flash timelines.
        """
        core_cfg = self.config.core
        page = self.config.flash.page_bytes
        period_ns = core_cfg.clock_period_ns
        cpp_ns = sample.cycles_per_byte * page * period_ns
        out_ratio = sample.bytes_out / sample.bytes_in if sample.bytes_in else 0.0

        # Write-path kernels (erasure coding, encryption) put results back on
        # flash, sharing channel bandwidth with the reads; read-path kernels
        # return results to the host over PCIe (never binding at 8 GB/s).
        output_to_flash = getattr(kernel, "output_to_flash", False)

        assignments = self.assign_lpas(list(lpas))
        tasks = [
            _CoreTask(
                core_id=i,
                lpas=assignment,
                cpp_ns=cpp_ns,
                out_ratio=out_ratio if output_to_flash else 0.0,
            )
            for i, assignment in enumerate(assignments)
        ]
        total_stall = self._run_tasks(tasks, background=background, sim=sim)
        completion = max((t.completion_ns for t in tasks), default=0.0)
        bytes_in = sum(len(t.lpas) for t in tasks) * page
        if output_to_flash:
            bytes_out = sum(t.out_pages_written for t in tasks) * page
        else:
            bytes_out = int(bytes_in * out_ratio)

        # The SSD-DRAM memory wall: cap the aggregate input rate.
        core_traffic_per_byte = (
            sample.dram_traffic.total / sample.bytes_in if sample.bytes_in else 0.0
        )
        traffic = DRAMBuffer.traffic_per_input_byte(core_cfg, core_traffic_per_byte, out_ratio)
        cap = self.dram.bandwidth_cap_bytes_per_ns(traffic)
        limiter = "core"
        dram_slowdown = 1.0
        if completion > 0 and bytes_in / completion > cap:
            dram_slowdown = (bytes_in / cap) / completion
            completion = bytes_in / cap
            limiter = "dram"
        elif total_stall > 0.02 * completion:
            limiter = "flash"

        return OffloadResult(
            kernel_name=kernel.name,
            config_name=self.config.name,
            num_cores=self.config.num_cores,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            completion_ns=completion,
            limiter=limiter,
            per_core_utilisation=[t.utilisation / dram_slowdown for t in tasks if t.lpas],
            per_core_completion_ns=[t.completion_ns * dram_slowdown for t in tasks],
            channel_bytes=self.array.channel_bytes(),
            dram_traffic=traffic,
            dram_cap_bytes_per_ns=cap,
            core_sample=sample,
            flash_stall_ns=total_stall,
        )

    def run_write_offload(
        self,
        kernel,
        sample: CoreRunResult,
        total_pages: int,
        sim: Optional[Simulator] = None,
    ) -> OffloadResult:
        """Write-path scomp (Section V-D): compute on data being ingested.

        Input pages stream from the host over the PCIe link (a shared FIFO
        timeline), the engines transform them inline (erasure coding,
        encryption, compression, ...), and the results — plus the source
        data itself for parity-style kernels (``writes_input_through``) —
        are programmed into the flash array. On ASSASIN the stream never
        touches the SSD DRAM; on DRAM-staged engines every byte crosses it
        twice before even reaching the flash.
        """
        if total_pages <= 0:
            raise DeviceError("write-path offload needs data")
        core_cfg = self.config.core
        page = self.config.flash.page_bytes
        period_ns = core_cfg.clock_period_ns
        cpp_ns = sample.cycles_per_byte * page * period_ns
        out_ratio = sample.bytes_out / sample.bytes_in if sample.bytes_in else 0.0
        passthrough = 1.0 if getattr(kernel, "writes_input_through", False) else 0.0
        flash_out_ratio = out_ratio + passthrough

        n = self.config.num_cores
        pseudo_lpas = list(range(total_pages))
        tasks = [
            _CoreTask(
                core_id=i,
                lpas=pseudo_lpas[i::n],
                cpp_ns=cpp_ns,
                out_ratio=flash_out_ratio,
            )
            for i in range(n)
        ]

        # The PCIe ingress is its own FIFO timeline for this command's
        # stream (DMA bursts for one scomp are scheduled back-to-back);
        # the fixed link latency rides on top of the occupancy.
        link_bw = self.config.host.bandwidth_bytes_per_ns
        link_latency = self.config.host.latency_ns
        ingress = FifoResource("host-ingress")

        def serve_host_page(task: _CoreTask, k: int, when):
            grant = ingress.acquire(when, page / link_bw)
            return grant.done_ns + link_latency

        total_stall = self._run_tasks(tasks, serve_input=serve_host_page, sim=sim)
        completion = max((t.completion_ns for t in tasks), default=0.0)
        bytes_in = total_pages * page
        bytes_out = sum(t.out_pages_written for t in tasks) * page

        # DRAM wall: DRAM-staged engines stage host data in, read it back,
        # write results, and stage everything flash-bound out again.
        core_traffic = sample.dram_traffic.total / sample.bytes_in if sample.bytes_in else 0.0
        traffic = DRAMBuffer.traffic_per_input_byte(core_cfg, core_traffic, out_ratio)
        if core_cfg.data_source.value == "dram":
            traffic = TrafficBreakdown(
                staging_in=traffic.staging_in,
                core_reads=traffic.core_reads,
                core_writes=traffic.core_writes,
                staging_out=flash_out_ratio,  # results + passthrough to flash
            )
        cap = self.dram.bandwidth_cap_bytes_per_ns(traffic)
        limiter = "core"
        dram_slowdown = 1.0
        if completion > 0 and bytes_in / completion > cap:
            dram_slowdown = (bytes_in / cap) / completion
            completion = bytes_in / cap
            limiter = "dram"
        elif total_stall > 0.02 * completion:
            limiter = "host-link"

        return OffloadResult(
            kernel_name=kernel.name,
            config_name=self.config.name,
            num_cores=n,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            completion_ns=completion,
            limiter=limiter,
            per_core_utilisation=[t.utilisation / dram_slowdown for t in tasks if t.lpas],
            per_core_completion_ns=[t.completion_ns * dram_slowdown for t in tasks],
            channel_bytes=self.array.channel_bytes(),
            dram_traffic=traffic,
            dram_cap_bytes_per_ns=cap,
            core_sample=sample,
            flash_stall_ns=total_stall,
        )

    def simulate_concurrent(
        self, requests: Sequence[tuple], sim: Optional[Simulator] = None
    ) -> List[OffloadResult]:
        """Run several scomp requests concurrently on partitioned engines.

        ``requests`` is a sequence of ``(kernel, sample, lpas)``. Cores are
        partitioned across requests proportionally to their data sizes
        (at least one core each) — the task-level parallelism the paper's
        Section V-D decomposition enables. All requests' engine processes
        run on one :class:`~repro.sim.Simulator` (``sim``, or a fresh one),
        sharing the flash array, crossbar, and the SSD-DRAM pool.
        """
        if not requests:
            raise DeviceError("simulate_concurrent needs at least one request")
        if not self.crossbar.enabled:
            raise DeviceError("concurrent offloads require the crossbar architecture")
        n = self.config.num_cores
        if len(requests) > n:
            raise DeviceError(f"{len(requests)} requests exceed {n} engines")
        page = self.config.flash.page_bytes
        period_ns = self.config.core.clock_period_ns

        sizes = [max(1, len(lpas)) for _, _, lpas in requests]
        total_size = sum(sizes)
        core_counts = [max(1, round(n * s / total_size)) for s in sizes]
        while sum(core_counts) > n:
            core_counts[core_counts.index(max(core_counts))] -= 1
        while sum(core_counts) < n:
            core_counts[core_counts.index(min(core_counts))] += 1

        all_tasks: List[_CoreTask] = []
        request_tasks: List[List[_CoreTask]] = []
        next_core = 0
        for (kernel, sample, lpas), cores in zip(requests, core_counts):
            cpp_ns = sample.cycles_per_byte * page * period_ns
            out_ratio = sample.bytes_out / sample.bytes_in if sample.bytes_in else 0.0
            if not getattr(kernel, "output_to_flash", False):
                out_ratio = 0.0
            lpas = list(lpas)
            tasks = [
                _CoreTask(
                    core_id=next_core + i,
                    lpas=lpas[i::cores],
                    cpp_ns=cpp_ns,
                    out_ratio=out_ratio,
                )
                for i in range(cores)
            ]
            next_core += cores
            all_tasks.extend(tasks)
            request_tasks.append(tasks)

        total_stall = self._run_tasks(all_tasks, sim=sim)

        # The shared SSD-DRAM pool: aggregate demand across requests.
        demand = 0.0
        traffics = []
        for (kernel, sample, lpas), tasks in zip(requests, request_tasks):
            completion = max((t.completion_ns for t in tasks), default=0.0)
            bytes_in = sum(len(t.lpas) for t in tasks) * page
            per_byte = sample.dram_traffic.total / sample.bytes_in if sample.bytes_in else 0.0
            out_ratio = sample.bytes_out / sample.bytes_in if sample.bytes_in else 0.0
            traffic = DRAMBuffer.traffic_per_input_byte(self.config.core, per_byte, out_ratio)
            traffics.append(traffic)
            if completion > 0:
                demand += (bytes_in / completion) * traffic.total
        bw = self.dram.model.config.bandwidth_bytes_per_ns
        dram_slowdown = max(1.0, demand / bw) if demand else 1.0

        results = []
        for (kernel, sample, lpas), tasks, traffic in zip(requests, request_tasks, traffics):
            completion = max((t.completion_ns for t in tasks), default=0.0) * dram_slowdown
            bytes_in = sum(len(t.lpas) for t in tasks) * page
            bytes_out = sum(t.out_pages_written for t in tasks) * page
            results.append(
                OffloadResult(
                    kernel_name=kernel.name,
                    config_name=self.config.name,
                    num_cores=len(tasks),
                    bytes_in=bytes_in,
                    bytes_out=bytes_out,
                    completion_ns=completion,
                    limiter="dram" if dram_slowdown > 1.0 else "flash",
                    per_core_utilisation=[
                        t.utilisation / dram_slowdown for t in tasks if t.lpas
                    ],
                    per_core_completion_ns=[
                        t.completion_ns * dram_slowdown for t in tasks
                    ],
                    channel_bytes=self.array.channel_bytes(),
                    dram_traffic=traffic,
                    dram_cap_bytes_per_ns=self.dram.bandwidth_cap_bytes_per_ns(traffic),
                    core_sample=sample,
                    flash_stall_ns=total_stall,
                )
            )
        return results

    # -- process-based command flows ------------------------------------------

    def _run_tasks(
        self,
        tasks: List[_CoreTask],
        background: Optional[BackgroundIO] = None,
        serve_input=None,
        sim: Optional[Simulator] = None,
    ) -> float:
        """Run every engine's command flow as a process on the kernel.

        ``serve_input(task, k, when) -> arrival_ns`` supplies input page
        ``k`` of a task; the default reads it from the flash array through
        the FTL and crossbar (read-path scomp). Write-path scomp passes a
        host-link source instead.

        Each :class:`_CoreTask` becomes a generator process: it sleeps
        until the next page's issue instant, pulls the page through
        ``serve_input``, shifts its compute timeline by any input-induced
        stall, and schedules result-page programs as compute progresses.
        Background host reads are a sibling process on the same kernel, so
        the greedy FIFO bus timelines see every reservation in global time
        order without any caller-side merging. Returns the total
        input-induced stall across tasks.
        """
        if serve_input is None:
            serve_input = self._serve_flash_read
        if sim is None:
            sim = Simulator()
        stall = [0.0]
        for task in tasks:
            if task.lpas:
                sim.spawn(
                    self._engine_flow(sim, task, serve_input, stall),
                    label=f"engine{task.core_id}",
                )
        if background is not None and background.lpas:
            # Bound for scheduling background reads: a bit past the compute span.
            nominal_span = max((t.compute_ns for t in tasks), default=0.0) * 1.25
            sim.spawn(self._background_flow(sim, background, nominal_span), label="bg-io")
        sim.run()
        return stall[0]

    def _engine_flow(self, sim: Simulator, task: _CoreTask, serve_input, stall):
        """One engine's command flow: issue, stall-shift, emit results."""
        page = self.config.flash.page_bytes
        while task.next_k < len(task.lpas):
            # Always yield, even when the issue instant is the current one:
            # the kernel's insertion-order tie-break then round-robins
            # same-instant issues across engines, keeping the greedy FIFO
            # buses fair exactly as a global merge would.
            yield sim.wait_until(task.issue_ns())
            k = task.next_k
            arrival = serve_input(task, k, sim.now)
            needed = task.needed_ns(k)
            if arrival > needed:
                task.shift_ns += arrival - needed
                stall[0] += arrival - needed
            # Result pages emerge as compute progresses and share the buses.
            task.pending_out_bytes += page * task.out_ratio
            while task.pending_out_bytes >= page:
                task.pending_out_bytes -= page
                ready = (k + 1) * task.cpp_ns + task.shift_ns
                sim.schedule_at(
                    ready,
                    lambda sim=sim, task=task: self._flush_result_page(sim, task),
                    label=f"engine{task.core_id}.write",
                )
            task.next_k += 1

    def _flush_result_page(self, sim: Simulator, task: _CoreTask) -> None:
        """Program one result page at the current instant."""
        out_ppa = self.ftl.write(next(self._out_lpa))
        record = self.array.service_write(out_ppa, sim.now)
        # Program latency is absorbed by plane parallelism and the write
        # cache; the engine only waits for the bus transfer.
        task.last_write_done_ns = max(task.last_write_done_ns, record.array_done_ns)
        task.out_pages_written += 1

    def _background_flow(self, sim: Simulator, background: BackgroundIO, span_ns: float):
        """Conventional host page reads every ``interval_ns`` until ``span_ns``."""
        index = 0
        when = 0.0
        while True:
            yield sim.wait_until(when)
            lpa = background.lpas[index % len(background.lpas)]
            record = self.array.service_read(self.ftl.lookup(lpa), sim.now)
            background.latency.observe(record.done_ns - sim.now)
            when += background.interval_ns
            if when > span_ns:
                return
            index += 1

    def _serve_flash_read(self, task: _CoreTask, k: int, when) -> int:
        """Default input source: the flash array through FTL + crossbar."""
        page = self.config.flash.page_bytes
        ppa = self.ftl.lookup(task.lpas[k])
        record = self.array.service_read(ppa, when)
        hop = self.crossbar.route(
            task.core_id, ppa.channel, page, at_ns=record.done_ns
        )
        return record.done_ns + hop


# ---------------------------------------------------------------------------
# Device-side read recovery (fault campaigns, ``repro.faults``)
# ---------------------------------------------------------------------------


@dataclass
class PageReadOutcome:
    """What one logical-page read cost and how it ended.

    ``status`` is one of ``'clean'``, ``'corrected'`` (ECC repaired sparse
    noise inline), ``'retried'`` (read-retry with backoff recovered the
    page), ``'reconstructed'`` (RAID-group rebuild + remap), or
    ``'failed'`` (unrecoverable: no RAID group, or stripe-mates were lost
    too).
    """

    lpa: int
    data: Optional[bytes]
    done_ns: float
    status: str
    retries: int = 0


class RecoveryController:
    """The firmware's error path for reads: retry → RAID rebuild → remap.

    Sits between the serving layer / campaign driver and the raw flash
    array. Every read attempt is timed on the shared array timelines and
    run past the :class:`~repro.faults.injector.FaultInjector` (which may
    corrupt the page's stored bytes); decode goes through the chip's
    checked read path so ECC counters stay centralised.

    Escalation ladder per logical page:

    1. **Inline ECC** — sparse noise is corrected by SECDED; the page is
       scrubbed back to pristine afterwards (read-disturb noise does not
       accumulate).
    2. **Read-retry** — an uncorrectable page is re-read up to
       ``max_read_retries`` times with exponential backoff
       (``retry_backoff_ns * 2**attempt``); transient sense-threshold
       bursts clear here.
    3. **RAID reconstruction** — the page's stripe-mates (resolved through
       the FTL mapping via the campaign's RAID-group map) are read and
       XORed with the RAID-4 parity math of
       :class:`repro.kernels.raid.Raid4Kernel`; the rebuilt page is
       written to a fresh physical page (FTL remap) and the dead block is
       retired from the allocator (grown-bad-block bookkeeping).
    """

    def __init__(
        self,
        device,
        fault_config: FaultConfig,
        injector=None,
        raid_map=None,
        golden: Optional[Dict[int, bytes]] = None,
    ) -> None:
        self.device = device
        self.array: FlashArray = device.array
        self.ftl: PageMapFTL = device.ftl
        self.cfg = fault_config
        self.injector = injector
        self.raid = raid_map
        self.golden = golden or {}
        #: Dict-style facade over the device registry's ``recovery.*``
        #: counters; tally sites keep their ``counters[name] += 1`` shape.
        self.counters = device.telemetry.counters.group("recovery")
        self._reconstruction = device.telemetry.counters.histogram(
            "recovery.reconstruction_ns"
        )
        self._tracer = device.telemetry.tracer
        self.corruption_events = 0

    @property
    def reconstruction_ns(self) -> List[float]:
        """Latency of every RAID rebuild (the histogram's backing list)."""
        return self._reconstruction.values

    # -- public entry ---------------------------------------------------------

    def read_lpa(self, lpa: int, now_ns: float) -> PageReadOutcome:
        """Read one logical page with the full recovery ladder."""
        issue = now_ns
        for attempt in range(self.cfg.max_read_retries + 1):
            data, ok, done, corrected = self._attempt_read(lpa, issue)
            if ok:
                if attempt == 0:
                    status = "corrected" if corrected else "clean"
                else:
                    self.counters["retry_recovered_pages"] += 1
                    status = "retried"
                self._verify(lpa, data)
                return PageReadOutcome(lpa, data, done, status, retries=attempt)
            if attempt < self.cfg.max_read_retries:
                self.counters["read_retries"] += 1
                self._tracer.instant("recovery", "retry", done)
                issue = done + self.cfg.retry_backoff_ns * (2 ** attempt)
            else:
                issue = done
        return self._reconstruct(lpa, issue, retries=self.cfg.max_read_retries)

    # -- single attempt -------------------------------------------------------

    def _attempt_read(self, lpa: int, issue_ns: float):
        """One timed read attempt; returns (data, ok, done_ns, corrected)."""
        ppa = self.ftl.lookup(lpa)
        chip = self.array.chips[ppa.channel][ppa.chip]
        record = self.array.service_read(ppa, issue_ns)
        done = record.done_ns
        if self.injector is None:
            return chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page), True, done, False
        fault = self.injector.on_read(chip, ppa, issue_ns)
        if fault.slow_extra_ns:
            self.counters["slow_reads"] += 1
            done += fault.slow_extra_ns
        if fault.kind == "hard":
            self.counters["hard_fault_reads"] += 1
            return None, False, done, False
        if fault.kind is None and not fault.touched:
            # Untouched media: skip the (expensive) full-page decode.
            return chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page), True, done, False
        data, status = chip.read_data_checked(ppa.die, ppa.plane, ppa.block, ppa.page)
        if status is ECCStatus.UNCORRECTABLE:
            self.counters["uncorrectable_reads"] += 1
            return None, False, done, False
        corrected = status is ECCStatus.CORRECTED
        if corrected:
            self.counters["corrected_pages"] += 1
            if fault.scrub is not None:
                # Correction succeeded: scrub the cells back to pristine.
                chip.overwrite_raw(ppa.die, ppa.plane, ppa.block, ppa.page, fault.scrub)
        return data, True, done, corrected

    # -- RAID escalation ------------------------------------------------------

    def _reconstruct(self, lpa: int, issue_ns: float, retries: int) -> PageReadOutcome:
        mates = self.raid.stripe_mates(lpa) if self.raid is not None else None
        if not mates:
            self.counters["unrecoverable_pages"] += 1
            self._tracer.instant("recovery", "unrecoverable", issue_ns)
            return PageReadOutcome(lpa, None, issue_ns, "failed", retries=retries)
        started = issue_ns
        pages: List[bytes] = []
        done = issue_ns
        for mate in mates:
            # Mates get the same retry ladder (a transient burst on a
            # surviving stripe member must not doom the rebuild), but not
            # recursive RAID: two simultaneous permanent faults in one
            # stripe are genuinely unrecoverable under single parity.
            data, ok, mate_done = self._read_with_retries(mate, issue_ns)
            done = max(done, mate_done)
            if not ok or data is None:
                self.counters["reconstruction_failures"] += 1
                self.counters["unrecoverable_pages"] += 1
                self._tracer.instant("recovery", "unrecoverable", done)
                return PageReadOutcome(lpa, None, done, "failed", retries=retries)
            pages.append(data)
        rebuilt = self._parity_rebuild(pages)
        # One pass through the parity engine at channel speed.
        done += self.device.config.flash.page_transfer_ns
        self.counters["reconstructed_pages"] += 1
        self._reconstruction.observe(done - started)
        self._tracer.complete("recovery", "rebuild", started, done)
        self._verify(lpa, rebuilt)
        self._retire_and_remap(lpa, rebuilt, done)
        return PageReadOutcome(lpa, rebuilt, done, "reconstructed", retries=retries)

    def _read_with_retries(self, lpa: int, issue_ns: float):
        """The retry ladder without RAID escalation; (data, ok, done_ns)."""
        issue = issue_ns
        done = issue_ns
        for attempt in range(self.cfg.max_read_retries + 1):
            data, ok, done, _ = self._attempt_read(lpa, issue)
            if ok:
                return data, True, done
            if attempt < self.cfg.max_read_retries:
                self.counters["read_retries"] += 1
                issue = done + self.cfg.retry_backoff_ns * (2 ** attempt)
        return None, False, done

    @staticmethod
    def _parity_rebuild(pages: List[bytes]) -> bytes:
        """XOR the surviving stripe members back into the missing page."""
        if len(pages) == 1:
            return pages[0]  # single-page remainder group: parity is a replica
        from repro.kernels.raid import Raid4Kernel

        width = max(len(p) for p in pages)
        padded = [p + b"\x00" * (width - len(p)) for p in pages]
        return Raid4Kernel(k=len(padded)).reference(padded)[0]

    def _retire_and_remap(self, lpa: int, data: bytes, now_ns: float) -> None:
        """Grown-bad-block bookkeeping after a successful rebuild."""
        dead = self.ftl.lookup(lpa)
        allocator = self.ftl.allocator
        if allocator.retire_block(dead):
            self.counters["retired_blocks"] += 1
        if self.injector is not None:
            self.injector.forget(dead)
        new_ppa = self.ftl.write(lpa)
        if self.injector is not None:
            # Avoid remapping straight into a dead zone: retire and retry.
            for _ in range(64):
                if not self.injector.hard_failed(new_ppa, now_ns):
                    break
                if allocator.retire_block(new_ppa):
                    self.counters["retired_blocks"] += 1
                new_ppa = self.ftl.write(lpa)
        self.array.service_write(new_ppa, now_ns, data=data)
        self.counters["remapped_pages"] += 1

    # -- integrity ------------------------------------------------------------

    def _verify(self, lpa: int, data: Optional[bytes]) -> None:
        """Compare served bytes against the campaign's golden copy."""
        expected = self.golden.get(lpa)
        if expected is not None and data is not None and data != expected:
            self.corruption_events += 1

    def fault_counters(self) -> Dict[str, int]:
        """Stable, render-ready snapshot of the per-fault-class counters."""
        merged = Counter(self.counters.as_dict())
        if self.injector is not None:
            merged.update(self.injector.counters)
        return dict(sorted(merged.items()))

