"""The computational SSD device: glue for every subsystem, plus the
package-level :func:`simulate_offload` entry point.

A :class:`ComputationalSSD` instantiates the Table IV configuration it is
given: the flash array and FTL, the crossbar (or channel-local wiring), the
SSD DRAM buffer, the host interface, one compute-engine model (RISC-V
CoreModel or UDP lane), and the firmware. The two-phase methodology of
Figure 11 is visible in :meth:`offload`:

1. **Core phase** — the kernel runs on a sampled data window through the
   engine's memory-hierarchy timing model (the Gem5 role), giving
   cycles/byte, DRAM traffic, and functional outputs.
2. **Flash phase** — the firmware replays the full request's pages through
   the flash array + FTL + crossbar timelines (the MQSim role) and retimes
   compute against page arrivals; the SSD-DRAM bandwidth wall caps the
   aggregate rate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.config import EngineKind, SSDConfig
from repro.core.core import CoreModel, CoreRunResult
from repro.core.udp import UDPLaneModel
from repro.errors import DeviceError
from repro.flash.array import FlashArray
from repro.ftl.mapping import PageMapFTL
from repro.kernels.pricing import PRICING_CACHE
from repro.ssd.crossbar import Crossbar
from repro.ssd.dram_buffer import DRAMBuffer
from repro.ssd.firmware import Firmware, OffloadResult
from repro.ssd.host_interface import HostInterface, ScompCommand
from repro.telemetry import Telemetry

DEFAULT_SAMPLE_BYTES = 64 * 1024
_SAMPLE_BYTES_BY_KERNEL = {
    # Heavier interpreted kernels get smaller (still representative) windows.
    "aes": 4 * 1024,
    "merge": 16 * 1024,
    "parse": 16 * 1024,
    "psf": 16 * 1024,
    "raid6": 32 * 1024,
}


class ComputationalSSD:
    """One computational SSD instance of a Table IV configuration."""

    def __init__(
        self,
        config: SSDConfig,
        layout_skew: float = 0.0,
        telemetry: Optional[Telemetry] = None,
        zoned: bool = False,
        max_open_zones: int = 8,
    ) -> None:
        self.config = config
        #: Tracer + counter registry shared by every component of this
        #: device; defaults to a NullTracer bundle (zero observable effect).
        self.telemetry = telemetry or Telemetry()
        self.array = FlashArray(config.flash, telemetry=self.telemetry)
        #: ZNS mode swaps the page-map FTL for the zoned variant: appends at
        #: per-zone write pointers, whole-zone resets instead of page GC
        #: (``repro.zns`` drives it through the zone commands).
        self.zoned = zoned
        if zoned:
            if layout_skew:
                raise DeviceError("layout skew applies to the page-map FTL only")
            from repro.ftl.zoned import ZonedFTL

            self.ftl = ZonedFTL(config.flash, max_open_zones=max_open_zones)
        else:
            self.ftl = PageMapFTL(config.flash, skew=layout_skew)
        self.crossbar = Crossbar(
            config.flash.channels, config.num_cores, enabled=config.crossbar
        )
        self.dram = DRAMBuffer(config.dram)
        self.host = HostInterface(config.host, telemetry=self.telemetry)
        self.firmware = Firmware(self.config, self.array, self.ftl, self.crossbar, self.dram)
        if config.core.engine is EngineKind.UDP:
            self.engine = UDPLaneModel(config.core)
        else:
            self.engine = CoreModel(config.core)

    # -- plain storage path ------------------------------------------------------

    def mount_dataset(self, total_bytes: int) -> List[int]:
        """Map a dataset's logical pages into the flash array (metadata only)."""
        pages = math.ceil(total_bytes / self.config.flash.page_bytes)
        if pages > self.config.flash.total_pages:
            raise DeviceError(
                f"dataset of {pages} pages exceeds array capacity "
                f"{self.config.flash.total_pages}"
            )
        lpas = list(range(pages))
        self.ftl.populate(lpas)
        return lpas

    def write_dataset(self, data: bytes, at_ns: float = 0.0) -> List[int]:
        """Write real bytes through the FTL into the flash array.

        Unlike :meth:`mount_dataset`, page contents are stored in the chips,
        so they can be read back bit-exactly (and fed to the functional
        offload path).
        """
        page = self.config.flash.page_bytes
        lpas: List[int] = []
        for offset in range(0, len(data), page):
            lpa = offset // page
            ppa = self.ftl.write(lpa)
            self.array.service_write(ppa, at_ns, data=data[offset : offset + page])
            lpas.append(lpa)
        return lpas

    def read_dataset(self, lpas: Sequence[int]) -> bytes:
        """Functional read-back of page contents through the FTL mapping."""
        out = bytearray()
        for lpa in lpas:
            ppa = self.ftl.lookup(lpa)
            chip = self.array.chips[ppa.channel][ppa.chip]
            data = chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page)
            if data is None:
                raise DeviceError(f"LPA {lpa} has no stored contents")
            out += data
        return bytes(out)

    def read_pages(self, lpas: Sequence[int], at_ns: float = 0.0) -> float:
        """Conventional timed read path; returns completion time."""
        done = at_ns
        for lpa in lpas:
            record = self.array.service_read(self.ftl.lookup(lpa), at_ns)
            done = max(done, record.done_ns)
        return self.host.transfer(
            len(lpas) * self.config.flash.page_bytes, done, to_host=True
        )

    # -- computational path ------------------------------------------------------

    def sample_kernel(self, kernel, sample_bytes: Optional[int] = None) -> CoreRunResult:
        """Core phase: run the kernel on a representative window.

        The sampled run is deterministic per (config, kernel, size), so
        when the process-wide :data:`~repro.kernels.pricing.PRICING_CACHE`
        is enabled (``SimConfig(memoize_pricing=True)``) one run prices
        every same-shape scomp; a config change misses by construction.
        """
        size = sample_bytes or _SAMPLE_BYTES_BY_KERNEL.get(kernel.name, DEFAULT_SAMPLE_BYTES)
        params = getattr(self.engine, "pipeline_params", None)
        cached = PRICING_CACHE.get(self.config, kernel.name, size, pipeline_params=params)
        if cached is not None:
            return cached
        inputs = kernel.make_inputs(size)
        sample = self.engine.run(kernel, inputs)
        PRICING_CACHE.put(self.config, kernel.name, size, sample, pipeline_params=params)
        return sample

    def offload(
        self,
        kernel,
        data_bytes: int,
        sample_bytes: Optional[int] = None,
        sample: Optional[CoreRunResult] = None,
        background=None,
    ) -> OffloadResult:
        """Execute a read-path scomp of ``kernel`` over ``data_bytes``.

        ``background`` (a :class:`~repro.ssd.firmware.BackgroundIO`)
        interleaves conventional host reads with the offload.
        """
        if data_bytes <= 0:
            raise DeviceError("offload needs a positive data size")
        lpas = self.mount_dataset(data_bytes)
        command = ScompCommand(
            command_id=self.host.next_id(),
            kernel=kernel.name,
            lpa_lists=[lpas],
        )
        self.host.submit(command)
        core_sample = sample or self.sample_kernel(kernel, sample_bytes)
        result = self.firmware.run_offload(kernel, core_sample, lpas, background=background)
        # Results (or final state) return to the host over the link.
        done = self.host.transfer(max(result.bytes_out, 1), result.completion_ns, to_host=True)
        self.host.complete(command, 0.0, done, result.bytes_out)
        return result

    def offload_write_path(
        self,
        kernel,
        data_bytes: int,
        sample_bytes: Optional[int] = None,
        sample: Optional[CoreRunResult] = None,
    ) -> OffloadResult:
        """Write-path scomp: ingest host data through the compute engines.

        The classic write-path offloads are exactly the paper's standalone
        set: erasure coding on ingest (RAID4/6), inline encryption (AES),
        inline compression.
        """
        if data_bytes <= 0:
            raise DeviceError("write-path offload needs a positive data size")
        pages = math.ceil(data_bytes / self.config.flash.page_bytes)
        command = ScompCommand(
            command_id=self.host.next_id(),
            kernel=kernel.name,
            lpa_lists=[list(range(pages))],
            write_path=True,
        )
        self.host.submit(command)
        core_sample = sample or self.sample_kernel(kernel, sample_bytes)
        result = self.firmware.run_write_offload(kernel, core_sample, pages)
        self.host.transfer(result.bytes_in, 0.0, to_host=False)
        self.host.complete(command, 0.0, result.completion_ns, result.bytes_in)
        return result

    def offload_concurrent(self, kernel_sizes, sample_bytes: Optional[int] = None):
        """Run several kernels concurrently over disjoint datasets.

        ``kernel_sizes`` is a sequence of ``(kernel, data_bytes)``; cores
        are partitioned across the requests (paper Section V-D task-level
        parallelism). Returns one OffloadResult per request.
        """
        page = self.config.flash.page_bytes
        requests = []
        next_lpa = 0
        for kernel, data_bytes in kernel_sizes:
            pages = math.ceil(data_bytes / page)
            lpas = list(range(next_lpa, next_lpa + pages))
            next_lpa += pages
            self.ftl.populate(lpas)
            sample = self.sample_kernel(kernel, sample_bytes)
            requests.append((kernel, sample, lpas))
            self.host.submit(
                ScompCommand(
                    command_id=self.host.next_id(), kernel=kernel.name, lpa_lists=[lpas]
                )
            )
        return self.firmware.simulate_concurrent(requests)

    def serve(
        self,
        tenants,
        serve_config=None,
        duration_ns: float = 2_000_000.0,
        seed: int = 0,
        samples=None,
        recovery=None,
    ):
        """Serve a multi-tenant mixed scomp/read/write workload (QoS path).

        ``tenants`` is a sequence of :class:`~repro.serve.workload.TenantSpec`;
        ``serve_config`` a :class:`~repro.config.ServeConfig` (queue depths,
        arbitration policy, in-flight bound). Pass a
        :class:`~repro.ssd.firmware.RecoveryController` as ``recovery`` to
        route page reads through the retry/RAID-rebuild ladder (fault
        campaigns). Returns a :class:`~repro.serve.metrics.ServeReport`
        with per-tenant p50/p95/p99 latency, throughput, device
        utilisation, and — under faults — recovery counters.
        """
        from repro.serve.scheduler import ServingLayer

        layer = ServingLayer(
            self, tenants, config=serve_config, seed=seed, samples=samples, recovery=recovery
        )
        return layer.run(duration_ns)

    def offload_functional(self, kernel, data: bytes):
        """Full-fidelity scomp: real data through flash, compute, retiming.

        Writes ``data`` into the flash array, reads the pages back through
        the FTL, executes the kernel's program on those exact bytes (the
        core phase), and retimes against the array. Returns
        ``(OffloadResult, outputs, final_state)`` so callers can check the
        computation end to end against the kernel's reference.
        """
        if not data:
            raise DeviceError("offload_functional needs data")
        if kernel.num_inputs != 1:
            raise DeviceError(
                "offload_functional drives single-input kernels; multi-stream "
                "kernels are exercised through CoreModel in the tests"
            )
        page = self.config.flash.page_bytes
        padded = data + b"\x00" * (-len(data) % kernel.block_bytes)
        lpas = self.write_dataset(padded + b"\x00" * (-len(padded) % page))
        stored = self.read_dataset(lpas)[: len(padded)]
        sample = self.engine.run(kernel, [stored])
        command = ScompCommand(
            command_id=self.host.next_id(), kernel=kernel.name, lpa_lists=[lpas]
        )
        self.host.submit(command)
        result = self.firmware.run_offload(kernel, sample, lpas)
        done = self.host.transfer(max(result.bytes_out, 1), result.completion_ns, to_host=True)
        self.host.complete(command, 0.0, done, result.bytes_out)
        return result, sample.outputs, sample.final_state


def simulate_offload(
    config: SSDConfig,
    kernel,
    data_bytes: int = 256 << 20,
    sample_bytes: Optional[int] = None,
    layout_skew: float = 0.0,
    sample: Optional[CoreRunResult] = None,
) -> OffloadResult:
    """One-call offload simulation on a fresh device (the main entry point).

    ``data_bytes`` defaults to 256 MiB: large enough that startup transients
    vanish, small enough that the page-level retiming stays fast. The
    paper's 8 GiB arrays can be passed explicitly; throughput is
    size-invariant past ~64 MiB for these streaming kernels.
    """
    device = ComputationalSSD(config, layout_skew=layout_skew)
    return device.offload(kernel, data_bytes, sample_bytes=sample_bytes, sample=sample)
