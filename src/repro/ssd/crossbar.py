"""All-to-all interconnect between flash controllers and compute engines.

The crossbar (paper Section V-A/C) is what lets any ASSASIN core consume
pages from any channel, keeping FTL placement fully independent and
performance robust under layout skew. It is non-blocking at flash aggregate
bandwidth; each traversal adds a small fixed latency. With ``enabled=False``
it degenerates to the Figure 7 alternative — channel-local compute — used
as the comparison point in the skew study (Figure 19).
"""

from __future__ import annotations

from typing import List

from repro.errors import DeviceError

CROSSBAR_LATENCY_NS = 120.0  # one traversal: arbitration + wires


class Crossbar:
    """Routes page transfers between channels and cores."""

    def __init__(self, num_channels: int, num_cores: int, enabled: bool = True) -> None:
        if num_channels <= 0 or num_cores <= 0:
            raise DeviceError("crossbar needs positive port counts")
        if not enabled and num_cores != num_channels:
            raise DeviceError(
                "channel-local mode requires one core per channel "
                f"(cores={num_cores}, channels={num_channels})"
            )
        self.num_channels = num_channels
        self.num_cores = num_cores
        self.enabled = enabled
        self.core_bytes: List[int] = [0] * num_cores
        self.channel_bytes: List[int] = [0] * num_channels
        self.traversals = 0

    def allowed(self, core: int, channel: int) -> bool:
        """May ``core`` consume data from ``channel``?"""
        self._check(core, channel)
        return self.enabled or core == channel

    def route(self, core: int, channel: int, nbytes: int) -> float:
        """Account one transfer and return the added latency (ns)."""
        self._check(core, channel)
        if not self.allowed(core, channel):
            raise DeviceError(
                f"channel-local architecture: core {core} cannot reach channel {channel}"
            )
        self.core_bytes[core] += nbytes
        self.channel_bytes[channel] += nbytes
        self.traversals += 1
        return CROSSBAR_LATENCY_NS if self.enabled else 0.0

    def _check(self, core: int, channel: int) -> None:
        if not 0 <= core < self.num_cores:
            raise DeviceError(f"core port {core} out of range")
        if not 0 <= channel < self.num_channels:
            raise DeviceError(f"channel port {channel} out of range")
