"""All-to-all interconnect between flash controllers and compute engines.

The crossbar (paper Section V-A/C) is what lets any ASSASIN core consume
pages from any channel, keeping FTL placement fully independent and
performance robust under layout skew. It is non-blocking at flash aggregate
bandwidth; each traversal adds a small fixed latency. With ``enabled=False``
it degenerates to the Figure 7 alternative — channel-local compute — used
as the comparison point in the skew study (Figure 19).
"""

from __future__ import annotations

from typing import List

from repro.errors import DeviceError
from repro.sim import FifoResource

CROSSBAR_LATENCY_NS = 120  # one traversal: arbitration + wires (integer ns)


class Crossbar:
    """Routes page transfers between channels and cores.

    The fabric is non-blocking at flash aggregate bandwidth, so a
    traversal costs a fixed latency rather than a queued slot; the
    per-channel ingress ports are still modelled as
    :class:`repro.sim.FifoResource` timelines so port occupancy shows up
    in utilisation sweeps (each page holds its ingress port for the
    traversal latency, which never binds at these rates).
    """

    def __init__(self, num_channels: int, num_cores: int, enabled: bool = True) -> None:
        if num_channels <= 0 or num_cores <= 0:
            raise DeviceError("crossbar needs positive port counts")
        if not enabled and num_cores != num_channels:
            raise DeviceError(
                "channel-local mode requires one core per channel "
                f"(cores={num_cores}, channels={num_channels})"
            )
        self.num_channels = num_channels
        self.num_cores = num_cores
        self.enabled = enabled
        self.core_bytes: List[int] = [0] * num_cores
        self.channel_bytes: List[int] = [0] * num_channels
        self.ports: List[FifoResource] = [
            FifoResource(f"crossbar.port{ch}") for ch in range(num_channels)
        ]
        self.traversals = 0

    def allowed(self, core: int, channel: int) -> bool:
        """May ``core`` consume data from ``channel``?"""
        self._check(core, channel)
        return self.enabled or core == channel

    def route(self, core: int, channel: int, nbytes: int, at_ns=None) -> int:
        """Account one transfer and return the added latency (ns).

        With ``at_ns`` the traversal's occupancy ``[at_ns, at_ns+latency)``
        is recorded on the channel's ingress port timeline (overlap
        allowed — the fabric is non-blocking).
        """
        self._check(core, channel)
        if not self.allowed(core, channel):
            raise DeviceError(
                f"channel-local architecture: core {core} cannot reach channel {channel}"
            )
        self.core_bytes[core] += nbytes
        self.channel_bytes[channel] += nbytes
        self.traversals += 1
        latency = CROSSBAR_LATENCY_NS if self.enabled else 0
        if at_ns is not None:
            self.ports[channel].occupy(at_ns, at_ns + latency)
        return latency

    def _check(self, core: int, channel: int) -> None:
        if not 0 <= core < self.num_cores:
            raise DeviceError(f"core port {core} out of range")
        if not 0 <= channel < self.num_channels:
            raise DeviceError(f"channel port {channel} out of range")
