"""SSD DRAM buffer: staging occupancy + the shared-bandwidth memory wall.

Wraps :class:`~repro.mem.dram.DRAMModel` with device-level concerns: how
many bytes of DRAM traffic each input byte generates on a given data path,
and the resulting throughput cap (the paper's Section III memory wall).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CoreConfig, DRAMConfig, DataSource, EngineKind
from repro.errors import DeviceError
from repro.mem.dram import DRAMModel


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM bytes moved per input byte, by cause."""

    staging_in: float  # flash controller -> DRAM page staging
    core_reads: float  # engine fills from DRAM (incl. UDP scratchpad copies)
    core_writes: float  # engine writebacks / results into DRAM
    staging_out: float  # result pages DRAM -> flash or host

    @property
    def total(self) -> float:
        return self.staging_in + self.core_reads + self.core_writes + self.staging_out


class DRAMBuffer:
    """Occupancy + bandwidth accounting for the SSD-internal DRAM."""

    def __init__(self, config: DRAMConfig) -> None:
        self.model = DRAMModel(config)
        self.staged_bytes = 0
        self.peak_staged_bytes = 0

    def stage(self, nbytes: int) -> None:
        if nbytes < 0:
            raise DeviceError("cannot stage a negative byte count")
        self.staged_bytes += nbytes
        if self.staged_bytes > self.model.config.capacity_bytes:
            raise DeviceError("SSD DRAM staging overflow")
        self.peak_staged_bytes = max(self.peak_staged_bytes, self.staged_bytes)

    def release(self, nbytes: int) -> None:
        if nbytes > self.staged_bytes:
            raise DeviceError("releasing more than staged")
        self.staged_bytes -= nbytes

    # -- the memory wall ---------------------------------------------------------

    @staticmethod
    def traffic_per_input_byte(
        core: CoreConfig, measured_core_traffic_per_byte: float, output_ratio: float
    ) -> TrafficBreakdown:
        """DRAM bytes per input byte for one engine's data path.

        * DRAM-sourced engines stage every input byte into DRAM and read it
          back (the blue arrows of Figure 4); results are staged on the way
          out. The UDP lane additionally write-copies into its scratchpad,
          which is included in the measured core traffic.
        * Flash-stream engines (ASSASIN) bypass DRAM for storage data; only
          whatever the cache hierarchy spills (measured) plus none of the
          staging shows up (Figure 6).
        """
        if core.data_source is DataSource.DRAM:
            staging_in = 1.0
            staging_out = output_ratio
            reads = max(measured_core_traffic_per_byte, 1.0 if core.engine is EngineKind.UDP else 0.0)
            return TrafficBreakdown(staging_in, reads, output_ratio, staging_out)
        return TrafficBreakdown(0.0, measured_core_traffic_per_byte, 0.0, 0.0)

    def bandwidth_cap_bytes_per_ns(self, traffic: TrafficBreakdown) -> float:
        """Max sustainable input rate given the DRAM bandwidth pool."""
        if traffic.total <= 0:
            return float("inf")
        return self.model.config.bandwidth_bytes_per_ns / traffic.total
