"""Predecoding fast-path execution engine for the stream ISA.

The reference :class:`~repro.isa.interpreter.Interpreter` pays a fixed toll
per instruction: a ``StepInfo`` allocation, a dict dispatch, a ``kind_of``
lookup, a ``Counter`` update and a multi-branch ``PipelineModel.cost`` call.
Every experiment, kernel, fault campaign and serve workload funnels through
that loop, so its dispatch cost bounds the whole reproduction — exactly the
instruction-per-byte sensitivity the paper's evaluation (§VI) is about.

:class:`FastEngine` removes the toll the way mature ISA simulators do
(Gem5's decode cache, MQSim's precomputed transaction paths):

* **Predecoding** — each :class:`~repro.isa.program.Program` is compiled
  once into closure-based decoded ops. All field extraction (``rd``,
  ``rs1``, immediates, stream widths) and opcode dispatch happens at
  compile time; executing an ALU op is a single closure call that mutates
  the raw register list.
* **Superblocks** — maximal straight-line runs of statically-costed ops
  (ALU/MUL/DIV/LUI) are executed back to back with a *single* cycle and
  telemetry accounting update per run, instead of one per instruction.
  Runs are formed lazily from every reached entry PC, so backward-branch
  targets (the streaming ``StreamLoad``→compute→``StreamStore`` inner
  loop) become one straight-line dash per iteration.
* **Exact accounting** — retirement counts are tracked per *entry* PC and
  folded back into per-instruction counts with a flow recurrence at sync
  time; the batched cycle sums are integers by construction (asserted at
  compile time), so the floating-point cycle totals, stall buckets and
  per-kind stats are **bit-identical** to the reference interpreter, not
  just close.

Semantics that cannot be batched are not batched: loads/stores call the
memory hierarchy with the exact intermediate cycle (cache fill times and
prefetcher timestamps depend on it), and stream ops keep the shared clock
current so firmware refill hooks record the same page-needed cycles.

Fallback rules (see docs/ARCHITECTURE.md): the core model uses the
reference interpreter whenever a profiler wants per-step ``StepInfo``
hooks, and whenever :class:`FastpathUnsupported` is raised at compile time
(non-integer pipeline latency parameters). Traps (out-of-range PC, memory
faults, unresolvable stream stalls) raise the same exception types with
architectural state synced, so error paths are differential-testable too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError, StreamError
from repro.isa.instructions import InstrKind, instr_reads, kind_of
from repro.isa.interpreter import Interpreter
from repro.isa.program import Program
from repro.mem.hierarchy import AccessType

_MASK32 = 0xFFFFFFFF

# Sentinel next-PC values returned by dynamic ops (real PCs are >= 0).
_HALT = -1
_STALL = -2
_EOS = -3

#: First-touch page granularity of the core model's DRAM-staged I/O trace.
_PAGE_BYTES = 4096

_LOAD_SIZES = {"lb": (1, True), "lbu": (1, False), "lh": (2, True),
               "lhu": (2, False), "lw": (4, False)}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4}

#: Instruction kinds whose cost is a compile-time constant: these form the
#: superblock bodies. Everything else is a block-terminating dynamic op.
_STATIC_KINDS = (InstrKind.ALU, InstrKind.MUL, InstrKind.DIV)


class FastpathUnsupported(ExecutionError):
    """The program/params cannot be compiled; use the reference engine."""


class _NullClock:
    """Stands in for the core model's clock in functional-only runs."""

    __slots__ = ("cycle",)

    def __init__(self) -> None:
        self.cycle = 0.0


class _Ctx:
    """Mutable run context shared by the dynamic-op closures."""

    __slots__ = (
        "regs",
        "memory",
        "in_streams",
        "out_streams",
        "clock",
        "hierarchy",
        "stats",
        "coster",
        "region",
        "first_touch",
        "taken",
        "aborted",
    )


def _signed(value: int) -> int:
    return value - 0x100000000 if value & 0x80000000 else value


def _require_int(name: str, value) -> int:
    """Static pipeline latencies must be integer cycles for exact batching."""
    if isinstance(value, bool) or not float(value) == int(value):
        raise FastpathUnsupported(
            f"fastpath needs integer pipeline parameter {name}, got {value!r}"
        )
    return int(value)


class FastEngine:
    """Executes one compiled :class:`Program`, bit-exact with the reference.

    An engine is compiled once per ``(program, pipeline params)`` pair and
    may run any number of interpreters over it (the chunked memory path
    resets the interpreter between chunks but reuses the decoded program).
    Pass ``params=None`` for functional-only runs with no cycle accounting
    (the :meth:`run` ``pipeline``/``clock`` arguments must then be omitted).
    """

    def __init__(self, program: Program, params=None, model: str = "static") -> None:
        self.program = program
        self.params = params
        self.model = model
        if model not in ("static", "predictive"):
            raise ExecutionError(f"unknown pipeline model {model!r}")
        # Predictive timing depends on run-time predictor/hazard state, so
        # every op prices itself live through the run's coster instead of
        # folding compile-time constants.
        self._dyncost = model == "predictive"
        n = len(program.instrs)
        self.n = n
        if params is not None and not self._dyncost:
            self._mul_extra = _require_int("mul_extra_cycles", params.mul_extra_cycles)
            self._div_extra = _require_int("div_extra_cycles", params.div_extra_cycles)
            self._taken_pen = _require_int(
                "taken_branch_penalty", params.taken_branch_penalty
            )
            self._jump_pen = _require_int("jump_penalty", params.jump_penalty)
            self._stream_extra = _require_int(
                "stream_head_extra", params.stream_head_extra
            )
        else:
            self._mul_extra = self._div_extra = 0
            self._taken_pen = self._jump_pen = self._stream_extra = 0
        self.kinds: List[InstrKind] = [kind_of(i.op) for i in program.instrs]
        self.static: List[bool] = [k in _STATIC_KINDS for k in self.kinds]
        self._static_cost: List[int] = [
            1
            + (self._mul_extra if k is InstrKind.MUL else 0)
            + (self._div_extra if k is InstrKind.DIV else 0)
            for k in self.kinds
        ]
        self._sfn: List[Optional[Callable]] = [None] * n
        self._dfn: List[Optional[Callable]] = [None] * n
        self._pfn: List[Optional[Callable]] = [None] * n
        for pc, instr in enumerate(program.instrs):
            if self.static[pc]:
                self._sfn[pc] = self._compile_static(instr)
                if self._dyncost:
                    self._pfn[pc] = self._compile_costed(pc, instr)
            elif self._dyncost:
                self._dfn[pc] = self._compile_dynamic_predictive(pc, instr)
            else:
                self._dfn[pc] = self._compile_dynamic(pc, instr)
        # Lazily-built superblock runs: entry pc -> (body, cost, nbody, dyn_pc).
        self._runs: List[Optional[Tuple[tuple, float, int, int]]] = [None] * n

    # ------------------------------------------------------------- compile --

    def _compile_static(self, i) -> Callable:
        """One straight-line op as a closure over the raw register list.

        The closures reproduce :meth:`Interpreter._build_dispatch` handler
        semantics exactly (including x0 discard and 32-bit write masking).
        """
        op, rd, rs1, rs2, imm = i.op, i.rd, i.rs1, i.rs2, i.imm
        if rd == 0:
            # Writes to x0 are discarded and no static op has side effects,
            # so the whole instruction decays to a retired-but-inert slot.
            return lambda R: None
        if op == "add":
            return lambda R: R.__setitem__(rd, (R[rs1] + R[rs2]) & _MASK32)
        if op == "sub":
            return lambda R: R.__setitem__(rd, (R[rs1] - R[rs2]) & _MASK32)
        if op == "and":
            return lambda R: R.__setitem__(rd, R[rs1] & R[rs2])
        if op == "or":
            return lambda R: R.__setitem__(rd, R[rs1] | R[rs2])
        if op == "xor":
            return lambda R: R.__setitem__(rd, R[rs1] ^ R[rs2])
        if op == "sll":
            return lambda R: R.__setitem__(rd, (R[rs1] << (R[rs2] & 31)) & _MASK32)
        if op == "srl":
            return lambda R: R.__setitem__(rd, R[rs1] >> (R[rs2] & 31))
        if op == "sra":
            return lambda R: R.__setitem__(
                rd, (_signed(R[rs1]) >> (R[rs2] & 31)) & _MASK32
            )
        if op == "slt":
            return lambda R: R.__setitem__(rd, int(_signed(R[rs1]) < _signed(R[rs2])))
        if op == "sltu":
            return lambda R: R.__setitem__(rd, int(R[rs1] < R[rs2]))
        if op == "mul":
            return lambda R: R.__setitem__(
                rd, (_signed(R[rs1]) * _signed(R[rs2])) & _MASK32
            )
        if op == "mulh":
            return lambda R: R.__setitem__(
                rd, ((_signed(R[rs1]) * _signed(R[rs2])) >> 32) & _MASK32
            )
        if op == "mulhu":
            return lambda R: R.__setitem__(rd, (R[rs1] * R[rs2]) >> 32)
        if op == "mulhsu":
            return lambda R: R.__setitem__(
                rd, ((_signed(R[rs1]) * R[rs2]) >> 32) & _MASK32
            )
        if op == "div":

            def _div(R):
                a, b = _signed(R[rs1]), _signed(R[rs2])
                if b == 0:
                    R[rd] = _MASK32
                    return
                q = abs(a) // abs(b)
                R[rd] = (-q if (a < 0) != (b < 0) else q) & _MASK32

            return _div
        if op == "divu":
            return lambda R: R.__setitem__(
                rd, _MASK32 if R[rs2] == 0 else R[rs1] // R[rs2]
            )
        if op == "rem":

            def _rem(R):
                a, b = _signed(R[rs1]), _signed(R[rs2])
                if b == 0:
                    R[rd] = a & _MASK32
                    return
                m = abs(a) % abs(b)
                R[rd] = (-m if a < 0 else m) & _MASK32

            return _rem
        if op == "remu":
            return lambda R: R.__setitem__(
                rd, R[rs1] if R[rs2] == 0 else R[rs1] % R[rs2]
            )
        if op == "addi":
            return lambda R: R.__setitem__(rd, (R[rs1] + imm) & _MASK32)
        uimm = imm & _MASK32
        if op == "andi":
            return lambda R: R.__setitem__(rd, R[rs1] & uimm)
        if op == "ori":
            return lambda R: R.__setitem__(rd, R[rs1] | uimm)
        if op == "xori":
            return lambda R: R.__setitem__(rd, R[rs1] ^ uimm)
        if op == "slli":
            return lambda R: R.__setitem__(rd, (R[rs1] << imm) & _MASK32)
        if op == "srli":
            return lambda R: R.__setitem__(rd, R[rs1] >> imm)
        if op == "srai":
            return lambda R: R.__setitem__(rd, (_signed(R[rs1]) >> imm) & _MASK32)
        if op == "slti":
            return lambda R: R.__setitem__(rd, int(_signed(R[rs1]) < imm))
        if op == "sltiu":
            return lambda R: R.__setitem__(rd, int(R[rs1] < uimm))
        if op == "lui":
            value = (imm << 12) & _MASK32
            return lambda R: R.__setitem__(rd, value)
        raise FastpathUnsupported(f"no static decoder for opcode {op!r}")

    def _compile_dynamic(self, pc: int, i) -> Callable:
        """Block terminators: control flow, memory, streams, halt.

        Each closure performs its own live cycle/stats accounting (the part
        that depends on runtime state) and returns the next PC or a
        negative sentinel.
        """
        op, rd, rs1, rs2, imm = i.op, i.rd, i.rs1, i.rs2, i.imm
        kind = self.kinds[pc]
        pcp1 = pc + 1
        if op in _LOAD_SIZES:
            size, is_signed = _LOAD_SIZES[op]

            def _load(ctx):
                R = ctx.regs
                addr = (R[rs1] + imm) & _MASK32
                value = int.from_bytes(
                    ctx.memory.load_bytes(addr, size), "little", signed=is_signed
                )
                if rd:
                    R[rd] = value & _MASK32
                h = ctx.hierarchy
                if h is not None:
                    result = h.access(
                        pc=pc, addr=addr, size=size,
                        access=AccessType.LOAD, cycle=ctx.clock.cycle,
                    )
                    cost = 1.0 + result.stall_cycles
                    st = ctx.stats
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    ctx.clock.cycle += cost
                    region = ctx.region
                    if region is not None and region.start <= addr < region.stop:
                        page_addr = addr - (addr - region.start) % _PAGE_BYTES
                        if page_addr not in ctx.first_touch:
                            ctx.first_touch[page_addr] = ctx.clock.cycle
                return pcp1

            return _load
        if op in _STORE_SIZES:
            size = _STORE_SIZES[op]
            mask = (1 << (8 * size)) - 1

            def _store(ctx):
                R = ctx.regs
                addr = (R[rs1] + imm) & _MASK32
                ctx.memory.store_bytes(addr, (R[rs2] & mask).to_bytes(size, "little"))
                h = ctx.hierarchy
                if h is not None:
                    result = h.access(
                        pc=pc, addr=addr, size=size,
                        access=AccessType.STORE, cycle=ctx.clock.cycle,
                    )
                    cost = 1.0 + result.stall_cycles
                    st = ctx.stats
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    ctx.clock.cycle += cost
                return pcp1

            return _store
        if kind is InstrKind.BRANCH:
            taken_cost = 1.0 + self._taken_pen
            if op == "beq":
                cond = lambda a, b: a == b  # noqa: E731
            elif op == "bne":
                cond = lambda a, b: a != b  # noqa: E731
            elif op == "blt":
                cond = lambda a, b: _signed(a) < _signed(b)  # noqa: E731
            elif op == "bge":
                cond = lambda a, b: _signed(a) >= _signed(b)  # noqa: E731
            elif op == "bltu":
                cond = lambda a, b: a < b  # noqa: E731
            else:  # bgeu
                cond = lambda a, b: a >= b  # noqa: E731

            def _branch(ctx):
                R = ctx.regs
                if cond(R[rs1], R[rs2]):
                    ctx.taken[pc] += 1
                    ctx.clock.cycle += taken_cost
                    return imm
                ctx.clock.cycle += 1.0
                return pcp1

            return _branch
        if op == "jal":
            jump_cost = 1.0 + self._jump_pen

            def _jal(ctx):
                if rd:
                    ctx.regs[rd] = pcp1
                ctx.clock.cycle += jump_cost
                return imm

            return _jal
        if op == "jalr":
            jump_cost = 1.0 + self._jump_pen

            def _jalr(ctx):
                R = ctx.regs
                target = (R[rs1] + imm) & _MASK32
                if rd:
                    R[rd] = pcp1
                ctx.clock.cycle += jump_cost
                return target

            return _jalr
        if op == "halt":

            def _halt(ctx):
                ctx.clock.cycle += 1.0
                return _HALT

            return _halt
        stream_cost = 1.0 + self._stream_extra
        sid, width = i.sid, i.width
        if op == "sload":

            def _sload(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                stream = ins[sid]
                data = stream.consume(width)
                if data is None:
                    ctx.aborted[pc] += 1
                    return _EOS if stream.exhausted else _STALL
                if rd:
                    ctx.regs[rd] = int.from_bytes(data, "little")
                ctx.clock.cycle += stream_cost
                return pcp1

            return _sload
        if op == "sskip":

            def _sskip(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                stream = ins[sid]
                if stream.consume(imm) is None:
                    ctx.aborted[pc] += 1
                    return _EOS if stream.exhausted else _STALL
                ctx.clock.cycle += stream_cost
                return pcp1

            return _sskip
        if op == "sstore":
            mask = (1 << (8 * width)) - 1

            def _sstore(ctx):
                outs = ctx.out_streams
                if outs is None:
                    raise ExecutionError(
                        "program uses output streams but none attached"
                    )
                value = ctx.regs[rs2] & mask
                try:
                    outs[sid].push(value.to_bytes(width, "little"))
                except StreamError:
                    ctx.aborted[pc] += 1
                    return _STALL
                ctx.clock.cycle += stream_cost
                return pcp1

            return _sstore
        if op == "savail":

            def _savail(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                if rd:
                    ctx.regs[rd] = ins[sid].available
                ctx.clock.cycle += 1.0
                return pcp1

            return _savail
        if op == "seos":

            def _seos(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                if rd:
                    ctx.regs[rd] = int(ins[sid].exhausted)
                ctx.clock.cycle += 1.0
                return pcp1

            return _seos
        raise FastpathUnsupported(f"no dynamic decoder for opcode {op!r}")

    # ------------------------------------------------- predictive compile --

    def _compile_costed(self, pc: int, i) -> Callable:
        """Predictive-mode wrapper for a static-kind op: exec + live pricing.

        Superblocks still batch execution (one dispatcher round per
        straight-line run) but each op prices its own cycles through the
        run's coster — costs depend on predictor/hazard state, so there is
        no compile-time constant to fold. The expressions mirror
        ``PipelineModel._cost_predictive`` term for term, including
        float-addition order, so both engines stay bit-identical even
        under fractional parameters.
        """
        exec_fn = self._sfn[pc]
        kind = self.kinds[pc]
        reads = instr_reads(i)
        if kind is InstrKind.MUL:

            def _mul(ctx):
                exec_fn(ctx.regs)
                st = ctx.stats
                if st is None:
                    return
                extra, hz = ctx.coster.mul(reads)
                cost = 1.0 + (extra + hz)
                st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                st.muldiv_extra_cycles += extra
                if hz:
                    st.hazard_stall_cycles += hz
                ctx.hierarchy.add_compute_cycles(cost)
                ctx.clock.cycle += cost

            return _mul
        if kind is InstrKind.DIV:
            rs1, rs2 = i.rs1, i.rs2
            signed = i.op in ("div", "rem")

            def _divop(ctx):
                R = ctx.regs
                a, b = R[rs1], R[rs2]
                exec_fn(R)
                st = ctx.stats
                if st is None:
                    return
                extra, hz = ctx.coster.div(reads, a, b, signed)
                cost = 1.0 + (extra + hz)
                st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                st.muldiv_extra_cycles += extra
                if hz:
                    st.hazard_stall_cycles += hz
                ctx.hierarchy.add_compute_cycles(cost)
                ctx.clock.cycle += cost

            return _divop

        def _alu(ctx):
            exec_fn(ctx.regs)
            st = ctx.stats
            if st is None:
                return
            hz = ctx.coster.simple(reads)
            cost = 1.0 + hz
            st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
            if hz:
                st.hazard_stall_cycles += hz
            ctx.hierarchy.add_compute_cycles(cost)
            ctx.clock.cycle += cost

        return _alu

    def _compile_dynamic_predictive(self, pc: int, i) -> Callable:
        """Predictive-mode block terminators with live coster-priced costing.

        Execution semantics are identical to :meth:`_compile_dynamic`; only
        the accounting differs. Aborted outcomes (stream stall/EOS, traps)
        return before any coster call, keeping predictor/hazard state
        identical to the reference, which never costs aborted steps.
        """
        op, rd, rs1, rs2, imm = i.op, i.rd, i.rs1, i.rs2, i.imm
        kind = self.kinds[pc]
        pcp1 = pc + 1
        reads = instr_reads(i)
        params = self.params
        stream_extra = params.stream_head_extra if params is not None else 0
        if op in _LOAD_SIZES:
            size, is_signed = _LOAD_SIZES[op]

            def _load(ctx):
                R = ctx.regs
                addr = (R[rs1] + imm) & _MASK32
                value = int.from_bytes(
                    ctx.memory.load_bytes(addr, size), "little", signed=is_signed
                )
                if rd:
                    R[rd] = value & _MASK32
                h = ctx.hierarchy
                if h is not None:
                    hz = ctx.coster.mem(reads, rd)
                    result = h.access(
                        pc=pc, addr=addr, size=size,
                        access=AccessType.LOAD, cycle=ctx.clock.cycle,
                    )
                    mem_stall = result.stall_cycles
                    cost = 1.0 + (hz + mem_stall)
                    st = ctx.stats
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    h.add_compute_cycles(cost - mem_stall)
                    ctx.clock.cycle += cost
                    region = ctx.region
                    if region is not None and region.start <= addr < region.stop:
                        page_addr = addr - (addr - region.start) % _PAGE_BYTES
                        if page_addr not in ctx.first_touch:
                            ctx.first_touch[page_addr] = ctx.clock.cycle
                return pcp1

            return _load
        if op in _STORE_SIZES:
            size = _STORE_SIZES[op]
            mask = (1 << (8 * size)) - 1

            def _store(ctx):
                R = ctx.regs
                addr = (R[rs1] + imm) & _MASK32
                ctx.memory.store_bytes(addr, (R[rs2] & mask).to_bytes(size, "little"))
                h = ctx.hierarchy
                if h is not None:
                    hz = ctx.coster.mem(reads, 0)
                    result = h.access(
                        pc=pc, addr=addr, size=size,
                        access=AccessType.STORE, cycle=ctx.clock.cycle,
                    )
                    mem_stall = result.stall_cycles
                    cost = 1.0 + (hz + mem_stall)
                    st = ctx.stats
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    h.add_compute_cycles(cost - mem_stall)
                    ctx.clock.cycle += cost
                return pcp1

            return _store
        if kind is InstrKind.BRANCH:
            if op == "beq":
                cond = lambda a, b: a == b  # noqa: E731
            elif op == "bne":
                cond = lambda a, b: a != b  # noqa: E731
            elif op == "blt":
                cond = lambda a, b: _signed(a) < _signed(b)  # noqa: E731
            elif op == "bge":
                cond = lambda a, b: _signed(a) >= _signed(b)  # noqa: E731
            elif op == "bltu":
                cond = lambda a, b: a < b  # noqa: E731
            else:  # bgeu
                cond = lambda a, b: a >= b  # noqa: E731

            def _branch(ctx):
                R = ctx.regs
                t = cond(R[rs1], R[rs2])
                st = ctx.stats
                if st is not None:
                    pen, hz, mispredicted = ctx.coster.branch(pc, reads, t, imm)
                    cost = 1.0 + (pen + hz)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    st.branch_penalty_cycles += pen
                    if mispredicted:
                        st.branch_mispredicts += 1
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return imm if t else pcp1

            return _branch
        if op == "jal":

            def _jal(ctx):
                if rd:
                    ctx.regs[rd] = pcp1
                st = ctx.stats
                if st is not None:
                    pen, hz = ctx.coster.jump(pc, reads, imm)
                    cost = 1.0 + (pen + hz)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    st.branch_penalty_cycles += pen
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return imm

            return _jal
        if op == "jalr":

            def _jalr(ctx):
                R = ctx.regs
                target = (R[rs1] + imm) & _MASK32
                if rd:
                    R[rd] = pcp1
                st = ctx.stats
                if st is not None:
                    pen, hz = ctx.coster.jump(pc, reads, target)
                    cost = 1.0 + (pen + hz)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    st.branch_penalty_cycles += pen
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return target

            return _jalr
        if op == "halt":

            def _halt(ctx):
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.simple(reads)
                    cost = 1.0 + hz
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return _HALT

            return _halt
        sid, width = i.sid, i.width
        if op == "sload":

            def _sload(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                stream = ins[sid]
                data = stream.consume(width)
                if data is None:
                    ctx.aborted[pc] += 1
                    return _EOS if stream.exhausted else _STALL
                if rd:
                    ctx.regs[rd] = int.from_bytes(data, "little")
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.stream_load(reads, rd)
                    cost = 1.0 + (hz + stream_extra)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost - stream_extra)
                    ctx.clock.cycle += cost
                return pcp1

            return _sload
        if op == "sskip":

            def _sskip(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                stream = ins[sid]
                if stream.consume(imm) is None:
                    ctx.aborted[pc] += 1
                    return _EOS if stream.exhausted else _STALL
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.stream_load(reads, 0)
                    cost = 1.0 + (hz + stream_extra)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost - stream_extra)
                    ctx.clock.cycle += cost
                return pcp1

            return _sskip
        if op == "sstore":
            mask = (1 << (8 * width)) - 1

            def _sstore(ctx):
                outs = ctx.out_streams
                if outs is None:
                    raise ExecutionError(
                        "program uses output streams but none attached"
                    )
                value = ctx.regs[rs2] & mask
                try:
                    outs[sid].push(value.to_bytes(width, "little"))
                except StreamError:
                    ctx.aborted[pc] += 1
                    return _STALL
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.simple(reads)
                    cost = 1.0 + (hz + stream_extra)
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost - stream_extra)
                    ctx.clock.cycle += cost
                return pcp1

            return _sstore
        if op == "savail":

            def _savail(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                if rd:
                    ctx.regs[rd] = ins[sid].available
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.simple(reads)
                    cost = 1.0 + hz
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return pcp1

            return _savail
        if op == "seos":

            def _seos(ctx):
                ins = ctx.in_streams
                if ins is None:
                    raise ExecutionError(
                        "program uses input streams but none attached"
                    )
                if rd:
                    ctx.regs[rd] = int(ins[sid].exhausted)
                st = ctx.stats
                if st is not None:
                    hz = ctx.coster.simple(reads)
                    cost = 1.0 + hz
                    st.cycles_by_kind[kind] = st.cycles_by_kind.get(kind, 0.0) + cost
                    if hz:
                        st.hazard_stall_cycles += hz
                    ctx.hierarchy.add_compute_cycles(cost)
                    ctx.clock.cycle += cost
                return pcp1

            return _seos
        raise FastpathUnsupported(f"no dynamic decoder for opcode {op!r}")

    def _build_run(self, entry_pc: int) -> Tuple[tuple, float, int, int]:
        """Superblock from ``entry_pc``: statics up to the next dynamic op.

        ``dyn_pc == self.n`` marks a run that falls off the program end
        (the dispatcher then raises the reference's out-of-range trap).
        """
        body: List[Callable] = []
        cost = 0
        pc = entry_pc
        n = self.n
        if self._dyncost:
            # Predictive mode: the body closures price themselves live, so
            # the batched run cost is identically zero.
            while pc < n and self.static[pc]:
                body.append(self._pfn[pc])
                pc += 1
        else:
            while pc < n and self.static[pc]:
                body.append(self._sfn[pc])
                cost += self._static_cost[pc]
                pc += 1
        run = (tuple(body), float(cost), len(body), pc)
        self._runs[entry_pc] = run
        return run

    # ----------------------------------------------------------------- run --

    def run(
        self,
        interp: Interpreter,
        pipeline=None,
        clock=None,
        input_region: Optional[range] = None,
        strict_stalls: bool = False,
        max_steps: Optional[int] = None,
    ) -> Dict[int, float]:
        """Drive ``interp``'s architectural state to completion.

        Mirrors :meth:`repro.core.core.CoreModel._execute` when ``pipeline``
        and ``clock`` are given (``strict_stalls=True`` reproduces its
        unresolved-stall trap), and :meth:`Interpreter.run` otherwise.
        Architectural state, counters and timing stats are synced back into
        ``interp``/``pipeline`` on every exit path, including exceptions.
        Returns the first-touch cycle map for ``input_region`` runs.
        """
        if interp.program is not self.program:
            raise ExecutionError("engine compiled for a different program")
        if interp.finished:
            # Both reference drive loops are no-ops on a finished program.
            return {}
        n = self.n
        ctx = _Ctx()
        ctx.regs = interp.regs._regs
        ctx.memory = interp.memory
        ctx.in_streams = interp.in_streams
        ctx.out_streams = interp.out_streams
        ctx.clock = clock if clock is not None else _NullClock()
        ctx.hierarchy = pipeline.hierarchy if pipeline is not None else None
        ctx.stats = pipeline.stats if pipeline is not None else None
        ctx.coster = pipeline.coster if pipeline is not None else None
        if ctx.coster is not None and ctx.coster.is_static == self._dyncost:
            raise ExecutionError(
                f"engine compiled for pipeline model {self.model!r} but the "
                "pipeline's coster uses the other timing model"
            )
        ctx.region = input_region
        ctx.first_touch = {}
        entry = [0] * n
        ctx.taken = taken = [0] * n
        ctx.aborted = aborted = [0] * n
        runs = self._runs
        dfn = self._dfn
        dyncost = self._dyncost
        clk = ctx.clock
        pc = interp.pc
        live_steps = interp.steps
        last_stall = False
        finished = halted = False
        try:
            while True:
                if max_steps is not None and live_steps >= max_steps:
                    raise ExecutionError(f"exceeded max_steps={max_steps}")
                if not 0 <= pc < n:
                    raise ExecutionError(
                        f"PC {pc} outside program of {n} instrs"
                    )
                entry[pc] += 1
                run = runs[pc]
                if run is None:
                    run = self._build_run(pc)
                body, cost, nbody, dyn_pc = run
                if dyncost:
                    for fn in body:
                        fn(ctx)
                else:
                    for fn in body:
                        fn(ctx.regs)
                    if cost:
                        clk.cycle += cost
                live_steps += nbody
                if dyn_pc == n:
                    pc = n
                    continue  # falls off the end: trap with the exact PC
                try:
                    ret = dfn[dyn_pc](ctx)
                except BaseException:
                    # A trap mid-instruction (memory fault, missing stream
                    # set): nothing retires and the PC pins the faulting
                    # instruction, exactly like the reference step().
                    aborted[dyn_pc] += 1
                    pc = dyn_pc
                    raise
                if ret >= 0:
                    pc = ret
                    live_steps += 1
                    last_stall = False
                    continue
                pc = dyn_pc
                if ret == _HALT:
                    live_steps += 1
                    finished = halted = True
                    break
                if ret == _EOS:
                    finished = True
                    break
                # Stream stall: the reference raises immediately under the
                # core model (hooks already had their chance inside the
                # stream access) and after one fruitless retry otherwise.
                if strict_stalls:
                    raise ExecutionError(
                        f"unresolved stream stall at pc={dyn_pc}: "
                        "firmware hooks missing"
                    )
                if last_stall:
                    raise ExecutionError(
                        f"unresolvable stream stall at pc={dyn_pc} "
                        f"({self.program.instrs[dyn_pc]})"
                    )
                last_stall = True
        finally:
            self._sync(interp, pipeline, entry, taken, aborted, pc, finished, halted)
        return ctx.first_touch

    # ---------------------------------------------------------------- sync --

    def _sync(self, interp, pipeline, entry, taken, aborted, pc, finished, halted):
        """Fold batched retirement counts back into interpreter/pipeline state.

        Retired-instruction counts come from a flow recurrence over entry
        counts: every execution of a static op falls through to its
        successor, so ``retired[p] = entry[p] + retired[p - 1]`` within a
        run (dynamic predecessors redirect through the dispatcher and
        contribute via ``entry`` instead). All batched cycle contributions
        are integers, which keeps the float totals bit-identical to the
        per-step reference accumulation.
        """
        n = self.n
        static = self.static
        kinds = self.kinds
        retired = [0] * n
        prev = 0
        for p in range(n):
            flow = entry[p] + (prev if p and static[p - 1] else 0)
            retired[p] = flow - aborted[p]
            prev = flow
        interp.pc = pc
        interp.finished = finished or interp.finished
        interp.halted = halted or interp.halted
        total = 0
        bytes_in = 0
        bytes_out = 0
        counts = interp.instr_counts
        taken_total = 0
        kind_retired: Dict[InstrKind, int] = {}
        for p in range(n):
            r = retired[p]
            if r == 0:
                continue
            kind = kinds[p]
            counts[kind] += r
            kind_retired[kind] = kind_retired.get(kind, 0) + r
            total += r
            if kind is InstrKind.BRANCH:
                taken_total += taken[p]
            instr = self.program.instrs[p]
            if instr.op == "sload":
                bytes_in += instr.width * r
            elif instr.op == "sskip":
                bytes_in += instr.imm * r
            elif instr.op == "sstore":
                bytes_out += instr.width * r
        interp.steps += total
        interp.stream_bytes_in += bytes_in
        interp.stream_bytes_out += bytes_out
        if pipeline is None or self._dyncost:
            # Predictive runs account every cycle live at the op closures;
            # only retirement counts and stream bytes needed folding.
            return
        stats = pipeline.stats
        by_kind = stats.cycles_by_kind
        compute = float(total)
        for kind, r in kind_retired.items():
            if kind in (InstrKind.LOAD, InstrKind.STORE):
                continue  # live-accounted per access, base cycle is in `total`
            cycles = float(r)
            if kind is InstrKind.MUL:
                extra = r * self._mul_extra
                cycles += extra
                compute += extra
                stats.muldiv_extra_cycles += extra
            elif kind is InstrKind.DIV:
                extra = r * self._div_extra
                cycles += extra
                compute += extra
                stats.muldiv_extra_cycles += extra
            elif kind is InstrKind.BRANCH:
                extra = taken_total * self._taken_pen
                cycles += extra
                compute += extra
                stats.branch_penalty_cycles += extra
            elif kind is InstrKind.JUMP:
                extra = r * self._jump_pen
                cycles += extra
                compute += extra
                stats.branch_penalty_cycles += extra
            elif kind in (InstrKind.STREAM_LOAD, InstrKind.STREAM_STORE):
                # The head-FIFO extra reaches the clock and the kind stats
                # but is not booked as compute — mirroring PipelineModel.
                cycles += r * self._stream_extra
            by_kind[kind] = by_kind.get(kind, 0.0) + cycles
        pipeline.hierarchy.add_compute_cycles(compute)


def run_summary(interp: Interpreter):
    """The :class:`~repro.isa.interpreter.RunSummary` of a fastpath run."""
    from collections import Counter

    from repro.isa.interpreter import RunSummary

    return RunSummary(
        steps=interp.steps,
        finished=interp.finished,
        halted=interp.halted,
        instr_counts=Counter(interp.instr_counts),
        stream_bytes_in=interp.stream_bytes_in,
        stream_bytes_out=interp.stream_bytes_out,
    )
