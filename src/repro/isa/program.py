"""Program container and the ``Asm`` builder used to author kernels.

Kernels in this repository are written with the builder rather than raw
assembly text (the text assembler in :mod:`repro.isa.assembler` accepts the
same mnemonics). Branch targets are labels, resolved to instruction indices
at :meth:`Asm.build`; the PC of the interpreter is an instruction index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.instructions import (
    ALU_I_OPS,
    ALU_R_OPS,
    BRANCH_OPS,
    DIV_OPS,
    LOAD_OPS,
    MUL_OPS,
    STORE_OPS,
    Instr,
    validate_instr,
)
from repro.isa.registers import reg_num
from repro.utils.bitops import sign_extend

Reg = Union[str, int]


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions plus resolved labels."""

    name: str
    instrs: Tuple[Instr, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instrs)

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.instrs):
            for label in sorted(by_index.get(i, [])):
                lines.append(f"{label}:")
            lines.append(f"  {i:4d}: {instr}")
        return "\n".join(lines)


class Asm:
    """Incremental program builder with pseudo-instruction support."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instrs: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str]] = []  # (instr index, label)

    # -- label management ------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)

    def _emit(self, instr: Instr, target: Optional[str] = None) -> None:
        if target is not None:
            self._fixups.append((len(self._instrs), target))
        self._instrs.append(instr)

    # -- base instructions --------------------------------------------------------

    def alu_r(self, op: str, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        if op not in ALU_R_OPS | MUL_OPS | DIV_OPS:
            raise AssemblyError(f"{op!r} is not a register-register ALU op")
        self._emit(Instr(op, rd=reg_num(rd), rs1=reg_num(rs1), rs2=reg_num(rs2)))
        return self

    def alu_i(self, op: str, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        if op not in ALU_I_OPS:
            raise AssemblyError(f"{op!r} is not an immediate ALU op")
        self._emit(Instr(op, rd=reg_num(rd), rs1=reg_num(rs1), imm=imm))
        return self

    def lui(self, rd: Reg, imm20: int) -> "Asm":
        self._emit(Instr("lui", rd=reg_num(rd), imm=imm20))
        return self

    def load(self, op: str, rd: Reg, base: Reg, offset: int = 0) -> "Asm":
        if op not in LOAD_OPS:
            raise AssemblyError(f"{op!r} is not a load")
        self._emit(Instr(op, rd=reg_num(rd), rs1=reg_num(base), imm=offset))
        return self

    def store(self, op: str, rs2: Reg, base: Reg, offset: int = 0) -> "Asm":
        if op not in STORE_OPS:
            raise AssemblyError(f"{op!r} is not a store")
        self._emit(Instr(op, rs2=reg_num(rs2), rs1=reg_num(base), imm=offset))
        return self

    def branch(self, op: str, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        if op not in BRANCH_OPS:
            raise AssemblyError(f"{op!r} is not a branch")
        self._emit(
            Instr(op, rs1=reg_num(rs1), rs2=reg_num(rs2), label=target), target=target
        )
        return self

    def jal(self, rd: Reg, target: str) -> "Asm":
        self._emit(Instr("jal", rd=reg_num(rd), label=target), target=target)
        return self

    def jalr(self, rd: Reg, rs1: Reg, imm: int = 0) -> "Asm":
        self._emit(Instr("jalr", rd=reg_num(rd), rs1=reg_num(rs1), imm=imm))
        return self

    def halt(self) -> "Asm":
        self._emit(Instr("halt"))
        return self

    # -- stream extension ----------------------------------------------------------

    def sload(self, rd: Reg, sid: int, width: int) -> "Asm":
        """StreamLoad: pop ``width`` bytes from input stream ``sid`` into rd."""
        self._emit(Instr("sload", rd=reg_num(rd), sid=sid, width=width))
        return self

    def sstore(self, rs2: Reg, sid: int, width: int) -> "Asm":
        """StreamStore: append the low ``width`` bytes of rs2 to stream ``sid``."""
        self._emit(Instr("sstore", rs2=reg_num(rs2), sid=sid, width=width))
        return self

    def sskip(self, sid: int, nbytes: int) -> "Asm":
        """Advance input stream ``sid``'s head by ``nbytes`` without reading."""
        self._emit(Instr("sskip", sid=sid, imm=nbytes))
        return self

    def savail(self, rd: Reg, sid: int) -> "Asm":
        self._emit(Instr("savail", rd=reg_num(rd), sid=sid))
        return self

    def seos(self, rd: Reg, sid: int) -> "Asm":
        self._emit(Instr("seos", rd=reg_num(rd), sid=sid))
        return self

    # -- common mnemonics as thin wrappers -------------------------------------------

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("add", rd, rs1, rs2)

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("sub", rd, rs1, rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("and", rd, rs1, rs2)

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("or", rd, rs1, rs2)

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("xor", rd, rs1, rs2)

    def sll(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("sll", rd, rs1, rs2)

    def srl(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("srl", rd, rs1, rs2)

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("mul", rd, rs1, rs2)

    def divu(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("divu", rd, rs1, rs2)

    def remu(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("remu", rd, rs1, rs2)

    def sltu(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self.alu_r("sltu", rd, rs1, rs2)

    def addi(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("addi", rd, rs1, imm)

    def andi(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("andi", rd, rs1, imm)

    def ori(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("ori", rd, rs1, imm)

    def xori(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("xori", rd, rs1, imm)

    def slli(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("slli", rd, rs1, imm)

    def srli(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("srli", rd, rs1, imm)

    def srai(self, rd: Reg, rs1: Reg, imm: int) -> "Asm":
        return self.alu_i("srai", rd, rs1, imm)

    def lw(self, rd: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.load("lw", rd, base, offset)

    def lbu(self, rd: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.load("lbu", rd, base, offset)

    def lhu(self, rd: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.load("lhu", rd, base, offset)

    def sw(self, rs2: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.store("sw", rs2, base, offset)

    def sb(self, rs2: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.store("sb", rs2, base, offset)

    def sh(self, rs2: Reg, base: Reg, offset: int = 0) -> "Asm":
        return self.store("sh", rs2, base, offset)

    def beq(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("beq", rs1, rs2, target)

    def bne(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("bne", rs1, rs2, target)

    def blt(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("blt", rs1, rs2, target)

    def bge(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("bge", rs1, rs2, target)

    def bltu(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("bltu", rs1, rs2, target)

    def bgeu(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.branch("bgeu", rs1, rs2, target)

    # -- pseudo-instructions ----------------------------------------------------------

    def nop(self) -> "Asm":
        return self.addi("zero", "zero", 0)

    def mv(self, rd: Reg, rs: Reg) -> "Asm":
        return self.addi(rd, rs, 0)

    def li(self, rd: Reg, value: int) -> "Asm":
        """Load a 32-bit constant (expands to lui+addi when needed)."""
        value = sign_extend(value & 0xFFFFFFFF, 32)
        if -2048 <= value <= 2047:
            return self.addi(rd, "zero", value)
        low = sign_extend(value & 0xFFF, 12)
        high = ((value - low) >> 12) & 0xFFFFF
        self.lui(rd, high)
        if low:
            self.addi(rd, rd, low)
        return self

    def j(self, target: str) -> "Asm":
        return self.jal("zero", target)

    def ret(self) -> "Asm":
        return self.jalr("zero", "ra", 0)

    def call(self, target: str) -> "Asm":
        return self.jal("ra", target)

    def beqz(self, rs: Reg, target: str) -> "Asm":
        return self.beq(rs, "zero", target)

    def bnez(self, rs: Reg, target: str) -> "Asm":
        return self.bne(rs, "zero", target)

    def bgt(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.blt(rs2, rs1, target)

    def ble(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self.bge(rs2, rs1, target)

    def seqz(self, rd: Reg, rs: Reg) -> "Asm":
        return self.alu_i("sltiu", rd, rs, 1)

    def snez(self, rd: Reg, rs: Reg) -> "Asm":
        return self.sltu(rd, "zero", rs)

    def not_(self, rd: Reg, rs: Reg) -> "Asm":
        return self.xori(rd, rs, -1)

    # -- finalisation -------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and validate every instruction."""
        instrs = list(self._instrs)
        for index, label in self._fixups:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r} referenced at {index}")
            old = instrs[index]
            instrs[index] = Instr(
                op=old.op,
                rd=old.rd,
                rs1=old.rs1,
                rs2=old.rs2,
                imm=self._labels[label],
                sid=old.sid,
                width=old.width,
                label=label,
            )
        for instr in instrs:
            validate_instr(instr)
        return Program(name=self.name, instrs=tuple(instrs), labels=dict(self._labels))
