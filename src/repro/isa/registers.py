"""RV32 register file with ABI names. ``x0`` is hardwired to zero."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import ExecutionError

ABI_NAMES: List[str] = (
    ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1"]
    + [f"a{i}" for i in range(8)]
    + [f"s{i}" for i in range(2, 12)]
    + [f"t{i}" for i in range(3, 7)]
)

REG_NUMBERS: Dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
REG_NUMBERS.update({f"x{i}": i for i in range(32)})
REG_NUMBERS["fp"] = 8  # alias of s0


def reg_num(name: Union[str, int]) -> int:
    """Resolve a register name (ABI or xN) or pass through a valid number."""
    if isinstance(name, int):
        if 0 <= name < 32:
            return name
        raise ExecutionError(f"register number {name} out of range")
    try:
        return REG_NUMBERS[name]
    except KeyError:
        raise ExecutionError(f"unknown register {name!r}") from None


class RegisterFile:
    """32 general-purpose 32-bit registers; writes to x0 are discarded."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: List[int] = [0] * 32

    def read(self, reg: int) -> int:
        return self._regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != 0:
            self._regs[reg] = value & 0xFFFFFFFF

    def read_name(self, name: Union[str, int]) -> int:
        return self.read(reg_num(name))

    def write_name(self, name: Union[str, int], value: int) -> None:
        self.write(reg_num(name), value)

    def reset(self) -> None:
        for i in range(32):
            self._regs[i] = 0

    def snapshot(self) -> List[int]:
        return list(self._regs)
