"""Text assembler: a thin front-end over the :class:`~repro.isa.program.Asm`
builder so programs can also be written as plain assembly.

Syntax::

    # comments start with '#'
    loop:
        sload t0, 0, 4        # rd, stream id, width
        addi  s1, s1, 1
        lw    t1, 8(sp)       # loads/stores use off(reg)
        beq   t0, zero, done
        j     loop
    done:
        halt

Stream ids are plain integers (not registers). The pseudo-instructions
``li``, ``mv``, ``nop``, ``j``, ``ret``, ``call``, ``beqz``, ``bnez``,
``bgt``, ``ble``, ``seqz``, ``snez`` and ``not`` are accepted.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import AssemblyError
from repro.isa.instructions import (
    ALU_I_OPS,
    ALU_R_OPS,
    BRANCH_OPS,
    DIV_OPS,
    LOAD_OPS,
    MUL_OPS,
    STORE_OPS,
)
from repro.isa.program import Asm, Program

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    return [t.strip() for t in rest.split(",")] if rest.strip() else []


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    asm = Asm(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            _assemble_line(asm, line)
        except AssemblyError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from None
    return asm.build()


def _assemble_line(asm: Asm, line: str) -> None:
    while ":" in line:
        label, line = line.split(":", 1)
        asm.label(label.strip())
        line = line.strip()
    if not line:
        return
    parts = line.split(None, 1)
    op = parts[0].lower()
    ops = _split_operands(parts[1]) if len(parts) > 1 else []

    if op in ALU_R_OPS | MUL_OPS | DIV_OPS:
        _expect(op, ops, 3)
        asm.alu_r(op, ops[0], ops[1], ops[2])
    elif op in ALU_I_OPS:
        _expect(op, ops, 3)
        asm.alu_i(op, ops[0], ops[1], _parse_int(ops[2]))
    elif op == "lui":
        _expect(op, ops, 2)
        asm.lui(ops[0], _parse_int(ops[1]))
    elif op in LOAD_OPS:
        _expect(op, ops, 2)
        offset, base = _parse_mem(ops[1])
        asm.load(op, ops[0], base, offset)
    elif op in STORE_OPS:
        _expect(op, ops, 2)
        offset, base = _parse_mem(ops[1])
        asm.store(op, ops[0], base, offset)
    elif op in BRANCH_OPS:
        _expect(op, ops, 3)
        asm.branch(op, ops[0], ops[1], ops[2])
    elif op == "jal":
        if len(ops) == 1:
            asm.jal("ra", ops[0])
        else:
            _expect(op, ops, 2)
            asm.jal(ops[0], ops[1])
    elif op == "jalr":
        if len(ops) == 2:
            asm.jalr(ops[0], ops[1], 0)
        else:
            _expect(op, ops, 3)
            asm.jalr(ops[0], ops[1], _parse_int(ops[2]))
    elif op == "halt":
        asm.halt()
    elif op == "sload":
        _expect(op, ops, 3)
        asm.sload(ops[0], _parse_int(ops[1]), _parse_int(ops[2]))
    elif op == "sstore":
        _expect(op, ops, 3)
        asm.sstore(ops[0], _parse_int(ops[1]), _parse_int(ops[2]))
    elif op == "sskip":
        _expect(op, ops, 2)
        asm.sskip(_parse_int(ops[0]), _parse_int(ops[1]))
    elif op == "savail":
        _expect(op, ops, 2)
        asm.savail(ops[0], _parse_int(ops[1]))
    elif op == "seos":
        _expect(op, ops, 2)
        asm.seos(ops[0], _parse_int(ops[1]))
    # -- pseudo-instructions ---------------------------------------------------
    elif op == "li":
        _expect(op, ops, 2)
        asm.li(ops[0], _parse_int(ops[1]))
    elif op == "mv":
        _expect(op, ops, 2)
        asm.mv(ops[0], ops[1])
    elif op == "nop":
        asm.nop()
    elif op == "j":
        _expect(op, ops, 1)
        asm.j(ops[0])
    elif op == "ret":
        asm.ret()
    elif op == "call":
        _expect(op, ops, 1)
        asm.call(ops[0])
    elif op == "beqz":
        _expect(op, ops, 2)
        asm.beqz(ops[0], ops[1])
    elif op == "bnez":
        _expect(op, ops, 2)
        asm.bnez(ops[0], ops[1])
    elif op == "bgt":
        _expect(op, ops, 3)
        asm.bgt(ops[0], ops[1], ops[2])
    elif op == "ble":
        _expect(op, ops, 3)
        asm.ble(ops[0], ops[1], ops[2])
    elif op == "seqz":
        _expect(op, ops, 2)
        asm.seqz(ops[0], ops[1])
    elif op == "snez":
        _expect(op, ops, 2)
        asm.snez(ops[0], ops[1])
    elif op == "not":
        _expect(op, ops, 2)
        asm.not_(ops[0], ops[1])
    else:
        raise AssemblyError(f"unknown mnemonic {op!r}")


def _expect(op: str, ops: List[str], count: int) -> None:
    if len(ops) != count:
        raise AssemblyError(f"{op} expects {count} operands, got {len(ops)}")


def _parse_mem(token: str):
    match = _MEM_OPERAND.match(token)
    if not match:
        raise AssemblyError(f"bad memory operand {token!r}; expected off(reg)")
    return _parse_int(match.group(1)), match.group(2)
