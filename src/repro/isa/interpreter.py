"""Functional interpreter for the RV32IM subset + stream extension.

The interpreter executes one instruction per :meth:`Interpreter.step` and
reports what happened in a :class:`StepInfo`, which the timing model in
:mod:`repro.core.pipeline` converts into cycles. Stream semantics follow the
paper's Listing 1: a ``StreamLoad`` on an exhausted input stream ends the
program (the firmware then resets the core); on a merely *empty* stream it
stalls, giving the firmware a chance to schedule more pages in.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ExecutionError, StreamError
from repro.isa.instructions import Instr, InstrKind, kind_of
from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.mem.memory import FlatMemory
from repro.mem.streambuffer import StreamBufferSet
from repro.utils.bitops import to_signed32, to_unsigned32


class StepKind(enum.Enum):
    """Outcome class of one interpreter step."""

    OK = "ok"
    HALT = "halt"
    STREAM_STALL = "stream_stall"  # pc unchanged; retry after firmware action
    STREAM_EOS = "stream_eos"  # input exhausted: program is finished


@dataclass
class StepInfo:
    """Everything the timing model needs to know about one executed step."""

    instr: Instr
    pc: int
    kind: InstrKind
    step: StepKind = StepKind.OK
    mem_addr: Optional[int] = None
    mem_size: int = 0
    mem_is_write: bool = False
    stream_sid: Optional[int] = None
    stream_bytes: int = 0
    stream_is_output: bool = False
    branch_taken: bool = False
    #: (rs1, rs2) architectural values for DIV-kind ops — the predictive
    #: timing model's iterative divider latency is operand-dependent.
    operands: Optional[tuple] = None
    #: Resolved target PC for jal/jalr — feeds the predictive model's BTB.
    branch_target: Optional[int] = None


@dataclass
class RunSummary:
    """Aggregate result of :meth:`Interpreter.run`."""

    steps: int
    finished: bool
    halted: bool
    instr_counts: Counter = field(default_factory=Counter)
    stream_bytes_in: int = 0
    stream_bytes_out: int = 0


class Interpreter:
    """Executes a :class:`Program` against memory and stream buffers."""

    def __init__(
        self,
        program: Program,
        memory: FlatMemory,
        in_streams: Optional[StreamBufferSet] = None,
        out_streams: Optional[StreamBufferSet] = None,
    ) -> None:
        self.program = program
        self.memory = memory
        self.in_streams = in_streams
        self.out_streams = out_streams
        self.regs = RegisterFile()
        self.pc = 0
        self.finished = False
        self.halted = False
        self.steps = 0
        self.instr_counts: Counter = Counter()
        self.stream_bytes_in = 0
        self.stream_bytes_out = 0
        self._dispatch: Dict[str, Callable[[Instr, StepInfo], None]] = self._build_dispatch()

    # -- public API --------------------------------------------------------------

    def reset(self) -> None:
        """Firmware-style core reset: PC and registers cleared, streams kept."""
        self.regs.reset()
        self.pc = 0
        self.finished = False
        self.halted = False
        self.steps = 0
        self.instr_counts.clear()
        self.stream_bytes_in = 0
        self.stream_bytes_out = 0

    def step(self) -> StepInfo:
        """Execute the instruction at PC and return what happened."""
        if self.finished:
            raise ExecutionError("step() on a finished program")
        if not 0 <= self.pc < len(self.program.instrs):
            raise ExecutionError(f"PC {self.pc} outside program of {len(self.program)} instrs")
        instr = self.program.instrs[self.pc]
        info = StepInfo(instr=instr, pc=self.pc, kind=kind_of(instr.op))
        handler = self._dispatch.get(instr.op)
        if handler is None:
            raise ExecutionError(f"no handler for opcode {instr.op!r}")
        handler(instr, info)
        if info.step in (StepKind.OK, StepKind.HALT):
            self.steps += 1
            self.instr_counts[info.kind] += 1
        return info

    def run(self, max_steps: int = 10_000_000) -> RunSummary:
        """Run until halt/EOS; stream stalls must be resolved by hooks.

        If a stall repeats without progress (no hook supplied data), raises
        :class:`ExecutionError` instead of spinning forever.
        """
        stalled_at = -1
        while not self.finished:
            if self.steps >= max_steps:
                raise ExecutionError(f"exceeded max_steps={max_steps}")
            info = self.step()
            if info.step is StepKind.STREAM_STALL:
                if stalled_at == self.steps:
                    raise ExecutionError(
                        f"unresolvable stream stall at pc={info.pc} ({info.instr})"
                    )
                stalled_at = self.steps
            else:
                stalled_at = -1
        return RunSummary(
            steps=self.steps,
            finished=self.finished,
            halted=self.halted,
            instr_counts=Counter(self.instr_counts),
            stream_bytes_in=self.stream_bytes_in,
            stream_bytes_out=self.stream_bytes_out,
        )

    # -- handlers ------------------------------------------------------------------

    def _build_dispatch(self) -> Dict[str, Callable[[Instr, StepInfo], None]]:
        d: Dict[str, Callable[[Instr, StepInfo], None]] = {}
        r = self.regs

        def advance() -> None:
            self.pc += 1

        # ALU register-register -------------------------------------------------
        def make_alu_r(fn):
            def handler(i: Instr, info: StepInfo) -> None:
                r.write(i.rd, fn(r.read(i.rs1), r.read(i.rs2)))
                advance()

            return handler

        d["add"] = make_alu_r(lambda a, b: a + b)
        d["sub"] = make_alu_r(lambda a, b: a - b)
        d["and"] = make_alu_r(lambda a, b: a & b)
        d["or"] = make_alu_r(lambda a, b: a | b)
        d["xor"] = make_alu_r(lambda a, b: a ^ b)
        d["sll"] = make_alu_r(lambda a, b: a << (b & 31))
        d["srl"] = make_alu_r(lambda a, b: a >> (b & 31))
        d["sra"] = make_alu_r(lambda a, b: to_signed32(a) >> (b & 31))
        d["slt"] = make_alu_r(lambda a, b: int(to_signed32(a) < to_signed32(b)))
        d["sltu"] = make_alu_r(lambda a, b: int(a < b))
        d["mul"] = make_alu_r(lambda a, b: to_signed32(a) * to_signed32(b))
        d["mulh"] = make_alu_r(lambda a, b: (to_signed32(a) * to_signed32(b)) >> 32)
        d["mulhu"] = make_alu_r(lambda a, b: (a * b) >> 32)
        d["mulhsu"] = make_alu_r(lambda a, b: (to_signed32(a) * b) >> 32)

        def _div(a: int, b: int) -> int:
            a, b = to_signed32(a), to_signed32(b)
            if b == 0:
                return -1
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q

        def _rem(a: int, b: int) -> int:
            a, b = to_signed32(a), to_signed32(b)
            if b == 0:
                return a
            m = abs(a) % abs(b)
            return -m if a < 0 else m

        # DIV-kind ops record their operands (before any rd aliasing) so the
        # predictive timing model can price the iterative divider exactly.
        def make_div(fn):
            def handler(i: Instr, info: StepInfo) -> None:
                a, b = r.read(i.rs1), r.read(i.rs2)
                info.operands = (a, b)
                r.write(i.rd, fn(a, b))
                advance()

            return handler

        d["div"] = make_div(_div)
        d["divu"] = make_div(lambda a, b: 0xFFFFFFFF if b == 0 else a // b)
        d["rem"] = make_div(_rem)
        d["remu"] = make_div(lambda a, b: a if b == 0 else a % b)

        # ALU immediate ---------------------------------------------------------
        def make_alu_i(fn):
            def handler(i: Instr, info: StepInfo) -> None:
                r.write(i.rd, fn(r.read(i.rs1), i.imm))
                advance()

            return handler

        d["addi"] = make_alu_i(lambda a, imm: a + imm)
        d["andi"] = make_alu_i(lambda a, imm: a & to_unsigned32(imm))
        d["ori"] = make_alu_i(lambda a, imm: a | to_unsigned32(imm))
        d["xori"] = make_alu_i(lambda a, imm: a ^ to_unsigned32(imm))
        d["slli"] = make_alu_i(lambda a, imm: a << imm)
        d["srli"] = make_alu_i(lambda a, imm: a >> imm)
        d["srai"] = make_alu_i(lambda a, imm: to_signed32(a) >> imm)
        d["slti"] = make_alu_i(lambda a, imm: int(to_signed32(a) < imm))
        d["sltiu"] = make_alu_i(lambda a, imm: int(a < to_unsigned32(imm)))

        def lui(i: Instr, info: StepInfo) -> None:
            r.write(i.rd, i.imm << 12)
            advance()

        d["lui"] = lui

        # Loads / stores ----------------------------------------------------------
        def make_load(size: int, signed: bool):
            def handler(i: Instr, info: StepInfo) -> None:
                addr = to_unsigned32(r.read(i.rs1) + i.imm)
                raw = self.memory.load_bytes(addr, size)
                value = int.from_bytes(raw, "little", signed=signed)
                r.write(i.rd, value)
                info.mem_addr, info.mem_size, info.mem_is_write = addr, size, False
                advance()

            return handler

        d["lb"] = make_load(1, True)
        d["lbu"] = make_load(1, False)
        d["lh"] = make_load(2, True)
        d["lhu"] = make_load(2, False)
        d["lw"] = make_load(4, False)

        def make_store(size: int):
            def handler(i: Instr, info: StepInfo) -> None:
                addr = to_unsigned32(r.read(i.rs1) + i.imm)
                value = r.read(i.rs2) & ((1 << (8 * size)) - 1)
                self.memory.store_bytes(addr, value.to_bytes(size, "little"))
                info.mem_addr, info.mem_size, info.mem_is_write = addr, size, True
                advance()

            return handler

        d["sb"] = make_store(1)
        d["sh"] = make_store(2)
        d["sw"] = make_store(4)

        # Branches / jumps -----------------------------------------------------------
        def make_branch(cmp):
            def handler(i: Instr, info: StepInfo) -> None:
                if cmp(r.read(i.rs1), r.read(i.rs2)):
                    info.branch_taken = True
                    self.pc = i.imm
                else:
                    advance()

            return handler

        d["beq"] = make_branch(lambda a, b: a == b)
        d["bne"] = make_branch(lambda a, b: a != b)
        d["blt"] = make_branch(lambda a, b: to_signed32(a) < to_signed32(b))
        d["bge"] = make_branch(lambda a, b: to_signed32(a) >= to_signed32(b))
        d["bltu"] = make_branch(lambda a, b: a < b)
        d["bgeu"] = make_branch(lambda a, b: a >= b)

        def jal(i: Instr, info: StepInfo) -> None:
            r.write(i.rd, self.pc + 1)
            info.branch_taken = True
            info.branch_target = i.imm
            self.pc = i.imm

        def jalr(i: Instr, info: StepInfo) -> None:
            target = to_unsigned32(r.read(i.rs1) + i.imm)
            r.write(i.rd, self.pc + 1)
            info.branch_taken = True
            info.branch_target = target
            self.pc = target

        d["jal"] = jal
        d["jalr"] = jalr

        def halt(i: Instr, info: StepInfo) -> None:
            info.step = StepKind.HALT
            self.finished = True
            self.halted = True

        d["halt"] = halt

        # Stream extension --------------------------------------------------------
        d["sload"] = self._sload
        d["sstore"] = self._sstore
        d["sskip"] = self._sskip
        d["savail"] = self._savail
        d["seos"] = self._seos
        return d

    # Stream handlers are methods (they need stream sets resolved at call time).

    def _require_in(self, sid: int):
        if self.in_streams is None:
            raise ExecutionError("program uses input streams but none attached")
        return self.in_streams[sid]

    def _require_out(self, sid: int):
        if self.out_streams is None:
            raise ExecutionError("program uses output streams but none attached")
        return self.out_streams[sid]

    def _sload(self, i: Instr, info: StepInfo) -> None:
        stream = self._require_in(i.sid)
        info.stream_sid, info.stream_bytes = i.sid, i.width
        data = stream.consume(i.width)
        if data is None:
            if stream.exhausted:
                info.step = StepKind.STREAM_EOS
                self.finished = True
            else:
                info.step = StepKind.STREAM_STALL
            return
        self.regs.write(i.rd, int.from_bytes(data, "little"))
        self.stream_bytes_in += i.width
        self.pc += 1

    def _sskip(self, i: Instr, info: StepInfo) -> None:
        stream = self._require_in(i.sid)
        info.stream_sid, info.stream_bytes = i.sid, i.imm
        data = stream.consume(i.imm)
        if data is None:
            if stream.exhausted:
                info.step = StepKind.STREAM_EOS
                self.finished = True
            else:
                info.step = StepKind.STREAM_STALL
            return
        self.stream_bytes_in += i.imm
        self.pc += 1

    def _sstore(self, i: Instr, info: StepInfo) -> None:
        stream = self._require_out(i.sid)
        info.stream_sid, info.stream_bytes = i.sid, i.width
        info.stream_is_output = True
        value = self.regs.read(i.rs2) & ((1 << (8 * i.width)) - 1)
        try:
            stream.push(value.to_bytes(i.width, "little"))
        except StreamError:
            info.step = StepKind.STREAM_STALL
            return
        self.stream_bytes_out += i.width
        self.pc += 1

    def _savail(self, i: Instr, info: StepInfo) -> None:
        stream = self._require_in(i.sid)
        info.stream_sid = i.sid
        self.regs.write(i.rd, stream.available)
        self.pc += 1

    def _seos(self, i: Instr, info: StepInfo) -> None:
        stream = self._require_in(i.sid)
        info.stream_sid = i.sid
        self.regs.write(i.rd, int(stream.exhausted))
        self.pc += 1
