"""RV32IM-subset ISA with the ASSASIN stream extension (paper Table III).

The ISA layer is purely functional: it defines instructions, assembles
programs (from text or the :class:`~repro.isa.program.Asm` builder), and
executes them against a :class:`~repro.mem.memory.FlatMemory` plus stream
buffer sets. Timing lives in :mod:`repro.core`.
"""

from repro.isa.instructions import Instr, InstrKind, kind_of, validate_instr
from repro.isa.registers import ABI_NAMES, REG_NUMBERS, RegisterFile, reg_num
from repro.isa.program import Asm, Program
from repro.isa.assembler import assemble
from repro.isa.interpreter import Interpreter, StepInfo, StepKind
from repro.isa.fastpath import FastEngine, FastpathUnsupported
from repro.isa.stream_ext import (
    STREAM_OPCODE,
    decode_stream_instr,
    encode_stream_instr,
)

__all__ = [
    "Instr",
    "InstrKind",
    "kind_of",
    "validate_instr",
    "ABI_NAMES",
    "REG_NUMBERS",
    "RegisterFile",
    "reg_num",
    "Asm",
    "Program",
    "assemble",
    "Interpreter",
    "StepInfo",
    "StepKind",
    "FastEngine",
    "FastpathUnsupported",
    "STREAM_OPCODE",
    "encode_stream_instr",
    "decode_stream_instr",
]
