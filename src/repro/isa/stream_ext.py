"""Binary encodings for the stream ISA extension (paper Table III).

The extension lives in the RISC-V *custom-0* opcode space (``0001011``).
Field layout (RV32 conventions):

======== ======= ============================================================
funct3   op      fields
======== ======= ============================================================
``000``  sload   rd[11:7], sid in rs1[19:15], log2(width) in funct7[31:25]
``001``  sstore  rs2[24:20], sid in rs1[19:15], log2(width) in funct7[31:25]
``010``  sskip   sid in rs1[19:15], imm12[31:20]
``011``  savail  rd[11:7], sid in rs1[19:15]
``100``  seos    rd[11:7], sid in rs1[19:15]
======== ======= ============================================================

The restricted, head-only semantics of these instructions is what allows the
hardware stream buffer to be a small prefetched FIFO and hit a 0.5 ns cycle
(paper Section VI-F).
"""

from __future__ import annotations

from repro.errors import AssemblyError
from repro.isa.instructions import Instr
from repro.utils.bitops import bit_select

STREAM_OPCODE = 0b0001011  # RISC-V custom-0

_FUNCT3 = {"sload": 0b000, "sstore": 0b001, "sskip": 0b010, "savail": 0b011, "seos": 0b100}
_OP_BY_FUNCT3 = {v: k for k, v in _FUNCT3.items()}
_WIDTH_CODE = {1: 0, 2: 1, 4: 2, 8: 3}
_WIDTH_BY_CODE = {v: k for k, v in _WIDTH_CODE.items()}


def encode_stream_instr(instr: Instr) -> int:
    """Encode a stream-extension instruction into its 32-bit word."""
    if instr.op not in _FUNCT3:
        raise AssemblyError(f"{instr.op!r} is not a stream-extension instruction")
    funct3 = _FUNCT3[instr.op]
    word = STREAM_OPCODE | (funct3 << 12) | ((instr.sid & 0x1F) << 15)
    if instr.op == "sload":
        word |= (instr.rd & 0x1F) << 7
        word |= _WIDTH_CODE[instr.width] << 25
    elif instr.op == "sstore":
        word |= (instr.rs2 & 0x1F) << 20
        word |= _WIDTH_CODE[instr.width] << 25
    elif instr.op == "sskip":
        if not 0 < instr.imm < (1 << 12):
            raise AssemblyError(f"sskip immediate {instr.imm} exceeds 12 bits")
        word |= (instr.imm & 0xFFF) << 20
    else:  # savail / seos
        word |= (instr.rd & 0x1F) << 7
    return word


def decode_stream_instr(word: int) -> Instr:
    """Decode a 32-bit word from the custom-0 space back to an :class:`Instr`."""
    if bit_select(word, 6, 0) != STREAM_OPCODE:
        raise AssemblyError(f"word {word:#010x} is not in the stream opcode space")
    funct3 = bit_select(word, 14, 12)
    try:
        op = _OP_BY_FUNCT3[funct3]
    except KeyError:
        raise AssemblyError(f"unknown stream funct3 {funct3:#05b}") from None
    sid = bit_select(word, 19, 15)
    if op == "sload":
        return Instr(
            "sload",
            rd=bit_select(word, 11, 7),
            sid=sid,
            width=_WIDTH_BY_CODE[bit_select(word, 31, 25) & 0x3],
        )
    if op == "sstore":
        return Instr(
            "sstore",
            rs2=bit_select(word, 24, 20),
            sid=sid,
            width=_WIDTH_BY_CODE[bit_select(word, 31, 25) & 0x3],
        )
    if op == "sskip":
        return Instr("sskip", sid=sid, imm=bit_select(word, 31, 20))
    return Instr(op, rd=bit_select(word, 11, 7), sid=sid)
