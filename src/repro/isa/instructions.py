"""Instruction definitions for the RV32IM subset plus the stream extension.

Instructions are kept in a symbolic form (opcode string + register numbers +
immediate) rather than 32-bit words; the stream-extension encodings of the
paper's Table III are provided separately in :mod:`repro.isa.stream_ext`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.errors import AssemblyError


class InstrKind(enum.Enum):
    """Timing class used by the pipeline model."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    STREAM_LOAD = "stream_load"
    STREAM_STORE = "stream_store"
    STREAM_CTRL = "stream_ctrl"
    SYSTEM = "system"


ALU_R_OPS: FrozenSet[str] = frozenset(
    "add sub sll slt sltu xor srl sra or and".split()
)
MUL_OPS: FrozenSet[str] = frozenset("mul mulh mulhu mulhsu".split())
DIV_OPS: FrozenSet[str] = frozenset("div divu rem remu".split())
ALU_I_OPS: FrozenSet[str] = frozenset(
    "addi slti sltiu xori ori andi slli srli srai".split()
)
LOAD_OPS: FrozenSet[str] = frozenset("lb lh lw lbu lhu".split())
STORE_OPS: FrozenSet[str] = frozenset("sb sh sw".split())
BRANCH_OPS: FrozenSet[str] = frozenset("beq bne blt bge bltu bgeu".split())
JUMP_OPS: FrozenSet[str] = frozenset("jal jalr".split())
UPPER_OPS: FrozenSet[str] = frozenset(["lui"])
SYSTEM_OPS: FrozenSet[str] = frozenset(["halt"])

# Stream ISA extension (paper Table III):
#   sload  rd,  sid, width   -- pop `width` bytes from input stream head
#   sstore rs2, sid, width   -- append low `width` bytes of rs2 to output
#   sskip  sid, imm          -- advance input head by imm bytes
#   savail rd, sid           -- bytes currently buffered (non-blocking CSR)
#   seos   rd, sid           -- 1 if the input stream is exhausted
STREAM_LOAD_OPS: FrozenSet[str] = frozenset(["sload", "sskip"])
STREAM_STORE_OPS: FrozenSet[str] = frozenset(["sstore"])
STREAM_CTRL_OPS: FrozenSet[str] = frozenset(["savail", "seos"])

ALL_OPS: FrozenSet[str] = (
    ALU_R_OPS
    | MUL_OPS
    | DIV_OPS
    | ALU_I_OPS
    | LOAD_OPS
    | STORE_OPS
    | BRANCH_OPS
    | JUMP_OPS
    | UPPER_OPS
    | SYSTEM_OPS
    | STREAM_LOAD_OPS
    | STREAM_STORE_OPS
    | STREAM_CTRL_OPS
)

# Register-width-bound stream accesses; the encoding reserves code 3 for a
# future 8-byte (paired-register / SIMD) form, matching the paper's 1B-64B
# hardware interface (Section VI-F).
STREAM_WIDTHS = (1, 2, 4)


@dataclass(frozen=True)
class Instr:
    """One symbolic instruction.

    Fields are used according to the opcode: ``rd``/``rs1``/``rs2`` are
    register numbers, ``imm`` the immediate (branch/jump immediates hold the
    *resolved instruction index* after assembly), ``sid``/``width`` apply to
    stream instructions, and ``label`` keeps the original branch target for
    disassembly.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    sid: int = 0
    width: int = 0
    label: Optional[str] = None

    def __str__(self) -> str:  # compact disassembly for traces
        if self.op in STREAM_LOAD_OPS | STREAM_STORE_OPS | STREAM_CTRL_OPS:
            if self.op == "sload":
                return f"sload x{self.rd}, s{self.sid}, {self.width}"
            if self.op == "sstore":
                return f"sstore x{self.rs2}, s{self.sid}, {self.width}"
            if self.op == "sskip":
                return f"sskip s{self.sid}, {self.imm}"
            return f"{self.op} x{self.rd}, s{self.sid}"
        if self.op in BRANCH_OPS:
            target = self.label or str(self.imm)
            return f"{self.op} x{self.rs1}, x{self.rs2}, {target}"
        if self.op in STORE_OPS:
            return f"{self.op} x{self.rs2}, {self.imm}(x{self.rs1})"
        if self.op in LOAD_OPS:
            return f"{self.op} x{self.rd}, {self.imm}(x{self.rs1})"
        if self.op in ALU_I_OPS:
            return f"{self.op} x{self.rd}, x{self.rs1}, {self.imm}"
        if self.op == "lui":
            return f"lui x{self.rd}, {self.imm:#x}"
        if self.op == "jal":
            return f"jal x{self.rd}, {self.label or self.imm}"
        if self.op == "jalr":
            return f"jalr x{self.rd}, x{self.rs1}, {self.imm}"
        if self.op == "halt":
            return "halt"
        return f"{self.op} x{self.rd}, x{self.rs1}, x{self.rs2}"


_KIND_TABLE = {}
for _op in ALU_R_OPS | ALU_I_OPS | UPPER_OPS:
    _KIND_TABLE[_op] = InstrKind.ALU
for _op in MUL_OPS:
    _KIND_TABLE[_op] = InstrKind.MUL
for _op in DIV_OPS:
    _KIND_TABLE[_op] = InstrKind.DIV
for _op in LOAD_OPS:
    _KIND_TABLE[_op] = InstrKind.LOAD
for _op in STORE_OPS:
    _KIND_TABLE[_op] = InstrKind.STORE
for _op in BRANCH_OPS:
    _KIND_TABLE[_op] = InstrKind.BRANCH
for _op in JUMP_OPS:
    _KIND_TABLE[_op] = InstrKind.JUMP
for _op in STREAM_LOAD_OPS:
    _KIND_TABLE[_op] = InstrKind.STREAM_LOAD
for _op in STREAM_STORE_OPS:
    _KIND_TABLE[_op] = InstrKind.STREAM_STORE
for _op in STREAM_CTRL_OPS:
    _KIND_TABLE[_op] = InstrKind.STREAM_CTRL
for _op in SYSTEM_OPS:
    _KIND_TABLE[_op] = InstrKind.SYSTEM


def kind_of(op: str) -> InstrKind:
    """Timing class for an opcode."""
    try:
        return _KIND_TABLE[op]
    except KeyError:
        raise AssemblyError(f"unknown opcode {op!r}") from None


_READS_RS1_RS2 = ALU_R_OPS | MUL_OPS | DIV_OPS | STORE_OPS | BRANCH_OPS
_READS_RS1 = ALU_I_OPS | LOAD_OPS | frozenset(["jalr"])
_READS_RS2 = STREAM_STORE_OPS


def instr_reads(instr: "Instr") -> Tuple[int, ...]:
    """Architectural registers an instruction reads (x0 excluded).

    This is the read set the predictive timing model's load-use hazard
    latch is checked against; ``lui``/``jal``/``halt`` and the
    stream-control ops read no register.
    """
    op = instr.op
    if op in _READS_RS1_RS2:
        rs1, rs2 = instr.rs1, instr.rs2
        if rs1 and rs2:
            return (rs1, rs2) if rs1 != rs2 else (rs1,)
        return (rs1,) if rs1 else ((rs2,) if rs2 else ())
    if op in _READS_RS1:
        return (instr.rs1,) if instr.rs1 else ()
    if op in _READS_RS2:
        return (instr.rs2,) if instr.rs2 else ()
    return ()


_IMM12_MIN, _IMM12_MAX = -(1 << 11), (1 << 11) - 1


def validate_instr(instr: Instr) -> None:
    """Raise :class:`AssemblyError` if an instruction violates ISA limits."""
    op = instr.op
    if op not in ALL_OPS:
        raise AssemblyError(f"unknown opcode {op!r}")
    for reg in (instr.rd, instr.rs1, instr.rs2):
        if not 0 <= reg < 32:
            raise AssemblyError(f"register x{reg} out of range in {instr}")
    if op in ALU_I_OPS:
        if op in ("slli", "srli", "srai"):
            if not 0 <= instr.imm < 32:
                raise AssemblyError(f"shift amount {instr.imm} out of range in {instr}")
        elif not _IMM12_MIN <= instr.imm <= _IMM12_MAX:
            raise AssemblyError(f"immediate {instr.imm} exceeds 12 bits in {instr}")
    if op in LOAD_OPS | STORE_OPS and not _IMM12_MIN <= instr.imm <= _IMM12_MAX:
        raise AssemblyError(f"offset {instr.imm} exceeds 12 bits in {instr}")
    if op == "lui" and not 0 <= instr.imm <= 0xFFFFF:
        raise AssemblyError(f"lui immediate {instr.imm:#x} exceeds 20 bits")
    if op in ("sload", "sstore") and instr.width not in STREAM_WIDTHS:
        raise AssemblyError(f"stream width {instr.width} not in {STREAM_WIDTHS}")
    if op in STREAM_LOAD_OPS | STREAM_STORE_OPS | STREAM_CTRL_OPS:
        if not 0 <= instr.sid < 16:
            raise AssemblyError(f"stream id {instr.sid} out of range in {instr}")
    if op == "sskip" and instr.imm <= 0:
        raise AssemblyError("sskip must advance by a positive byte count")
