"""Static analysis of ISA programs: instruction mix, registers, structure.

Used by the kernel-validation harness and handy when writing new kernels:
the instruction mix directly predicts the cycles/byte the timing model will
charge, and the register summary catches clobbered callee state early.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isa.instructions import (
    ALU_I_OPS,
    BRANCH_OPS,
    JUMP_OPS,
    LOAD_OPS,
    STORE_OPS,
    STREAM_CTRL_OPS,
    STREAM_LOAD_OPS,
    STREAM_STORE_OPS,
    InstrKind,
    kind_of,
)
from repro.isa.program import Program
from repro.isa.registers import ABI_NAMES


@dataclass
class ProgramStats:
    """Static profile of one program."""

    name: str
    size: int
    kind_counts: Dict[InstrKind, int]
    op_counts: Dict[str, int]
    regs_written: Set[int]
    regs_read: Set[int]
    stream_ids_in: Set[int]
    stream_ids_out: Set[int]
    branch_targets: Set[int]
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def stream_op_fraction(self) -> float:
        stream = sum(
            n for k, n in self.kind_counts.items()
            if k in (InstrKind.STREAM_LOAD, InstrKind.STREAM_STORE, InstrKind.STREAM_CTRL)
        )
        return stream / self.size if self.size else 0.0

    @property
    def memory_op_fraction(self) -> float:
        mem = sum(
            n for k, n in self.kind_counts.items() if k in (InstrKind.LOAD, InstrKind.STORE)
        )
        return mem / self.size if self.size else 0.0

    def reg_names(self, regs: Set[int]) -> List[str]:
        return sorted((ABI_NAMES[r] for r in regs), key=ABI_NAMES.index)

    def render(self) -> str:
        lines = [f"program {self.name}: {self.size} instructions"]
        for kind, count in sorted(self.kind_counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {kind.value:13s} {count:5d} ({count / self.size:5.1%})")
        lines.append(f"  regs written : {', '.join(self.reg_names(self.regs_written))}")
        if self.stream_ids_in or self.stream_ids_out:
            lines.append(
                f"  streams      : in={sorted(self.stream_ids_in)} "
                f"out={sorted(self.stream_ids_out)}"
            )
        return "\n".join(lines)


def analyze_program(program: Program) -> ProgramStats:
    """Compute the static profile of ``program``."""
    kind_counts: Counter = Counter()
    op_counts: Counter = Counter()
    regs_written: Set[int] = set()
    regs_read: Set[int] = set()
    stream_in: Set[int] = set()
    stream_out: Set[int] = set()
    targets: Set[int] = set()
    for instr in program.instrs:
        kind = kind_of(instr.op)
        kind_counts[kind] += 1
        op_counts[instr.op] += 1
        op = instr.op
        if op in BRANCH_OPS or op == "jal":
            targets.add(instr.imm)
        if op in STREAM_LOAD_OPS | STREAM_CTRL_OPS:
            stream_in.add(instr.sid)
        if op in STREAM_STORE_OPS:
            stream_out.add(instr.sid)
        # Register usage by format.
        writes_rd = op not in STORE_OPS and op not in BRANCH_OPS and op not in ("sstore", "sskip", "halt")
        if writes_rd and instr.rd != 0:
            regs_written.add(instr.rd)
        if op in BRANCH_OPS:
            regs_read.update((instr.rs1, instr.rs2))
        elif op in STORE_OPS:
            regs_read.update((instr.rs1, instr.rs2))
        elif op == "sstore":
            regs_read.add(instr.rs2)
        elif op in LOAD_OPS or op in ALU_I_OPS or op == "jalr":
            regs_read.add(instr.rs1)
        elif op in JUMP_OPS or op == "lui" or op in STREAM_LOAD_OPS | STREAM_CTRL_OPS:
            pass
        else:  # R-type ALU
            regs_read.update((instr.rs1, instr.rs2))
    regs_read.discard(0)
    return ProgramStats(
        name=program.name,
        size=len(program),
        kind_counts=dict(kind_counts),
        op_counts=dict(op_counts),
        regs_written=regs_written,
        regs_read=regs_read,
        stream_ids_in=stream_in,
        stream_ids_out=stream_out,
        branch_targets=targets,
        labels=dict(program.labels),
    )


def check_structure(program: Program) -> List[str]:
    """Structural lints: issues that usually mean a kernel bug.

    Returns a list of human-readable problems (empty = clean).
    """
    problems: List[str] = []
    stats = analyze_program(program)
    for target in stats.branch_targets:
        if not 0 <= target < len(program):
            problems.append(f"branch target {target} outside program of {len(program)}")
    ends_open = len(program) > 0 and program.instrs[-1].op not in ("halt", "jal", "beq",
                                                                   "bne", "blt", "bge",
                                                                   "bltu", "bgeu", "jalr")
    if ends_open:
        problems.append(
            f"program falls off the end (last op {program.instrs[-1].op!r}); "
            "stream kernels should loop, memory kernels should halt"
        )
    has_halt = any(i.op == "halt" for i in program.instrs)
    uses_streams = bool(stats.stream_ids_in or stats.stream_ids_out)
    if not has_halt and not uses_streams:
        problems.append("no halt and no stream instructions: cannot terminate")
    return problems
