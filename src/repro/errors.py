"""Exception hierarchy for the ASSASIN reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An architecture or device configuration is inconsistent."""


class AssemblyError(ReproError):
    """The ISA assembler rejected a program."""


class ExecutionError(ReproError):
    """The ISA interpreter hit an illegal state (bad opcode, trap, ...)."""


class MemoryError_(ReproError):
    """A memory-system component was used outside its contract."""


class StreamError(ReproError):
    """Stream buffer misuse (bad stream id, overflow, underflow on store)."""


class FlashError(ReproError):
    """Flash array misuse (bad address, program-before-erase, ...)."""


class FTLError(ReproError):
    """Flash translation layer error (unmapped LPA, capacity exceeded)."""


class DeviceError(ReproError):
    """SSD device-level protocol error (bad scomp request, ...)."""


class ZnsError(ReproError):
    """Zoned-namespace protocol violation (append past capacity, open-zone
    limit exceeded, I/O against an offline zone, ...)."""


class ServeError(ReproError):
    """Multi-tenant serving layer misuse (bad tenant spec, queue protocol)."""


class FaultError(ReproError):
    """Fault-injection campaign misuse (bad rates, unmapped RAID group)."""


class FleetError(ReproError):
    """Fleet-layer misuse (empty ring, bad stripe geometry, dead quorum)."""


class KernelError(ReproError):
    """An offloaded kernel was invoked with invalid parameters or data."""


class AnalyticsError(ReproError):
    """TPC-H substrate error (unknown table/column, malformed plan)."""


class SqlError(ReproError):
    """SQL frontend error (lexing, parsing, planning, or execution)."""
