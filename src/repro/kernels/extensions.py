"""Extension kernels covering the rest of Table II's function families.

These demonstrate the programming model's generality beyond the paper's
evaluated set:

* :class:`ReplicateKernel` — "Replicate": one input stream copied to two
  output streams (write-path fan-out).
* :class:`DedupKernel` — "Deduplicate": per-block fingerprints checked
  against a scratchpad-resident fingerprint table; emits the indices of
  duplicate blocks. (Fingerprint-table semantics are exact: 1024 direct-
  mapped entries, last-writer-wins — reference and ISA agree bit for bit.)
* :class:`RLECompressKernel` — "Compress": run-length encoding as the
  simplified stand-in for dictionary compression (the paper's point is the
  bounded-history structure, which RLE shares in degenerate form).
* :class:`StatsSummaryKernel` — "Statistics": count/sum/min/max
  accumulators over a u32 column, all function state in the scratchpad.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.mem.memory import FlatMemory

DEDUP_BLOCK = 64
DEDUP_TABLE_ENTRIES = 1024
_FNV_PRIME = 16777619
_FNV_BASIS = 2166136261


def dedup_fingerprint(block: bytes) -> int:
    """FNV-1a over the block, word at a time (matches the ISA program)."""
    h = _FNV_BASIS
    for i in range(0, len(block), 4):
        word = int.from_bytes(block[i : i + 4], "little")
        h = ((h ^ word) * _FNV_PRIME) & 0xFFFFFFFF
    return h or 1  # 0 marks an empty table slot


class ReplicateKernel(Kernel):
    """Copy the input stream to two output streams."""

    name = "replicate"
    num_inputs = 1
    num_outputs = 2
    output_to_flash = True
    block_bytes = 4

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        return [inputs[0], inputs[0]]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        return [rng.randbytes(self.pad_to_block(total_bytes))]

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("replicate-stream")
        a.label("loop")
        a.sload("t0", 0, 4)
        a.sstore("t0", 0, 4)
        a.sstore("t0", 1, 4)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("replicate-memory")
        a.mv("s1", "a2")
        a.add("s2", "a2", "a1")  # second replica region
        a.add("t2", "a0", "a1")
        a.beq("a0", "t2", "done")
        a.label("loop")
        a.lw("t0", "a0", 0)
        a.sw("t0", "s1", 0)
        a.sw("t0", "s2", 0)
        a.addi("a0", "a0", 4)
        a.addi("s1", "s1", 4)
        a.addi("s2", "s2", 4)
        a.bltu("a0", "t2", "loop")
        a.label("done")
        a.slli("a0", "a1", 1)
        a.halt()
        return a.build()


class DedupKernel(Kernel):
    """Emit the stream index (u32) of every duplicate 64-byte block."""

    name = "dedup"
    num_inputs = 1
    num_outputs = 1
    block_bytes = DEDUP_BLOCK
    state_bytes = 4 * DEDUP_TABLE_ENTRIES + 8  # table + block counter

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        table = [0] * DEDUP_TABLE_ENTRIES
        out = bytearray()
        data = inputs[0]
        for index in range(len(data) // DEDUP_BLOCK):
            fp = dedup_fingerprint(data[index * DEDUP_BLOCK : (index + 1) * DEDUP_BLOCK])
            slot = fp % DEDUP_TABLE_ENTRIES
            if table[slot] == fp:
                out += index.to_bytes(4, "little")
            else:
                table[slot] = fp
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        # ~25% duplicate blocks, drawn from a small pool.
        rng = random.Random(seed)
        pool = [rng.randbytes(DEDUP_BLOCK) for _ in range(8)]
        blocks = []
        for _ in range(max(1, self.pad_to_block(total_bytes) // DEDUP_BLOCK)):
            if rng.random() < 0.25:
                blocks.append(rng.choice(pool))
            else:
                blocks.append(rng.randbytes(DEDUP_BLOCK))
        return [b"".join(blocks)]

    def _emit_fingerprint(self, a: Asm, load_word) -> None:
        """FNV-1a of one block into s1 (s8 = prime constant)."""
        a.li("s1", _FNV_BASIS)
        for i in range(DEDUP_BLOCK // 4):
            load_word(i)
            a.xor("s1", "s1", "t0")
            a.mul("s1", "s1", "s8")
        # h or 1
        a.bnez("s1", f"fp_ok_{self._label_seq}")
        a.li("s1", 1)
        a.label(f"fp_ok_{self._label_seq}")
        self._label_seq += 1

    def _emit_table_probe(self, a: Asm, emit_dup, loop: str) -> None:
        """Probe slot fp % 1024; duplicate -> emit, else install."""
        a.andi("t1", "s1", DEDUP_TABLE_ENTRIES - 1)
        a.slli("t1", "t1", 2)
        a.add("t1", "t1", "t6")  # t6 = table base
        a.lw("t2", "t1", 0)
        a.beq("t2", "s1", f"dup_{self._label_seq}")
        a.sw("s1", "t1", 0)
        a.addi("s2", "s2", 1)  # block counter
        a.j(loop)
        a.label(f"dup_{self._label_seq}")
        emit_dup()
        a.addi("s2", "s2", 1)
        a.j(loop)
        self._label_seq += 1

    def _build_stream_program(self, state_base: int) -> Program:
        self._label_seq = 0
        a = Asm("dedup-stream")
        a.li("t6", state_base)
        a.li("s8", _FNV_PRIME)
        a.li("s2", 0)
        a.label("loop")
        self._emit_fingerprint(a, lambda i: a.sload("t0", 0, 4))
        self._emit_table_probe(a, lambda: a.sstore("s2", 0, 4), "loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        self._label_seq = 0
        a = Asm("dedup-memory")
        a.li("t6", state_base)
        a.li("s8", _FNV_PRIME)
        a.li("t5", state_base + 4 * DEDUP_TABLE_ENTRIES)  # counter slot
        a.lw("s2", "t5", 0)  # block counter persists across chunks
        a.mv("s3", "a2")
        a.add("s0", "a0", "a1")
        a.label("loop_top")
        a.bgeu("a0", "s0", "done")
        self._emit_fingerprint(a, lambda i: a.lw("t0", "a0", 4 * i))
        a.addi("a0", "a0", DEDUP_BLOCK)

        def emit_dup():
            a.sw("s2", "s3", 0)
            a.addi("s3", "s3", 4)

        self._emit_table_probe(a, emit_dup, "loop_top")
        a.label("done")
        a.sw("s2", "t5", 0)
        a.sub("a0", "s3", "a2")
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.fill(state_base, self.state_bytes, 0)


class RLECompressKernel(Kernel):
    """Run-length encoding: emit (count u8, value u8) pairs."""

    name = "compress"
    num_inputs = 1
    num_outputs = 1
    block_bytes = 1
    state_bytes = 8  # current run value + length (persists across chunks)

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        data = inputs[0]
        out = bytearray()
        if not data:
            return [b""]
        run_value = data[0]
        run_len = 1
        for byte in data[1:]:
            if byte == run_value and run_len < 255:
                run_len += 1
            else:
                out += bytes([run_len, run_value])
                run_value, run_len = byte, 1
        out += bytes([run_len, run_value])
        return [bytes(out)]

    @staticmethod
    def decompress(encoded: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(encoded), 2):
            out += bytes([encoded[i + 1]]) * encoded[i]
        return bytes(out)

    def finalize_outputs(self, outputs: List[bytes], final_state: bytes) -> List[bytes]:
        """Flush the in-progress run left in the scratchpad at EOS."""
        value = int.from_bytes(final_state[0:4], "little")
        length = int.from_bytes(final_state[4:8], "little")
        if length == 0:
            return outputs
        return [outputs[0] + bytes([length, value])] + list(outputs[1:])

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        # Runs of length 1..32 — compressible but not degenerate.
        rng = random.Random(seed)
        out = bytearray()
        n = self.pad_to_block(total_bytes)
        while len(out) < n:
            out += bytes([rng.randrange(256)]) * rng.randint(1, 32)
        return [bytes(out[:n])]

    def _emit_run_machine(self, a: Asm, get_byte, emit_pair, loop: str) -> None:
        """s1 = run value, s2 = run length (0 means no run yet)."""
        get_byte()  # byte into t0
        a.beqz("s2", "start_run")
        a.bne("t0", "s1", "flush")
        a.li("t1", 255)
        a.bgeu("s2", "t1", "flush")
        a.addi("s2", "s2", 1)
        a.j(loop)
        a.label("flush")
        emit_pair()
        a.label("start_run")
        a.mv("s1", "t0")
        a.li("s2", 1)
        a.j(loop)

    def _build_stream_program(self, state_base: int) -> Program:
        # The loop ends whenever StreamLoad finds the input exhausted, so the
        # in-progress run is persisted to the scratchpad every iteration; the
        # firmware (or a test) flushes the final (length, value) pair from
        # the function state after EOS.
        a = Asm("compress-stream")
        a.li("t6", state_base)
        a.li("s1", 0)
        a.li("s2", 0)
        a.label("top")
        a.sw("s1", "t6", 0)
        a.sw("s2", "t6", 4)
        a.label("loop")

        def emit_pair():
            a.sstore("s2", 0, 1)
            a.sstore("s1", 0, 1)

        self._emit_run_machine(a, lambda: a.sload("t0", 0, 1), emit_pair, "top")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("compress-memory")
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)  # run value persists across chunks
        a.lw("s2", "t6", 4)  # run length persists across chunks
        a.mv("s3", "a2")
        a.add("s0", "a0", "a1")
        a.label("loop")
        a.bgeu("a0", "s0", "done")

        def get_byte():
            a.lbu("t0", "a0", 0)
            a.addi("a0", "a0", 1)

        def emit_pair():
            a.sb("s2", "s3", 0)
            a.sb("s1", "s3", 1)
            a.addi("s3", "s3", 2)

        self._emit_run_machine(a, get_byte, emit_pair, "loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.sw("s2", "t6", 4)
        a.sub("a0", "s3", "a2")
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.store_u32(state_base, 0)
        mem.store_u32(state_base + 4, 0)


class RLEDecompressKernel(Kernel):
    """Run-length decoding: expand (count u8, value u8) pairs.

    The "Decompress" family of Table II: streaming input, bounded history
    (none at all for RLE), output-expanding. Chunked memory-form execution
    must survive a pair split across a chunk boundary, which exercises the
    state-persistence path (pending count in the scratchpad).
    """

    name = "decompress"
    num_inputs = 1
    num_outputs = 1
    block_bytes = 2  # one (count, value) pair
    state_bytes = 8  # pending count + have-count flag (memory form)

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        return [RLECompressKernel.decompress(inputs[0])]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        # Encode representative runs so the input is valid RLE.
        source = RLECompressKernel().make_inputs(total_bytes * 4, seed)[0]
        encoded = RLECompressKernel().reference([source])[0]
        n = self.pad_to_block(min(len(encoded), max(self.block_bytes, total_bytes)))
        return [encoded[:n]]

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("decompress-stream")
        a.label("loop")
        a.sload("t0", 0, 1)  # count (EOS ends the program here)
        a.sload("t1", 0, 1)  # value
        a.label("emit")
        a.beqz("t0", "loop")
        a.sstore("t1", 0, 1)
        a.addi("t0", "t0", -1)
        a.j("emit")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("decompress-memory")
        a.li("t6", state_base)
        a.lw("t0", "t6", 0)  # pending count
        a.lw("t2", "t6", 4)  # have-count flag
        a.mv("s3", "a2")
        a.add("s0", "a0", "a1")
        a.bnez("t2", "have_count")
        a.label("loop")
        a.bgeu("a0", "s0", "done_nopending")
        a.lbu("t0", "a0", 0)
        a.addi("a0", "a0", 1)
        a.label("have_count")
        a.bgeu("a0", "s0", "done_pending")
        a.lbu("t1", "a0", 0)
        a.addi("a0", "a0", 1)
        a.label("emit")
        a.beqz("t0", "loop")
        a.sb("t1", "s3", 0)
        a.addi("s3", "s3", 1)
        a.addi("t0", "t0", -1)
        a.j("emit")
        a.label("done_pending")
        a.sw("t0", "t6", 0)
        a.li("t2", 1)
        a.sw("t2", "t6", 4)
        a.j("finish")
        a.label("done_nopending")
        a.sw("zero", "t6", 0)
        a.sw("zero", "t6", 4)
        a.label("finish")
        a.sub("a0", "s3", "a2")
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.store_u32(state_base, 0)
        mem.store_u32(state_base + 4, 0)


class StatsSummaryKernel(Kernel):
    """count/sum/min/max of a u32 column; all state in the scratchpad."""

    name = "stats_summary"
    num_inputs = 1
    num_outputs = 0
    block_bytes = 4
    state_bytes = 16  # count, sum, min, max

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        values = [
            int.from_bytes(inputs[0][i : i + 4], "little")
            for i in range(0, len(inputs[0]), 4)
        ]
        count = len(values)
        total = sum(values) & 0xFFFFFFFF
        lo = min(values) if values else 0xFFFFFFFF
        hi = max(values) if values else 0
        self._expected_state = b"".join(
            v.to_bytes(4, "little") for v in (count, total, lo, hi)
        )
        return []

    def reference_state(self, inputs: List[bytes]) -> bytes:
        self.reference(inputs)
        return self._expected_state

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        return [rng.randbytes(self.pad_to_block(total_bytes))]

    def _emit_update(self, a: Asm) -> None:
        """Update (s2=count, s3=sum, s4=min, s5=max) with t0."""
        a.addi("s2", "s2", 1)
        a.add("s3", "s3", "t0")
        a.bgeu("t0", "s4", "skip_min")
        a.mv("s4", "t0")
        a.label("skip_min")
        a.bgeu("s5", "t0", "skip_max")
        a.mv("s5", "t0")
        a.label("skip_max")

    def _load_state(self, a: Asm) -> None:
        a.lw("s2", "t6", 0)
        a.lw("s3", "t6", 4)
        a.lw("s4", "t6", 8)
        a.lw("s5", "t6", 12)

    def _store_state(self, a: Asm) -> None:
        a.sw("s2", "t6", 0)
        a.sw("s3", "t6", 4)
        a.sw("s4", "t6", 8)
        a.sw("s5", "t6", 12)

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("stats-stream")
        a.li("t6", state_base)
        self._load_state(a)
        a.label("loop")
        a.sload("t0", 0, 4)
        self._emit_update(a)
        self._store_state(a)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("stats-memory")
        a.li("t6", state_base)
        self._load_state(a)
        a.add("t2", "a0", "a1")
        a.label("loop")
        a.bgeu("a0", "t2", "done")
        a.lw("t0", "a0", 0)
        a.addi("a0", "a0", 4)
        self._emit_update(a)
        a.j("loop")
        a.label("done")
        self._store_state(a)
        a.li("a0", 0)
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.store_u32(state_base, 0)
        mem.store_u32(state_base + 4, 0)
        mem.store_u32(state_base + 8, 0xFFFFFFFF)
        mem.store_u32(state_base + 12, 0)
