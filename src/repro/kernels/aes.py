"""AES-128 reference implementation (FIPS-197) and T-tables.

The AES kernel encrypts storage data in ECB fashion, 16-byte block by
16-byte block — the classic compute-intensive end of the paper's standalone
function spectrum (Figure 13). This module provides:

* a from-scratch pure-Python AES-128 (S-box, key expansion, rounds),
  validated against FIPS-197 known-answer vectors in the tests, and
* the four encryption T-tables the ISA program keeps in the scratchpad
  (Table II: "Keys & GF table" as function state).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import KernelError


def _xtime(a: int) -> int:
    a <<= 1
    return (a ^ 0x11B) & 0xFF if a & 0x100 else a


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    # Multiplicative inverse via brute force (domain is only 256 wide),
    # then the affine transform.
    inv = [0] * 256
    for a in range(1, 256):
        for b in range(1, 256):
            if _gmul(a, b) == 1:
                inv[a] = b
                break
    sbox = [0] * 256
    for a in range(256):
        x = inv[a]
        y = x
        for _ in range(4):
            y = ((y << 1) | (y >> 7)) & 0xFF
            x ^= y
        sbox[a] = x ^ 0x63
    inv_sbox = [0] * 256
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of four 32-bit words each.

    Words are kept in big-endian byte order (w = b0<<24|b1<<16|b2<<8|b3),
    matching FIPS-197 notation.
    """
    if len(key) != 16:
        raise KernelError("AES-128 key must be 16 bytes")
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
            temp ^= RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return [words[4 * r : 4 * r + 4] for r in range(11)]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _shift_rows(state: List[int]) -> None:
    # state is column-major: state[4*c + r].
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _mix_columns(state: List[int]) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
        state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for c in range(4):
        word = round_key[c]
        state[4 * c + 0] ^= (word >> 24) & 0xFF
        state[4 * c + 1] ^= (word >> 16) & 0xFF
        state[4 * c + 2] ^= (word >> 8) & 0xFF
        state[4 * c + 3] ^= word & 0xFF


def encrypt_block(block: bytes, round_keys: List[List[int]]) -> bytes:
    """Encrypt one 16-byte block with pre-expanded round keys."""
    if len(block) != 16:
        raise KernelError("AES block must be 16 bytes")
    state = list(block)
    _add_round_key(state, round_keys[0])
    for r in range(1, 10):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[r])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


def encrypt_ecb(data: bytes, key: bytes) -> bytes:
    """ECB-encrypt ``data`` (length must be a multiple of 16)."""
    if len(data) % 16:
        raise KernelError("AES input must be a multiple of 16 bytes")
    round_keys = expand_key(key)
    out = bytearray()
    for i in range(0, len(data), 16):
        out.extend(encrypt_block(data[i : i + 16], round_keys))
    return bytes(out)


def build_t_tables() -> List[List[int]]:
    """The four 256-entry encryption T-tables (32-bit entries).

    T0[x] packs (2*S[x], S[x], S[x], 3*S[x]) so that a full round collapses
    into four table lookups and xors per output word; T1..T3 are byte
    rotations of T0. The ISA kernel stores these 4 KiB in the scratchpad.
    """
    t0 = []
    for x in range(256):
        s = SBOX[x]
        t0.append(
            ((_gmul(s, 2) << 24) | (s << 16) | (s << 8) | _gmul(s, 3)) & 0xFFFFFFFF
        )
    tables = [t0]
    for rot in range(1, 4):
        tables.append([((v >> (8 * rot)) | (v << (32 - 8 * rot))) & 0xFFFFFFFF for v in t0])
    return tables


T_TABLES = build_t_tables()
