"""GF(2^8) arithmetic over the RAID-6 polynomial x^8+x^4+x^3+x^2+1 (0x11D).

Used by the RAID6 erasure-coding kernel (Table II: "Galois Field table" as
function state) and its recovery tests. Includes the SWAR trick the kernel's
ISA program uses to multiply all four bytes of a 32-bit word by ``x`` (i.e.
by 2) at once, which is how scalar cores vectorise the Q-parity Horner loop.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import KernelError

POLY = 0x11D  # RAID-6 generator polynomial (with the x^8 term)
_REDUCE = POLY & 0xFF  # 0x1D


def _build_tables() -> Tuple[List[int], List[int]]:
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


GF_EXP, GF_LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8)."""
    if not (0 <= a < 256 and 0 <= b < 256):
        raise KernelError("GF(256) operands must be bytes")
    if a == 0 or b == 0:
        return 0
    return GF_EXP[GF_LOG[a] + GF_LOG[b]]


def gf_pow(a: int, n: int) -> int:
    """a**n in GF(2^8)."""
    if a == 0:
        return 0 if n else 1
    return GF_EXP[(GF_LOG[a] * n) % 255]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise KernelError("zero has no inverse in GF(256)")
    return GF_EXP[255 - GF_LOG[a]]


def gf_div(a: int, b: int) -> int:
    return gf_mul(a, gf_inv(b))


def gf_mul2_word(word: int) -> int:
    """SWAR: multiply each byte of a 32-bit word by 2 in GF(2^8).

    ``(hi >> 7) * 0x1D`` expands each high bit into the reduction constant
    without cross-byte carries (0x01 * 0x1D = 0x1D fits in a byte), which is
    exactly the 6-instruction sequence the RAID6 ISA kernel emits.
    """
    word &= 0xFFFFFFFF
    hi = word & 0x80808080
    shifted = (word << 1) & 0xFEFEFEFE
    mask = ((hi >> 7) * _REDUCE) & 0xFFFFFFFF
    return shifted ^ mask


def raid6_pq(stripes: Sequence[bytes]) -> Tuple[bytes, bytes]:
    """Compute RAID-6 P (XOR) and Q (GF Horner) parity for equal stripes."""
    if not stripes:
        raise KernelError("RAID-6 needs at least one data stripe")
    length = len(stripes[0])
    if any(len(s) != length for s in stripes):
        raise KernelError("all stripes must have equal length")
    p = bytearray(length)
    q = bytearray(length)
    for stripe in stripes:  # P = D0 ^ D1 ^ ... (order-independent)
        for i, byte in enumerate(stripe):
            p[i] ^= byte
    # Q = ((D_{k-1} * g + D_{k-2}) * g + ...) evaluated with g = 2 (Horner).
    for i in range(length):
        acc = 0
        for stripe in reversed(stripes):
            acc = gf_mul(acc, 2) ^ stripe[i]
        q[i] = acc
    return bytes(p), bytes(q)


def raid6_recover_two_data(
    stripes: Sequence[bytes], p: bytes, q: bytes, missing: Tuple[int, int]
) -> Tuple[bytes, bytes]:
    """Recover two lost data stripes from P and Q (standard RAID-6 algebra).

    ``stripes`` holds the surviving stripes with ``b""`` placeholders at the
    two ``missing`` indices.
    """
    x, y = missing
    if x == y:
        raise KernelError("missing indices must differ")
    if x > y:
        x, y = y, x
    length = len(p)
    # Pxy / Qxy: parities of the surviving stripes only.
    pxy = bytearray(length)
    qxy = bytearray(length)
    for i in range(length):
        acc_q = 0
        for idx in reversed(range(len(stripes))):
            data = stripes[idx]
            byte = data[i] if data else 0
            acc_q = gf_mul(acc_q, 2) ^ byte
            if data:
                pxy[i] ^= byte
        qxy[i] = acc_q
    gx, gy = gf_pow(2, x), gf_pow(2, y)
    dx = bytearray(length)
    dy = bytearray(length)
    denom = gx ^ gy
    for i in range(length):
        p_delta = p[i] ^ pxy[i]
        q_delta = q[i] ^ qxy[i]
        # Solve: dx + dy = p_delta ; gx*dx + gy*dy = q_delta
        dx_val = gf_div(gf_mul(gy, p_delta) ^ q_delta, denom)
        dx[i] = dx_val
        dy[i] = p_delta ^ dx_val
    return bytes(dx), bytes(dy)
