"""Parse kernel: ASCII delimited text to binary u32 fields.

The compute-heavy head of the PSF pipeline ("PSF, bottlenecked by the Parse
function" — Section VI-C): a byte-at-a-time state machine that accumulates
decimal digits and emits a little-endian u32 at each delimiter (``|`` or
``\\n``). Function state is the digit accumulator, persisted to the
scratchpad across chunk invocations in the memory form.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.mem.memory import FlatMemory


def parse_reference(text: bytes) -> bytes:
    """Emit a u32 per delimiter byte (exactly the state-machine semantics)."""
    out = bytearray()
    acc = 0
    for byte in text:
        digit = byte - 0x30
        if 0 <= digit <= 9:
            acc = (acc * 10 + digit) & 0xFFFFFFFF
        else:
            out += acc.to_bytes(4, "little")
            acc = 0
    return bytes(out)


def make_rows(total_bytes: int, fields: int = 8, seed: int = 1) -> bytes:
    """Generate '|'-delimited numeric rows ending in newlines."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < total_bytes:
        row = "|".join(str(rng.randint(0, 9_999_999)) for _ in range(fields))
        out += row.encode("ascii") + b"\n"
    return bytes(out)


class ParseKernel(Kernel):
    """Decimal-field parser; output stream carries one u32 per field."""

    name = "parse"
    num_inputs = 1
    num_outputs = 1
    block_bytes = 1
    state_bytes = 4  # the digit accumulator
    udp_isa_factor = 0.80  # UDP's multiway dispatch shines on state machines

    def __init__(self, fields_per_row: int = 8) -> None:
        self.fields_per_row = fields_per_row
        super().__init__()

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        return [parse_reference(inputs[0])]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        return [make_rows(total_bytes, self.fields_per_row, seed)]

    def _emit_byte_machine(self, a: Asm, get_byte, loop: str, delim: str) -> None:
        """Digit path falls through; delimiter path jumps to ``delim``."""
        get_byte()  # byte into t0
        a.addi("t1", "t0", -0x30)
        a.bgeu("t1", "t3", delim)  # t3 holds the constant 10
        a.slli("t2", "s1", 3)  # acc*10 = acc*8 + acc*2
        a.slli("s1", "s1", 1)
        a.add("s1", "s1", "t2")
        a.add("s1", "s1", "t1")
        a.j(loop)

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("parse-stream")
        a.li("t3", 10)
        a.li("s1", 0)
        a.label("loop")
        self._emit_byte_machine(a, lambda: a.sload("t0", 0, 1), "loop", "delim")
        a.label("delim")
        a.sstore("s1", 0, 4)
        a.li("s1", 0)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("parse-memory")
        a.li("t3", 10)
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)  # accumulator persists across chunks
        a.mv("s2", "a2")  # output pointer
        a.add("s0", "a0", "a1")  # end
        a.label("loop")
        a.bgeu("a0", "s0", "done")
        a.lbu("t0", "a0", 0)
        a.addi("a0", "a0", 1)
        a.addi("t1", "t0", -0x30)
        a.bgeu("t1", "t3", "delim")
        a.slli("t2", "s1", 3)
        a.slli("s1", "s1", 1)
        a.add("s1", "s1", "t2")
        a.add("s1", "s1", "t1")
        a.j("loop")
        a.label("delim")
        a.sw("s1", "s2", 0)
        a.addi("s2", "s2", 4)
        a.li("s1", 0)
        a.j("loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.sub("a0", "s2", "a2")
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.store_u32(state_base, 0)
