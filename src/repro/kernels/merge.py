"""K-way sorted-merge kernel for LSM compaction offload (``repro.zns``).

Merges ``k`` sorted runs of fixed 32-byte records (the
:mod:`repro.kernels.tuples` layout, keyed on the leading u32 word) into one
sorted output stream — the inner loop of an LSM compaction. This is the
device side of the ZNS compaction-offload data path: victim runs stream out
of their zones into the core, the merged run streams back to a fresh zone,
and nothing crosses the host link.

Algorithm (identical in the reference, stream form, and memory form, so all
three are bit-exact): buffer the head record of every run, repeatedly emit
the buffered minimum (ties to the lowest stream index) and refill from that
run; stop the first time a refill finds its run exhausted. Runs therefore
follow two conventions, both honoured by :meth:`MergeKernel.make_inputs`
and the ZNS compaction planner:

* equal length (compaction pads victim runs to the longest), and
* each run ends with at least one all-``0xFF`` *sentinel* record
  (``SENTINEL_RECORD``), so every real record is emitted before the first
  exhausted refill can stop the merge. Consumers strip trailing sentinels
  (:func:`strip_sentinels`).

The stream form is where the ISA earns its keep: ``k`` destructive
``sload`` streams replace ``k`` live pointers + bounds registers, and the
only function state is one 32-byte buffered record per run (scratchpad,
Table II style).
"""

from __future__ import annotations

import random
import struct
from typing import List

from repro.errors import KernelError
from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.tuples import PAYLOAD_BYTES, TUPLE_BYTES

#: Largest u32: no real record may use it as a key.
SENTINEL_KEY = 0xFFFFFFFF
SENTINEL_RECORD = b"\xff" * TUPLE_BYTES
_WORDS = TUPLE_BYTES // 4


def record_key(record: bytes) -> int:
    """The sort key: the record's leading little-endian u32."""
    return struct.unpack_from("<I", record)[0]


def strip_sentinels(data: bytes) -> bytes:
    """Drop trailing sentinel records from a merged output stream."""
    end = len(data)
    while end >= TUPLE_BYTES and data[end - TUPLE_BYTES : end] == SENTINEL_RECORD:
        end -= TUPLE_BYTES
    return data[:end]


class MergeKernel(Kernel):
    """K-way merge of sorted 32-byte-record runs, keyed on the leading u32."""

    name = "merge"
    num_outputs = 1
    block_bytes = TUPLE_BYTES

    def __init__(self, k: int = 4) -> None:
        if not 2 <= k <= 4:
            raise KernelError("merge supports 2..4 input runs")
        self.k = k
        self.num_inputs = k
        #: One buffered record per run, scratchpad-resident.
        self.state_bytes = k * TUPLE_BYTES
        super().__init__()

    # -- functional ground truth ---------------------------------------------------

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        length = len(inputs[0])
        if any(len(d) != length for d in inputs):
            raise KernelError("merge runs must be equal length")
        if length == 0:
            return [b""]
        runs = [
            [data[o : o + TUPLE_BYTES] for o in range(0, len(data), TUPLE_BYTES)]
            for data in inputs
        ]
        buffered = [run[0] for run in runs]
        nxt = [1] * self.k
        out = bytearray()
        while True:
            champ = 0
            for i in range(1, self.k):
                if record_key(buffered[i]) < record_key(buffered[champ]):
                    champ = i
            out += buffered[champ]
            if nxt[champ] == len(runs[champ]):
                break  # first exhausted refill ends the merge
            buffered[champ] = runs[champ][nxt[champ]]
            nxt[champ] += 1
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        per = self.pad_to_block(max(2 * self.block_bytes, total_bytes // self.k))
        records = per // TUPLE_BYTES
        runs: List[bytes] = []
        for _ in range(self.k):
            keys = sorted(rng.randrange(SENTINEL_KEY) for _ in range(records - 1))
            run = bytearray()
            for key in keys:
                run += struct.pack("<I", key)
                run += rng.randbytes(TUPLE_BYTES - 4 - PAYLOAD_BYTES)
                run += rng.randbytes(PAYLOAD_BYTES)
            run += SENTINEL_RECORD
            runs.append(bytes(run))
        return runs

    # -- shared codegen ------------------------------------------------------------

    def _emit_selection(self, a: Asm, keys: List[str]) -> None:
        """Champion chain: branch to ``emit_<argmin>`` (ties: lowest index)."""
        for i in range(1, self.k + 1):
            for champ in range(i):
                a.label(f"sel_{champ}_{i}")
                if i == self.k:
                    a.j(f"emit_{champ}")
                else:
                    a.bltu(keys[i], keys[champ], f"sel_{i}_{i + 1}")
                    a.j(f"sel_{champ}_{i + 1}")

    # -- programs --------------------------------------------------------------------

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("merge-stream")
        keys = [f"s{2 + s}" for s in range(self.k)]  # s2..s5
        a.li("t6", state_base)
        for s in range(self.k):  # prime one buffered record per run
            a.sload("t0", s, 4)
            a.mv(keys[s], "t0")
            a.sw("t0", "t6", s * TUPLE_BYTES)
            for w in range(1, _WORDS):
                a.sload("t0", s, 4)
                a.sw("t0", "t6", s * TUPLE_BYTES + 4 * w)
        a.label("loop")
        self._emit_selection(a, keys)
        for s in range(self.k):
            a.label(f"emit_{s}")
            for w in range(_WORDS):  # emit the buffered minimum
                a.lw("t0", "t6", s * TUPLE_BYTES + 4 * w)
                a.sstore("t0", 0, 4)
            # Refill from the winning run; EOS here finishes the program.
            a.sload("t0", s, 4)
            a.mv(keys[s], "t0")
            a.sw("t0", "t6", s * TUPLE_BYTES)
            for w in range(1, _WORDS):
                a.sload("t0", s, 4)
                a.sw("t0", "t6", s * TUPLE_BYTES + 4 * w)
            a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        # Memory-form caveat (like raid6): the merge is per staged chunk, so
        # functional equivalence with the reference holds when the runs fit
        # one chunk — the tests and the compaction planner size them so.
        a = Asm("merge-memory")
        ptrs = [f"s{2 + s}" for s in range(self.k)]  # s2..s5
        ends = [f"s{6 + s}" for s in range(self.k)]  # s6..s9
        keys = [f"a{4 + s}" for s in range(self.k)]  # a4..a7
        out_ptr = "s0"
        a.mv(ptrs[0], "a0")
        for s in range(1, self.k):
            a.add(ptrs[s], ptrs[s - 1], "a3")
        for s in range(self.k):
            a.add(ends[s], ptrs[s], "a1")
        a.mv(out_ptr, "a2")
        a.beq(ptrs[0], ends[0], "done")  # empty chunk
        a.label("loop")
        for s in range(self.k):  # peek the head key of every run
            a.lw(keys[s], ptrs[s], 0)
        self._emit_selection(a, keys)
        for s in range(self.k):
            a.label(f"emit_{s}")
            for w in range(_WORDS):
                a.lw("t0", ptrs[s], 4 * w)
                a.sw("t0", out_ptr, 4 * w)
            a.addi(ptrs[s], ptrs[s], TUPLE_BYTES)
            a.addi(out_ptr, out_ptr, TUPLE_BYTES)
            a.bltu(ptrs[s], ends[s], "loop")
            a.j("done")  # this run exhausted: stop, like the stream form
        a.label("done")
        a.sub("a0", out_ptr, "a2")
        a.halt()
        return a.build()
