"""Offloaded computational-storage kernels (paper Table II / Section VI).

Every kernel provides three synchronised implementations:

* a **Python reference** (used as ground truth in tests),
* a **stream program** written against the stream ISA (``StreamLoad`` /
  ``StreamStore``) for the ``AssasinSb``/``AssasinSb$`` engines,
* a **memory program** written with explicit pointers and bounds checks for
  the DRAM/scratchpad engines (``Baseline``/``Prefetch``/``UDP``/
  ``AssasinSp``) — the pointer-management overhead the stream ISA removes
  is therefore structural, not a fudge factor.
"""

from repro.kernels.api import Kernel, STATE_SIZE_LIMIT
from repro.kernels.pricing import KernelPricingCache, PRICING_CACHE, use_pricing_cache
from repro.kernels.registry import KERNEL_NAMES, get_kernel

__all__ = [
    "Kernel",
    "KernelPricingCache",
    "PRICING_CACHE",
    "STATE_SIZE_LIMIT",
    "KERNEL_NAMES",
    "get_kernel",
    "use_pricing_cache",
]
