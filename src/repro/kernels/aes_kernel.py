"""AES-128 encryption kernel: the compute-intensive end of Figure 13.

The ISA program is a T-table implementation operating on little-endian
state words (tables are derived for the LE convention, so no byte swaps are
needed on the stream path). Function state: four 1 KiB lookup tables, the
expanded round keys, and the S-box for the final round — all scratchpad
resident, ~4.5 KiB (well inside the 64 KiB budget).

Being ~60 cycles/byte, AES is compute-bound on every configuration: the
paper's observation that ASSASIN's benefit fades as ops/byte grows
(Section VI-B) emerges directly.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.aes import SBOX, _gmul, encrypt_ecb, expand_key
from repro.kernels.api import Kernel
from repro.mem.memory import FlatMemory

# State layout (offsets from state_base).
_LT_OFF = 0  # 4 tables x 1024 B
_RK_OFF = 4096  # 11 round keys x 16 B, little-endian words
_SBOX_OFF = 4272  # 256 B
_STATE_BYTES = 4528

_DEFAULT_KEY = bytes(range(16))

# MixColumns coefficients contributed by the row-r input byte.
_MC_COLS = [(2, 1, 1, 3), (3, 2, 1, 1), (1, 3, 2, 1), (1, 1, 3, 2)]


def build_le_t_tables() -> List[List[int]]:
    """T-tables for little-endian packed state columns.

    With state word w_c = b0 | b1<<8 | b2<<16 | b3<<24 (row r in byte lane
    r), a full round is: new_c = LT0[lane0(w_c)] ^ LT1[lane1(w_{c+1})] ^
    LT2[lane2(w_{c+2})] ^ LT3[lane3(w_{c+3})] ^ rk_c.
    """
    tables: List[List[int]] = []
    for r in range(4):
        coeffs = _MC_COLS[r]
        table = []
        for x in range(256):
            s = SBOX[x]
            word = 0
            for row in range(4):
                word |= _gmul(s, coeffs[row]) << (8 * row)
            table.append(word & 0xFFFFFFFF)
        tables.append(table)
    return tables


LE_T_TABLES = build_le_t_tables()


class AESKernel(Kernel):
    """AES-128 ECB encryption of 16-byte blocks."""

    name = "aes"
    num_inputs = 1
    num_outputs = 1
    output_to_flash = True
    block_bytes = 16
    state_bytes = _STATE_BYTES
    udp_isa_factor = 1.0  # UDP's dispatch tricks do not help block ciphers

    def __init__(self, key: bytes = _DEFAULT_KEY) -> None:
        self.key = bytes(key)
        self.round_keys = expand_key(self.key)
        super().__init__()

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        return [encrypt_ecb(inputs[0], self.key)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        return [rng.randbytes(self.pad_to_block(total_bytes))]

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        for t, table in enumerate(LE_T_TABLES):
            for x, word in enumerate(table):
                mem.store_u32(state_base + _LT_OFF + 1024 * t + 4 * x, word)
        for r, rk in enumerate(self.round_keys):
            for c, word_be in enumerate(rk):
                # LE word = byte-swapped FIPS word (b0 in the low lane).
                swapped = int.from_bytes(word_be.to_bytes(4, "big"), "little")
                mem.store_u32(state_base + _RK_OFF + 16 * r + 4 * c, swapped)
        for x, s in enumerate(SBOX):
            mem.store_u8(state_base + _SBOX_OFF + x, s)

    # -- code generation -------------------------------------------------------

    def _emit_block_body(self, a: Asm, load_word, store_word) -> None:
        """Encrypt one block: words arrive via load_word(c, reg)."""
        src = ["s0", "s1", "s2", "s3"]
        dst = ["s4", "s5", "s6", "s7"]
        for c in range(4):
            load_word(c, src[c])
        # Round 0: AddRoundKey.
        for c in range(4):
            a.lw("t0", "a5", 16 * 0 + 4 * c)
            a.xor(src[c], src[c], "t0")
        # Rounds 1..9: T-table rounds, alternating register banks.
        table_base = ["t4", "t5", "t6", "a4"]
        for rnd in range(1, 10):
            s_in, s_out = (src, dst) if rnd % 2 == 1 else (dst, src)
            for c in range(4):
                acc = s_out[c]
                for r in range(4):
                    word = s_in[(c + r) % 4]
                    if r == 0:
                        a.andi("t0", word, 0xFF)
                    elif r == 3:
                        a.srli("t0", word, 24)
                    else:
                        a.srli("t0", word, 8 * r)
                        a.andi("t0", "t0", 0xFF)
                    a.slli("t0", "t0", 2)
                    a.add("t0", "t0", table_base[r])
                    a.lw("t0", "t0", 0)
                    if r == 0:
                        a.mv(acc, "t0")
                    else:
                        a.xor(acc, acc, "t0")
                a.lw("t0", "a5", 16 * rnd + 4 * c)
                a.xor(acc, acc, "t0")
        # After round 9 (odd), state sits in dst; final round -> src bank.
        s_in, s_out = dst, src
        for c in range(4):
            acc = s_out[c]
            for r in range(4):
                word = s_in[(c + r) % 4]
                if r == 0:
                    a.andi("t0", word, 0xFF)
                elif r == 3:
                    a.srli("t0", word, 24)
                else:
                    a.srli("t0", word, 8 * r)
                    a.andi("t0", "t0", 0xFF)
                a.add("t0", "t0", "a6")
                a.lbu("t0", "t0", 0)
                if r:
                    a.slli("t0", "t0", 8 * r)
                    a.or_(acc, acc, "t0")
                else:
                    a.mv(acc, "t0")
            a.lw("t0", "a5", 16 * 10 + 4 * c)
            a.xor(acc, acc, "t0")
        for c in range(4):
            store_word(c, s_out[c])

    def _emit_table_bases(self, a: Asm, state_base: int) -> None:
        a.li("t4", state_base + _LT_OFF)
        a.li("t5", state_base + _LT_OFF + 1024)
        a.li("t6", state_base + _LT_OFF + 2048)
        a.li("a4", state_base + _LT_OFF + 3072)
        a.li("a5", state_base + _RK_OFF)
        a.li("a6", state_base + _SBOX_OFF)

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("aes-stream")
        self._emit_table_bases(a, state_base)
        a.label("loop")
        self._emit_block_body(
            a,
            load_word=lambda c, reg: a.sload(reg, 0, 4),
            store_word=lambda c, reg: a.sstore(reg, 0, 4),
        )
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("aes-memory")
        self._emit_table_bases(a, state_base)
        a.mv("a7", "a2")  # output pointer
        a.add("t3", "a0", "a1")  # end
        a.beq("a0", "t3", "done")
        a.label("loop")
        self._emit_block_body(
            a,
            load_word=lambda c, reg: a.lw(reg, "a0", 4 * c),
            store_word=lambda c, reg: a.sw(reg, "a7", 4 * c),
        )
        a.addi("a0", "a0", 16)
        a.addi("a7", "a7", 16)
        a.bltu("a0", "t3", "loop")
        a.label("done")
        a.sub("a0", "a7", "a2")
        a.halt()
        return a.build()
