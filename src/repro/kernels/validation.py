"""Kernel validation harness: check any kernel's three implementations agree.

Drives a kernel through the stream path (AssasinSb engine), the DRAM-staged
memory path (Baseline engine), and — when the kernel tolerates chunked
staging — the ping-pong path (AssasinSp engine), comparing functional
outputs and final state against the Python reference. Used by tests and by
authors of new kernels (see ``examples/custom_kernel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import assasin_sb_core, assasin_sp_core, baseline_core
from repro.core.core import CoreModel
from repro.isa.analysis import check_structure
from repro.kernels.api import Kernel


@dataclass
class ValidationReport:
    """Outcome of validating one kernel."""

    kernel: str
    checked_paths: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"kernel {self.kernel}: {status} ({', '.join(self.checked_paths)})"]
        lines.extend(f"  problem: {p}" for p in self.problems)
        return "\n".join(lines)


def validate_kernel(
    kernel: Kernel,
    sample_bytes: int = 4096,
    seed: int = 1,
    check_pingpong: bool = True,
) -> ValidationReport:
    """Cross-check the kernel's stream/memory programs against its reference.

    ``check_pingpong`` additionally runs the chunked AssasinSp path; disable
    it for kernels whose output expansion exceeds the staging buffers
    (e.g. decompressors).
    """
    report = ValidationReport(kernel=kernel.name)
    inputs = kernel.make_inputs(sample_bytes, seed)
    try:
        expected_outputs = kernel.reference([bytes(b) for b in inputs])
    except Exception as exc:  # pragma: no cover - authoring-time aid
        report.problems.append(f"reference raised: {exc!r}")
        return report
    expected_state = (
        kernel.reference_state(inputs) if hasattr(kernel, "reference_state") else None
    )

    # Structural lints on both program forms.
    for form, build in (
        ("stream", kernel.build_stream_program),
        ("memory", kernel.build_memory_program),
    ):
        for problem in check_structure(build(0x0100_0000)):
            report.problems.append(f"{form} program: {problem}")

    paths = [("stream/AssasinSb", assasin_sb_core()), ("memory/Baseline", baseline_core())]
    if check_pingpong:
        paths.append(("memory/AssasinSp", assasin_sp_core()))
    for label, core in paths:
        result = CoreModel(core).run(kernel, inputs)
        report.checked_paths.append(label)
        _check_result(report, label, kernel, result, expected_outputs, expected_state)
    return report


def _check_result(report, label, kernel, result, expected_outputs, expected_state) -> None:
    if expected_state is not None and result.final_state != expected_state:
        report.problems.append(f"{label}: final state mismatch")
    if kernel.num_outputs == 0 or expected_state is not None and not expected_outputs:
        return
    outputs = kernel.finalize_outputs(list(result.outputs), result.final_state)
    if label.startswith("stream"):
        for i, expected in enumerate(expected_outputs):
            if i < len(outputs) and outputs[i] != expected:
                report.problems.append(f"{label}: output stream {i} mismatch")
    else:
        # Memory forms concatenate output streams per chunk; only compare
        # directly for single-output kernels (multi-output layouts are
        # kernel-specific — see Raid6Kernel.split_memory_output).
        if kernel.num_outputs == 1 and outputs[0] != expected_outputs[0]:
            report.problems.append(f"{label}: output mismatch")
