"""RAID4 and RAID6 erasure-coding kernels (paper Section VI-B, Figure 13).

RAID4 XORs ``k`` data stripes into one parity stripe. RAID6 additionally
produces the Q parity over GF(2^8) (generator g=2), evaluated Horner-style
with the SWAR multiply-by-2 word trick (see :mod:`repro.kernels.gf256`), so
the only function state is the handful of SWAR constants — matching
Table II's "no states but a Galois field table".

These kernels are where the stream ISA's savings are most structural: the
memory form must maintain ``k+1`` (RAID4) or ``k+2`` (RAID6) live pointers,
the stream form maintains none.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import KernelError
from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.gf256 import raid6_pq

_UNROLL = 4


class Raid4Kernel(Kernel):
    """P parity: XOR of k data streams, word at a time."""

    name = "raid4"
    num_outputs = 1
    output_to_flash = True
    writes_input_through = True
    block_bytes = 4 * _UNROLL

    def __init__(self, k: int = 4) -> None:
        if not 2 <= k <= 6:
            raise KernelError("raid4 supports 2..6 data stripes")
        self.k = k
        self.num_inputs = k
        super().__init__()

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        length = len(inputs[0])
        if any(len(d) != length for d in inputs):
            raise KernelError("raid4 stripes must be equal length")
        parity = bytearray(length)
        for stripe in inputs:
            for i, b in enumerate(stripe):
                parity[i] ^= b
        return [bytes(parity)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        per = self.pad_to_block(max(self.block_bytes, total_bytes // self.k))
        return [rng.randbytes(per) for _ in range(self.k)]

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("raid4-stream")
        a.label("loop")
        for _ in range(_UNROLL):
            a.sload("t0", 0, 4)
            for s in range(1, self.k):
                a.sload("t1", s, 4)
                a.xor("t0", "t0", "t1")
            a.sstore("t0", 0, 4)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("raid4-memory")
        # Pointer per stripe: p_s = a0 + s*a3, plus the output pointer.
        ptrs = [f"s{2 + s}" for s in range(self.k)]  # s2..s{k+1}
        out_ptr = "s1"
        a.mv(ptrs[0], "a0")
        for s in range(1, self.k):
            a.add(ptrs[s], ptrs[s - 1], "a3")
        a.mv(out_ptr, "a2")
        a.add("t2", "a0", "a1")  # end of stripe 0
        a.beq("a0", "t2", "done")
        a.label("loop")
        for u in range(_UNROLL):
            a.lw("t0", ptrs[0], 4 * u)
            for s in range(1, self.k):
                a.lw("t1", ptrs[s], 4 * u)
                a.xor("t0", "t0", "t1")
            a.sw("t0", out_ptr, 4 * u)
        for s in range(self.k):
            a.addi(ptrs[s], ptrs[s], 4 * _UNROLL)
        a.addi(out_ptr, out_ptr, 4 * _UNROLL)
        a.bltu(ptrs[0], "t2", "loop")
        a.label("done")
        a.sub("a0", out_ptr, "a2")  # bytes written
        a.halt()
        return a.build()


class Raid6Kernel(Kernel):
    """P and Q parities; Q via Horner with SWAR GF multiply-by-2."""

    name = "raid6"
    num_outputs = 2
    output_to_flash = True
    writes_input_through = True
    block_bytes = 4  # word-at-a-time (Q Horner chains words)

    def __init__(self, k: int = 4) -> None:
        if not 2 <= k <= 6:
            raise KernelError("raid6 supports 2..6 data stripes")
        self.k = k
        self.num_inputs = k
        super().__init__()

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        p, q = raid6_pq(inputs)
        return [p, q]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        per = self.pad_to_block(max(self.block_bytes, total_bytes // self.k))
        return [rng.randbytes(per) for _ in range(self.k)]

    def _emit_constants(self, a: Asm) -> None:
        a.li("s8", 0x80808080)
        a.li("s9", 0xFEFEFEFE)
        a.li("s10", 0x1D)

    def _emit_mul2(self, a: Asm, reg: str) -> None:
        """reg = gf_mul2_word(reg) — the 5-op SWAR sequence + 3-cycle mul."""
        a.and_("t2", reg, "s8")  # high bits
        a.slli(reg, reg, 1)
        a.and_(reg, reg, "s9")
        a.srli("t2", "t2", 7)
        a.mul("t2", "t2", "s10")  # expand to 0x1D per overflowing byte
        a.xor(reg, reg, "t2")

    def _emit_word(self, a: Asm, load_word, store_p, store_q) -> None:
        """One word of P and Q from the k stripes.

        Loads stripe words into t3..t{3+k-1 capped}, accumulating P in t0 and
        Q (Horner from the highest stripe down) in t1.
        """
        # Load all stripes first (registers a4..a7 + t3.. as scratch).
        regs = ["a4", "a5", "a6", "a7", "t3", "t4"][: self.k]
        for s in range(self.k):
            load_word(s, regs[s])
        # P parity.
        a.mv("t0", regs[0])
        for s in range(1, self.k):
            a.xor("t0", "t0", regs[s])
        store_p()
        # Q parity: acc = D_{k-1}; acc = mul2(acc) ^ D_i for i = k-2..0.
        a.mv("t1", regs[self.k - 1])
        for s in range(self.k - 2, -1, -1):
            self._emit_mul2(a, "t1")
            a.xor("t1", "t1", regs[s])
        store_q()

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("raid6-stream")
        self._emit_constants(a)
        a.label("loop")
        self._emit_word(
            a,
            load_word=lambda s, reg: a.sload(reg, s, 4),
            store_p=lambda: a.sstore("t0", 0, 4),
            store_q=lambda: a.sstore("t1", 1, 4),
        )
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("raid6-memory")
        self._emit_constants(a)
        ptrs = [f"s{2 + s}" for s in range(self.k)]
        a.mv(ptrs[0], "a0")
        for s in range(1, self.k):
            a.add(ptrs[s], ptrs[s - 1], "a3")
        a.mv("s1", "a2")  # P output pointer; Q interleaves after the chunk
        a.add("s0", "a2", "a1")  # Q output region starts after P's
        a.add("t5", "a0", "a1")  # end of stripe 0
        a.beq("a0", "t5", "done")
        a.label("loop")
        self._emit_word(
            a,
            load_word=lambda s, reg: a.lw(reg, ptrs[s], 0),
            store_p=lambda: a.sw("t0", "s1", 0),
            store_q=lambda: a.sw("t1", "s0", 0),
        )
        for s in range(self.k):
            a.addi(ptrs[s], ptrs[s], 4)
        a.addi("s1", "s1", 4)
        a.addi("s0", "s0", 4)
        a.bltu(ptrs[0], "t5", "loop")
        a.label("done")
        a.slli("a0", "a1", 1)  # wrote P then Q: 2 * stripe bytes
        a.halt()
        return a.build()

    def split_memory_output(self, output: bytes, stripe_bytes: int) -> List[bytes]:
        """The memory form lays P then Q per chunk; callers re-split with
        the chunk size actually used. With a single chunk this is [P, Q]."""
        return [output[:stripe_bytes], output[stripe_bytes:]]
