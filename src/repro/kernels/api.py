"""Kernel contract shared by all offloaded functions.

Program ABIs
============

Stream form (``AssasinSb``/``AssasinSb$``): input streams ``0..num_inputs-1``
and output streams ``0..num_outputs-1``; function state lives at the
``state_base`` passed to :meth:`Kernel.build_stream_program`. The program
runs an infinite loop that ends when a ``StreamLoad`` finds its input
exhausted (paper Listing 1).

Memory form (everything else): processes one staged chunk per invocation.

=====  =========================================================
a0     input base; input stream ``i`` starts at ``a0 + i*a3``
a1     bytes per input stream in this chunk
a2     output base
a3     stride between staged input streams
a0     **return** — bytes written at the output base
=====  =========================================================

Kernels may assume chunk sizes and total input sizes are multiples of
:attr:`Kernel.block_bytes` (the firmware pads streams to page boundaries;
generators in :meth:`Kernel.make_inputs` honour it).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.isa.program import Program
from repro.mem.memory import FlatMemory

#: Per-core scratchpad budget for function state (Table IV: 64 KiB).
STATE_SIZE_LIMIT = 64 * 1024


class Kernel(abc.ABC):
    """Base class for offloaded computational-storage functions."""

    #: Kernel registry name; subclasses override.
    name: str = "abstract"
    num_inputs: int = 1
    num_outputs: int = 1
    #: Input must be a multiple of this (firmware pads to it).
    block_bytes: int = 4
    #: Bytes of function state kept in the scratchpad.
    state_bytes: int = 0
    #: Optional override of the UDP ISA cycle factor (see repro.core.udp).
    udp_isa_factor: Optional[float] = None
    #: Write-path kernels store results back to flash (erasure coding,
    #: encryption); read-path kernels return results to the host.
    output_to_flash: bool = False
    #: On the write path, parity-style kernels also write the source data
    #: through to flash (RAID stores data + parity); transforming kernels
    #: (encryption, compression) store only their output.
    writes_input_through: bool = False

    def __init__(self) -> None:
        self._program_cache: Dict[Tuple[str, int], Program] = {}
        if self.state_bytes > STATE_SIZE_LIMIT:
            raise KernelError(
                f"{self.name}: state of {self.state_bytes}B exceeds the "
                f"{STATE_SIZE_LIMIT}B scratchpad budget"
            )

    # -- functional ground truth -------------------------------------------------

    @abc.abstractmethod
    def reference(self, inputs: List[bytes]) -> List[bytes]:
        """Pure-Python reference producing the expected output streams."""

    # -- programs -------------------------------------------------------------------

    @abc.abstractmethod
    def _build_stream_program(self, state_base: int) -> Program:
        ...

    @abc.abstractmethod
    def _build_memory_program(self, state_base: int) -> Program:
        ...

    def build_stream_program(self, state_base: int) -> Program:
        key = ("stream", state_base)
        if key not in self._program_cache:
            self._program_cache[key] = self._build_stream_program(state_base)
        return self._program_cache[key]

    def build_memory_program(self, state_base: int) -> Program:
        key = ("memory", state_base)
        if key not in self._program_cache:
            self._program_cache[key] = self._build_memory_program(state_base)
        return self._program_cache[key]

    # -- state ----------------------------------------------------------------------

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        """Write initial function state (tables, keys, accumulators)."""
        if self.state_bytes:
            mem.fill(state_base, self.state_bytes, 0)

    def read_state(self, mem: FlatMemory, state_base: int) -> bytes:
        return mem.load_bytes(state_base, self.state_bytes) if self.state_bytes else b""

    def finalize_outputs(self, outputs: List[bytes], final_state: bytes) -> List[bytes]:
        """Firmware epilogue: fold trailing function state into the outputs.

        Most kernels return outputs as-is; kernels whose last unit of work
        is still in scratchpad state at end-of-stream (e.g. an RLE run in
        progress) override this — it models the firmware flushing state
        after the core's StreamLoad hangs (paper Listing 1).
        """
        return outputs

    # -- workload generation ----------------------------------------------------------

    @abc.abstractmethod
    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        """Generate representative input streams totalling ~``total_bytes``."""

    def pad_to_block(self, nbytes: int) -> int:
        block = self.block_bytes
        return -(-nbytes // block) * block

    def check_inputs(self, inputs: List[bytes]) -> None:
        if len(inputs) != self.num_inputs:
            raise KernelError(
                f"{self.name} expects {self.num_inputs} input streams, got {len(inputs)}"
            )
        for i, data in enumerate(inputs):
            if len(data) % self.block_bytes:
                raise KernelError(
                    f"{self.name}: input {i} length {len(data)} not a multiple "
                    f"of block size {self.block_bytes}"
                )
