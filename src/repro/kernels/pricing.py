"""Memoized cycles-per-byte pricing for stream kernels.

ASSASIN's streaming kernels are size-linear by construction (DESIGN.md
§2): the core phase prices a kernel by running it once over a
representative window and extrapolating ``cycles_per_byte``.  That sampled
run is a full functional ISA simulation — by far the most expensive single
step of every campaign — and it is **deterministic** per
``(device config, kernel, sample size)``: same config, same generated
inputs, same cycle count.  So one sampled run can price every same-shape
scomp in the process.

:class:`KernelPricingCache` memoizes exactly that triple.  The key embeds
a digest of the *full device config repr*, so any config change (a
different core, cache geometry, flash timing…) misses the cache by
construction — there is no stale-entry hazard to invalidate around, and
:meth:`KernelPricingCache.clear` exists mainly for tests and long-lived
sessions.  The cache is **off by default**; campaigns opt in through
``SimConfig(memoize_pricing=True)`` (or :func:`use_pricing_cache`), and
the differential suite proves cached and uncached campaigns byte-identical.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Dict, Optional, Tuple


class KernelPricingCache:
    """Process-wide memo of sampled kernel runs, keyed by config digest.

    Entries map ``(config_digest, kernel_name, sample_bytes)`` to the
    :class:`~repro.core.core.CoreRunResult` of the sampled run.  Cached
    samples are shared objects and must be treated as immutable — the
    same convention the fleet layer already uses when it samples once on
    device 0 and shares the result across all devices.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str, int], object] = {}
        self._digests: Dict[Tuple[object, object], str] = {}
        self.enabled = False
        self.hits = 0
        self.misses = 0

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all entries and counters (the enabled flag is untouched)."""
        self._entries.clear()
        self._digests.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys -----------------------------------------------------------------

    def config_digest(self, config, pipeline_params=None) -> str:
        """Digest of the device config's full repr plus any pipeline params.

        Frozen dataclass reprs are value-deterministic, so two configs
        with equal fields share a digest and any changed field produces a
        new one — config changes invalidate by construction.  The engine's
        ``PipelineParams`` are folded in the same way: a predictor or
        latency knob change must reprice, even though it lives outside the
        device config.  A value-keyed memo (configs and params are frozen,
        hashable dataclasses) avoids re-hashing on every lookup; the
        former ``id()``-keyed memo could alias a recycled id of a dead
        config to a stale digest.
        """
        key = (config, pipeline_params)
        digest = self._digests.get(key)
        if digest is None:
            digest = hashlib.sha256(
                f"{config!r}|{pipeline_params!r}".encode()
            ).hexdigest()
            self._digests[key] = digest
        return digest

    # -- the memo -------------------------------------------------------------

    def get(self, config, kernel_name: str, sample_bytes: int, pipeline_params=None):
        """The cached sample, or None on miss / when disabled."""
        if not self.enabled:
            return None
        key = (self.config_digest(config, pipeline_params), kernel_name, sample_bytes)
        sample = self._entries.get(key)
        if sample is None:
            self.misses += 1
            return None
        self.hits += 1
        return sample

    def put(
        self, config, kernel_name: str, sample_bytes: int, sample, pipeline_params=None
    ) -> None:
        if not self.enabled:
            return
        key = (self.config_digest(config, pipeline_params), kernel_name, sample_bytes)
        self._entries[key] = sample


#: The process-wide cache consulted by ``ComputationalSSD.sample_kernel``.
PRICING_CACHE = KernelPricingCache()


@contextlib.contextmanager
def use_pricing_cache(clear: bool = True):
    """Context manager: enable the pricing memo for a block.

    Restores the previous enabled state on exit; with ``clear`` (the
    default) the entries are dropped too, so tests never leak samples
    across blocks.
    """
    previous = PRICING_CACHE.enabled
    PRICING_CACHE.enable()
    try:
        yield PRICING_CACHE
    finally:
        PRICING_CACHE.enabled = previous
        if clear:
            PRICING_CACHE.clear()
