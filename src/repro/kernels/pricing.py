"""Memoized cycles-per-byte pricing for stream kernels.

ASSASIN's streaming kernels are size-linear by construction (DESIGN.md
§2): the core phase prices a kernel by running it once over a
representative window and extrapolating ``cycles_per_byte``.  That sampled
run is a full functional ISA simulation — by far the most expensive single
step of every campaign — and it is **deterministic** per
``(device config, kernel, sample size)``: same config, same generated
inputs, same cycle count.  So one sampled run can price every same-shape
scomp in the process.

:class:`KernelPricingCache` memoizes exactly that triple.  The key embeds
a digest of the *full device config repr*, so any config change (a
different core, cache geometry, flash timing…) misses the cache by
construction — there is no stale-entry hazard to invalidate around, and
:meth:`KernelPricingCache.clear` exists mainly for tests and long-lived
sessions.  The cache is **off by default**; campaigns opt in through
``SimConfig(memoize_pricing=True)`` (or :func:`use_pricing_cache`), and
the differential suite proves cached and uncached campaigns byte-identical.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Dict, Optional, Tuple


class KernelPricingCache:
    """Process-wide memo of sampled kernel runs, keyed by config digest.

    Entries map ``(config_digest, kernel_name, sample_bytes)`` to the
    :class:`~repro.core.core.CoreRunResult` of the sampled run.  Cached
    samples are shared objects and must be treated as immutable — the
    same convention the fleet layer already uses when it samples once on
    device 0 and shares the result across all devices.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str, int], object] = {}
        self._digests: Dict[int, Tuple[object, str]] = {}
        self.enabled = False
        self.hits = 0
        self.misses = 0

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all entries and counters (the enabled flag is untouched)."""
        self._entries.clear()
        self._digests.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys -----------------------------------------------------------------

    def config_digest(self, config) -> str:
        """Digest of the device config's full repr.

        Frozen dataclass reprs are value-deterministic, so two configs
        with equal fields share a digest and any changed field produces a
        new one — config changes invalidate by construction.  A small
        ``id()``-keyed memo avoids re-hashing the (large, immutable)
        config object on every lookup; the held reference keeps the id
        from being recycled.
        """
        memo = self._digests.get(id(config))
        if memo is not None and memo[0] is config:
            return memo[1]
        digest = hashlib.sha256(repr(config).encode()).hexdigest()
        self._digests[id(config)] = (config, digest)
        return digest

    # -- the memo -------------------------------------------------------------

    def get(self, config, kernel_name: str, sample_bytes: int):
        """The cached sample, or None on miss / when disabled."""
        if not self.enabled:
            return None
        key = (self.config_digest(config), kernel_name, sample_bytes)
        sample = self._entries.get(key)
        if sample is None:
            self.misses += 1
            return None
        self.hits += 1
        return sample

    def put(self, config, kernel_name: str, sample_bytes: int, sample) -> None:
        if not self.enabled:
            return
        self._entries[(self.config_digest(config), kernel_name, sample_bytes)] = sample


#: The process-wide cache consulted by ``ComputationalSSD.sample_kernel``.
PRICING_CACHE = KernelPricingCache()


@contextlib.contextmanager
def use_pricing_cache(clear: bool = True):
    """Context manager: enable the pricing memo for a block.

    Restores the previous enabled state on exit; with ``clear`` (the
    default) the entries are dropped too, so tests never leak samples
    across blocks.
    """
    previous = PRICING_CACHE.enabled
    PRICING_CACHE.enable()
    try:
        yield PRICING_CACHE
    finally:
        PRICING_CACHE.enabled = previous
        if clear:
            PRICING_CACHE.clear()
