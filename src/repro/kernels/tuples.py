"""Binary tuple layout shared by the database kernels (Filter/Select).

The layout mirrors the hot columns of TPC-H ``lineitem`` serialized "in
binary flatly" (paper Section VI-B): four u32 fields followed by a 16-byte
payload standing in for the remaining columns.

======  ========  =======================================
offset  field     contents
======  ========  =======================================
0       quantity  ``l_quantity`` (1..50)
4       price     ``l_extendedprice`` in cents
8       discount  ``l_discount`` in percent (0..10)
12      shipdate  ``l_shipdate`` as days since 1992-01-01
16      payload   16 bytes standing in for other columns
======  ========  =======================================
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterator, List

TUPLE_BYTES = 32
F_QUANTITY = 0
F_PRICE = 4
F_DISCOUNT = 8
F_SHIPDATE = 12
PAYLOAD_OFF = 16
PAYLOAD_BYTES = 16

SHIPDATE_DAYS = 2556  # seven years of dates, like TPC-H


@dataclass(frozen=True)
class Tuple:
    quantity: int
    price: int
    discount: int
    shipdate: int
    payload: bytes = b"\x00" * PAYLOAD_BYTES

    def pack(self) -> bytes:
        return (
            struct.pack("<IIII", self.quantity, self.price, self.discount, self.shipdate)
            + self.payload
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "Tuple":
        q, p, d, s = struct.unpack_from("<IIII", raw)
        return cls(q, p, d, s, raw[PAYLOAD_OFF:TUPLE_BYTES])


def iter_tuples(data: bytes) -> Iterator[Tuple]:
    for off in range(0, len(data), TUPLE_BYTES):
        yield Tuple.unpack(data[off : off + TUPLE_BYTES])


def random_tuples(n: int, seed: int = 1) -> bytes:
    """Generate ``n`` tuples with TPC-H-like field distributions."""
    rng = random.Random(seed)
    out = bytearray()
    for _ in range(n):
        out += Tuple(
            quantity=rng.randint(1, 50),
            price=rng.randint(90_000, 10_500_000),
            discount=rng.randint(0, 10),
            shipdate=rng.randint(0, SHIPDATE_DAYS - 1),
            payload=rng.randbytes(PAYLOAD_BYTES),
        ).pack()
    return bytes(out)


def tuples_bytes(tuples: List[Tuple]) -> bytes:
    return b"".join(t.pack() for t in tuples)
