"""Kernel registry: name -> factory, with keyword parameters passed through."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import KernelError
from repro.kernels.aes_kernel import AESKernel
from repro.kernels.api import Kernel
from repro.kernels.extensions import (
    DedupKernel,
    ReplicateKernel,
    RLECompressKernel,
    RLEDecompressKernel,
    StatsSummaryKernel,
)
from repro.kernels.filter_ import FilterKernel
from repro.kernels.merge import MergeKernel
from repro.kernels.ml_graph import GraphDegreeKernel, NNInferenceKernel
from repro.kernels.parse import ParseKernel
from repro.kernels.psf import PSFKernel
from repro.kernels.raid import Raid4Kernel, Raid6Kernel
from repro.kernels.scan import ScanKernel
from repro.kernels.select_ import SelectKernel
from repro.kernels.stat import StatKernel

_FACTORIES: Dict[str, Callable[..., Kernel]] = {
    "stat": StatKernel,
    "scan": ScanKernel,
    "raid4": Raid4Kernel,
    "raid6": Raid6Kernel,
    "aes": AESKernel,
    "filter": FilterKernel,
    "select": SelectKernel,
    "parse": ParseKernel,
    "psf": PSFKernel,
    # LSM compaction offload (repro.zns): k-way sorted-run merge.
    "merge": MergeKernel,
    # Table II extensions beyond the paper's evaluated set:
    "replicate": ReplicateKernel,
    "dedup": DedupKernel,
    "compress": RLECompressKernel,
    "decompress": RLEDecompressKernel,
    "stats_summary": StatsSummaryKernel,
    "nn_inference": NNInferenceKernel,
    "graph_degree": GraphDegreeKernel,
}

KERNEL_NAMES: Tuple[str, ...] = tuple(_FACTORIES)


def get_kernel(name: str, **params) -> Kernel:
    """Instantiate a kernel by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KernelError(f"unknown kernel {name!r}; known: {KERNEL_NAMES}") from None
    return factory(**params)


def register_kernel(name: str, factory: Callable[..., Kernel]) -> None:
    """Extension point: register a custom kernel factory."""
    if name in _FACTORIES:
        raise KernelError(f"kernel {name!r} already registered")
    _FACTORIES[name] = factory
    global KERNEL_NAMES
    KERNEL_NAMES = tuple(_FACTORIES)
