"""Select kernel: column projection over fixed-schema tuples.

Projects the quantity, price and shipdate fields (12 of every 32 bytes) —
the data-movement-dominated member of the PSF pipeline. Named ``select``
in the registry.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.tuples import TUPLE_BYTES, iter_tuples, random_tuples


class SelectKernel(Kernel):
    """Project (quantity, price, shipdate) from each 32-byte tuple."""

    name = "select"
    num_inputs = 1
    num_outputs = 1
    block_bytes = TUPLE_BYTES
    udp_isa_factor = 0.95

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        out = bytearray()
        for t in iter_tuples(inputs[0]):
            out += t.quantity.to_bytes(4, "little")
            out += t.price.to_bytes(4, "little")
            out += t.shipdate.to_bytes(4, "little")
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        n = max(1, self.pad_to_block(total_bytes) // TUPLE_BYTES)
        return [random_tuples(n, seed)]

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("select-stream")
        a.label("loop")
        a.sload("t0", 0, 4)  # quantity
        a.sstore("t0", 0, 4)
        a.sload("t0", 0, 4)  # price
        a.sstore("t0", 0, 4)
        a.sload("t0", 0, 4)  # discount (dropped)
        a.sload("t0", 0, 4)  # shipdate
        a.sstore("t0", 0, 4)
        a.sskip(0, 16)  # payload
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("select-memory")
        a.mv("s1", "a2")
        a.add("s0", "a0", "a1")
        a.beq("a0", "s0", "done")
        a.label("loop")
        a.lw("t0", "a0", 0)
        a.sw("t0", "s1", 0)
        a.lw("t0", "a0", 4)
        a.sw("t0", "s1", 4)
        a.lw("t0", "a0", 12)
        a.sw("t0", "s1", 8)
        a.addi("a0", "a0", TUPLE_BYTES)
        a.addi("s1", "s1", 12)
        a.bltu("a0", "s0", "loop")
        a.label("done")
        a.sub("a0", "s1", "a2")
        a.halt()
        return a.build()
