"""Stat kernel: sum a 32-bit column (paper Section VI-B, Figure 13).

The least compute-intensive of the standalone offloads: one add per word.
The running sum is function state (Table II: "Tuples, Accumulators") kept in
the scratchpad; the result is the final 32-bit state word (mod 2^32).
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel

_UNROLL = 4


class StatKernel(Kernel):
    """Sum of little-endian u32 values; state = 4-byte accumulator."""

    name = "stat"
    num_inputs = 1
    num_outputs = 0
    block_bytes = 4 * _UNROLL
    state_bytes = 4

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        data = inputs[0]
        total = 0
        for i in range(0, len(data), 4):
            total = (total + int.from_bytes(data[i : i + 4], "little")) & 0xFFFFFFFF
        self._expected_state = total.to_bytes(4, "little")
        return []

    def reference_state(self, inputs: List[bytes]) -> bytes:
        self.reference(inputs)
        return self._expected_state

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        n = self.pad_to_block(total_bytes)
        return [rng.randbytes(n)]

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("stat-stream")
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)  # running sum
        a.label("loop")
        for _ in range(_UNROLL):
            a.sload("t0", 0, 4)
            a.add("s1", "s1", "t0")
        a.sw("s1", "t6", 0)  # persist the accumulator each block
        a.j("loop")  # ends when StreamLoad finds the input exhausted
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("stat-memory")
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)
        a.add("t1", "a0", "a1")  # end pointer
        a.beq("a0", "t1", "done")
        a.label("loop")
        for i in range(_UNROLL):
            a.lw("t0", "a0", 4 * i)
            a.add("s1", "s1", "t0")
        a.addi("a0", "a0", 4 * _UNROLL)
        a.bltu("a0", "t1", "loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.li("a0", 0)  # no bytes written to the output region
        a.halt()
        return a.build()
