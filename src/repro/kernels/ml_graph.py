"""NN-inference and graph-analysis kernels (Table II's remaining families).

* :class:`NNInferenceKernel` — "NN Inference": model weights stay
  stationary in the scratchpad while feature vectors stream in; one dot
  product (score) streams out per vector. This is the weights-stationary
  structure the paper calls out for both accelerators and general cores.
* :class:`GraphDegreeKernel` — "Graph Analysis": the edge list streams
  through while per-vertex statistics (here: degree counters) live in the
  scratchpad; the counters are the function state returned at the end.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import KernelError
from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.mem.memory import FlatMemory


class NNInferenceKernel(Kernel):
    """Dot-product scoring: weights in scratchpad, vectors streamed."""

    name = "nn_inference"
    num_inputs = 1
    num_outputs = 1
    udp_isa_factor = 1.0  # dense arithmetic gains nothing from dispatch

    def __init__(self, dims: int = 16, seed: int = 42) -> None:
        if not 2 <= dims <= 64:
            raise KernelError("nn_inference supports 2..64 dimensions")
        self.dims = dims
        rng = random.Random(seed)
        self.weights = [rng.randint(-128, 127) for _ in range(dims)]
        self.block_bytes = 4 * dims  # one feature vector
        self.state_bytes = 4 * dims
        super().__init__()

    def score(self, features: List[int]) -> int:
        total = 0
        for w, x in zip(self.weights, features):
            # 32-bit wrap-around semantics, matching the ISA mul/add.
            total = (total + w * x) & 0xFFFFFFFF
        return total

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        data = inputs[0]
        out = bytearray()
        for off in range(0, len(data), self.block_bytes):
            features = [
                int.from_bytes(data[off + 4 * i : off + 4 * i + 4], "little", signed=False)
                for i in range(self.dims)
            ]
            out += self.score(features).to_bytes(4, "little")
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        n_vectors = max(1, self.pad_to_block(total_bytes) // self.block_bytes)
        out = bytearray()
        for _ in range(n_vectors):
            for _ in range(self.dims):
                out += rng.randint(0, 1000).to_bytes(4, "little")
        return [bytes(out)]

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        for i, w in enumerate(self.weights):
            mem.store_u32(state_base + 4 * i, w & 0xFFFFFFFF)

    def _emit_vector_body(self, a: Asm, load_feature) -> None:
        """Accumulate the dot product into s1 (t6 = weight base)."""
        a.li("s1", 0)
        for i in range(self.dims):
            load_feature(i)  # feature into t0
            a.lw("t1", "t6", 4 * i)  # weight (scratchpad)
            a.mul("t0", "t0", "t1")
            a.add("s1", "s1", "t0")

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("nn-stream")
        a.li("t6", state_base)
        a.label("loop")
        self._emit_vector_body(a, lambda i: a.sload("t0", 0, 4))
        a.sstore("s1", 0, 4)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("nn-memory")
        a.li("t6", state_base)
        a.mv("s2", "a2")
        a.add("s0", "a0", "a1")
        a.beq("a0", "s0", "done")
        a.label("loop")
        self._emit_vector_body(a, lambda i: a.lw("t0", "a0", 4 * i))
        a.sw("s1", "s2", 0)
        a.addi("s2", "s2", 4)
        a.addi("a0", "a0", self.block_bytes)
        a.bltu("a0", "s0", "loop")
        a.label("done")
        a.sub("a0", "s2", "a2")
        a.halt()
        return a.build()


class GraphDegreeKernel(Kernel):
    """Stream the edge list; per-vertex degree counters in the scratchpad."""

    name = "graph_degree"
    num_inputs = 1
    num_outputs = 0
    block_bytes = 8  # one (src, dst) edge

    def __init__(self, num_vertices: int = 4096) -> None:
        if num_vertices & (num_vertices - 1) or num_vertices <= 0:
            raise KernelError("num_vertices must be a power of two")
        if 4 * num_vertices > 60 * 1024:
            raise KernelError("vertex statistics must fit the 64 KiB scratchpad")
        self.num_vertices = num_vertices
        self.state_bytes = 4 * num_vertices
        super().__init__()

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        degrees = [0] * self.num_vertices
        data = inputs[0]
        mask = self.num_vertices - 1
        for off in range(0, len(data), 8):
            src = int.from_bytes(data[off : off + 4], "little") & mask
            dst = int.from_bytes(data[off + 4 : off + 8], "little") & mask
            degrees[src] = (degrees[src] + 1) & 0xFFFFFFFF
            degrees[dst] = (degrees[dst] + 1) & 0xFFFFFFFF
        self._expected_state = b"".join(d.to_bytes(4, "little") for d in degrees)
        return []

    def reference_state(self, inputs: List[bytes]) -> bytes:
        self.reference(inputs)
        return self._expected_state

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        edges = max(1, self.pad_to_block(total_bytes) // 8)
        out = bytearray()
        for _ in range(edges):
            # Power-law-ish endpoints: popular hubs plus a uniform tail.
            src = rng.randrange(16) if rng.random() < 0.3 else rng.randrange(self.num_vertices)
            dst = rng.randrange(self.num_vertices)
            out += src.to_bytes(4, "little") + dst.to_bytes(4, "little")
        return [bytes(out)]

    def _emit_bump(self, a: Asm, vertex_reg: str) -> None:
        """degrees[vertex & mask] += 1 (t6 = table base, s8 = mask)."""
        a.and_("t1", vertex_reg, "s8")
        a.slli("t1", "t1", 2)
        a.add("t1", "t1", "t6")
        a.lw("t2", "t1", 0)
        a.addi("t2", "t2", 1)
        a.sw("t2", "t1", 0)

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("graph-stream")
        a.li("t6", state_base)
        a.li("s8", self.num_vertices - 1)
        a.label("loop")
        a.sload("t0", 0, 4)  # src
        self._emit_bump(a, "t0")
        a.sload("t0", 0, 4)  # dst
        self._emit_bump(a, "t0")
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("graph-memory")
        a.li("t6", state_base)
        a.li("s8", self.num_vertices - 1)
        a.add("s0", "a0", "a1")
        a.label("loop")
        a.bgeu("a0", "s0", "done")
        a.lw("t0", "a0", 0)
        self._emit_bump(a, "t0")
        a.lw("t0", "a0", 4)
        self._emit_bump(a, "t0")
        a.addi("a0", "a0", 8)
        a.j("loop")
        a.label("done")
        a.li("a0", 0)
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.fill(state_base, self.state_bytes, 0)
