"""PSF kernel: the fused Parse -> Select -> Filter database pipeline.

This is the offload of the paper's Section VI-C: TPC-H tables stored as
delimited text are parsed in-SSD, projected to the columns the query needs,
filtered on its predicate, and only the surviving binary tuples leave the
device. Function state is the parser accumulator, the field counter, and a
one-row field buffer — all scratchpad-resident (Table II).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import KernelError
from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.parse import make_rows
from repro.mem.memory import FlatMemory

_BUF_OFF = 16  # row buffer offset within the state block (acc@0, counter@4)
_MAX_FIELDS = 16


class PSFKernel(Kernel):
    """Parse rows, filter on one field's [lo, hi) range, emit selected fields."""

    name = "psf"
    num_inputs = 1
    num_outputs = 1
    block_bytes = 1
    udp_isa_factor = 0.84

    def __init__(
        self,
        fields_per_row: int = 8,
        select_fields: Sequence[int] = (0, 1, 3),
        filter_field: int = 2,
        filter_lo: int = 0,
        filter_hi: int = 2_000_000,
    ) -> None:
        if fields_per_row > _MAX_FIELDS:
            raise KernelError(f"at most {_MAX_FIELDS} fields per row")
        if any(f >= fields_per_row for f in select_fields) or filter_field >= fields_per_row:
            raise KernelError("field index out of range")
        self.fields_per_row = fields_per_row
        self.select_fields = tuple(select_fields)
        self.filter_field = filter_field
        self.filter_lo = filter_lo
        self.filter_hi = filter_hi
        self.state_bytes = _BUF_OFF + 4 * _MAX_FIELDS
        super().__init__()

    @property
    def expected_selectivity(self) -> float:
        """Selectivity under make_rows' uniform 0..9,999,999 field values."""
        span = max(0, min(self.filter_hi, 10_000_000) - max(self.filter_lo, 0))
        return span / 10_000_000

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        out = bytearray()
        acc = 0
        fields: List[int] = []
        for byte in inputs[0]:
            digit = byte - 0x30
            if 0 <= digit <= 9:
                acc = (acc * 10 + digit) & 0xFFFFFFFF
                continue
            fields.append(acc)
            acc = 0
            if byte == 0x0A:  # newline: evaluate the row
                if len(fields) > self.filter_field:
                    value = fields[self.filter_field]
                    if self.filter_lo <= value < self.filter_hi:
                        for f in self.select_fields:
                            out += fields[f].to_bytes(4, "little")
                fields = []
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        return [make_rows(total_bytes, self.fields_per_row, seed)]

    # -- shared emission helpers --------------------------------------------------

    def _emit_row_end(self, a: Asm, loop: str) -> None:
        """Field counter reset, predicate, selected-field emission.

        Expects: t6 = state base, s6 = lo, s7 = hi; emits via ``emit_out``
        bound by the caller through ``self._emit_out``.
        """
        a.li("s2", 0)  # reset field counter
        a.lw("t0", "t6", _BUF_OFF + 4 * self.filter_field)
        a.bltu("t0", "s6", loop)
        a.bgeu("t0", "s7", loop)
        for f in self.select_fields:
            a.lw("t0", "t6", _BUF_OFF + 4 * f)
            self._emit_out(a)
        a.j(loop)

    def _emit_delim(self, a: Asm, loop: str, row_end: str) -> None:
        """Store acc into the row buffer slot, advance counter."""
        a.slli("t2", "s2", 2)
        a.add("t2", "t2", "t6")
        a.sw("s1", "t2", _BUF_OFF)
        a.addi("s2", "s2", 1)
        a.li("s1", 0)
        a.beq("t0", "t3", row_end)  # '\n' == 10 == the digit-limit constant
        a.j(loop)

    def _emit_digit_tail(self, a: Asm, loop: str) -> None:
        a.slli("t2", "s1", 3)
        a.slli("s1", "s1", 1)
        a.add("s1", "s1", "t2")
        a.add("s1", "s1", "t1")
        a.j(loop)

    # -- programs -----------------------------------------------------------------

    def _build_stream_program(self, state_base: int) -> Program:
        self._emit_out = lambda a: a.sstore("t0", 0, 4)
        a = Asm("psf-stream")
        a.li("t3", 10)
        a.li("t6", state_base)
        a.li("s1", 0)  # parser accumulator
        a.li("s2", 0)  # field counter
        a.li("s6", self.filter_lo)
        a.li("s7", self.filter_hi)
        a.label("loop")
        a.sload("t0", 0, 1)
        a.addi("t1", "t0", -0x30)
        a.bgeu("t1", "t3", "delim")
        self._emit_digit_tail(a, "loop")
        a.label("delim")
        self._emit_delim(a, "loop", "row_end")
        a.label("row_end")
        self._emit_row_end(a, "loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("psf-memory")
        out_ptr = "s3"
        self._emit_out = lambda asm: (asm.sw("t0", out_ptr, 0), asm.addi(out_ptr, out_ptr, 4))
        a.li("t3", 10)
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)  # accumulator persists across chunks
        a.lw("s2", "t6", 4)  # field counter persists across chunks
        a.li("s6", self.filter_lo)
        a.li("s7", self.filter_hi)
        a.mv(out_ptr, "a2")
        a.add("s0", "a0", "a1")
        a.label("loop")
        a.bgeu("a0", "s0", "done")
        a.lbu("t0", "a0", 0)
        a.addi("a0", "a0", 1)
        a.addi("t1", "t0", -0x30)
        a.bgeu("t1", "t3", "delim")
        self._emit_digit_tail(a, "loop")
        a.label("delim")
        self._emit_delim(a, "loop", "row_end")
        a.label("row_end")
        self._emit_row_end(a, "loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.sw("s2", "t6", 4)
        a.sub("a0", out_ptr, "a2")
        a.halt()
        return a.build()

    def init_state(self, mem: FlatMemory, state_base: int) -> None:
        mem.fill(state_base, self.state_bytes, 0)
