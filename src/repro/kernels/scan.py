"""Scan kernel: the dummy byte-scan workload of the scalability study.

Paper Section VI-D: "each ASSASIN core scans each byte of input ... if
input data is always available, a 1 GHz core achieves 1 GB/s". The loop
below touches every byte (one word load plus three ALU ops per word,
unrolled 8x) and costs ~1.09 cycles per byte, reproducing that bound. The
4-byte rolling checksum is the function state.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel

_UNROLL = 8


def scan_checksum(data: bytes, start: int = 0) -> int:
    """The checksum the scan programs compute: acc = (acc + w) ^ (w >> 5)."""
    acc = start & 0xFFFFFFFF
    for i in range(0, len(data), 4):
        word = int.from_bytes(data[i : i + 4], "little")
        acc = ((acc + word) & 0xFFFFFFFF) ^ (word >> 5)
    return acc


class ScanKernel(Kernel):
    """Byte-scan checksum; ~1 cycle/byte when input is always available."""

    name = "scan"
    num_inputs = 1
    num_outputs = 0
    block_bytes = 4 * _UNROLL
    state_bytes = 4

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        self._expected_state = scan_checksum(inputs[0]).to_bytes(4, "little")
        return []

    def reference_state(self, inputs: List[bytes]) -> bytes:
        self.reference(inputs)
        return self._expected_state

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        rng = random.Random(seed)
        return [rng.randbytes(self.pad_to_block(total_bytes))]

    def _emit_body(self, a: Asm, load_word) -> None:
        """Per-word body: acc = (acc + w) ^ (w >> 5)."""
        for i in range(_UNROLL):
            load_word(i)  # word into t0
            a.add("s1", "s1", "t0")
            a.srli("t1", "t0", 5)
            a.xor("s1", "s1", "t1")

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("scan-stream")
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)
        a.label("loop")
        self._emit_body(a, lambda i: a.sload("t0", 0, 4))
        a.sw("s1", "t6", 0)
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("scan-memory")
        a.li("t6", state_base)
        a.lw("s1", "t6", 0)
        a.add("t2", "a0", "a1")
        a.beq("a0", "t2", "done")
        a.label("loop")
        self._emit_body(a, lambda i: a.lw("t0", "a0", 4 * i))
        a.addi("a0", "a0", 4 * _UNROLL)
        a.bltu("a0", "t2", "loop")
        a.label("done")
        a.sw("s1", "t6", 0)
        a.li("a0", 0)
        a.halt()
        return a.build()
