"""Filter kernel: predicate evaluation over fixed-schema tuples.

The motivating offload of the paper (Section III-A): filter TPC-H lineitem
tuples on shipdate/discount/quantity predicates (a TPC-H Q6 shape) and emit
only the selected tuples — early data reduction inside the SSD. Named
``filter`` in the registry; the module is ``filter_`` to avoid shadowing
the builtin.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import Asm, Program
from repro.kernels.api import Kernel
from repro.kernels.tuples import (
    SHIPDATE_DAYS,
    TUPLE_BYTES,
    iter_tuples,
    random_tuples,
)


class FilterKernel(Kernel):
    """Keep tuples with shipdate in [lo,hi), discount in [dlo,dhi], qty < qmax."""

    name = "filter"
    num_inputs = 1
    num_outputs = 1
    block_bytes = TUPLE_BYTES
    udp_isa_factor = 0.90

    def __init__(
        self,
        shipdate_lo: int = 730,
        shipdate_hi: int = 1095,
        discount_lo: int = 5,
        discount_hi: int = 7,
        quantity_max: int = 24,
    ) -> None:
        self.shipdate_lo = shipdate_lo
        self.shipdate_hi = shipdate_hi
        self.discount_lo = discount_lo
        self.discount_hi = discount_hi
        self.quantity_max = quantity_max
        super().__init__()

    def selects(self, t) -> bool:
        return (
            self.shipdate_lo <= t.shipdate < self.shipdate_hi
            and self.discount_lo <= t.discount <= self.discount_hi
            and t.quantity < self.quantity_max
        )

    @property
    def expected_selectivity(self) -> float:
        """Analytic selectivity under the random_tuples distributions."""
        date = (self.shipdate_hi - self.shipdate_lo) / SHIPDATE_DAYS
        disc = (self.discount_hi - self.discount_lo + 1) / 11
        qty = min(max(self.quantity_max - 1, 0), 50) / 50
        return date * disc * qty

    def reference(self, inputs: List[bytes]) -> List[bytes]:
        self.check_inputs(inputs)
        out = bytearray()
        for t in iter_tuples(inputs[0]):
            if self.selects(t):
                out += t.pack()
        return [bytes(out)]

    def make_inputs(self, total_bytes: int, seed: int = 1) -> List[bytes]:
        n = max(1, self.pad_to_block(total_bytes) // TUPLE_BYTES)
        return [random_tuples(n, seed)]

    def _emit_predicate(self, a: Asm, reject: str) -> None:
        """Branches on fields in s2..s5; falls through when selected.

        Constants preloaded: t3=lo, t4=hi, t5=dlo, t6=dhi, s6=qmax.
        """
        a.bltu("s5", "t3", reject)  # shipdate < lo
        a.bgeu("s5", "t4", reject)  # shipdate >= hi
        a.bltu("s4", "t5", reject)  # discount < dlo
        a.bltu("t6", "s4", reject)  # discount > dhi
        a.bgeu("s2", "s6", reject)  # quantity >= qmax

    def _emit_constants(self, a: Asm) -> None:
        a.li("t3", self.shipdate_lo)
        a.li("t4", self.shipdate_hi)
        a.li("t5", self.discount_lo)
        a.li("t6", self.discount_hi)
        a.li("s6", self.quantity_max)

    def _build_stream_program(self, state_base: int) -> Program:
        a = Asm("filter-stream")
        self._emit_constants(a)
        a.label("loop")
        a.sload("s2", 0, 4)  # quantity
        a.sload("s3", 0, 4)  # price
        a.sload("s4", 0, 4)  # discount
        a.sload("s5", 0, 4)  # shipdate
        self._emit_predicate(a, "reject")
        # Selected: emit the four fields, then copy the payload through.
        a.sstore("s2", 0, 4)
        a.sstore("s3", 0, 4)
        a.sstore("s4", 0, 4)
        a.sstore("s5", 0, 4)
        for _ in range(4):  # 16B payload as 4 words
            a.sload("t0", 0, 4)
            a.sstore("t0", 0, 4)
        a.j("loop")
        a.label("reject")
        a.sskip(0, 16)  # skip the payload of the rejected tuple
        a.j("loop")
        return a.build()

    def _build_memory_program(self, state_base: int) -> Program:
        a = Asm("filter-memory")
        self._emit_constants(a)
        a.mv("s1", "a2")  # output pointer
        a.add("s0", "a0", "a1")  # end
        a.beq("a0", "s0", "done")
        a.label("loop")
        a.lw("s2", "a0", 0)
        a.lw("s3", "a0", 4)
        a.lw("s4", "a0", 8)
        a.lw("s5", "a0", 12)
        self._emit_predicate(a, "reject")
        a.sw("s2", "s1", 0)
        a.sw("s3", "s1", 4)
        a.sw("s4", "s1", 8)
        a.sw("s5", "s1", 12)
        for i in range(4):
            a.lw("t0", "a0", 16 + 4 * i)
            a.sw("t0", "s1", 16 + 4 * i)
        a.addi("s1", "s1", TUPLE_BYTES)
        a.label("reject")
        a.addi("a0", "a0", TUPLE_BYTES)
        a.bltu("a0", "s0", "loop")
        a.label("done")
        a.sub("a0", "s1", "a2")  # bytes written
        a.halt()
        return a.build()
