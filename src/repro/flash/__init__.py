"""NAND flash array simulator (the MQSim stand-in of the paper's Figure 11).

Deterministic greedy-timeline model: each die tracks when it becomes free,
each channel bus tracks when its next transfer slot opens, and requests are
served in issue order — capturing die-level parallelism, channel
serialisation, and the read/program/erase latency asymmetry of NAND.
"""

from repro.flash.onfi import ONFI_PROFILES, OnfiTiming
from repro.flash.chip import FlashChip, PageState
from repro.flash.channel import ChannelBus
from repro.flash.array import FlashArray, PhysicalPageAddress, ServiceRecord
from repro.flash.ecc import ECCStatus, decode_page, encode_page, inject_bit_errors

__all__ = [
    "ONFI_PROFILES",
    "OnfiTiming",
    "FlashChip",
    "PageState",
    "ChannelBus",
    "FlashArray",
    "PhysicalPageAddress",
    "ServiceRecord",
    "ECCStatus",
    "encode_page",
    "decode_page",
    "inject_bit_errors",
]
