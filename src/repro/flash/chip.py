"""One NAND flash chip: dies, planes, blocks, pages (paper Figure 3).

The chip enforces NAND's physical rules — program only into erased pages,
erase whole blocks, reads/programs occupy a plane — and keeps per-block
wear counters. Page *contents* are stored sparsely (only programmed pages), so
multi-GiB arrays cost memory proportional to what was actually written.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import FlashConfig
from repro.errors import FlashError
from repro.sim import PooledResource, as_ns


class PageState(enum.Enum):
    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass
class PlaneOps:
    """Operation tallies for one plane (timing lives in the plane pools)."""

    reads: int = 0
    programs: int = 0
    erases: int = 0


class FlashChip:
    """Geometry + timing + state for one chip of the array.

    Planes within a die operate concurrently (multi-plane read/program with
    cache operations), the standard technique SSDs use to hide NAND's long
    tPROG behind channel transfers.  Each chip therefore owns two
    :class:`repro.sim.PooledResource` pools with one unit per plane —
    reads and program/erase are separate lanes: modern controllers
    *suspend* an in-flight program or erase to service a read, so reads
    only queue behind other reads, while programs/erases queue behind
    everything on their plane.
    """

    def __init__(self, config: FlashConfig, channel: int, index: int) -> None:
        self.config = config
        self.channel = channel
        self.index = index
        units = config.dies_per_chip * config.planes_per_die
        name = f"flash.ch{channel}.chip{index}"
        self._read_lanes = PooledResource(f"{name}.plane_read", units)
        self._write_lanes = PooledResource(f"{name}.plane_write", units)
        self.planes = [
            [PlaneOps() for _ in range(config.planes_per_die)]
            for _ in range(config.dies_per_chip)
        ]
        # Sparse page state: (die, plane, block, page) -> PageState; absent
        # means erased-from-factory. Contents stored only when provided.
        self._state: Dict[Tuple[int, int, int, int], PageState] = {}
        self._data: Dict[Tuple[int, int, int, int], bytes] = {}
        self._spare: Dict[Tuple[int, int, int, int], bytes] = {}
        self.erase_counts: Dict[Tuple[int, int, int], int] = {}
        self._inject_rounds: Dict[Tuple[int, int, int, int], int] = {}
        self.ecc_corrections = 0
        self.ecc_failures = 0

    # -- address checks --------------------------------------------------------

    def _check(self, die: int, plane: int, block: int, page: int) -> None:
        c = self.config
        if not (
            0 <= die < c.dies_per_chip
            and 0 <= plane < c.planes_per_die
            and 0 <= block < c.blocks_per_plane
            and 0 <= page < c.pages_per_block
        ):
            raise FlashError(
                f"page address (die={die}, plane={plane}, block={block}, page={page}) "
                "outside chip geometry"
            )

    def page_state(self, die: int, plane: int, block: int, page: int) -> PageState:
        self._check(die, plane, block, page)
        return self._state.get((die, plane, block, page), PageState.ERASED)

    # -- timed operations ------------------------------------------------------
    # Each returns the time the *array* operation completes (page register
    # ready for reads); the channel transfer is handled by the array level.

    def _unit(self, die: int, plane: int) -> int:
        return die * self.config.planes_per_die + plane

    def start_read(self, die: int, plane: int, block: int, page: int, at_ns) -> int:
        self._check(die, plane, block, page)
        # Reads suspend in-flight programs/erases: queue behind reads only.
        grant = self._read_lanes.acquire(
            at_ns, as_ns(self.config.read_latency_ns), unit=self._unit(die, plane)
        )
        self.planes[die][plane].reads += 1
        return grant.done_ns

    def start_program(
        self,
        die: int,
        plane: int,
        block: int,
        page: int,
        at_ns,
        data: Optional[bytes] = None,
    ) -> int:
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if self._state.get(key) is PageState.PROGRAMMED:
            raise FlashError(f"program into non-erased page {key} (erase the block first)")
        unit = self._unit(die, plane)
        # Programs queue behind everything on the plane: in-flight reads
        # (which would suspend them) and earlier programs/erases.
        ready = max(as_ns(at_ns), self._read_lanes.free_at(unit))
        grant = self._write_lanes.acquire(
            ready, as_ns(self.config.program_latency_ns), unit=unit
        )
        done = grant.done_ns
        self.planes[die][plane].programs += 1
        self._state[key] = PageState.PROGRAMMED
        if data is not None:
            if len(data) > self.config.page_bytes:
                raise FlashError(f"page data of {len(data)}B exceeds page size")
            stored = bytes(data)
            self._data[key] = stored
            # Spare-area ECC over the 8-byte-aligned prefix of the page.
            from repro.flash.ecc import encode_page

            aligned = stored + b"\x00" * (-len(stored) % 8)
            self._spare[key] = encode_page(aligned)
        return done

    def erase_block(self, die: int, plane: int, block: int, at_ns) -> int:
        self._check(die, plane, block, 0)
        unit = self._unit(die, plane)
        ready = max(as_ns(at_ns), self._read_lanes.free_at(unit))
        grant = self._write_lanes.acquire(
            ready, as_ns(self.config.erase_latency_ns), unit=unit
        )
        done = grant.done_ns
        self.planes[die][plane].erases += 1
        for page in range(self.config.pages_per_block):
            self._state.pop((die, plane, block, page), None)
            self._data.pop((die, plane, block, page), None)
            self._spare.pop((die, plane, block, page), None)
            self._inject_rounds.pop((die, plane, block, page), None)
        key = (die, plane, block)
        self.erase_counts[key] = self.erase_counts.get(key, 0) + 1
        return done

    def read_data(self, die: int, plane: int, block: int, page: int) -> Optional[bytes]:
        """Functional page contents (None if never written with data)."""
        self._check(die, plane, block, page)
        return self._data.get((die, plane, block, page))

    def inject_errors(self, die: int, plane: int, block: int, page: int,
                      nbits: int, seed: int = 1) -> None:
        """Inject ``nbits`` raw-NAND bit errors into a programmed page.

        Raises :class:`FlashError` (never ``KeyError``) when the target page
        was never programmed with data, or the address is outside the chip.

        Seed-threading contract: the RNG for each injection is derived from
        ``(seed, page address, number of prior injections into that page)``.
        Repeated injections with the same seed therefore flip *fresh*,
        reproducible bit sets instead of cancelling the previous flips, and
        two runs issuing the same call sequence corrupt identical bits.
        Erasing the block resets the page's injection count.
        """
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if key not in self._data:
            raise FlashError(
                f"cannot inject errors into page {key}: never programmed with data"
            )
        from repro.flash.ecc import inject_bit_errors

        rounds = self._inject_rounds.get(key, 0)
        derived = (seed * 1_000_003 + rounds) * 7_919 + self._flat(key)
        self._data[key] = inject_bit_errors(self._data[key], nbits, derived)
        self._inject_rounds[key] = rounds + 1

    def corrupt_page(self, die: int, plane: int, block: int, page: int,
                     nbits: int, seed: int = 1) -> None:
        """Historical alias for :meth:`inject_errors`."""
        self.inject_errors(die, plane, block, page, nbits, seed)

    def overwrite_raw(self, die: int, plane: int, block: int, page: int,
                      data: bytes) -> None:
        """Replace a programmed page's raw cell contents in place.

        The hook behind read-retry recalibration, scrubbing, and targeted
        fault injection: it changes what the sense amps will read *without*
        a program cycle and leaves the spare-area ECC untouched, so
        restoring the originally programmed bytes makes the page decode
        clean again.
        """
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if key not in self._data:
            raise FlashError(f"cannot overwrite page {key}: never programmed with data")
        if len(data) != len(self._data[key]):
            raise FlashError(
                f"overwrite of {len(data)}B does not match stored {len(self._data[key])}B"
            )
        self._data[key] = bytes(data)

    def _flat(self, key: Tuple[int, int, int, int]) -> int:
        die, plane, block, page = key
        c = self.config
        return ((die * c.planes_per_die + plane) * c.blocks_per_plane + block) \
            * c.pages_per_block + page

    def read_data_checked(self, die: int, plane: int, block: int, page: int):
        """ECC-checked read: returns (data, status) after correction.

        Models the controller's ECC engine: single-bit upsets per codeword
        are transparently repaired; multi-bit upsets surface as
        uncorrectable (the device would retry/recover via RAID).

        This is the *only* place :attr:`ecc_failures` is incremented: every
        uncorrectable decode bumps the counter exactly once per read, so
        callers must come through here rather than calling
        :func:`repro.flash.ecc.decode_page` directly.
        """
        from repro.flash.ecc import ECCStatus, decode_page

        key = (die, plane, block, page)
        raw = self._data.get(key)
        if raw is None:
            return None, ECCStatus.CLEAN
        spare = self._spare.get(key)
        if spare is None:
            return raw, ECCStatus.CLEAN
        aligned = raw + b"\x00" * (-len(raw) % 8)
        decoded, status, corrections = decode_page(aligned, spare)
        self.ecc_corrections += corrections
        if status is ECCStatus.UNCORRECTABLE:
            self.ecc_failures += 1
        return decoded[: len(raw)], status

    def reset_timelines(self) -> None:
        """Rewind every plane lane to t=0 (manufacturing-state preloads).

        Page *state* is untouched: only the reservation timelines rewind,
        so data programmed during a preload is present without occupying
        the planes the run is about to contend on.
        """
        self._read_lanes.reset()
        self._write_lanes.reset()

    # -- stats -------------------------------------------------------------------

    @property
    def total_reads(self) -> int:
        return sum(pl.reads for die in self.planes for pl in die)

    @property
    def total_programs(self) -> int:
        return sum(pl.programs for die in self.planes for pl in die)
