"""One NAND flash chip: dies, planes, blocks, pages (paper Figure 3).

The chip enforces NAND's physical rules — program only into erased pages,
erase whole blocks, reads/programs occupy a plane — and keeps per-block
wear counters. Page *contents* are stored sparsely (only programmed pages), so
multi-GiB arrays cost memory proportional to what was actually written.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import FlashConfig
from repro.errors import FlashError


class PageState(enum.Enum):
    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass
class PlaneTimeline:
    """When each plane finishes its current array operations.

    Planes within a die operate concurrently (multi-plane read/program with
    cache operations), the standard technique SSDs use to hide NAND's long
    tPROG behind channel transfers. Reads and program/erase are tracked
    separately: modern controllers *suspend* an in-flight program or erase
    to service a read, so reads only queue behind other reads, while
    programs/erases queue behind everything.
    """

    read_busy_until_ns: float = 0.0
    write_busy_until_ns: float = 0.0
    reads: int = 0
    programs: int = 0
    erases: int = 0

    @property
    def busy_until_ns(self) -> float:
        return max(self.read_busy_until_ns, self.write_busy_until_ns)


class FlashChip:
    """Geometry + timing + state for one chip of the array."""

    def __init__(self, config: FlashConfig, channel: int, index: int) -> None:
        self.config = config
        self.channel = channel
        self.index = index
        self.planes = [
            [PlaneTimeline() for _ in range(config.planes_per_die)]
            for _ in range(config.dies_per_chip)
        ]
        # Sparse page state: (die, plane, block, page) -> PageState; absent
        # means erased-from-factory. Contents stored only when provided.
        self._state: Dict[Tuple[int, int, int, int], PageState] = {}
        self._data: Dict[Tuple[int, int, int, int], bytes] = {}
        self._spare: Dict[Tuple[int, int, int, int], bytes] = {}
        self.erase_counts: Dict[Tuple[int, int, int], int] = {}
        self._inject_rounds: Dict[Tuple[int, int, int, int], int] = {}
        self.ecc_corrections = 0
        self.ecc_failures = 0

    # -- address checks --------------------------------------------------------

    def _check(self, die: int, plane: int, block: int, page: int) -> None:
        c = self.config
        if not (
            0 <= die < c.dies_per_chip
            and 0 <= plane < c.planes_per_die
            and 0 <= block < c.blocks_per_plane
            and 0 <= page < c.pages_per_block
        ):
            raise FlashError(
                f"page address (die={die}, plane={plane}, block={block}, page={page}) "
                "outside chip geometry"
            )

    def page_state(self, die: int, plane: int, block: int, page: int) -> PageState:
        self._check(die, plane, block, page)
        return self._state.get((die, plane, block, page), PageState.ERASED)

    # -- timed operations ------------------------------------------------------
    # Each returns the time the *array* operation completes (page register
    # ready for reads); the channel transfer is handled by the array level.

    def start_read(self, die: int, plane: int, block: int, page: int, at_ns: float) -> float:
        self._check(die, plane, block, page)
        timeline = self.planes[die][plane]
        # Reads suspend in-flight programs/erases: queue behind reads only.
        start = max(at_ns, timeline.read_busy_until_ns)
        done = start + self.config.read_latency_ns
        timeline.read_busy_until_ns = done
        timeline.reads += 1
        return done

    def start_program(
        self,
        die: int,
        plane: int,
        block: int,
        page: int,
        at_ns: float,
        data: Optional[bytes] = None,
    ) -> float:
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if self._state.get(key) is PageState.PROGRAMMED:
            raise FlashError(f"program into non-erased page {key} (erase the block first)")
        timeline = self.planes[die][plane]
        start = max(at_ns, timeline.busy_until_ns)
        done = start + self.config.program_latency_ns
        timeline.write_busy_until_ns = done
        timeline.programs += 1
        self._state[key] = PageState.PROGRAMMED
        if data is not None:
            if len(data) > self.config.page_bytes:
                raise FlashError(f"page data of {len(data)}B exceeds page size")
            stored = bytes(data)
            self._data[key] = stored
            # Spare-area ECC over the 8-byte-aligned prefix of the page.
            from repro.flash.ecc import encode_page

            aligned = stored + b"\x00" * (-len(stored) % 8)
            self._spare[key] = encode_page(aligned)
        return done

    def erase_block(self, die: int, plane: int, block: int, at_ns: float) -> float:
        self._check(die, plane, block, 0)
        timeline = self.planes[die][plane]
        start = max(at_ns, timeline.busy_until_ns)
        done = start + self.config.erase_latency_ns
        timeline.write_busy_until_ns = done
        timeline.erases += 1
        for page in range(self.config.pages_per_block):
            self._state.pop((die, plane, block, page), None)
            self._data.pop((die, plane, block, page), None)
            self._spare.pop((die, plane, block, page), None)
            self._inject_rounds.pop((die, plane, block, page), None)
        key = (die, plane, block)
        self.erase_counts[key] = self.erase_counts.get(key, 0) + 1
        return done

    def read_data(self, die: int, plane: int, block: int, page: int) -> Optional[bytes]:
        """Functional page contents (None if never written with data)."""
        self._check(die, plane, block, page)
        return self._data.get((die, plane, block, page))

    def inject_errors(self, die: int, plane: int, block: int, page: int,
                      nbits: int, seed: int = 1) -> None:
        """Inject ``nbits`` raw-NAND bit errors into a programmed page.

        Raises :class:`FlashError` (never ``KeyError``) when the target page
        was never programmed with data, or the address is outside the chip.

        Seed-threading contract: the RNG for each injection is derived from
        ``(seed, page address, number of prior injections into that page)``.
        Repeated injections with the same seed therefore flip *fresh*,
        reproducible bit sets instead of cancelling the previous flips, and
        two runs issuing the same call sequence corrupt identical bits.
        Erasing the block resets the page's injection count.
        """
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if key not in self._data:
            raise FlashError(
                f"cannot inject errors into page {key}: never programmed with data"
            )
        from repro.flash.ecc import inject_bit_errors

        rounds = self._inject_rounds.get(key, 0)
        derived = (seed * 1_000_003 + rounds) * 7_919 + self._flat(key)
        self._data[key] = inject_bit_errors(self._data[key], nbits, derived)
        self._inject_rounds[key] = rounds + 1

    def corrupt_page(self, die: int, plane: int, block: int, page: int,
                     nbits: int, seed: int = 1) -> None:
        """Historical alias for :meth:`inject_errors`."""
        self.inject_errors(die, plane, block, page, nbits, seed)

    def overwrite_raw(self, die: int, plane: int, block: int, page: int,
                      data: bytes) -> None:
        """Replace a programmed page's raw cell contents in place.

        The hook behind read-retry recalibration, scrubbing, and targeted
        fault injection: it changes what the sense amps will read *without*
        a program cycle and leaves the spare-area ECC untouched, so
        restoring the originally programmed bytes makes the page decode
        clean again.
        """
        self._check(die, plane, block, page)
        key = (die, plane, block, page)
        if key not in self._data:
            raise FlashError(f"cannot overwrite page {key}: never programmed with data")
        if len(data) != len(self._data[key]):
            raise FlashError(
                f"overwrite of {len(data)}B does not match stored {len(self._data[key])}B"
            )
        self._data[key] = bytes(data)

    def _flat(self, key: Tuple[int, int, int, int]) -> int:
        die, plane, block, page = key
        c = self.config
        return ((die * c.planes_per_die + plane) * c.blocks_per_plane + block) \
            * c.pages_per_block + page

    def read_data_checked(self, die: int, plane: int, block: int, page: int):
        """ECC-checked read: returns (data, status) after correction.

        Models the controller's ECC engine: single-bit upsets per codeword
        are transparently repaired; multi-bit upsets surface as
        uncorrectable (the device would retry/recover via RAID).

        This is the *only* place :attr:`ecc_failures` is incremented: every
        uncorrectable decode bumps the counter exactly once per read, so
        callers must come through here rather than calling
        :func:`repro.flash.ecc.decode_page` directly.
        """
        from repro.flash.ecc import ECCStatus, decode_page

        key = (die, plane, block, page)
        raw = self._data.get(key)
        if raw is None:
            return None, ECCStatus.CLEAN
        spare = self._spare.get(key)
        if spare is None:
            return raw, ECCStatus.CLEAN
        aligned = raw + b"\x00" * (-len(raw) % 8)
        decoded, status, corrections = decode_page(aligned, spare)
        self.ecc_corrections += corrections
        if status is ECCStatus.UNCORRECTABLE:
            self.ecc_failures += 1
        return decoded[: len(raw)], status

    # -- stats -------------------------------------------------------------------

    @property
    def total_reads(self) -> int:
        return sum(pl.reads for die in self.planes for pl in die)

    @property
    def total_programs(self) -> int:
        return sum(pl.programs for die in self.planes for pl in die)
