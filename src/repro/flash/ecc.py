"""SECDED ECC for flash pages (Hamming + overall parity per 64-bit word).

Real NAND is unusable without ECC; controllers protect every page with
per-codeword parity kept in the page's spare area. This module implements
an extended Hamming (72,64) code — single-error correction, double-error
detection per 8-byte codeword — plus page-level helpers and error
injection, so the repository's flash substrate is credible end to end.

Layout: a page of N data bytes (N % 8 == 0) carries N/8 parity bytes in
the spare area; each parity byte protects one 64-bit little-endian word.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FlashError

_DATA_BITS = 64
# Hamming positions: parity bits sit at power-of-two positions of a
# 1-indexed 71-bit codeword; we store the 7 Hamming bits + 1 overall parity
# in the spare byte instead of interleaving, which keeps data bytes intact.
_PARITY_COUNT = 7  # covers up to 127 - 7 = 120 data bits >= 64


def _parity_masks() -> List[int]:
    """Bit masks over the 64 data bits covered by each Hamming parity."""
    masks = [0] * _PARITY_COUNT
    position = 1  # 1-indexed codeword position of the next data bit
    for bit in range(_DATA_BITS):
        position += 1
        while position & (position - 1) == 0:  # skip parity positions
            position += 1
        for p in range(_PARITY_COUNT):
            if position & (1 << p):
                masks[p] |= 1 << bit
    return masks


_MASKS = _parity_masks()
# Map codeword position -> data bit index, for syndrome decoding.
_POSITION_OF_BIT: List[int] = []
_pos = 1
for _bit in range(_DATA_BITS):
    _pos += 1
    while _pos & (_pos - 1) == 0:
        _pos += 1
    _POSITION_OF_BIT.append(_pos)
_BIT_AT_POSITION = {p: i for i, p in enumerate(_POSITION_OF_BIT)}


def _parity64(value: int) -> int:
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def _hamming_tables() -> List[List[int]]:
    """Per-(byte position, byte value) contribution to the 7 Hamming bits.

    Parity is linear over GF(2), so the Hamming bits of a 64-bit word are
    the XOR of one table lookup per byte; this turns the 7-mask loop into 8
    lookups, which matters once every programmed page is ECC-encoded and
    fault campaigns decode on every corrupted read.
    """
    tables = []
    for pos in range(8):
        row = [0] * 256
        for value in range(256):
            word = value << (8 * pos)
            ham = 0
            for p, mask in enumerate(_MASKS):
                ham |= _parity64(word & mask) << p
            row[value] = ham
        tables.append(row)
    return tables


_HAMMING_TABLE = _hamming_tables()
_BYTE_PARITY = bytes(bin(v).count("1") & 1 for v in range(256))


def _hamming_bits(word: int) -> int:
    t = _HAMMING_TABLE
    return (
        t[0][word & 0xFF]
        ^ t[1][(word >> 8) & 0xFF]
        ^ t[2][(word >> 16) & 0xFF]
        ^ t[3][(word >> 24) & 0xFF]
        ^ t[4][(word >> 32) & 0xFF]
        ^ t[5][(word >> 40) & 0xFF]
        ^ t[6][(word >> 48) & 0xFF]
        ^ t[7][(word >> 56) & 0xFF]
    )


def encode_word(word: int) -> int:
    """Compute the 8-bit ECC byte (7 Hamming bits + overall parity)."""
    if not 0 <= word < (1 << _DATA_BITS):
        raise FlashError("ECC codeword must be a 64-bit value")
    ecc = _hamming_bits(word)
    overall = _parity64(word) ^ _BYTE_PARITY[ecc]
    return ecc | (overall << 7)


class ECCStatus(enum.Enum):
    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


@dataclass
class ECCResult:
    word: int
    status: ECCStatus
    corrected_bit: int = -1


def _parity8(value: int) -> int:
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def decode_word(word: int, ecc_byte: int) -> ECCResult:
    """Check/correct one 64-bit word against its ECC byte.

    SECDED decoding: the syndrome compares recomputed vs *stored* Hamming
    bits; the overall parity is taken over the received codeword (data +
    stored Hamming + stored overall bit). An odd total parity means a
    single flip (correctable); an even total with a nonzero syndrome means
    a double flip (detected, uncorrectable).
    """
    stored_hamming = ecc_byte & 0x7F
    stored_overall = (ecc_byte >> 7) & 1
    recomputed = _hamming_bits(word)
    syndrome = recomputed ^ stored_hamming
    total_parity = _parity64(word) ^ _parity8(stored_hamming) ^ stored_overall
    if syndrome == 0 and total_parity == 0:
        return ECCResult(word, ECCStatus.CLEAN)
    if total_parity == 1:
        # Odd number of flips: a single-bit error, correctable.
        bit = _BIT_AT_POSITION.get(syndrome)
        if bit is None:
            # The flip hit the spare byte (a parity bit or the overall
            # bit itself): data is intact.
            return ECCResult(word, ECCStatus.CORRECTED, corrected_bit=-1)
        return ECCResult(word ^ (1 << bit), ECCStatus.CORRECTED, corrected_bit=bit)
    # Even number of flips with nonzero syndrome: detected, not correctable.
    return ECCResult(word, ECCStatus.UNCORRECTABLE)


# -- page-level helpers ------------------------------------------------------


def encode_page(data: bytes) -> bytes:
    """Spare-area parity bytes for a page (one per 8 data bytes)."""
    if len(data) % 8:
        raise FlashError("page length must be a multiple of 8 for ECC")
    return bytes(
        encode_word(int.from_bytes(data[i : i + 8], "little"))
        for i in range(0, len(data), 8)
    )


def decode_page(data: bytes, spare: bytes) -> Tuple[bytes, ECCStatus, int]:
    """Verify/correct a page; returns (data, worst status, corrections)."""
    if len(spare) != len(data) // 8:
        raise FlashError("spare area size mismatch")
    out = bytearray(data)
    worst = ECCStatus.CLEAN
    corrections = 0
    for i in range(0, len(data), 8):
        word = int.from_bytes(data[i : i + 8], "little")
        result = decode_word(word, spare[i // 8])
        if result.status is ECCStatus.CORRECTED:
            corrections += 1
            out[i : i + 8] = result.word.to_bytes(8, "little")
            if worst is ECCStatus.CLEAN:
                worst = ECCStatus.CORRECTED
        elif result.status is ECCStatus.UNCORRECTABLE:
            worst = ECCStatus.UNCORRECTABLE
    return bytes(out), worst, corrections


def inject_bit_errors(data: bytes, nbits: int, seed: int = 1) -> bytes:
    """Flip ``nbits`` distinct random bits (raw-NAND error injection)."""
    if nbits > len(data) * 8:
        raise FlashError("cannot flip more bits than the page holds")
    rng = random.Random(seed)
    flipped = bytearray(data)
    for index in rng.sample(range(len(data) * 8), nbits):
        flipped[index // 8] ^= 1 << (index % 8)
    return bytes(flipped)
