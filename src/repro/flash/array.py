"""The full flash array: channels x chips, with timed page service.

Physical page addresses decompose hierarchically (channel, chip, die,
plane, block, page). A read occupies the die for tR, then the page streams
over the channel bus; a write streams over the bus first and then programs
the die. The per-channel controllers in :mod:`repro.ssd` issue requests;
this module owns the raw timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import FlashConfig
from repro.errors import FlashError
from repro.flash.channel import ChannelBus
from repro.flash.chip import FlashChip
from repro.sim import as_ns


@dataclass(frozen=True, order=True)
class PhysicalPageAddress:
    """A fully decomposed flash page location."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    def flat_index(self, config: FlashConfig) -> int:
        """Linearise to a unique page number within the array."""
        c = self
        idx = c.channel
        idx = idx * config.chips_per_channel + c.chip
        idx = idx * config.dies_per_chip + c.die
        idx = idx * config.planes_per_die + c.plane
        idx = idx * config.blocks_per_plane + c.block
        idx = idx * config.pages_per_block + c.page
        return idx

    @classmethod
    def from_flat(cls, index: int, config: FlashConfig) -> "PhysicalPageAddress":
        if not 0 <= index < config.total_pages:
            raise FlashError(f"flat page index {index} outside array of {config.total_pages}")
        index, page = divmod(index, config.pages_per_block)
        index, block = divmod(index, config.blocks_per_plane)
        index, plane = divmod(index, config.planes_per_die)
        index, die = divmod(index, config.dies_per_chip)
        channel, chip = divmod(index, config.chips_per_channel)
        return cls(channel, chip, die, plane, block, page)


@dataclass(frozen=True)
class ServiceRecord:
    """Timing of one serviced page operation (integer ns on the sim clock)."""

    ppa: PhysicalPageAddress
    issue_ns: int
    array_done_ns: int  # die operation complete
    done_ns: int  # data fully transferred (read) or programmed (write)


class FlashArray:
    """All channels and chips of the SSD's flash."""

    def __init__(self, config: FlashConfig, telemetry=None) -> None:
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.config = config
        self.chips: List[List[FlashChip]] = [
            [FlashChip(config, ch, i) for i in range(config.chips_per_channel)]
            for ch in range(config.channels)
        ]
        self.channels: List[ChannelBus] = [
            ChannelBus(config, ch, telemetry=telemetry) for ch in range(config.channels)
        ]
        self._reads = telemetry.counters.counter("flash.reads_served")
        self._writes = telemetry.counters.counter("flash.writes_served")

    @property
    def reads_served(self) -> int:
        return int(self._reads.value)

    @property
    def writes_served(self) -> int:
        return int(self._writes.value)

    def _chip(self, ppa: PhysicalPageAddress) -> FlashChip:
        if not 0 <= ppa.channel < self.config.channels:
            raise FlashError(f"channel {ppa.channel} outside array")
        if not 0 <= ppa.chip < self.config.chips_per_channel:
            raise FlashError(f"chip {ppa.chip} outside channel")
        return self.chips[ppa.channel][ppa.chip]

    def service_read(self, ppa: PhysicalPageAddress, issue_ns) -> ServiceRecord:
        """Read one page: die tR, then the channel transfer."""
        chip = self._chip(ppa)
        issue = as_ns(issue_ns)
        array_done = chip.start_read(ppa.die, ppa.plane, ppa.block, ppa.page, issue)
        done = self.channels[ppa.channel].transfer(self.config.page_bytes, array_done)
        self._reads.inc()
        return ServiceRecord(ppa, issue, array_done, done)

    def service_write(
        self, ppa: PhysicalPageAddress, issue_ns, data: Optional[bytes] = None
    ) -> ServiceRecord:
        """Write one page: channel transfer into the register, then program."""
        chip = self._chip(ppa)
        issue = as_ns(issue_ns)
        transferred = self.channels[ppa.channel].transfer(self.config.page_bytes, issue)
        done = chip.start_program(ppa.die, ppa.plane, ppa.block, ppa.page, transferred, data)
        self._writes.inc()
        return ServiceRecord(ppa, issue, transferred, done)

    def erase(self, ppa: PhysicalPageAddress, issue_ns) -> int:
        """Erase the block containing ``ppa``."""
        return self._chip(ppa).erase_block(ppa.die, ppa.plane, ppa.block, issue_ns)

    def reset_timelines(self) -> None:
        """Rewind every bus and plane lane (manufacturing-state preloads)."""
        for bus in self.channels:
            bus.reset_timeline()
        for row in self.chips:
            for chip in row:
                chip.reset_timelines()

    # -- observability -----------------------------------------------------------

    def channel_bytes(self) -> List[int]:
        return [bus.bytes_transferred for bus in self.channels]

    def channel_utilisations(self, until_ns: float) -> List[float]:
        return [bus.utilisation(until_ns) for bus in self.channels]

    @property
    def horizon_ns(self) -> int:
        """Latest completion time across all channel buses."""
        return max((bus.free_at_ns for bus in self.channels), default=0)
