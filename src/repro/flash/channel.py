"""Channel bus: the shared link between one flash controller and its chips.

Chips on a channel operate independently, but their page transfers
serialise on the bus (paper Section II-A) — the FIFO arbitration here is
what bounds a channel to its 1 GB/s and creates the hot-spot when data
layout is skewed (Section VI-E).

The bus is a :class:`repro.sim.FifoResource`: a greedy FIFO reservation
timeline on the unified integer-nanosecond simulation kernel.  Transfers
are granted in call order, busy intervals are tracked exactly, and
utilisation over a window counts only the overlap that falls inside it
(a transfer straddling the window's end contributes its clipped part, not
its full duration).

Each bus publishes its byte/occupancy totals into the device's
:class:`~repro.telemetry.counters.CounterRegistry` and emits one span per
transfer on its ``flash/ch<n>`` trace track; with the default
:class:`~repro.telemetry.tracer.NullTracer` the span call is a no-op and
timing is unchanged.
"""

from __future__ import annotations

from repro.config import FlashConfig
from repro.errors import FlashError
from repro.sim import FifoResource, as_ns


class ChannelBus:
    """FIFO transfer-slot resource for one channel."""

    def __init__(self, config: FlashConfig, channel: int, telemetry=None) -> None:
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.config = config
        self.channel = channel
        self._track = f"flash/ch{channel}"
        # Backfill: the controller's DMA engine serves transfers in
        # readiness order, so a transfer whose data is ready early may use
        # an idle gap left by one booked further in the future.
        self._bus = FifoResource(self._track, trace_label="xfer", backfill=True)
        self._tracer = telemetry.tracer
        self._bytes = telemetry.counters.counter(f"flash.ch{channel}.bytes")
        self._busy = telemetry.counters.counter(f"flash.ch{channel}.busy_ns")
        self._transfers = telemetry.counters.counter(f"flash.ch{channel}.transfers")

    @property
    def free_at_ns(self) -> int:
        """When the bus next frees (integer ns on the unified clock)."""
        return self._bus.free_at_ns

    @property
    def bytes_transferred(self) -> int:
        return int(self._bytes.value)

    @property
    def busy_ns(self) -> int:
        return self._bus.busy_ns

    def transfer(self, nbytes: int, ready_ns) -> int:
        """Schedule a transfer of ``nbytes`` that can start at ``ready_ns``.

        Returns the completion time. Transfers are granted in call order
        (FIFO arbitration at the flash controller).
        """
        if nbytes <= 0:
            raise FlashError("transfer size must be positive")
        duration = as_ns(nbytes / self.config.channel_bandwidth_bytes_per_ns)
        grant = self._bus.acquire(ready_ns, duration)
        self._bytes.inc(nbytes)
        self._busy.inc(grant.done_ns - grant.start_ns)
        self._transfers.inc()
        self._tracer.complete(self._track, "xfer", grant.start_ns, grant.done_ns)
        return grant.done_ns

    def utilisation(self, until_ns) -> float:
        """Exact fraction of ``[0, until_ns]`` the bus spent transferring."""
        return self._bus.utilisation(until_ns)

    def reset_timeline(self) -> None:
        """Rewind the bus (manufacturing-state preloads)."""
        self._bus.reset()
