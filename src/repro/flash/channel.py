"""Channel bus: the shared link between one flash controller and its chips.

Chips on a channel operate independently, but their page transfers
serialise on the bus (paper Section II-A) — the greedy timeline here is
what bounds a channel to its 1 GB/s and creates the hot-spot when data
layout is skewed (Section VI-E).
"""

from __future__ import annotations

from repro.config import FlashConfig
from repro.errors import FlashError


class ChannelBus:
    """Greedy timeline for one channel's transfer slots."""

    def __init__(self, config: FlashConfig, channel: int) -> None:
        self.config = config
        self.channel = channel
        self.free_at_ns: float = 0.0
        self.bytes_transferred: int = 0
        self.busy_ns: float = 0.0

    def transfer(self, nbytes: int, ready_ns: float) -> float:
        """Schedule a transfer of ``nbytes`` that can start at ``ready_ns``.

        Returns the completion time. Transfers are granted in call order
        (FIFO arbitration at the flash controller).
        """
        if nbytes <= 0:
            raise FlashError("transfer size must be positive")
        duration = nbytes / self.config.channel_bandwidth_bytes_per_ns
        start = max(ready_ns, self.free_at_ns)
        done = start + duration
        self.free_at_ns = done
        self.bytes_transferred += nbytes
        self.busy_ns += duration
        return done

    def utilisation(self, until_ns: float) -> float:
        """Fraction of [0, until_ns] the bus spent transferring."""
        return min(1.0, self.busy_ns / until_ns) if until_ns > 0 else 0.0
