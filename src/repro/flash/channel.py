"""Channel bus: the shared link between one flash controller and its chips.

Chips on a channel operate independently, but their page transfers
serialise on the bus (paper Section II-A) — the greedy timeline here is
what bounds a channel to its 1 GB/s and creates the hot-spot when data
layout is skewed (Section VI-E).

Each bus publishes its byte/occupancy totals into the device's
:class:`~repro.telemetry.counters.CounterRegistry` and emits one span per
transfer on its ``flash/ch<n>`` trace track; with the default
:class:`~repro.telemetry.tracer.NullTracer` the span call is a no-op and
timing is unchanged.
"""

from __future__ import annotations

from repro.config import FlashConfig
from repro.errors import FlashError


class ChannelBus:
    """Greedy timeline for one channel's transfer slots."""

    def __init__(self, config: FlashConfig, channel: int, telemetry=None) -> None:
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self.config = config
        self.channel = channel
        self.free_at_ns: float = 0.0
        self._track = f"flash/ch{channel}"
        self._tracer = telemetry.tracer
        self._bytes = telemetry.counters.counter(f"flash.ch{channel}.bytes")
        self._busy = telemetry.counters.counter(f"flash.ch{channel}.busy_ns")
        self._transfers = telemetry.counters.counter(f"flash.ch{channel}.transfers")

    @property
    def bytes_transferred(self) -> int:
        return int(self._bytes.value)

    @property
    def busy_ns(self) -> float:
        return self._busy.value

    def transfer(self, nbytes: int, ready_ns: float) -> float:
        """Schedule a transfer of ``nbytes`` that can start at ``ready_ns``.

        Returns the completion time. Transfers are granted in call order
        (FIFO arbitration at the flash controller).
        """
        if nbytes <= 0:
            raise FlashError("transfer size must be positive")
        duration = nbytes / self.config.channel_bandwidth_bytes_per_ns
        start = max(ready_ns, self.free_at_ns)
        done = start + duration
        self.free_at_ns = done
        self._bytes.inc(nbytes)
        self._busy.inc(duration)
        self._transfers.inc()
        self._tracer.complete(self._track, "xfer", start, done)
        return done

    def utilisation(self, until_ns: float) -> float:
        """Fraction of [0, until_ns] the bus spent transferring."""
        return min(1.0, self.busy_ns / until_ns) if until_ns > 0 else 0.0
