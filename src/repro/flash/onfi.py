"""ONFI-style flash interface timing profiles (paper Section II-B).

The paper's SSDs use 8 channels of 1 GB/s (Table IV); ONFI 4.2 defines
1.6/3.2 GB/s channel widths and ONFI 5.0 reaches 2400 MT/s. Profiles here
bundle the channel transfer rate with representative array latencies so
alternative SSDs can be modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class OnfiTiming:
    """Interface + array timing for one flash generation."""

    name: str
    transfer_bytes_per_ns: float  # channel bus rate
    read_latency_ns: float  # tR: array -> page register
    program_latency_ns: float  # tPROG
    erase_latency_ns: float  # tBERS

    def __post_init__(self) -> None:
        if self.transfer_bytes_per_ns <= 0:
            raise ConfigError("transfer rate must be positive")
        if min(self.read_latency_ns, self.program_latency_ns, self.erase_latency_ns) <= 0:
            raise ConfigError("latencies must be positive")

    def page_transfer_ns(self, page_bytes: int) -> float:
        return page_bytes / self.transfer_bytes_per_ns


ONFI_PROFILES = {
    # The paper's Table IV setting: 1 GB/s per channel, fast-read NAND.
    "paper": OnfiTiming("paper", 1.0, 12_000.0, 200_000.0, 1_500_000.0),
    "onfi4.2-8b": OnfiTiming("onfi4.2-8b", 1.6, 25_000.0, 300_000.0, 2_000_000.0),
    "onfi4.2-16b": OnfiTiming("onfi4.2-16b", 3.2, 25_000.0, 300_000.0, 2_000_000.0),
    "onfi5.0": OnfiTiming("onfi5.0", 2.4, 20_000.0, 250_000.0, 2_000_000.0),
}
