"""Unit constants and formatting helpers.

Sizes follow storage conventions: binary units (KiB/MiB/GiB) for memory and
flash geometry, decimal units (KB/MB/GB) for bandwidths, matching the paper's
usage (e.g. "8 GB/s flash array", "64KB scratchpad").

Times are kept in nanoseconds throughout the simulators; cores run at around
1 GHz so one cycle is about one nanosecond, which keeps mental conversion
cheap when reading traces.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

NS = 1
US = 1000 * NS
MS = 1000 * US
SEC = 1000 * MS


def bytes_per_cycle_to_gbps(bytes_per_cycle: float, clock_ghz: float = 1.0) -> float:
    """Convert a per-cycle byte rate into GB/s for a given core clock.

    At 1 GHz, one byte per cycle is exactly 1 GB/s, which is the identity the
    paper uses for its 1 GB/s-per-core scan bound (Section VI-D).
    """
    return bytes_per_cycle * clock_ghz


def fmt_bytes(n: int) -> str:
    """Render a byte count with a binary suffix, e.g. ``65536 -> '64.0 KiB'``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal units, e.g. ``1.6e9 -> '1.60 GB/s'``."""
    value = float(bytes_per_second)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000.0 or suffix == "TB/s":
            return f"{value:.2f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_time_ns(ns: float) -> str:
    """Render a duration given in nanoseconds with an adaptive unit."""
    value = float(ns)
    for suffix, scale in (("ns", 1.0), ("us", 1e3), ("ms", 1e6), ("s", 1e9)):
        if abs(ns) < scale * 1000.0 or suffix == "s":
            return f"{ns / scale:.2f} {suffix}"
    return f"{value:.2f} ns"
