"""Shared utilities: units, bit operations, statistics.

The discrete-event machinery that once lived here (``utils.events``) is
gone: import :class:`repro.sim.Simulator` directly.
"""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    GB,
    MB,
    KB,
    NS,
    US,
    MS,
    SEC,
    bytes_per_cycle_to_gbps,
    fmt_bytes,
    fmt_rate,
    fmt_time_ns,
)
from repro.utils.bitops import (
    bit_select,
    popcount,
    rotl32,
    rotr32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)
from repro.utils.stats import Accumulator, geomean, weighted_mean

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "GB",
    "MB",
    "KB",
    "NS",
    "US",
    "MS",
    "SEC",
    "bytes_per_cycle_to_gbps",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time_ns",
    "bit_select",
    "popcount",
    "rotl32",
    "rotr32",
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
    "Accumulator",
    "geomean",
    "weighted_mean",
]
