"""A minimal discrete-event queue used by the flash/SSD simulators.

The flash array, channel buses, and firmware scheduler all advance on the
same nanosecond timeline. Events carry an opaque payload and a callback; ties
are broken by insertion order so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """A scheduled callback at an absolute simulation time (ns)."""

    time_ns: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Deterministic priority queue of :class:`Event` ordered by time then seq.

    ``tracer`` (a :class:`repro.telemetry.tracer.NullTracer` by default)
    gets one instant event per dispatched callback on the ``scheduler``
    track, named by the event's label — telemetry only observes, it never
    changes ordering or timing.
    """

    def __init__(self, tracer=None) -> None:
        if tracer is None:
            from repro.telemetry.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._tracer = tracer
        self.now: float = 0.0
        self.processed: int = 0

    def schedule(self, delay_ns: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, action, label)

    def schedule_at(self, time_ns: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at an absolute time, which must not precede now."""
        if time_ns < self.now:
            raise ValueError(f"cannot schedule at {time_ns} before now={self.now}")
        event = Event(time_ns=time_ns, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, (event.time_ns, event.seq, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        _, _, event = heapq.heappop(self._heap)
        self.now = event.time_ns
        self.processed += 1
        self._tracer.instant("scheduler", event.label or "event", event.time_ns)
        event.action()
        return True

    def run(self, until_ns: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally stopping at a time or event budget."""
        executed = 0
        while self._heap:
            next_time = self._heap[0][0]
            if until_ns is not None and next_time > until_ns:
                self.now = until_ns
                return
            if max_events is not None and executed >= max_events:
                return
            self.step()
            executed += 1
        if until_ns is not None and until_ns > self.now:
            self.now = until_ns

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
