"""Backward-compatible alias for the unified simulation kernel.

Historically this module held a standalone ``EventQueue`` used only by the
serving layer, while the flash array kept greedy per-bus timelines and the
firmware merged events through its own private heap — three disjoint
timing schemes.  That split is gone: the single discrete-event kernel now
lives in :mod:`repro.sim`, and the flash array, channel buses, firmware
command flows, serving layer, garbage collector, and recovery ladder all
advance on one :class:`repro.sim.Simulator` clock in integer nanoseconds.

:class:`EventQueue` remains as a thin alias of :class:`~repro.sim.Simulator`
for code (and tests) written against the old name.  New code should import
``Simulator`` from :mod:`repro.sim` directly.

Scheduling semantics (inherited from the kernel): events fire in
``(time_ns, priority, seq)`` order — insertion order breaks ties — and
non-finite delays or instants (NaN/inf) raise
:class:`repro.sim.SimTimeError` instead of silently corrupting the heap.
"""

from __future__ import annotations

from repro.sim.kernel import Event, Simulator


class EventQueue(Simulator):
    """Deprecated name for :class:`repro.sim.Simulator` (kept for back-compat)."""


__all__ = ["Event", "EventQueue"]
