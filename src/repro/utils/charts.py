"""ASCII bar charts for the figure renders.

The paper's results are bar charts; the experiment drivers print tables
plus these text bars so the shape is visible at a glance in terminals and
logs, without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

_BAR = "#"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
    title: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart: one (label, value) per row.

    Bars scale to ``max_value`` (defaults to the largest value); labels are
    right-aligned, values printed after the bar.
    """
    if not items:
        return title
    top = max_value if max_value is not None else max(v for _, v in items)
    top = top or 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = [title] if title else []
    for label, value in items:
        filled = int(round(width * min(value, top) / top))
        lines.append(
            f"{label.rjust(label_width)} |{_BAR * filled}{' ' * (width - filled)}| "
            f"{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Several bar groups sharing one scale (a figure with clusters)."""
    all_values = [v for _, bars in groups for _, v in bars]
    top = max(all_values) if all_values else 1.0
    sections: List[str] = [title] if title else []
    for group_title, bars in groups:
        sections.append(f"[{group_title}]")
        sections.append(bar_chart(bars, width=width, unit=unit, max_value=top))
    return "\n".join(sections)


def series_sparkline(values: Iterable[float], width: int = 8) -> str:
    """Compact one-line trend (used for scaling curves)."""
    blocks = " .:-=+*#%@"
    vals = list(values)
    if not vals:
        return ""
    top = max(vals) or 1.0
    return "".join(blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))] for v in vals)
