"""32-bit integer helpers used by the RV32IM interpreter and kernels."""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def to_unsigned32(value: int) -> int:
    """Wrap an arbitrary Python int into an unsigned 32-bit value."""
    return value & _MASK32


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a two's-complement int."""
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` (mod 32)."""
    amount %= 32
    value &= _MASK32
    return ((value << amount) | (value >> (32 - amount))) & _MASK32 if amount else value


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by ``amount`` (mod 32)."""
    return rotl32(value, (32 - amount) % 32)


def popcount(value: int) -> int:
    """Number of set bits in the low 32 bits of ``value``."""
    return bin(value & _MASK32).count("1")


def bit_select(value: int, high: int, low: int) -> int:
    """Extract bits ``[high:low]`` (inclusive) of ``value``."""
    if high < low:
        raise ValueError("high must be >= low")
    return (value >> low) & ((1 << (high - low + 1)) - 1)
