"""Small statistics helpers shared by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports GeoMean for speedups (Section VI)."""
    items = [float(v) for v in values]
    if not items:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile: the smallest observed value whose cumulative
    frequency is at least ``pct`` percent.

    This is the convention used for latency SLOs (a p99 of X means 99 % of
    requests finished within X); it always returns an actual sample, never an
    interpolated one.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 < pct <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    ordered = sorted(float(v) for v in values)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Arithmetic mean of ``values`` weighted by ``weights``."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


@dataclass
class Accumulator:
    """Streaming min/max/mean/variance accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the observed samples."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def as_list(self) -> List[float]:
        return [self.count, self.mean, self.stddev, self.minimum, self.maximum]
