"""Workload survey data (paper Section IV, Tables I and II)."""

from repro.survey.functions import (
    FUNCTIONS,
    STUDIES,
    Domain,
    FunctionProfile,
    StudyEntry,
    domain_counts,
    functions_by_domain,
    streaming_fraction,
)

__all__ = [
    "FUNCTIONS",
    "STUDIES",
    "Domain",
    "FunctionProfile",
    "StudyEntry",
    "domain_counts",
    "functions_by_domain",
    "streaming_fraction",
]
