"""The computational-storage workload survey (Tables I and II).

Table I catalogues 22 research studies by the application domains of the
functions they offload; Table II maps 14 function families onto the stream
computing model: what streams through the core versus what stays resident
as bounded function state. The paper's architectural insight — "streaming
accesses to storage data, random accesses to function states of limited
size" — is encoded in :class:`FunctionProfile` and checked by the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Domain(enum.Enum):
    FILE_SYSTEM = "file system"
    DATABASE = "database"
    OTHER = "other"


@dataclass(frozen=True)
class StudyEntry:
    """One row of Table I."""

    name: str
    year: int
    domains: Tuple[Domain, ...]


_FS = Domain.FILE_SYSTEM
_DB = Domain.DATABASE
_OT = Domain.OTHER

STUDIES: Tuple[StudyEntry, ...] = (
    StudyEntry("Access", 2023, (_FS, _DB)),
    StudyEntry("ActiveFlash", 2013, (_FS, _OT)),
    StudyEntry("Aurora", 2022, (_FS, _DB)),
    StudyEntry("Azure", 2020, (_DB,)),
    StudyEntry("Biscuit", 2016, (_FS, _DB)),
    StudyEntry("BlockIF", 2021, (_FS,)),
    StudyEntry("Caribou", 2017, (_DB, _OT)),
    StudyEntry("CIDR", 2020, (_FS,)),
    StudyEntry("DedupInSSD", 2011, (_FS,)),
    StudyEntry("DeepStore", 2019, (_OT,)),
    StudyEntry("GLIST", 2021, (_OT,)),
    StudyEntry("GraFBoost", 2018, (_OT,)),
    StudyEntry("Ibex", 2014, (_DB, _OT)),
    StudyEntry("IceClave", 2021, (_FS, _DB)),
    StudyEntry("Insider", 2019, (_FS, _DB)),
    StudyEntry("Lepton", 2017, (_FS,)),
    StudyEntry("MithriLog", 2021, (_FS, _OT)),
    StudyEntry("Query", 2013, (_DB, _OT)),
    StudyEntry("Skyhook", 2020, (_DB, _OT)),
    StudyEntry("Summarizer", 2017, (_DB, _OT)),
    StudyEntry("Thrifty", 2020, (_FS, _OT)),
    StudyEntry("YourSQL", 2016, (_DB, _OT)),
)


@dataclass(frozen=True)
class FunctionProfile:
    """One row of Table II: a function family mapped to stream computing."""

    name: str
    streaming_data: str  # what flows through the stream buffers
    function_state: str  # what stays resident (scratchpad)
    state_bound_bytes: int  # upper bound on resident state
    streaming: bool = True  # feasible as inline stream computing
    kernel: Optional[str] = None  # implemented kernel in repro.kernels


FUNCTIONS: Tuple[FunctionProfile, ...] = (
    FunctionProfile("Compress", "Data blocks", "Sliding-window dictionary + index",
                    64 * 1024, kernel="compress"),
    FunctionProfile("Cryptography", "Data blocks / code blocks", "Keys & GF tables",
                    8 * 1024, kernel="aes"),
    FunctionProfile("Decompress", "Data and dictionary indexes", "Bounded history window",
                    64 * 1024, kernel="decompress"),
    FunctionProfile("Deduplicate", "Data blocks", "Block fingerprint metadata",
                    64 * 1024, kernel="dedup"),
    FunctionProfile("Erasure coding", "Data blocks / code blocks", "Galois-field table",
                    1 * 1024, kernel="raid6"),
    FunctionProfile("Replicate", "Data & replicates", "Flags",
                    64, kernel="replicate"),
    FunctionProfile("Filter", "Tuples", "Predicate constants & flags",
                    256, kernel="filter"),
    FunctionProfile("Select", "Tuples", "Projection map",
                    256, kernel="select"),
    FunctionProfile("Parse", "Tuples", "State machines",
                    4 * 1024, kernel="parse"),
    FunctionProfile("Statistics", "Tuples", "Accumulators",
                    1 * 1024, kernel="stat"),
    FunctionProfile("NN Training", "Training data", "Model parameters",
                    64 * 1024),
    FunctionProfile("NN Inference", "Inference input", "Model parameters",
                    64 * 1024, kernel="nn_inference"),
    FunctionProfile("Graph Analysis", "Edge list / vertex list", "Vertex statistics",
                    64 * 1024, kernel="graph_degree"),
    FunctionProfile("Video transcode", "Frame groups", "Codec state",
                    64 * 1024, streaming=False),
)


def domain_counts() -> Dict[Domain, int]:
    """How many surveyed studies target each domain (Table I totals)."""
    counts = {d: 0 for d in Domain}
    for study in STUDIES:
        for domain in study.domains:
            counts[domain] += 1
    return counts


def functions_by_domain() -> Dict[str, List[FunctionProfile]]:
    """Function families grouped by the rough domain they serve."""
    fs = ["Compress", "Cryptography", "Decompress", "Deduplicate", "Erasure coding", "Replicate"]
    db = ["Filter", "Select", "Parse", "Statistics"]
    table = {f.name: f for f in FUNCTIONS}
    return {
        "file system": [table[n] for n in fs],
        "database": [table[n] for n in db],
        "other": [f for f in FUNCTIONS if f.name not in fs + db],
    }


def streaming_fraction() -> float:
    """Fraction of surveyed function families expressible as streaming.

    The paper's claim: "most computational storage functions are feasible
    with stream computing".
    """
    return sum(1 for f in FUNCTIONS if f.streaming) / len(FUNCTIONS)
