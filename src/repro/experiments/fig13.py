"""Figure 13: throughput of standalone offloaded functions.

Stat, RAID4, RAID6 and AES over an 8 GiB array (64 MiB simulated — the
streaming kernels are size-invariant past startup) across the six Table IV
configurations. Expected shape: AssasinSp/Sb 1.3-2.0x over Baseline on the
first three (memory-intensive) functions, Sb ~= Sp + ~10%, AES flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    DEFAULT_DATA_BYTES,
    EVAL_CONFIG_NAMES,
    offload_throughputs,
    render_table,
)
from repro.ssd.firmware import OffloadResult

KERNELS = ("stat", "raid4", "raid6", "aes")


@dataclass
class Fig13Result:
    results: Dict[str, Dict[str, OffloadResult]]  # kernel -> config -> result

    def throughput(self, kernel: str, config: str) -> float:
        return self.results[kernel][config].throughput_gbps

    def speedup(self, kernel: str, config: str, baseline: str = "Baseline") -> float:
        return self.throughput(kernel, config) / self.throughput(kernel, baseline)


def run(data_bytes: int = DEFAULT_DATA_BYTES, adjusted: bool = False) -> Fig13Result:
    results = {
        kernel: offload_throughputs(kernel, data_bytes=data_bytes, adjusted=adjusted)
        for kernel in KERNELS
    }
    return Fig13Result(results=results)


def render(result: Fig13Result) -> str:
    from repro.utils.charts import grouped_bar_chart

    rows = []
    for kernel in KERNELS:
        row = [kernel]
        for config in EVAL_CONFIG_NAMES:
            row.append(result.throughput(kernel, config))
        rows.append(row)
    table = render_table(
        ("function",) + EVAL_CONFIG_NAMES,
        rows,
        title="Figure 13: standalone offload throughput (GB/s, device-level)",
    )
    chart = grouped_bar_chart(
        [
            (kernel, [(c, result.throughput(kernel, c)) for c in EVAL_CONFIG_NAMES])
            for kernel in KERNELS
        ],
        unit=" GB/s",
    )
    table = table + "\n\n" + chart
    notes = [
        "",
        "speedups over Baseline:",
    ]
    for kernel in KERNELS:
        notes.append(
            f"  {kernel:6s}: "
            + " ".join(
                f"{config}={result.speedup(kernel, config):.2f}x"
                for config in ("Prefetch", "AssasinSp", "AssasinSb")
            )
        )
    return table + "\n" + "\n".join(notes)
