"""Shared experiment plumbing: config sweeps, timing adjustment, rendering."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import CONFIG_NAMES, EngineKind, SSDConfig, all_configs
from repro.core.timing import clock_period_ns
from repro.kernels import get_kernel
from repro.ssd.device import simulate_offload
from repro.ssd.firmware import OffloadResult

EVAL_CONFIG_NAMES = CONFIG_NAMES  # Baseline, UDP, Prefetch, AssasinSp, Sb, Sb$

DEFAULT_DATA_BYTES = 64 << 20  # past startup transients, fast to retime


def adjusted_config(config: SSDConfig) -> SSDConfig:
    """Apply the Figure 20 synthesis results to a configuration.

    * Stream-buffer cores shed the dcache from the MEM stage, so their clock
      period shrinks (~0.89 ns) — frequency rises.
    * Large scratchpads become 2-cycle structures at the achievable clock.
    * The UDP lane is left untouched (the paper times it with its own
      cycle-accurate simulator).
    """
    core = config.core
    if core.engine is EngineKind.UDP:
        return config
    clock = clock_period_ns(core)
    scratchpad = core.scratchpad
    if scratchpad is not None and clock.scratchpad_cycles != scratchpad.access_latency_cycles:
        scratchpad = replace(scratchpad, access_latency_cycles=clock.scratchpad_cycles)
    pingpong = core.pingpong
    if pingpong is not None and clock.scratchpad_cycles != pingpong.access_latency_cycles:
        pingpong = replace(pingpong, access_latency_cycles=clock.scratchpad_cycles)
    adjusted_core = replace(
        core,
        frequency_ghz=1.0 / clock.period_ns,
        scratchpad=scratchpad,
        pingpong=pingpong,
    )
    return replace(config, core=adjusted_core)


def offload_throughputs(
    kernel_name: str,
    data_bytes: int = DEFAULT_DATA_BYTES,
    configs: Optional[Dict[str, SSDConfig]] = None,
    adjusted: bool = False,
    kernel_params: Optional[dict] = None,
) -> Dict[str, OffloadResult]:
    """Run one kernel across configurations; returns results by config name."""
    configs = configs or all_configs()
    results: Dict[str, OffloadResult] = {}
    for name, config in configs.items():
        cfg = adjusted_config(config) if adjusted else config
        kernel = get_kernel(kernel_name, **(kernel_params or {}))
        results[name] = simulate_offload(cfg, kernel, data_bytes=data_bytes)
    return results


def speedups_vs(results: Dict[str, OffloadResult], baseline: str = "Baseline") -> Dict[str, float]:
    base = results[baseline].throughput_gbps
    return {name: r.throughput_gbps / base for name, r in results.items()}


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (the benches print these like paper figures)."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append(
            [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in str_rows) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
