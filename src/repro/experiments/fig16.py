"""Figures 16-18: performance scalability of the ASSASIN SSD.

A byte-scan dummy kernel (1 GHz core ~ 1 GB/s) runs on 1..16 AssasinSb
cores. Expected: linear compute scaling until the 8 GB/s flash array binds
(Fig 16), >98% core utilisation while unbound (Fig 17), and balanced
channel throughput thanks to the independent FTL's striping (Fig 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import assasin_sb_config
from repro.experiments.common import render_table
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD, simulate_offload
from repro.ssd.firmware import OffloadResult

CORE_COUNTS = (1, 2, 4, 6, 8, 10, 12, 16)
DATA_BYTES = 32 << 20


@dataclass
class ScalingResult:
    per_core_peak_gbps: float
    results: Dict[int, OffloadResult]

    def throughput(self, cores: int) -> float:
        return self.results[cores].throughput_gbps

    def utilisation(self, cores: int) -> float:
        """Fig 17: achieved vs ideal (nominal core/flash bound)."""
        ideal = min(cores * self.per_core_peak_gbps, 8.0)
        return min(1.0, self.throughput(cores) / ideal)

    def channel_shares(self, cores: int) -> List[float]:
        raw = self.results[cores].channel_bytes
        total = sum(raw)
        return [b / total for b in raw] if total else [0.0] * len(raw)


def run(core_counts: Tuple[int, ...] = CORE_COUNTS, data_bytes: int = DATA_BYTES) -> ScalingResult:
    base = assasin_sb_config()
    kernel = get_kernel("scan")
    sample = ComputationalSSD(base).sample_kernel(kernel)
    per_core_peak = sample.throughput_bytes_per_ns(base.core.frequency_ghz)
    results = {
        n: simulate_offload(base.with_cores(n), kernel, data_bytes, sample=sample)
        for n in core_counts
    }
    return ScalingResult(per_core_peak_gbps=per_core_peak, results=results)


def render(result: ScalingResult) -> str:
    rows = []
    for n in sorted(result.results):
        shares = result.channel_shares(n)
        rows.append(
            [
                n,
                result.throughput(n),
                result.utilisation(n),
                max(shares) - min(shares),
            ]
        )
    from repro.utils.charts import bar_chart

    table = render_table(
        ("cores", "GB/s (Fig16)", "core util (Fig17)", "channel imbalance (Fig18)"),
        rows,
        title=(
            "Figures 16-18: scan scaling on AssasinSb "
            f"(per-core peak {result.per_core_peak_gbps:.2f} GB/s, flash bound 8 GB/s)"
        ),
    )
    chart = bar_chart(
        [(f"{n} cores", result.throughput(n)) for n in sorted(result.results)],
        unit=" GB/s",
        max_value=8.0,
    )
    return table + "\n\n" + chart
