"""Run the full reproduction and emit one consolidated report.

``python -m repro reproduce [--out report.txt] [--fast]`` executes every
table and figure driver in paper order and concatenates their rendered
output — the whole evaluation in one file.
"""

from __future__ import annotations

import io
import time
from typing import Callable, List, Tuple

from repro.experiments import (
    ext_flash,
    ext_mixed,
    ext_writepath,
    fig05,
    fig13,
    fig14,
    fig15,
    fig16,
    fig19,
    fig20,
    fig21,
    fig22,
    tables,
)


def _steps(fast: bool) -> List[Tuple[str, Callable[[], str]]]:
    data = 8 << 20 if fast else 32 << 20
    return [
        ("Table I", tables.render_table1),
        ("Table II", tables.render_table2),
        ("Table III", tables.render_table3),
        ("Figure 5 / §III-A", lambda: fig05.render(fig05.run())),
        ("Table IV", tables.render_table4),
        ("Figure 13", lambda: fig13.render(fig13.run(data_bytes=data))),
        ("Figure 14", lambda: fig14.render(fig14.run(data_bytes=data))),
        ("Figure 15", lambda: fig15.render(fig15.run())),
        ("Figures 16-18", lambda: fig16.render(fig16.run(data_bytes=data))),
        ("Figure 19", lambda: fig19.render(fig19.run(data_bytes=data))),
        ("Figure 20", lambda: fig20.render(fig20.run())),
        ("Figure 21", lambda: fig21.render(fig21.run(data_bytes=data))),
        ("Table V + Figure 22", lambda: fig22.render(fig22.run())),
        ("Extension: flash scaling", lambda: ext_flash.render(ext_flash.run(data))),
        ("Extension: mixed I/O", lambda: ext_mixed.render(ext_mixed.run(data))),
        ("Extension: write path", lambda: ext_writepath.render(ext_writepath.run(data))),
    ]


def reproduce_all(fast: bool = False, progress: bool = True) -> str:
    """Run every experiment; returns the consolidated report text."""
    out = io.StringIO()
    out.write("ASSASIN (MICRO 2022) reproduction — consolidated report\n")
    out.write("=" * 72 + "\n")
    for title, step in _steps(fast):
        start = time.time()
        if progress:
            print(f"[reproduce] {title} ...", flush=True)
        rendered = step()
        elapsed = time.time() - start
        out.write(f"\n\n### {title}  ({elapsed:.1f}s)\n\n")
        out.write(rendered)
        out.write("\n")
    return out.getvalue()
