"""Figure 5 + Section III-A: cycle decomposition of Filter on the Baseline.

A single baseline core runs the Filter offload; the paper reports
~0.63 GB/s and shows that even a perfect-but-compulsory-missing L1 leaves a
~3x memory-stall slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import baseline_core
from repro.core.core import CoreModel
from repro.experiments.common import render_table
from repro.kernels import get_kernel

SAMPLE_BYTES = 128 * 1024


@dataclass
class Fig5Result:
    throughput_gbps: float
    cycles_per_byte: float
    buckets: Dict[str, float]

    @property
    def compute_cycles(self) -> float:
        return self.buckets["compute"]

    @property
    def memory_cycles(self) -> float:
        return sum(v for k, v in self.buckets.items() if k != "compute")

    @property
    def memory_slowdown(self) -> float:
        """Total time over compute-only time (the paper's ~3x)."""
        return (self.compute_cycles + self.memory_cycles) / self.compute_cycles


def run(sample_bytes: int = SAMPLE_BYTES) -> Fig5Result:
    kernel = get_kernel("filter")
    model = CoreModel(baseline_core())
    result = model.run(kernel, kernel.make_inputs(sample_bytes))
    return Fig5Result(
        throughput_gbps=result.throughput_bytes_per_ns(1.0),
        cycles_per_byte=result.cycles_per_byte,
        buckets=dict(result.buckets.as_dict()),
    )


def render(result: Fig5Result) -> str:
    total = result.compute_cycles + result.memory_cycles
    rows = [
        (name, cycles, 100.0 * cycles / total)
        for name, cycles in result.buckets.items()
        if cycles > 0
    ]
    table = render_table(
        ("component", "cycles", "% of total"),
        rows,
        title="Figure 5: Filter cycle decomposition on Baseline (1 core)",
    )
    footer = (
        f"\nthroughput: {result.throughput_gbps:.2f} GB/s "
        f"(paper: ~0.63 GB/s); memory slowdown: {result.memory_slowdown:.1f}x "
        "(paper: ~3x)"
    )
    return table + footer
