"""Extension experiment: write-path scomp (paper Section V-D).

Erasure coding, encryption, and compression applied inline to data being
*written*: host pages stream through the compute engines and the results
(plus the source data, for parity kernels) land on flash. DRAM-staged
engines shuttle every byte through the SSD DRAM before it even reaches the
flash, so the memory wall hits the write path just as hard as the read
path — and ASSASIN removes it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import all_configs
from repro.experiments.common import render_table
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD

DATA_BYTES = 16 << 20
KERNELS = ("raid4", "raid6", "aes", "compress")
CONFIGS = ("Baseline", "AssasinSp", "AssasinSb")


@dataclass
class WritePathResult:
    # kernel -> config -> (GB/s, limiter)
    results: Dict[str, Dict[str, Tuple[float, str]]]

    def throughput(self, kernel: str, config: str) -> float:
        return self.results[kernel][config][0]

    def speedup(self, kernel: str, config: str = "AssasinSb") -> float:
        return self.throughput(kernel, config) / self.throughput(kernel, "Baseline")


def run(data_bytes: int = DATA_BYTES, kernels=KERNELS, config_names=CONFIGS) -> WritePathResult:
    configs = all_configs()
    results: Dict[str, Dict[str, Tuple[float, str]]] = {}
    for kernel_name in kernels:
        per_kernel: Dict[str, Tuple[float, str]] = {}
        for name in config_names:
            device = ComputationalSSD(configs[name])
            result = device.offload_write_path(get_kernel(kernel_name), data_bytes)
            per_kernel[name] = (result.throughput_gbps, result.limiter)
        results[kernel_name] = per_kernel
    return WritePathResult(results=results)


def render(result: WritePathResult) -> str:
    configs = list(next(iter(result.results.values())))
    rows = []
    for kernel, per_config in result.results.items():
        row = [kernel]
        for config in configs:
            gbps, limiter = per_config[config]
            row.append(f"{gbps:.2f} ({limiter})")
        rows.append(row)
    return render_table(
        ("kernel",) + tuple(configs),
        rows,
        title="Extension: write-path scomp ingest throughput (GB/s)",
    )
