"""Tables I, II and IV: the survey and configuration tables."""

from __future__ import annotations

from repro.config import all_configs
from repro.experiments.common import render_table
from repro.survey.functions import (
    FUNCTIONS,
    STUDIES,
    Domain,
    domain_counts,
    streaming_fraction,
)


def render_table1() -> str:
    rows = []
    for study in STUDIES:
        rows.append(
            [
                study.name,
                "x" if Domain.FILE_SYSTEM in study.domains else "",
                "x" if Domain.DATABASE in study.domains else "",
                "x" if Domain.OTHER in study.domains else "",
            ]
        )
    counts = domain_counts()
    rows.append(
        ["TOTAL", counts[Domain.FILE_SYSTEM], counts[Domain.DATABASE], counts[Domain.OTHER]]
    )
    return render_table(
        ("study", "file system", "database", "other"),
        rows,
        title="Table I: functions proposed for computational storage (22 studies)",
    )


def render_table2() -> str:
    rows = [
        [f.name, f.streaming_data, f.function_state,
         "yes" if f.streaming else "no", f.kernel or "-"]
        for f in FUNCTIONS
    ]
    table = render_table(
        ("function", "streaming", "function state", "streamable", "kernel"),
        rows,
        title="Table II: stream-computing implementations of storage functions",
    )
    return table + f"\nstreaming fraction: {streaming_fraction():.0%}"


def render_table3() -> str:
    """Table III: the stream ISA extension, with its custom-0 encodings."""
    from repro.isa.instructions import Instr
    from repro.isa.stream_ext import encode_stream_instr

    rows = [
        (
            "sload rd, sid, w",
            "pop w bytes from input stream head into rd",
            encode_stream_instr(Instr("sload", rd=10, sid=0, width=4)),
        ),
        (
            "sstore rs2, sid, w",
            "append low w bytes of rs2 to output stream",
            encode_stream_instr(Instr("sstore", rs2=10, sid=0, width=4)),
        ),
        (
            "sskip sid, imm",
            "advance input stream head by imm bytes",
            encode_stream_instr(Instr("sskip", sid=0, imm=16)),
        ),
        (
            "savail rd, sid",
            "rd = bytes buffered in the stream (CSR read)",
            encode_stream_instr(Instr("savail", rd=10, sid=0)),
        ),
        (
            "seos rd, sid",
            "rd = 1 if the input stream is exhausted",
            encode_stream_instr(Instr("seos", rd=10, sid=0)),
        ),
    ]
    return render_table(
        ("instruction", "description", "encoding [31:0] (example)"),
        [(m, d, f"{w:#010x}") for m, d, w in rows],
        title="Table III: stream ISA extension (custom-0 opcode space)",
    )


def render_table4() -> str:
    rows = []
    for name, cfg in all_configs().items():
        core = cfg.core
        mem_parts = []
        if core.l1d:
            mem_parts.append(f"L1D {core.l1d.size_bytes // 1024}KB/{core.l1d.ways}w")
        if core.l2:
            mem_parts.append(f"L2 {core.l2.size_bytes // 1024}KB/{core.l2.ways}w")
        if core.prefetcher.value != "none":
            mem_parts.append(f"{core.prefetcher.value.upper()} prefetcher")
        if core.scratchpad:
            mem_parts.append(f"SP {core.scratchpad.size_bytes // 1024}KB")
        if core.pingpong:
            mem_parts.append("ping-pong 64KB I + 64KB O")
        if core.streambuffer:
            sb = core.streambuffer
            mem_parts.append(f"SB 64KB I + 64KB O (S={sb.num_streams} P={sb.pages_per_stream})")
        rows.append(
            [
                name,
                core.data_source.value,
                cfg.num_cores,
                f"{core.frequency_ghz:g} GHz",
                "+stream ISA" if core.stream_isa else core.engine.value,
                "; ".join(mem_parts),
            ]
        )
    return render_table(
        ("config", "data source", "cores", "clock", "ISA", "per-core MemArch"),
        rows,
        title="Table IV: configurations of in-SSD compute engines",
    )
