"""Figure 19: sensitivity to flash data layout skew.

ASSASIN's SSD-level crossbar is compared against the channel-local
alternative (Figure 7) for layouts with Skew in {0, 0.25, 0.5, 0.75, 1}.
The crossbar pools all cores against whatever channels hold data, so it
degrades only when the heaviest channel's bandwidth physically binds; the
channel-local design additionally strands the compute of lightly loaded
channels. The gap widens with the kernel's compute intensity, so the sweep
runs both the scan dummy and the compute-heavier RAID6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import SSDConfig, assasin_sb_config, assasin_sb_core
from repro.experiments.common import render_table
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD, simulate_offload

SKEWS = (0.0, 0.25, 0.5, 0.75, 1.0)
DATA_BYTES = 32 << 20
KERNELS = ("scan", "raid6")


def channel_local_config() -> SSDConfig:
    return SSDConfig(
        name="ChannelLocal", core=assasin_sb_core(), num_cores=8, crossbar=False
    )


@dataclass
class Fig19Result:
    # kernel -> skew -> (crossbar GB/s, channel-local GB/s)
    results: Dict[str, Dict[float, Tuple[float, float]]]

    def advantage(self, kernel: str, skew: float) -> float:
        xbar, local = self.results[kernel][skew]
        return xbar / local if local else float("inf")


def run(data_bytes: int = DATA_BYTES, skews=SKEWS, kernels=KERNELS) -> Fig19Result:
    results: Dict[str, Dict[float, Tuple[float, float]]] = {}
    xbar_cfg = assasin_sb_config()
    local_cfg = channel_local_config()
    for kernel_name in kernels:
        kernel = get_kernel(kernel_name)
        sample = ComputationalSSD(xbar_cfg).sample_kernel(kernel)
        per_kernel: Dict[float, Tuple[float, float]] = {}
        for skew in skews:
            xbar = simulate_offload(
                xbar_cfg, kernel, data_bytes, layout_skew=skew, sample=sample
            ).throughput_gbps
            local = simulate_offload(
                local_cfg, kernel, data_bytes, layout_skew=skew, sample=sample
            ).throughput_gbps
            per_kernel[skew] = (xbar, local)
        results[kernel_name] = per_kernel
    return Fig19Result(results=results)


def render(result: Fig19Result) -> str:
    sections = []
    for kernel, sweep in result.results.items():
        rows = [
            [skew, xbar, local, xbar / local if local else float("inf")]
            for skew, (xbar, local) in sorted(sweep.items())
        ]
        sections.append(
            render_table(
                ("skew", "ASSASIN xbar GB/s", "channel-local GB/s", "advantage"),
                rows,
                title=f"Figure 19 ({kernel}): layout-skew sensitivity",
            )
        )
    return "\n\n".join(sections)
