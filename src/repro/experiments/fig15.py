"""Figure 15: end-to-end TPC-H latency (host + computational SSD).

For all 22 queries: pure-CPU (disaggregated storage), Baseline offload, and
AssasinSb offload. Paper shape: Baseline ~1.9x over pure CPU (GeoMean);
AssasinSb a further 1.1-1.5x (GeoMean ~1.3x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.engine import AnalyticsEngine, QueryLatency
from repro.config import all_configs
from repro.experiments.common import adjusted_config, render_table
from repro.kernels import get_kernel
from repro.ssd.device import simulate_offload
from repro.utils.stats import geomean

PSF_DATA_BYTES = 32 << 20
DEFAULT_CONFIGS = ("Baseline", "UDP", "Prefetch", "AssasinSp", "AssasinSb")


def measure_psf_rates(
    config_names=DEFAULT_CONFIGS, data_bytes: int = PSF_DATA_BYTES, adjusted: bool = True
) -> Dict[str, float]:
    """Device PSF throughput (bytes/ns) per configuration."""
    configs = all_configs()
    rates = {}
    for name in config_names:
        cfg = adjusted_config(configs[name]) if adjusted else configs[name]
        kernel = get_kernel("psf", filter_lo=0, filter_hi=3_000_000)
        rates[name] = simulate_offload(cfg, kernel, data_bytes=data_bytes).throughput_bytes_per_ns
    return rates


@dataclass
class Fig15Result:
    latencies: Dict[str, Dict[int, QueryLatency]]
    psf_rates: Dict[str, float]

    def speedups(self, over: str, under: str) -> List[float]:
        return [
            self.latencies[over][n].total_ns / self.latencies[under][n].total_ns
            for n in sorted(self.latencies[over])
        ]

    @property
    def baseline_over_pure(self) -> float:
        return geomean(self.speedups("PureCPU", "Baseline"))

    @property
    def sb_over_baseline(self) -> float:
        return geomean(self.speedups("Baseline", "AssasinSb"))


def run(
    gen_scale_factor: float = 0.004,
    target_scale_factor: float = 10.0,
    psf_rates: Optional[Dict[str, float]] = None,
    queries: Optional[List[int]] = None,
) -> Fig15Result:
    rates = psf_rates or measure_psf_rates()
    engine = AnalyticsEngine(gen_scale_factor, target_scale_factor)
    latencies = engine.figure15(rates, queries=queries)
    return Fig15Result(latencies=latencies, psf_rates=rates)


def render(result: Fig15Result) -> str:
    series = list(result.latencies)
    rows = []
    for n in sorted(result.latencies["PureCPU"]):
        rows.append([f"Q{n}"] + [result.latencies[s][n].total_ms for s in series])
    table = render_table(
        ("query",) + tuple(series),
        rows,
        title="Figure 15: end-to-end TPC-H latency (ms, SF10 model)",
    )
    footer = (
        f"\nGeoMean Baseline over PureCPU: {result.baseline_over_pure:.2f}x (paper ~1.9x)"
        f"\nGeoMean AssasinSb over Baseline: {result.sb_over_baseline:.2f}x (paper ~1.3x)"
    )
    return table + footer
