"""Extension experiment: interleaving conventional I/O with an offload.

Section V-A claims ASSASIN "can support flexible interleaving of
read/write requests that do not exploit computational storage with
computational storage operations" because the FTL stays independent and
the crossbar decouples data placement from compute placement. This sweep
runs the scan offload while a host issues conventional page reads at
increasing rates, measuring both the offload's throughput and the host
reads' service latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import assasin_sb_config
from repro.experiments.common import render_table
from repro.kernels import get_kernel
from repro.ssd.device import ComputationalSSD
from repro.ssd.firmware import BackgroundIO

DATA_BYTES = 16 << 20
HOST_READ_RATES_GBPS = (0.0, 0.5, 1.0, 2.0)
PAGE = 4096


@dataclass
class MixedIOResult:
    # host read rate GB/s -> (offload GB/s, host mean latency us, p99 us)
    results: Dict[float, Tuple[float, float, float]]

    def offload_gbps(self, rate: float) -> float:
        return self.results[rate][0]


def run(data_bytes: int = DATA_BYTES, rates=HOST_READ_RATES_GBPS) -> MixedIOResult:
    kernel = get_kernel("scan")
    results: Dict[float, Tuple[float, float, float]] = {}
    for rate in rates:
        device = ComputationalSSD(assasin_sb_config())
        sample = device.sample_kernel(kernel)
        background = None
        if rate > 0:
            interval = PAGE / rate  # ns between host page reads
            # The host re-reads a window of the mounted dataset.
            background = BackgroundIO(lpas=list(range(0, 2048, 7)), interval_ns=interval)
        result = device.offload(kernel, data_bytes, sample=sample, background=background)
        if background is not None and background.latencies_ns:
            mean_us = background.mean_latency_ns / 1e3
            p99_us = background.p99_latency_ns / 1e3
        else:
            mean_us = p99_us = 0.0
        results[rate] = (result.throughput_gbps, mean_us, p99_us)
    return MixedIOResult(results=results)


def render(result: MixedIOResult) -> str:
    rows = [
        [f"{rate:.1f}", *map(float, values)]
        for rate, values in sorted(result.results.items())
    ]
    return render_table(
        ("host reads GB/s", "offload GB/s", "host mean lat (us)", "host p99 lat (us)"),
        rows,
        title="Extension: scomp offload interleaved with conventional host reads",
    )
