"""Figure 14: offloaded Parse-Select-Filter database pipeline throughput.

The paper offloads PSF for TPC-H SF10 through SparkSQL's datasource API and
reports per-query device throughput. Queries differ mainly in the pushed
predicate's selectivity and the projected columns, so this experiment
sweeps three representative PSF shapes (selective, moderate, wide) across
the six configurations. Expected shape: Prefetch ~ +15%, UDP ~1.3x,
AssasinSp between them, AssasinSb = AssasinSp + ~18% (1.5-1.8x Baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    EVAL_CONFIG_NAMES,
    offload_throughputs,
    render_table,
)
from repro.ssd.firmware import OffloadResult
from repro.utils.stats import geomean

DATA_BYTES = 32 << 20

#: Representative pushdown shapes: (name, filter range hi) over the
#: 0..10M uniform field domain -> selectivity.
PSF_SHAPES = {
    "psf-selective": dict(filter_lo=0, filter_hi=200_000),  # ~2% (Q6-like)
    "psf-moderate": dict(filter_lo=0, filter_hi=3_000_000),  # ~30% (Q7/Q8-like)
    "psf-wide": dict(filter_lo=0, filter_hi=9_500_000),  # ~95% (Q1-like)
}


@dataclass
class Fig14Result:
    results: Dict[str, Dict[str, OffloadResult]]  # shape -> config -> result

    def throughput(self, shape: str, config: str) -> float:
        return self.results[shape][config].throughput_gbps

    def geomean_speedup(self, config: str, baseline: str = "Baseline") -> float:
        return geomean(
            [
                self.throughput(shape, config) / self.throughput(shape, baseline)
                for shape in self.results
            ]
        )


#: Nominal pushed-filter selectivity of each PSF shape (for mapping the
#: per-query view onto the simulated shapes).
SHAPE_SELECTIVITY = {"psf-selective": 0.02, "psf-moderate": 0.30, "psf-wide": 0.95}


def per_query_speedups(result: "Fig14Result", config: str) -> Dict[int, float]:
    """The paper's per-TPC-H-query view of Figure 14.

    Each lineitem-scanning query is matched to the simulated PSF shape whose
    pushed-filter selectivity is nearest its own (from the query metadata),
    so the full 18-bar chart comes from the three simulated pipelines.
    """
    from repro.analytics.queries import query_meta, query_numbers

    out: Dict[int, float] = {}
    for n in query_numbers():
        meta = query_meta(n)
        if not meta.uses_lineitem:
            continue
        shape = min(
            SHAPE_SELECTIVITY,
            key=lambda s: abs(SHAPE_SELECTIVITY[s] - meta.lineitem_row_selectivity),
        )
        out[n] = result.throughput(shape, config) / result.throughput(shape, "Baseline")
    return out


def run(data_bytes: int = DATA_BYTES, adjusted: bool = False) -> Fig14Result:
    results = {}
    for shape, params in PSF_SHAPES.items():
        results[shape] = offload_throughputs(
            "psf", data_bytes=data_bytes, adjusted=adjusted, kernel_params=params
        )
    return Fig14Result(results=results)


def render(result: Fig14Result) -> str:
    rows = []
    for shape in result.results:
        rows.append([shape] + [result.throughput(shape, c) for c in EVAL_CONFIG_NAMES])
    rows.append(
        ["GeoMean speedup"]
        + [result.geomean_speedup(c) for c in EVAL_CONFIG_NAMES]
    )
    table = render_table(
        ("pipeline",) + EVAL_CONFIG_NAMES,
        rows,
        title="Figure 14: PSF pipeline throughput (GB/s) and speedup vs Baseline",
    )
    per_query = per_query_speedups(result, "AssasinSb")
    lines = ["", "per-query AssasinSb speedup (paper's per-query bars):"]
    items = sorted(per_query.items())
    for chunk_start in range(0, len(items), 6):
        chunk = items[chunk_start : chunk_start + 6]
        lines.append("  " + "  ".join(f"Q{n}={s:.2f}x" for n, s in chunk))
    return table + "\n".join(lines)
