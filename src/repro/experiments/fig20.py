"""Figure 20: synthesised timing of the ASSASIN memory-architecture options.

Access times for scratchpads of varied size and port width versus the
stream buffer's prefetched head FIFO, plus the resulting core clock period
per configuration. Anchors from the paper: the SB head reaches ~0.5 ns even
with a 64 B interface; a 64 KB scratchpad with an 8 B port needs 2 cycles
at 1 GHz; the AssasinSb core's clock period shrinks ~11 % (critical path
moves to IF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import CONFIG_NAMES, all_configs
from repro.core.timing import BASE_PERIOD_NS, ClockResult, clock_period_ns
from repro.experiments.common import render_table
from repro.power.cacti import (
    scratchpad_spec,
    sram_access_time_ns,
    streambuffer_head_fifo_spec,
)
from repro.utils.units import KIB

SP_SIZES = (8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB)
SP_WIDTHS = (8, 64)
SB_WIDTHS = (1, 8, 64)


@dataclass
class Fig20Result:
    scratchpad_ns: Dict[Tuple[int, int], float]  # (size, width) -> access ns
    streambuffer_ns: Dict[int, float]  # width -> access ns
    clocks: Dict[str, ClockResult]  # config -> clock result

    @property
    def sb_cycle_reduction(self) -> float:
        sb = self.clocks["AssasinSb"].period_ns
        return 1.0 - sb / BASE_PERIOD_NS


def run() -> Fig20Result:
    scratchpad = {
        (size, width): sram_access_time_ns(scratchpad_spec(size, width))
        for size in SP_SIZES
        for width in SP_WIDTHS
    }
    streambuffer = {
        width: sram_access_time_ns(streambuffer_head_fifo_spec(width))
        for width in SB_WIDTHS
    }
    clocks = {name: clock_period_ns(cfg.core) for name, cfg in all_configs().items()}
    return Fig20Result(scratchpad_ns=scratchpad, streambuffer_ns=streambuffer, clocks=clocks)


def render(result: Fig20Result) -> str:
    sp_rows: List[List[object]] = []
    for size in SP_SIZES:
        sp_rows.append(
            [f"SP {size // KIB}KB"]
            + [result.scratchpad_ns[(size, w)] for w in SP_WIDTHS]
        )
    sp_table = render_table(
        ("structure",) + tuple(f"{w}B port (ns)" for w in SP_WIDTHS),
        sp_rows,
        title="Figure 20: SRAM access times (scratchpads)",
    )
    sb_rows = [[f"SB head FIFO {w}B", t] for w, t in result.streambuffer_ns.items()]
    sb_table = render_table(("structure", "access (ns)"), sb_rows)
    clock_rows = [
        [name, result.clocks[name].period_ns, result.clocks[name].scratchpad_cycles,
         result.clocks[name].critical_stage]
        for name in CONFIG_NAMES
        if name in result.clocks
    ]
    clock_table = render_table(
        ("config", "clock period (ns)", "SP cycles", "critical stage"),
        clock_rows,
        title=f"Clock periods (AssasinSb cycle reduction: {result.sb_cycle_reduction:.0%})",
    )
    return "\n\n".join([sp_table, sb_table, clock_table])
