"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the rows/series the paper reports. The
benchmarks under ``benchmarks/`` execute these and assert the paper's
qualitative shape; the examples print them.
"""

from repro.experiments.common import (
    EVAL_CONFIG_NAMES,
    adjusted_config,
    offload_throughputs,
    render_table,
)

__all__ = [
    "EVAL_CONFIG_NAMES",
    "adjusted_config",
    "offload_throughputs",
    "render_table",
]
