"""Figure 21: throughput after the Figure 20 timing adjustment.

Standalone functions and the PSF pipeline re-run with each configuration's
achievable clock (AssasinSb at ~1.12 GHz, scratchpad configs paying the
2-cycle access). Paper: AssasinSb improves to 1.5-2.4x over Baseline;
AssasinSp degrades to 1.1-1.4x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import fig13, fig14
from repro.experiments.common import EVAL_CONFIG_NAMES, render_table
from repro.utils.stats import geomean


@dataclass
class Fig21Result:
    standalone: fig13.Fig13Result
    psf: fig14.Fig14Result

    def speedup(self, workload: str, config: str) -> float:
        if workload in fig13.KERNELS:
            return self.standalone.speedup(workload, config)
        return self.psf.geomean_speedup(config)

    def speedup_range(self, config: str):
        speedups = [self.standalone.speedup(k, config) for k in fig13.KERNELS]
        speedups.append(self.psf.geomean_speedup(config))
        return min(speedups), max(speedups), geomean(speedups)


def run(data_bytes: int = 32 << 20) -> Fig21Result:
    return Fig21Result(
        standalone=fig13.run(data_bytes=data_bytes, adjusted=True),
        psf=fig14.run(adjusted=True),
    )


def render(result: Fig21Result) -> str:
    workloads = list(fig13.KERNELS) + ["psf (GeoMean)"]
    rows = []
    for workload in fig13.KERNELS:
        rows.append(
            [workload]
            + [result.standalone.speedup(workload, c) for c in EVAL_CONFIG_NAMES]
        )
    rows.append(
        ["psf (GeoMean)"] + [result.psf.geomean_speedup(c) for c in EVAL_CONFIG_NAMES]
    )
    table = render_table(
        ("workload",) + EVAL_CONFIG_NAMES,
        rows,
        title="Figure 21: timing-adjusted speedup over Baseline",
    )
    sp = result.speedup_range("AssasinSp")
    sb = result.speedup_range("AssasinSb")
    footer = (
        f"\nAssasinSp range: {sp[0]:.2f}-{sp[1]:.2f}x (paper 1.1-1.4x)"
        f"\nAssasinSb range: {sb[0]:.2f}-{sb[1]:.2f}x (paper 1.5-2.4x)"
    )
    return table + footer
