"""Table V + Figure 22: silicon cost and efficiency of the configurations.

Table V lists per-subcomponent power/area; Figure 22 turns the timing-
adjusted speedups into power efficiency (paper: ~2.0x for ASSASIN) and area
efficiency (~3.2x) relative to the Baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import all_configs
from repro.experiments.common import render_table
from repro.power.models import ConfigCost, EfficiencyRow, efficiency_table, table5_components

#: Configurations Table V itemises (Baseline, the accelerator, ASSASIN).
TABLE5_CONFIGS = ("Baseline", "UDP", "AssasinSb")


@dataclass
class Fig22Result:
    costs: Dict[str, ConfigCost]
    efficiency: List[EfficiencyRow]

    def row(self, name: str) -> EfficiencyRow:
        for row in self.efficiency:
            if row.name == name:
                return row
        raise KeyError(name)


def run(speedups: Optional[Dict[str, float]] = None) -> Fig22Result:
    """``speedups`` come from Figure 21; sensible defaults otherwise."""
    configs = all_configs()
    costs = table5_components(configs)
    speedups = speedups or {"Baseline": 1.0, "UDP": 1.3, "AssasinSb": 1.9}
    rows = efficiency_table(configs, speedups)
    return Fig22Result(costs=costs, efficiency=rows)


def render(result: Fig22Result) -> str:
    sections = []
    for name in TABLE5_CONFIGS:
        cost = result.costs[name]
        rows = [[c.name, c.area_mm2, c.power_mw] for c in cost.components]
        rows.append(["TOTAL per core", cost.per_core_area_mm2, cost.per_core_power_mw])
        rows.append(
            [f"TOTAL x{cost.num_cores} cores", cost.total_area_mm2, cost.total_power_mw]
        )
        sections.append(
            render_table(
                ("component", "area (mm^2)", "power (mW)"),
                rows,
                title=f"Table V ({name})",
            )
        )
    eff_rows = [
        [r.name, r.speedup, r.power_ratio, r.area_ratio, r.power_efficiency, r.area_efficiency]
        for r in result.efficiency
    ]
    sections.append(
        render_table(
            ("config", "speedup", "power ratio", "area ratio", "power eff", "area eff"),
            eff_rows,
            title="Figure 22: efficiency vs Baseline (paper: ASSASIN 2.0x power, 3.2x area)",
        )
    )
    return "\n\n".join(sections)
