"""Extension experiment: scaling flash bandwidth (the paper's motivation).

Sections I/III argue that flash bandwidth keeps growing (ONFI 4.2's
1.6/3.2 GB/s channels, ONFI 5.0's 2400 MT/s) while the SSD-DRAM pool
cannot follow — so DRAM-staged computational SSDs fall further behind with
every flash generation, and ASSASIN's advantage *widens*. This sweep makes
that trend measurable: the same Stat offload across per-channel bandwidths,
Baseline vs AssasinSb.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.config import assasin_sb_config, baseline_config
from repro.experiments.common import render_table
from repro.kernels import get_kernel
from repro.ssd.device import simulate_offload

#: Per-channel bandwidths in GB/s; 1.0 is the paper's Table IV setting,
#: 1.6/3.2 are ONFI 4.2's 8b/16b channels, 2.4 is ONFI 5.0.
CHANNEL_BANDWIDTHS = (0.5, 1.0, 1.6, 2.4, 3.2)
DATA_BYTES = 32 << 20


@dataclass
class FlashScalingResult:
    # bandwidth -> (Baseline GB/s, AssasinSb GB/s)
    results: Dict[float, Tuple[float, float]]

    def advantage(self, bandwidth: float) -> float:
        base, sb = self.results[bandwidth]
        return sb / base


def run(data_bytes: int = DATA_BYTES, bandwidths=CHANNEL_BANDWIDTHS) -> FlashScalingResult:
    kernel = get_kernel("stat")
    results: Dict[float, Tuple[float, float]] = {}
    for bw in bandwidths:
        out = []
        for make in (baseline_config, assasin_sb_config):
            cfg = make()
            flash = replace(cfg.flash, channel_bandwidth_bytes_per_ns=bw)
            cfg = replace(cfg, flash=flash)
            out.append(simulate_offload(cfg, kernel, data_bytes).throughput_gbps)
        results[bw] = (out[0], out[1])
    return FlashScalingResult(results=results)


def render(result: FlashScalingResult) -> str:
    rows = [
        [f"{bw:.1f} GB/s/ch ({bw * 8:.0f} total)", base, sb, sb / base]
        for bw, (base, sb) in sorted(result.results.items())
    ]
    table = render_table(
        ("flash generation", "Baseline GB/s", "AssasinSb GB/s", "advantage"),
        rows,
        title="Extension: ASSASIN's advantage vs flash-bandwidth scaling (Stat)",
    )
    return table + (
        "\nThe Baseline is pinned by the SSD-DRAM wall; ASSASIN rides the"
        "\nflash array until its cores bind — the memory-wall argument of"
        "\nSections I/III, measured."
    )
