"""Fleet campaigns: build N devices, shard, preload, serve, verify.

A :class:`FleetCampaign` is the rack-scale analogue of
:class:`~repro.faults.campaign.FaultCampaign`:

1. **Build** — N :class:`~repro.ssd.device.ComputationalSSD` peers of one
   Table IV configuration; scomp kernels are core-phase sampled **once**
   (the devices are identical) and the sample shared across every
   per-device :class:`~repro.serve.service.DeviceService`.
2. **Shard** — each tenant's fleet-LPA region splits into
   ``shard_pages``-page shards placed on the consistent-hash ring; every
   fleet page gets a device-local LPA from its home device's allocator.
3. **Preload** — golden bytes (deterministic per fleet LPA) are programmed
   into the chips at time zero, the cross-device RAID parity is computed
   and programmed on member-disjoint devices, and every plane/bus timeline
   is rewound ("manufactured" state).
4. **Serve** — the :class:`~repro.fleet.router.FleetRouter` runs the whole
   fleet on one shared simulation kernel.
5. **Verify** — with a killed device, every page it held is reconstructed
   from surviving peers and compared bit-exactly against the golden copy.

Same seed → identical placement, identical golden bytes, identical routing
and hedging decisions, identical :meth:`FleetReport.fingerprint_hex`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.config import FaultConfig, SSDConfig
from repro.errors import FleetError
from repro.faults.campaign import golden_page
from repro.fleet.config import FleetConfig
from repro.fleet.metrics import FleetReport
from repro.fleet.placement import HashRing
from repro.fleet.replication import CrossDeviceRaidMap, PageAddr, xor_pages
from repro.fleet.router import FleetRouter
from repro.kernels import get_kernel
from repro.serve.service import DeviceService
from repro.serve.workload import TenantSpec, WorkloadGenerator


def default_fleet_tenants() -> List[TenantSpec]:
    """The CLI's stock fleet mix: a hot scomp tenant, a read tenant, and a
    write tenant, with regions wide enough for many shards per device."""
    return [
        TenantSpec(
            name="hot", weight=4.0, kind="scomp", kernel="stat",
            pages_per_command=8, interarrival_ns=12_000.0, region_pages=1024,
        ),
        TenantSpec(
            name="reader", weight=1.0, kind="read",
            pages_per_command=4, interarrival_ns=8_000.0, region_pages=1024,
        ),
        TenantSpec(
            name="writer", weight=1.0, kind="write",
            pages_per_command=4, interarrival_ns=25_000.0, region_pages=512,
        ),
    ]


class ShardedWorkloadGenerator(WorkloadGenerator):
    """A tenant traffic source whose every command stays inside one shard.

    Confining a command to a single ``shard_pages``-page run is what makes
    one device able to serve it whole: the consistent-hash ring places
    shards, not pages, so all of a command's pages share a home.
    """

    def __init__(
        self, spec: TenantSpec, index: int, seed: int, lpa_base: int, shard_pages: int
    ) -> None:
        if spec.pages_per_command > shard_pages:
            raise FleetError(
                f"tenant {spec.name!r}: {spec.pages_per_command} pages/command "
                f"exceed the {shard_pages}-page shard"
            )
        if spec.region_pages < shard_pages:
            raise FleetError(
                f"tenant {spec.name!r}: region smaller than one shard"
            )
        super().__init__(spec, index, seed, lpa_base)
        self.shard_pages = shard_pages
        self.num_shards = spec.region_pages // shard_pages

    def _pick_lpas(self) -> List[int]:
        shard = self.rng.randrange(self.num_shards)
        span = self.shard_pages - self.spec.pages_per_command
        offset = self.rng.randrange(span + 1) if span else 0
        start = self.lpa_base + shard * self.shard_pages + offset
        return list(range(start, start + self.spec.pages_per_command))


class DeviceStub:
    """Config-only placeholder for a device another shard worker owns.

    A restricted campaign (``device_subset``) still runs the *whole*
    placement/preload bookkeeping — page map, local-LPA allocators, RAID
    grouping — so every worker agrees on it bit-exactly, but only
    instantiates (and programs) the devices it owns.  The rest are stubs:
    anything beyond ``.config`` raising loudly is the guard that a
    non-owned device is never actually served.
    """

    __slots__ = ("config",)

    def __init__(self, config: SSDConfig) -> None:
        self.config = config


class FleetCampaign:
    """One seeded multi-device run against one device configuration."""

    def __init__(
        self,
        config: SSDConfig,
        fleet_config: Optional[FleetConfig] = None,
        tenants: Optional[Sequence[TenantSpec]] = None,
        duration_ns: float = 400_000.0,
        seed: int = 0,
        verify_integrity: bool = True,
        device_subset: Optional[Sequence[int]] = None,
    ) -> None:
        if duration_ns <= 0:
            raise FleetError("fleet campaign duration must be positive")
        self.config = config
        self.fleet = fleet_config or FleetConfig()
        self.tenants = list(tenants) if tenants is not None else default_fleet_tenants()
        self.duration_ns = duration_ns
        self.seed = seed
        self.verify_integrity = verify_integrity
        if device_subset is not None:
            bad = [d for d in device_subset if not 0 <= d < self.fleet.num_devices]
            if bad:
                raise FleetError(f"device_subset {bad} outside 0..{self.fleet.num_devices - 1}")
        self.device_subset = (
            None if device_subset is None else sorted(set(device_subset))
        )
        self._owned: set = set()
        # Populated by run(), kept for white-box inspection in tests.
        self.devices: List = []
        self.services: List[DeviceService] = []
        self.generators: List[ShardedWorkloadGenerator] = []
        self.ring: Optional[HashRing] = None
        self.page_map: Dict[int, PageAddr] = {}
        self.raid_map: Optional[CrossDeviceRaidMap] = None
        self.golden: Dict[PageAddr, bytes] = {}
        self.router: Optional[FleetRouter] = None

    # -- build -----------------------------------------------------------------

    def _build(self) -> None:
        from repro.ssd.device import ComputationalSSD

        cfg = self.fleet
        self._owned = (
            set(range(cfg.num_devices))
            if self.device_subset is None
            else set(self.device_subset)
        )
        self.devices = [
            ComputationalSSD(self.config) if index in self._owned
            else DeviceStub(self.config)
            for index in range(cfg.num_devices)
        ]

        # Sample each scomp kernel's core phase once; the peers are
        # identical hardware, so the (deterministic) sample is shared.
        # Any owned device works — the sample depends only on the config
        # (and the engine holds no telemetry handle, so sampling leaves no
        # trace in the device counters).
        samples: Dict[str, object] = {}
        if self._owned:
            sampler = self.devices[min(self._owned)]
            for spec in self.tenants:
                if spec.kind == "scomp" and spec.kernel not in samples:
                    samples[spec.kernel] = sampler.sample_kernel(
                        get_kernel(spec.kernel)
                    )
        self.services = [
            DeviceService(
                device, samples=samples, cores_name=f"fleet.d{index}.cores"
            )
            if index in self._owned
            else None
            for index, device in enumerate(self.devices)
        ]

        self.generators = []
        base = 0
        for index, spec in enumerate(self.tenants):
            self.generators.append(
                ShardedWorkloadGenerator(
                    spec, index, self.seed, base, cfg.shard_pages
                )
            )
            base += spec.region_pages

        self.ring = HashRing(
            list(range(cfg.num_devices)), virtual_nodes=cfg.virtual_nodes
        )

    # -- preload ---------------------------------------------------------------

    def _preload(self) -> None:
        """Place shards, program golden data + cross-device parity."""
        cfg = self.fleet
        page_bytes = self.config.flash.page_bytes
        next_local = [0] * cfg.num_devices

        def alloc(device: int) -> int:
            local = next_local[device]
            next_local[device] = local + 1
            return local

        # Shard → home device; every fleet page gets a local LPA there.
        fleet_order: List[int] = []
        per_device_locals: List[List[int]] = [[] for _ in range(cfg.num_devices)]
        for gen in self.generators:
            for shard in range(gen.num_shards):
                home = self.ring.lookup(f"{gen.spec.name}/{shard}")
                for offset in range(cfg.shard_pages):
                    fleet_lpa = gen.lpa_base + shard * cfg.shard_pages + offset
                    local = alloc(home)
                    self.page_map[fleet_lpa] = (home, local)
                    per_device_locals[home].append(local)
                    fleet_order.append(fleet_lpa)

        for index, (device, locals_) in enumerate(zip(self.devices, per_device_locals)):
            if index in self._owned:
                device.ftl.populate(locals_)

        # Golden bytes are computed for *every* page (parity needs the
        # whole stripe) but only programmed onto owned devices.
        self.golden = {}
        for fleet_lpa in fleet_order:
            addr = self.page_map[fleet_lpa]
            data = golden_page(self.seed, fleet_lpa, page_bytes)
            self.golden[addr] = data
            if addr[0] in self._owned:
                self._program(addr, data)

        # Cross-device stripes: one parity page per group, on a device
        # disjoint from every member, allocated from that device's
        # continuing local-LPA counter.
        self.raid_map = CrossDeviceRaidMap.build(
            [self.page_map[fleet_lpa] for fleet_lpa in fleet_order],
            cfg.raid_k,
            list(range(cfg.num_devices)),
            alloc,
        )
        for group in range(len(self.raid_map)):
            members = self.raid_map.members(group)
            parity_addr = self.raid_map.parity(group)
            parity = xor_pages([self.golden[m] for m in members])
            self.golden[parity_addr] = parity
            if parity_addr[0] in self._owned:
                self.devices[parity_addr[0]].ftl.write(parity_addr[1])
                self._program(parity_addr, parity)

        # Manufacturing-state preload: the programs above must not occupy
        # the plane or bus timelines the campaign is about to contend on.
        for index, device in enumerate(self.devices):
            if index in self._owned:
                device.array.reset_timelines()

    def _program(self, addr: PageAddr, data: bytes) -> None:
        device = self.devices[addr[0]]
        ppa = device.ftl.lookup(addr[1])
        chip = device.array.chips[ppa.channel][ppa.chip]
        chip.start_program(ppa.die, ppa.plane, ppa.block, ppa.page, 0.0, data=data)

    # -- per-device fault shaping ----------------------------------------------

    def _attach_recoveries(self) -> Dict[int, object]:
        """Wire injector + within-device recovery onto faulted/slow devices.

        The per-device :class:`~repro.ssd.firmware.RecoveryController` runs
        with ``raid_map=None``: local media faults climb the inline-ECC →
        read-retry ladder, and anything that ladder cannot fix surfaces as
        a ``failed`` page, which the router escalates to *cross-device*
        reconstruction — the fleet generalisation of the RAID map.
        """
        from repro.faults.injector import FaultInjector
        from repro.ssd.firmware import RecoveryController

        cfg = self.fleet
        recoveries: Dict[int, object] = {}
        for index, device in enumerate(self.devices):
            if index not in self._owned:
                continue
            fault = cfg.fault
            if index == cfg.slow_device and cfg.slow_read_rate > 0.0:
                fault = replace(
                    fault or FaultConfig(seed=self.seed),
                    slow_read_rate=cfg.slow_read_rate,
                    slow_read_extra_ns=cfg.slow_read_extra_ns,
                )
            if fault is None:
                continue
            # Decorrelate the peers: same profile, device-specific stream.
            fault = replace(fault, seed=(fault.seed + 1) * 101 + index)
            injector = FaultInjector(
                fault, device.config.flash, registry=device.telemetry.counters
            )
            golden_local = {
                local: data
                for (dev, local), data in self.golden.items()
                if dev == index
            }
            recovery = RecoveryController(
                device, fault, injector=injector, raid_map=None, golden=golden_local
            )
            self.services[index].recovery = recovery
            recoveries[index] = recovery
        return recoveries

    # -- run -------------------------------------------------------------------

    def prepare(self) -> Dict[int, object]:
        """Build + preload + fault wiring; returns the recovery map.

        Split out of :meth:`run` so the sharded executor
        (:mod:`repro.fleet.sharded`) can construct a restricted campaign in
        each worker and then drive its own router over the prepared state.
        """
        self._build()
        self._preload()
        return self._attach_recoveries()

    def run(self) -> FleetReport:
        if self.device_subset is not None:
            raise FleetError(
                "a device_subset campaign cannot run() the shared loop; "
                "it exists only for the sharded executor (repro.fleet.sharded)"
            )
        recoveries = self.prepare()
        self.router = FleetRouter(
            self.fleet,
            self.devices,
            self.services,
            self.ring,
            self.page_map,
            self.raid_map,
            self.golden,
            self.generators,
            recoveries=recoveries,
            seed=self.seed,
            config_name=self.config.name,
        )
        report = self.router.run(self.duration_ns)
        report.device_counters = {
            index: dict(device.telemetry.counters.snapshot())
            for index, device in enumerate(self.devices)
        }
        if self.verify_integrity and self.fleet.kill_device >= 0:
            checked, bad = self._sweep_dead_device()
            report.integrity_pages_checked = checked
            report.integrity_pages_bad = bad
        return report

    # -- integrity -------------------------------------------------------------

    def _sweep_dead_device(self):
        """Rebuild every page the killed device held and diff against golden.

        Functional (untimed) sweep: the stripe-mates' stored bytes are read
        straight off the surviving chips and XORed — the recovery-goodput
        timing of in-run rebuilds is already measured by the router.
        """
        dead = self.fleet.kill_device
        checked = bad = 0
        for addr in sorted(self.raid_map.device_pages(dead)):
            mates = self.raid_map.stripe_mates(addr)
            pages: List[bytes] = []
            lost = False
            for mate in mates:
                data = self._read_stored(mate)
                if data is None:
                    lost = True
                    break
                pages.append(data)
            checked += 1
            if lost or xor_pages(pages) != self.golden[addr]:
                bad += 1
        return checked, bad

    def _read_stored(self, addr: PageAddr) -> Optional[bytes]:
        device = self.devices[addr[0]]
        ppa = device.ftl.lookup(addr[1])
        chip = device.array.chips[ppa.channel][ppa.chip]
        return chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page)


def simulate_fleet(
    config: SSDConfig,
    fleet_config: Optional[FleetConfig] = None,
    tenants: Optional[Sequence[TenantSpec]] = None,
    duration_ns: float = 400_000.0,
    seed: int = 0,
    verify_integrity: bool = True,
    sim=None,
) -> FleetReport:
    """One-call entry point: build, run, and report a fleet campaign.

    ``sim`` (a :class:`repro.config.SimConfig`) selects the execution
    mode: the fast event loop and/or kernel-pricing memo are applied for
    the duration of the call, and ``shard_workers > 0`` dispatches to the
    sharded executor (:func:`repro.fleet.sharded.simulate_fleet_sharded`),
    which produces a byte-identical :class:`FleetReport` for shardable
    campaigns. ``sim=None`` (the default) keeps today's behaviour.
    """

    def _run() -> FleetReport:
        if sim is not None and sim.shard_workers > 0:
            from repro.fleet.sharded import simulate_fleet_sharded

            return simulate_fleet_sharded(
                config,
                fleet_config=fleet_config,
                tenants=tenants,
                duration_ns=duration_ns,
                seed=seed,
                sim=sim,
            )
        return FleetCampaign(
            config,
            fleet_config=fleet_config,
            tenants=tenants,
            duration_ns=duration_ns,
            seed=seed,
            verify_integrity=verify_integrity,
        ).run()

    if sim is None:
        return _run()
    with sim.activated():
        return _run()
