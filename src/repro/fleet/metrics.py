"""Tail-at-scale metrics for a fleet campaign.

One device's p99 is a device property; a *fleet's* p99 is dominated by
whichever device is having the worst time (Dean & Barroso, "The Tail at
Scale"). :class:`FleetReport` therefore keeps both views: per-device
:class:`DeviceStats` (so a straggler is attributable) and the fleet-wide
latency distribution including p99.9 (the quantile rack-scale hedging is
designed to rescue), plus hedge economics (issue/win counts), cross-device
reconstruction accounting, and an end-of-run integrity verdict.

Everything needed for the CI fingerprint check lives in
:meth:`FleetReport.fingerprint` / :meth:`FleetReport.fingerprint_hex` —
two same-seed runs must produce byte-identical hex digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.stats import percentile


@dataclass
class DeviceStats:
    """Everything the fleet router observed about one device."""

    device: int
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    recovered: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    reconstructions: int = 0
    pages_rebuilt: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    latencies_ns: List[float] = field(default_factory=list)
    max_inflight: int = 0
    dead: bool = False

    @property
    def mean_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)

    @property
    def p99_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return percentile(self.latencies_ns, 99.0)


@dataclass
class FleetReport:
    """Outcome of one multi-device fleet campaign."""

    config_name: str
    num_devices: int
    placement: str
    hedging: bool
    seed: int
    duration_ns: float
    horizon_ns: float
    devices: Dict[int, DeviceStats]
    #: Fleet-wide completion latencies (every command, regardless of device).
    latencies_ns: List[float] = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    failed: int = 0
    recovered: int = 0
    #: Commands whose primary was hedged / whose hedge finished first.
    hedges_issued: int = 0
    hedges_won: int = 0
    #: Cross-device rebuilds (hedges served degraded + post-kill repairs).
    reconstructions: int = 0
    pages_rebuilt: int = 0
    recovery_bytes: int = 0
    recovery_span_ns: float = 0.0
    corruption_events: int = 0
    #: Post-run sweep: pages on a killed device checked vs reconstructed.
    integrity_pages_checked: int = 0
    integrity_pages_bad: int = 0
    sim_events: int = 0
    #: Per-device telemetry counter snapshots (device index -> counter dict),
    #: merged deterministically from the shard workers in sharded mode and
    #: taken directly off the devices in shared-loop mode.  Deliberately not
    #: part of :meth:`fingerprint` (the fingerprint predates it); the sim
    #: differential suite compares it across modes explicitly.
    device_counters: Dict[int, Dict] = field(default_factory=dict)

    # -- fleet-wide latency ----------------------------------------------------

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies_ns:
            return 0.0
        return percentile(self.latencies_ns, pct)

    @property
    def p50_latency_ns(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_ns(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_ns(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def p999_latency_ns(self) -> float:
        return self.latency_percentile(99.9)

    @property
    def mean_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)

    # -- skew / hedging / recovery --------------------------------------------

    @property
    def device_skew(self) -> float:
        """Completed-command imbalance across live devices: max/mean - 1."""
        counts = [s.completed for s in self.devices.values() if not s.dead]
        if not counts or sum(counts) == 0:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean - 1.0 if mean else 0.0

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of issued hedges that beat their primary."""
        return self.hedges_won / self.hedges_issued if self.hedges_issued else 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of completed commands that returned correct data."""
        return (self.completed - self.failed) / self.completed if self.completed else 1.0

    @property
    def recovery_goodput_gbps(self) -> float:
        """Bytes reconstructed from peers per ns of rebuild span (GB/s)."""
        if self.recovery_span_ns <= 0:
            return 0.0
        return self.recovery_bytes / self.recovery_span_ns

    @property
    def commands_per_second(self) -> float:
        """Simulated-time service rate (completions per simulated second)."""
        if self.horizon_ns <= 0:
            return 0.0
        return self.completed / (self.horizon_ns * 1e-9)

    # -- determinism -----------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """Deterministic digest: same seed ⇒ identical tuple, run to run."""
        per_device = tuple(
            (
                device,
                s.submitted,
                s.completed,
                s.failed,
                s.recovered,
                s.hedges_issued,
                s.hedges_won,
                s.reconstructions,
                s.pages_rebuilt,
                s.bytes_in,
                s.bytes_out,
                s.max_inflight,
                s.dead,
                round(sum(s.latencies_ns), 6),
            )
            for device, s in sorted(self.devices.items())
        )
        return per_device + (
            self.submitted,
            self.completed,
            self.dropped,
            self.failed,
            self.recovered,
            self.hedges_issued,
            self.hedges_won,
            self.reconstructions,
            self.pages_rebuilt,
            self.recovery_bytes,
            self.corruption_events,
            self.integrity_pages_checked,
            self.integrity_pages_bad,
            round(self.horizon_ns, 6),
            round(sum(self.latencies_ns), 6),
            round(self.p999_latency_ns, 6),
        )

    def fingerprint_hex(self) -> str:
        """SHA-256 of :meth:`fingerprint`, for byte-identical CI checks."""
        return hashlib.sha256(repr(self.fingerprint()).encode("utf-8")).hexdigest()

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        """Human-readable fleet table plus tail/hedge/recovery summary."""
        lines = [
            f"fleet: config={self.config_name} devices={self.num_devices} "
            f"placement={self.placement} hedging={'on' if self.hedging else 'off'} "
            f"seed={self.seed}",
            f"duration {self.duration_ns / 1e3:.0f} us, horizon {self.horizon_ns / 1e3:.0f} us, "
            f"{self.completed} completed / {self.dropped} dropped, "
            f"{self.commands_per_second:,.0f} cmd/s (simulated)",
            "",
            f"{'device':>6} {'done':>6} {'fail':>5} {'rcvr':>5} {'hedge':>6} "
            f"{'won':>4} {'rebuild':>7} {'p99 us':>8} {'mean us':>8} {'maxIF':>5}",
        ]
        for device, s in sorted(self.devices.items()):
            tag = f"{device}*" if s.dead else f"{device}"
            lines.append(
                f"{tag:>6} {s.completed:>6d} {s.failed:>5d} {s.recovered:>5d} "
                f"{s.hedges_issued:>6d} {s.hedges_won:>4d} {s.reconstructions:>7d} "
                f"{s.p99_latency_ns / 1e3:>8.1f} {s.mean_latency_ns / 1e3:>8.1f} "
                f"{s.max_inflight:>5d}"
            )
        lines += [
            "",
            f"fleet tail   : p50 {self.p50_latency_ns / 1e3:.1f} us, "
            f"p95 {self.p95_latency_ns / 1e3:.1f} us, "
            f"p99 {self.p99_latency_ns / 1e3:.1f} us, "
            f"p99.9 {self.p999_latency_ns / 1e3:.1f} us",
            f"skew         : {self.device_skew:.1%} completed-command imbalance",
        ]
        if self.hedges_issued:
            lines.append(
                f"hedging      : {self.hedges_issued} issued, {self.hedges_won} won "
                f"({self.hedge_win_rate:.1%} win rate)"
            )
        if self.reconstructions or self.failed or self.recovered:
            lines.append(
                f"recovery     : {self.success_rate:.2%} command success, "
                f"{self.reconstructions} cross-device rebuilds "
                f"({self.pages_rebuilt} pages), "
                f"goodput {self.recovery_goodput_gbps:.2f} GB/s"
            )
        if self.integrity_pages_checked:
            verdict = "OK" if self.integrity_pages_bad == 0 else "CORRUPT"
            lines.append(
                f"integrity    : {self.integrity_pages_checked} pages swept, "
                f"{self.integrity_pages_bad} bad, "
                f"{self.corruption_events} corruption events [{verdict}]"
            )
        lines.append(f"fingerprint  : {self.fingerprint_hex()[:16]}")
        return "\n".join(lines)
