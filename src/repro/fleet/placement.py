"""Consistent-hash placement of shards onto fleet devices.

The :class:`HashRing` is the classic construction: each device contributes
``virtual_nodes`` points on a 64-bit ring (hashes of ``"<device>#<vnode>"``)
and a key is owned by the first point at or clockwise-after the key's own
hash. Virtual nodes smooth the shard distribution; adding or removing a
device only remaps the keys that fall into the arcs its points covered
(the *minimal remap* property the tests pin down).

Hashing uses BLAKE2b, **not** Python's built-in ``hash`` — the built-in is
salted per process, which would make placement (and therefore every fleet
fingerprint) non-deterministic across runs.

:class:`Placement` layers the routing policy on top: ``"hash"`` always
routes to the ring home; ``"load"`` spreads write/scomp traffic over the
first ``fanout`` distinct ring candidates by live load (the router supplies
the load probe: in-flight commands plus normalised stream-core backlog).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError


def ring_hash(key: str) -> int:
    """Deterministic 64-bit position of ``key`` on the ring."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring with virtual nodes over integer device ids."""

    def __init__(self, device_ids: Sequence[int], virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise FleetError("virtual_nodes must be positive")
        if len(set(device_ids)) != len(device_ids):
            raise FleetError("device ids must be unique")
        self.virtual_nodes = virtual_nodes
        self._points: List[Tuple[int, int]] = []  # (position, device_id)
        self._hashes: List[int] = []
        self._devices: List[int] = []
        for device_id in device_ids:
            self.add_device(device_id)

    # -- membership ------------------------------------------------------------

    @property
    def devices(self) -> List[int]:
        """Current member device ids, in insertion order."""
        return list(self._devices)

    def add_device(self, device_id: int) -> None:
        if device_id in self._devices:
            raise FleetError(f"device {device_id} already on the ring")
        self._devices.append(device_id)
        for vnode in range(self.virtual_nodes):
            position = ring_hash(f"{device_id}#{vnode}")
            index = bisect.bisect_left(self._points, (position, device_id))
            self._points.insert(index, (position, device_id))
            self._hashes.insert(index, position)

    def remove_device(self, device_id: int) -> None:
        if device_id not in self._devices:
            raise FleetError(f"device {device_id} not on the ring")
        self._devices.remove(device_id)
        kept = [(pos, dev) for pos, dev in self._points if dev != device_id]
        self._points = kept
        self._hashes = [pos for pos, _ in kept]

    # -- lookup ----------------------------------------------------------------

    def lookup(self, key: str) -> int:
        """The device owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise FleetError("lookup on an empty ring")
        index = bisect.bisect_right(self._hashes, ring_hash(key))
        if index == len(self._points):
            index = 0  # wrap past 2^64 back to the first point
        return self._points[index][1]

    def candidates(self, key: str, n: int) -> List[int]:
        """The first ``n`` *distinct* devices clockwise of ``key``'s hash.

        ``candidates(key, 1)[0] == lookup(key)``; subsequent entries are
        the natural replica/hedge targets for the key.
        """
        if not self._points:
            raise FleetError("lookup on an empty ring")
        out: List[int] = []
        start = bisect.bisect_right(self._hashes, ring_hash(key))
        total = len(self._points)
        for step in range(total):
            device = self._points[(start + step) % total][1]
            if device not in out:
                out.append(device)
                if len(out) >= min(n, len(self._devices)):
                    break
        return out

    # -- diagnostics -----------------------------------------------------------

    def shard_counts(self, keys: Sequence[str]) -> Dict[int, int]:
        """How many of ``keys`` each device owns (zero-filled)."""
        counts = {device: 0 for device in self._devices}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def imbalance(self, keys: Sequence[str]) -> float:
        """Relative spread of the shard distribution: max/mean - 1."""
        counts = self.shard_counts(keys)
        if not keys or not counts:
            return 0.0
        mean = len(keys) / len(counts)
        return max(counts.values()) / mean - 1.0


class Placement:
    """Routing policy over a :class:`HashRing` with optional load awareness.

    ``load_of`` maps a device id to its current load (any monotone measure;
    the fleet router supplies in-flight commands + queued backlog +
    normalised stream-core busy horizon). ``healthy`` filters dead devices
    out of every answer; if *all* candidates are dead the caller gets an
    empty list and must escalate to cross-device reconstruction.
    """

    def __init__(
        self,
        ring: HashRing,
        policy: str = "hash",
        fanout: int = 2,
        load_of: Optional[Callable[[int], float]] = None,
        healthy: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if policy not in ("hash", "load"):
            raise FleetError(f"unknown placement policy {policy!r}")
        self.ring = ring
        self.policy = policy
        self.fanout = max(1, fanout)
        self._load_of = load_of or (lambda device: 0.0)
        self._healthy = healthy or (lambda device: True)

    def home(self, key: str) -> int:
        """The key's static data home (always the ring owner)."""
        return self.ring.lookup(key)

    def route(self, key: str, spread: bool = False) -> Optional[int]:
        """Pick a healthy service target for ``key``.

        ``spread`` marks traffic the policy may move off the home device
        (writes, hedged compute); reads keep data gravity and only leave
        home when it is dead.
        """
        candidates = [
            device
            for device in self.ring.candidates(key, self.fanout)
            if self._healthy(device)
        ]
        if not candidates:
            return None
        if self.policy == "load" and spread and len(candidates) > 1:
            # Stable min: ties go to the earliest ring candidate, so two
            # same-seed runs route identically.
            return min(candidates, key=lambda device: (self._load_of(device),))
        return candidates[0]

    def peers(self, key: str, exclude: int) -> List[int]:
        """Healthy hedge targets for ``key``, nearest ring order, sans ``exclude``."""
        return [
            device
            for device in self.ring.candidates(key, len(self.ring.devices))
            if device != exclude and self._healthy(device)
        ]
