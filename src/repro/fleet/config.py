"""Fleet-level configuration: device count, placement, redundancy, hedging.

A :class:`FleetConfig` describes everything *above* one device: how many
:class:`~repro.ssd.device.ComputationalSSD` peers share the rack, how the
tenant LPA space shards onto them (consistent hashing with virtual nodes),
how stripes are laid across devices for cross-device RAID, and the hedging
policy the router applies to fight tail latency. Per-device parameters
stay in :class:`~repro.config.SSDConfig`; per-device media faults stay in
:class:`~repro.config.FaultConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import FaultConfig
from repro.errors import ConfigError

#: Placement policies the fleet router understands.
PLACEMENT_POLICIES: Tuple[str, ...] = ("hash", "load")


@dataclass(frozen=True)
class FleetConfig:
    """Rack-scale fleet parameters (``repro.fleet``).

    * ``num_devices`` — peer :class:`ComputationalSSD` count (≥ 2: one
      device is a degenerate fleet and cross-device RAID needs a peer).
    * ``virtual_nodes`` — ring positions per device; more nodes smooth the
      shard distribution (≤ ~15% imbalance at the default 64).
    * ``shard_pages`` — contiguous fleet-LPA run mapped as one unit; every
      command is confined to one shard, so one device serves it whole.
    * ``placement`` — ``"hash"`` routes a shard to its ring home;
      ``"load"`` picks the least-loaded of the first ``placement_fanout``
      ring candidates using live telemetry (in-flight commands plus
      stream-core backlog) for write/scomp traffic. Reads always go to the
      data's home (data gravity).
    * ``raid_k`` — data stripes per cross-device RAID-4 group; members are
      placed on pairwise-distinct devices so any single device failure is
      reconstructable from peers (clamped to ``num_devices - 1``).
    * ``max_inflight_per_device`` — device-side dispatch bound, as in
      :class:`~repro.config.ServeConfig`.
    * Hedging: when a dispatched read/scomp is projected past the rolling
      ``hedge_quantile`` of recent fleet latency (window
      ``hedge_window``, floor ``hedge_min_delay_ns``), the router issues a
      duplicate *degraded* request against stripe-mate devices and takes
      the winner; the loser's reserved timeline slots stay (best-effort
      cancel, like an NVMe abort racing in-flight flash ops).
    * Fault shaping: ``fault`` applies one media-fault profile to every
      device; ``slow_device``/``slow_read_rate``/``slow_read_extra_ns``
      single out one straggler ("slow die at rack scale");
      ``kill_device``/``kill_at_ns`` hard-fails a whole device mid-run.
    """

    num_devices: int = 4
    virtual_nodes: int = 64
    shard_pages: int = 64
    placement: str = "hash"
    placement_fanout: int = 2
    raid_k: int = 3
    max_inflight_per_device: int = 8
    hedging: bool = True
    hedge_quantile: float = 95.0
    hedge_window: int = 128
    hedge_min_delay_ns: float = 30_000.0
    fault: Optional[FaultConfig] = None
    slow_device: int = -1
    slow_read_rate: float = 0.0
    slow_read_extra_ns: float = 150_000.0
    kill_device: int = -1
    kill_at_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.num_devices < 2:
            raise ConfigError("a fleet needs at least 2 devices")
        if self.virtual_nodes <= 0:
            raise ConfigError("virtual_nodes must be positive")
        if self.shard_pages <= 0:
            raise ConfigError("shard_pages must be positive")
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {self.placement!r}; "
                f"known: {PLACEMENT_POLICIES}"
            )
        if self.placement_fanout < 1:
            raise ConfigError("placement_fanout must be >= 1")
        if self.raid_k < 2:
            raise ConfigError("cross-device raid_k must be >= 2")
        if self.max_inflight_per_device <= 0:
            raise ConfigError("max_inflight_per_device must be positive")
        if not 50.0 <= self.hedge_quantile <= 100.0:
            raise ConfigError("hedge_quantile must be within [50, 100]")
        if self.hedge_window < 8:
            raise ConfigError("hedge_window must be >= 8")
        if self.hedge_min_delay_ns < 0:
            raise ConfigError("hedge_min_delay_ns cannot be negative")
        if not 0.0 <= self.slow_read_rate <= 1.0:
            raise ConfigError("slow_read_rate must be within [0, 1]")
        if self.slow_read_extra_ns < 0:
            raise ConfigError("slow_read_extra_ns cannot be negative")
        if self.slow_device >= self.num_devices:
            raise ConfigError("slow_device index out of range")
        if self.kill_device >= self.num_devices:
            raise ConfigError("kill_device index out of range")
        if self.kill_device >= 0 and self.kill_at_ns < 0:
            raise ConfigError("kill_at_ns cannot be negative")

    @property
    def effective_raid_k(self) -> int:
        """Stripe width after clamping to the pairwise-distinct bound."""
        return min(self.raid_k, self.num_devices - 1)
