"""Cross-device RAID-4: stripes whose members live on distinct devices.

:class:`~repro.faults.raidmap.RaidGroupMap` protects pages against media
faults *within* one device; this module generalises the same parity math to
protect against the loss of a *whole device*. Every stripe groups up to
``raid_k`` data pages placed on pairwise-distinct devices and stores one
XOR parity page on yet another device, so any single device failure leaves
every affected page reconstructable from surviving peers — the XOR of its
stripe-mates, exactly :class:`repro.kernels.raid.Raid4Kernel`'s parity.

Stripe assembly is greedy and deterministic: repeatedly take one pending
page from each of the ``raid_k`` devices with the most unstriped pages
remaining (ties to the lowest device id), then give the parity page to the
member-disjoint device carrying the fewest parity pages so parity I/O
spreads evenly. A trailing group may be narrower than ``raid_k``; a
single-page group degenerates to replication (its parity *is* a copy on a
second device), mirroring the within-device map's remainder rule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError

#: A fleet page address: (device id, device-local LPA).
PageAddr = Tuple[int, int]


def xor_pages(pages: Sequence[bytes]) -> bytes:
    """XOR equal-length pages word-at-once (the RAID-4 parity/rebuild op).

    Semantically identical to ``Raid4Kernel.reference`` but wide-integer
    based: hedged degraded reads rebuild thousands of 4 KiB pages per
    campaign, so the byte-loop reference would dominate wall-clock.
    """
    if not pages:
        raise FleetError("xor of zero pages")
    if len(pages) == 1:
        return pages[0]
    width = len(pages[0])
    if any(len(page) != width for page in pages):
        raise FleetError("xor_pages needs equal-length pages")
    acc = int.from_bytes(pages[0], "little")
    for page in pages[1:]:
        acc ^= int.from_bytes(page, "little")
    return acc.to_bytes(width, "little")


class CrossDeviceRaidMap:
    """Immutable (device, LPA) → stripe-group map with mate resolution."""

    def __init__(self, groups: Sequence[Tuple[Tuple[PageAddr, ...], PageAddr]]) -> None:
        self._groups: List[Tuple[Tuple[PageAddr, ...], PageAddr]] = list(groups)
        self._group_of: Dict[PageAddr, int] = {}
        for index, (members, parity) in enumerate(self._groups):
            devices = [device for device, _ in members]
            if len(set(devices)) != len(devices):
                raise FleetError(f"stripe {index} repeats a device: {devices}")
            if parity[0] in devices:
                raise FleetError(
                    f"stripe {index} parity on member device {parity[0]}"
                )
            for addr in members:
                if addr in self._group_of:
                    raise FleetError(f"page {addr} belongs to two stripes")
                self._group_of[addr] = index
            if parity in self._group_of:
                raise FleetError(f"parity page {parity} belongs to two stripes")
            self._group_of[parity] = index

    @classmethod
    def build(
        cls,
        placements: Sequence[PageAddr],
        raid_k: int,
        device_ids: Sequence[int],
        alloc_parity: Callable[[int], int],
    ) -> "CrossDeviceRaidMap":
        """Stripe ``placements`` across devices with one parity page each.

        ``alloc_parity(device)`` must return a fresh device-local LPA for
        the parity page (the campaign's per-device allocator). Requires at
        least 2 devices; ``raid_k`` is clamped to ``len(device_ids) - 1``
        so a parity home disjoint from every member always exists.
        """
        if len(device_ids) < 2:
            raise FleetError("cross-device RAID needs at least 2 devices")
        k = min(raid_k, len(device_ids) - 1)
        if k < 1:
            raise FleetError("cross-device raid_k must be >= 1 after clamping")

        pending: Dict[int, List[int]] = {device: [] for device in device_ids}
        for device, lpa in placements:
            if device not in pending:
                raise FleetError(f"placement on unknown device {device}")
            pending[device].append(lpa)
        # Consume each device's pages in placement order (FIFO).
        cursors: Dict[int, int] = {device: 0 for device in device_ids}
        parity_tally: Dict[int, int] = {device: 0 for device in device_ids}

        groups: List[Tuple[Tuple[PageAddr, ...], PageAddr]] = []
        while True:
            backlog = [
                (len(pending[device]) - cursors[device], device)
                for device in device_ids
                if cursors[device] < len(pending[device])
            ]
            if not backlog:
                break
            # The k devices with the most unstriped pages, ties to the
            # lowest id — keeps stripe widths maximal for as long as
            # possible so the trailing narrow groups are rare.
            backlog.sort(key=lambda item: (-item[0], item[1]))
            chosen = [device for _, device in backlog[:k]]
            members = []
            for device in chosen:
                members.append((device, pending[device][cursors[device]]))
                cursors[device] += 1
            member_devices = {device for device, _ in members}
            parity_candidates = [
                device for device in device_ids if device not in member_devices
            ]
            parity_device = min(
                parity_candidates, key=lambda device: (parity_tally[device], device)
            )
            parity_tally[parity_device] += 1
            groups.append((tuple(members), (parity_device, alloc_parity(parity_device))))
        return cls(groups)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def parity_pages(self) -> List[PageAddr]:
        return [parity for _, parity in self._groups]

    def members(self, group: int) -> Tuple[PageAddr, ...]:
        return self._groups[group][0]

    def parity(self, group: int) -> PageAddr:
        return self._groups[group][1]

    def group_for(self, addr: PageAddr) -> Optional[int]:
        return self._group_of.get(addr)

    def stripe_mates(self, addr: PageAddr) -> Optional[List[PageAddr]]:
        """The peer pages whose XOR reconstructs ``addr`` (None if unmapped).

        For a data page: its surviving group-mates plus the parity page.
        For a parity page: the group's data members. A single-page group
        returns just the replica.
        """
        index = self._group_of.get(addr)
        if index is None:
            return None
        members, parity = self._groups[index]
        if addr == parity:
            return list(members)
        return [mate for mate in members if mate != addr] + [parity]

    def device_pages(self, device: int) -> List[PageAddr]:
        """Every mapped page (data + parity) living on ``device``."""
        return [addr for addr in self._group_of if addr[0] == device]
