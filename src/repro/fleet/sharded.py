"""Sharded fleet execution: independent devices in worker processes.

A shardable fleet campaign has **zero cross-device events**: with hash
placement every command is served whole by its shard's ring home, and with
hedging, fault shaping, and closed-loop tenants off, no code path ever
touches a second device (no degraded rebuilds, no hedge duplicates, no
kill re-routing, no completion-driven resubmission coupling tenants to
devices). Each device's queueing evolution then depends only on its own
arrival stream — which every worker can replay bit-exactly, because the
tenant generators and the fleet-wide command-id source are deterministic
functions of the seed.

The executor therefore:

1. partitions devices round-robin over ``SimConfig.shard_workers`` workers;
2. each worker builds a *restricted* :class:`~repro.fleet.campaign.FleetCampaign`
   (``device_subset``) — full placement/preload bookkeeping, real devices
   only where owned — and replays **all** arrivals through a
   :class:`_ShardRouter` that drops commands routed to devices it does not
   own, recording ``(command_id, dispatched_ns, done_ns, status, bytes)``
   for every command it serves;
3. the parent advances all workers in conservative synchronisation windows
   (``SimConfig.shard_window_ns``): a worker may not pass a window barrier
   until every worker has reached it. With no cross-shard traffic the
   lookahead is infinite and the windows are pure pacing, but the barrier
   is the seam where future cross-shard events (fleet rebalancing, remote
   rebuild reads) would exchange messages;
4. the parent then replays the *full* event structure — every arrival,
   dispatch, and completion on one skeleton
   :class:`~repro.fleet.router.FleetRouter` over config-only device stubs —
   taking each command's service outcome from the worker-recorded stream
   (:class:`_PlaybackRouter`). This rebuilds the reference run's exact
   completion order, per-device stats, fleet latency list, and
   ``sim_events`` count, so :meth:`FleetReport.fingerprint_hex` is
   byte-identical to the shared-loop run. A worker and the skeleton
   disagreeing on any dispatch instant or command id raises
   :class:`~repro.errors.FleetError` rather than silently diverging.

Per-device telemetry counters are snapshotted in the owning worker and
merged (sorted by device index) into ``FleetReport.device_counters``.

Workers are forked processes talking over pipes; set
``REPRO_SHARD_INPROCESS=1`` (or run on a platform without ``fork``) to run
every worker in-process — same code path minus the processes, used by the
coverage-instrumented tests.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig, SSDConfig
from repro.errors import FleetError
from repro.fleet.campaign import FleetCampaign, default_fleet_tenants
from repro.fleet.config import FleetConfig
from repro.fleet.metrics import FleetReport
from repro.fleet.router import FleetRouter
from repro.serve.queues import ServeCommand
from repro.serve.workload import TenantSpec

#: Post-admission windows to try before giving up on windowed pacing and
#: sending one unbounded drain (a pathological completion tail).
_MAX_DRAIN_WINDOWS = 64


# -- eligibility ---------------------------------------------------------------


def shardable_reasons(
    fleet_config: FleetConfig, tenants: Sequence[TenantSpec]
) -> List[str]:
    """Why this campaign cannot shard (empty list = shardable).

    Each reason names a feature that creates cross-device events, which the
    infinite-lookahead window protocol cannot express.
    """
    reasons: List[str] = []
    if fleet_config.placement != "hash":
        reasons.append(
            f"placement {fleet_config.placement!r} consults live cross-device "
            "load (only 'hash' routes from the seed alone)"
        )
    if fleet_config.hedging:
        reasons.append("hedging issues cross-device duplicate requests")
    if fleet_config.fault is not None:
        reasons.append("media faults escalate to cross-device reconstruction")
    if fleet_config.slow_device >= 0 and fleet_config.slow_read_rate > 0.0:
        reasons.append("a slow device implies fault-shaped cross-device rescue")
    if fleet_config.kill_device >= 0:
        reasons.append("a killed device re-routes its queue across the fleet")
    for spec in tenants:
        if spec.closed_loop:
            reasons.append(
                f"closed-loop tenant {spec.name!r} couples submissions to "
                "completions on other devices"
            )
    return reasons


def assert_shardable(
    fleet_config: FleetConfig, tenants: Sequence[TenantSpec]
) -> None:
    reasons = shardable_reasons(fleet_config, tenants)
    if reasons:
        raise FleetError(
            "fleet campaign is not shardable: " + "; ".join(reasons)
        )


# -- routers -------------------------------------------------------------------


class _ShardRouter(FleetRouter):
    """Worker-side router: replays all arrivals, serves only owned devices.

    Routing runs for every command (it is pure under hash placement), but
    commands whose target is not owned are dropped before touching any
    queue — per-device queueing dynamics are independent, so the owned
    devices evolve exactly as in the shared loop. Every served command is
    recorded for the parent's playback pass.
    """

    def __init__(self, *args, owned: Sequence[int] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.owned = frozenset(owned)
        self.records: Dict[int, List[tuple]] = {d: [] for d in sorted(self.owned)}

    def _enqueue(self, cmd: ServeCommand) -> None:
        target = self._route(cmd)
        if target is None:
            self.dropped += 1
            return
        if target not in self.owned:
            return
        self.stats[target].submitted += 1
        self.pending[target].append(cmd)
        self._pump(target)

    def _serve_primary(self, device: int, cmd: ServeCommand, now: float) -> float:
        done = super()._serve_primary(device, cmd, now)
        self.records[device].append(
            (cmd.command.command_id, now, done, cmd.status, cmd.bytes_in, cmd.bytes_out)
        )
        return done


class _PlaybackRouter(FleetRouter):
    """Parent-side skeleton: full event structure, recorded service outcomes.

    Drives the complete arrival/dispatch/completion event set over
    config-only device stubs; where the real router would enter a device's
    timelines, this one pops the next worker-recorded outcome for that
    device instead. The pop is checked — command id and dispatch instant
    must match bit-exactly — so any divergence between a worker's view and
    the skeleton's is an error, never a silently wrong report.
    """

    def __init__(self, *args, playback: Optional[Dict[int, List[tuple]]] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.playback: Dict[int, deque] = {
            d: deque(records) for d, records in (playback or {}).items()
        }

    def _serve_primary(self, device: int, cmd: ServeCommand, now: float) -> float:
        queue = self.playback.get(device)
        if not queue:
            raise FleetError(
                f"shard playback underrun: no record on device {device} for "
                f"command {cmd.command.command_id} at t={now}ns"
            )
        cid, dispatched, done, status, bytes_in, bytes_out = queue.popleft()
        if cid != cmd.command.command_id or dispatched != now:
            raise FleetError(
                f"shard playback diverged on device {device}: skeleton "
                f"dispatched command {cmd.command.command_id} at t={now}ns, "
                f"worker recorded command {cid} at t={dispatched}ns"
            )
        cmd.status = status
        cmd.bytes_in = bytes_in
        cmd.bytes_out = bytes_out
        return done

    def leftover_records(self) -> Dict[int, int]:
        return {d: len(q) for d, q in self.playback.items() if q}


# -- worker --------------------------------------------------------------------


class _ShardWorker:
    """One worker's campaign + router + message handler (lane-agnostic)."""

    def __init__(
        self,
        config: SSDConfig,
        fleet_config: FleetConfig,
        tenants: List[TenantSpec],
        duration_ns: float,
        seed: int,
        owned: Sequence[int],
    ) -> None:
        self.owned = sorted(owned)
        self.campaign = FleetCampaign(
            config,
            fleet_config=fleet_config,
            tenants=tenants,
            duration_ns=duration_ns,
            seed=seed,
            verify_integrity=False,
            device_subset=self.owned,
        )
        recoveries = self.campaign.prepare()
        self.router = _ShardRouter(
            self.campaign.fleet,
            self.campaign.devices,
            self.campaign.services,
            self.campaign.ring,
            self.campaign.page_map,
            self.campaign.raid_map,
            self.campaign.golden,
            self.campaign.generators,
            recoveries=recoveries,
            seed=seed,
            config_name=config.name,
            owned=self.owned,
        )
        self.router.begin(duration_ns)

    def handle(self, msg: tuple) -> tuple:
        kind = msg[0]
        if kind == "advance":
            # Conservative barrier: run everything up to the window end,
            # then stop and wait for the next barrier.
            self.router.sim.run(until_ns=msg[1])
            return ("ack", len(self.router.sim), self.router.sim.now)
        if kind == "drain":
            self.router.sim.run()
            return ("ack", 0, self.router.sim.now)
        if kind == "collect":
            counters = {
                d: dict(self.campaign.devices[d].telemetry.counters.snapshot())
                for d in self.owned
            }
            return ("result", self.router.records, counters, self.router.sim.processed)
        raise FleetError(f"unknown shard worker message {msg!r}")


def _worker_main(conn, sim: SimConfig, worker_args: tuple) -> None:
    try:
        with sim.activated():
            worker = _ShardWorker(*worker_args)
            conn.send(("ready",))
            while True:
                msg = conn.recv()
                if msg[0] == "quit":
                    return
                conn.send(worker.handle(msg))
    except EOFError:
        return
    except BaseException as err:  # ship the traceback to the parent
        try:
            conn.send(("error", repr(err), traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# -- lanes ---------------------------------------------------------------------


class _ProcessLane:
    """A forked worker process behind a pipe."""

    def __init__(self, sim: SimConfig, worker_args: tuple) -> None:
        ctx = multiprocessing.get_context("fork")
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(child, sim, worker_args), daemon=True
        )
        self.proc.start()
        child.close()
        self._check(self.conn.recv(), expect="ready")

    def _check(self, reply: tuple, expect: str) -> tuple:
        if reply[0] == "error":
            raise FleetError(f"shard worker failed: {reply[1]}\n{reply[2]}")
        if reply[0] != expect:
            raise FleetError(f"shard worker protocol error: {reply[0]!r}")
        return reply

    def post(self, msg: tuple) -> None:
        self.conn.send(msg)

    def wait(self, expect: str = "ack") -> tuple:
        return self._check(self.conn.recv(), expect)

    def ask(self, msg: tuple, expect: str = "ack") -> tuple:
        self.post(msg)
        return self.wait(expect)

    def close(self) -> None:
        try:
            self.conn.send(("quit",))
        except (OSError, BrokenPipeError):
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():  # pragma: no cover - hang backstop
            self.proc.terminate()
        self.conn.close()


class _InProcessLane:
    """Same protocol, no process: for tests, coverage, and fork-less hosts."""

    def __init__(self, sim: SimConfig, worker_args: tuple) -> None:
        self.worker = _ShardWorker(*worker_args)
        self._reply: tuple = ()

    def post(self, msg: tuple) -> None:
        self._reply = self.worker.handle(msg)

    def wait(self, expect: str = "ack") -> tuple:
        return self._reply

    def ask(self, msg: tuple, expect: str = "ack") -> tuple:
        self.post(msg)
        return self.wait(expect)

    def close(self) -> None:
        pass


def _use_processes() -> bool:
    if os.environ.get("REPRO_SHARD_INPROCESS") == "1":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


# -- executor ------------------------------------------------------------------


def simulate_fleet_sharded(
    config: SSDConfig,
    fleet_config: Optional[FleetConfig] = None,
    tenants: Optional[Sequence[TenantSpec]] = None,
    duration_ns: float = 400_000.0,
    seed: int = 0,
    sim: Optional[SimConfig] = None,
) -> FleetReport:
    """Run a shardable fleet campaign across worker processes.

    Byte-identical to the shared-loop :func:`~repro.fleet.campaign.simulate_fleet`
    for any campaign :func:`shardable_reasons` accepts; raises
    :class:`~repro.errors.FleetError` (listing every violation) otherwise.
    """
    sim = sim or SimConfig(shard_workers=2)
    if sim.shard_workers <= 0:
        raise FleetError("sharded execution needs SimConfig(shard_workers >= 1)")
    fleet = fleet_config or FleetConfig()
    tenant_list = list(tenants) if tenants is not None else default_fleet_tenants()
    assert_shardable(fleet, tenant_list)

    workers = min(sim.shard_workers, fleet.num_devices)
    partitions = [
        [d for d in range(fleet.num_devices) if d % workers == w]
        for w in range(workers)
    ]
    lane_cls = _ProcessLane if _use_processes() else _InProcessLane
    lanes = [
        lane_cls(sim, (config, fleet, tenant_list, duration_ns, seed, part))
        for part in partitions
    ]

    records: Dict[int, List[tuple]] = {}
    counters: Dict[int, dict] = {}
    try:
        # Conservative time-window synchronisation: all workers reach each
        # barrier before any passes it. Admission windows first, then keep
        # windowing until every worker's queue is empty (one unbounded
        # drain if a completion tail outlives the window budget).
        window = float(sim.shard_window_ns)
        barrier_ns = 0.0
        drain_windows = 0
        while True:
            barrier_ns += window
            for lane in lanes:
                lane.post(("advance", barrier_ns))
            pending = sum(lane.wait()[1] for lane in lanes)
            if pending == 0:
                # Arrivals are self-scheduling events: an empty queue means
                # nothing can ever fire again, on any worker.
                break
            if barrier_ns >= duration_ns:
                drain_windows += 1
                if drain_windows >= _MAX_DRAIN_WINDOWS:
                    for lane in lanes:
                        lane.post(("drain",))
                    for lane in lanes:
                        lane.wait()
                    break
        for lane in lanes:
            _, lane_records, lane_counters, _ = lane.ask(("collect",), expect="result")
            records.update(lane_records)
            counters.update(lane_counters)
    finally:
        for lane in lanes:
            lane.close()

    # Skeleton replay: full event structure, zero owned devices, service
    # outcomes taken from the workers' records.
    skeleton = FleetCampaign(
        config,
        fleet_config=fleet,
        tenants=tenant_list,
        duration_ns=duration_ns,
        seed=seed,
        verify_integrity=False,
        device_subset=[],
    )
    skeleton.prepare()
    router = _PlaybackRouter(
        skeleton.fleet,
        skeleton.devices,
        skeleton.services,
        skeleton.ring,
        skeleton.page_map,
        skeleton.raid_map,
        skeleton.golden,
        skeleton.generators,
        recoveries={},
        seed=seed,
        config_name=config.name,
        playback=records,
    )
    report = router.run(duration_ns)
    leftovers = router.leftover_records()
    if leftovers:
        raise FleetError(
            f"shard playback left unconsumed records per device: {leftovers}"
        )
    report.device_counters = {d: counters[d] for d in sorted(counters)}
    return report
