"""The fleet router: dispatch, hedging, and cross-device degraded service.

One :class:`FleetRouter` drives N :class:`~repro.ssd.device.ComputationalSSD`
peers on a **single shared** :class:`~repro.sim.Simulator`, so every
arrival, dispatch, hedge, and completion across the whole rack lands on one
deterministic event order. Each device keeps its own resource timelines
(flash planes, channel buses, crossbar, host link, stream cores) exactly as
in single-device serving — the router only decides *where* commands go and
*when* a second attempt is worth issuing.

Routing: every command is confined to one shard (the sharded workload
generator guarantees this), and the shard's key resolves through the
consistent-hash :class:`~repro.fleet.placement.Placement`. Reads and scomps
have data gravity — they run on the shard's home device; writes may spread
to the least-loaded ring candidate under the ``"load"`` policy.

Hedging (Dean & Barroso): at dispatch the analytic service model already
yields the primary's completion instant. If that projection exceeds the
rolling ``hedge_quantile`` of recent same-kind service times, the router
issues a *degraded duplicate* at ``dispatch + delay``: stripe-mates on peer
devices are read and XORed back into the missing pages (the
:class:`~repro.fleet.replication.CrossDeviceRaidMap` path) and a healthy
peer coordinates compute/transfer. The command completes at the earlier of
the two attempts; the loser's timeline reservations stay occupied —
best-effort cancel, exactly like an NVMe abort racing in-flight flash
operations.

The same degraded path serves commands whose home device has hard-failed
(``kill_device``): in-flight work on the dead device is lost at the kill
instant and re-served from peers, queued work is re-routed, and later
arrivals reconstruct on the fly.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.config import FleetConfig
from repro.fleet.metrics import DeviceStats, FleetReport
from repro.fleet.placement import HashRing, Placement
from repro.fleet.replication import CrossDeviceRaidMap, PageAddr, xor_pages
from repro.serve.queues import ServeCommand
from repro.serve.service import DeviceService
from repro.serve.workload import WorkloadGenerator
from repro.sim import Simulator
from repro.ssd.host_interface import ScompCommand
from repro.utils.stats import percentile

#: Minimum completed same-kind commands before hedge projections engage;
#: below this the rolling quantile is too noisy to act on.
HEDGE_WARMUP_SAMPLES = 8
#: Ceiling on hedges as a fraction of submitted commands ("The Tail at
#: Scale" budgets duplicates at a few percent of total load): a hedge storm
#: during a congestion burst would amplify exactly the queueing it cannot fix.
HEDGE_BUDGET_FRACTION = 0.10


class _IdSource:
    """Fleet-wide NVMe command ids (each device's host has its own counter,
    but fleet commands need unique ids before their target is known)."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        return next(self._ids)


class _Degraded:
    """Outcome of one cross-device reconstruction attempt."""

    __slots__ = ("done_ns", "start_ns", "pages", "bad_pages", "coordinator")

    def __init__(self, done_ns: float, start_ns: float, pages: int,
                 bad_pages: int, coordinator: int) -> None:
        self.done_ns = done_ns
        self.start_ns = start_ns
        self.pages = pages
        self.bad_pages = bad_pages
        self.coordinator = coordinator


class FleetRouter:
    """Admission, placement, hedging, and recovery for one device fleet."""

    def __init__(
        self,
        config: FleetConfig,
        devices: Sequence,
        services: Sequence[DeviceService],
        ring: HashRing,
        page_map: Dict[int, PageAddr],
        raid_map: CrossDeviceRaidMap,
        golden: Dict[PageAddr, bytes],
        generators: Sequence[WorkloadGenerator],
        recoveries: Optional[Dict[int, object]] = None,
        seed: int = 0,
        config_name: str = "",
    ) -> None:
        if len(devices) != config.num_devices:
            raise FleetError(
                f"{len(devices)} devices for a {config.num_devices}-device config"
            )
        self.cfg = config
        self.devices = list(devices)
        self.services = list(services)
        self.ring = ring
        self.page_map = page_map
        self.raid = raid_map
        self.golden = golden
        self.generators = list(generators)
        #: Per-device :class:`~repro.ssd.firmware.RecoveryController`
        #: (within-device ladder); absent devices read the raw array.
        self.recoveries = dict(recoveries or {})
        self.seed = seed
        self.config_name = config_name
        self.page_bytes = self.devices[0].config.flash.page_bytes

        self.sim = Simulator()
        self.ids = _IdSource()
        self.health: Dict[int, bool] = {d: True for d in range(config.num_devices)}
        self.placement = Placement(
            ring,
            policy=config.placement,
            fanout=config.placement_fanout,
            load_of=self._load_of,
            healthy=lambda device: self.health[device],
        )
        self.pending: Dict[int, Deque[ServeCommand]] = {
            d: deque() for d in range(config.num_devices)
        }
        self.inflight: Dict[int, int] = {d: 0 for d in range(config.num_devices)}
        self.stats: Dict[int, DeviceStats] = {
            d: DeviceStats(device=d) for d in range(config.num_devices)
        }
        # Rolling service-time windows per command kind drive hedge delays.
        self._windows: Dict[str, Deque[float]] = {
            kind: deque(maxlen=config.hedge_window)
            for kind in ("read", "write", "scomp")
        }
        self.latencies_ns: List[float] = []
        self.submitted = 0
        self.completed = 0
        self.dropped = 0
        self.failed = 0
        self.recovered = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.reconstructions = 0
        self.pages_rebuilt = 0
        self.recovery_bytes = 0
        self.corruption_events = 0
        self._recovery_start: Optional[float] = None
        self._recovery_end: float = 0.0
        self._duration_ns = 0.0
        self._horizon_ns = 0.0

    # -- run loop --------------------------------------------------------------

    def begin(self, duration_ns: float) -> None:
        """Schedule the admission horizon; the caller then drives ``self.sim``.

        Split out of :meth:`run` so the sharded executor
        (``repro.fleet.sharded``) can advance the same router in
        conservative synchronisation windows instead of one blocking
        drain.
        """
        if duration_ns <= 0:
            raise FleetError("fleet run duration must be positive")
        self._duration_ns = duration_ns
        for gen in self.generators:
            if gen.spec.closed_loop:
                for _ in range(gen.spec.outstanding):
                    self.sim.schedule_at(
                        0.0, lambda g=gen: self._submit(g), label=f"submit:{gen.spec.name}"
                    )
            else:
                first = gen.next_interarrival_ns()
                if first < duration_ns:
                    self.sim.schedule_at(
                        first, lambda g=gen: self._arrive(g), label=f"arrive:{gen.spec.name}"
                    )
        if self.cfg.kill_device >= 0:
            self.sim.schedule_at(self.cfg.kill_at_ns, self._kill, label="kill-device")

    def run(self, duration_ns: float) -> FleetReport:
        """Admit traffic for ``duration_ns``, drain the fleet, and report."""
        self.begin(duration_ns)
        self.sim.run()
        return self._report()

    # -- traffic ---------------------------------------------------------------

    def _arrive(self, gen: WorkloadGenerator) -> None:
        now = self.sim.now
        self._submit(gen)
        next_ns = now + gen.next_interarrival_ns()
        if next_ns < self._duration_ns:
            self.sim.schedule_at(
                next_ns, lambda: self._arrive(gen), label=f"arrive:{gen.spec.name}"
            )

    def _submit(self, gen: WorkloadGenerator) -> None:
        now = self.sim.now
        if gen.spec.closed_loop and now >= self._duration_ns:
            return
        cmd = gen.make_command(self.ids, now)
        lpas = self._command_lpas(cmd)
        shard = (lpas[0] - gen.lpa_base) // self.cfg.shard_pages
        # The routing key: one shard, one home — every page of the command
        # lives on the same device because the generator confined it.
        cmd.fleet_key = f"{gen.spec.name}/{shard}"
        cmd.fleet_lpas = lpas
        self.submitted += 1
        self._enqueue(cmd)

    def _command_lpas(self, cmd: ServeCommand) -> List[int]:
        command = cmd.command
        if isinstance(command, ScompCommand):
            return [lpa for lst in command.lpa_lists for lpa in lst]
        return list(command.lpas)

    def _enqueue(self, cmd: ServeCommand) -> None:
        target = self._route(cmd)
        if target is None:
            # Dead quorum: nothing can serve this command.
            self.dropped += 1
            return
        self.stats[target].submitted += 1
        self.pending[target].append(cmd)
        self._pump(target)

    def _route(self, cmd: ServeCommand) -> Optional[int]:
        """Pick the service device: data gravity for reads/scomp, policy
        spread for writes. Dead homes fall through to a healthy peer, who
        will coordinate cross-device reconstruction at dispatch."""
        if cmd.kind == "write":
            return self.placement.route(cmd.fleet_key, spread=True)
        home = self.page_map[cmd.fleet_lpas[0]][0]
        if self.health[home]:
            return home
        target = self.placement.route(cmd.fleet_key)
        if target is not None:
            return target
        peers = self.placement.peers(cmd.fleet_key, exclude=home)
        return peers[0] if peers else None

    # -- dispatch --------------------------------------------------------------

    def _pump(self, device: int) -> None:
        while (
            self.pending[device]
            and self.inflight[device] < self.cfg.max_inflight_per_device
        ):
            self._dispatch(device, self.pending[device].popleft())

    def _dispatch(self, device: int, cmd: ServeCommand) -> None:
        now = self.sim.now
        cmd.dispatched_ns = now
        kind = cmd.kind
        home = self.page_map[cmd.fleet_lpas[0]][0] if kind != "write" else device

        if kind != "write" and (device != home or not self.health[home]):
            # The data's home is unreachable: serve by reconstruction.
            done = self._serve_degraded(cmd, exclude=home, issue_ns=now)
        else:
            done = self._serve_primary(device, cmd, now)
        cmd.completed_ns = done
        self.inflight[device] += 1
        self.stats[device].max_inflight = max(
            self.stats[device].max_inflight, self.inflight[device]
        )
        self.sim.schedule_at(
            done, lambda: self._complete(device, cmd), label=f"complete:{cmd.tenant}"
        )

    def _serve_primary(self, device: int, cmd: ServeCommand, now: float) -> float:
        """Normal-path service, plus kill-loss and hedging adjustments."""
        self._localise(device, cmd)
        done = self.services[device].service(cmd, now)

        if cmd.status == "failed":
            # The within-device ladder ran dry (no local RAID group):
            # escalate to cross-device reconstruction — the fleet-level
            # generalisation of the raidmap stripe-mates.
            return self._serve_degraded(cmd, exclude=device, issue_ns=done)

        kill = self.cfg.kill_device
        if device == kill and kill >= 0 and now < self.cfg.kill_at_ns < done:
            # The device dies mid-service: the attempt is lost at the kill
            # instant and the command re-serves from surviving peers.
            if cmd.kind == "write":
                return self._reissue_write(cmd, self.cfg.kill_at_ns)
            return self._serve_degraded(
                cmd, exclude=device, issue_ns=self.cfg.kill_at_ns
            )

        if self.cfg.hedging and cmd.kind in ("read", "scomp"):
            done = self._maybe_hedge(device, cmd, now, done)
        return done

    def _reissue_write(self, cmd: ServeCommand, issue_ns: float) -> float:
        """Replay a write lost to the kill on a surviving device."""
        target = self.placement.route(cmd.fleet_key, spread=True)
        if target is None:
            cmd.status = "failed"
            return issue_ns
        done = self.services[target].service(cmd, issue_ns)
        cmd.status = "recovered"
        return done

    def _localise(self, device: int, cmd: ServeCommand) -> None:
        """Rewrite the command's fleet LPAs as device-local LPAs.

        Write commands allocate fresh local pages on whatever device serves
        them, so only reads/scomps (which dereference the FTL) translate.
        """
        if cmd.kind == "write":
            return
        locals_: List[int] = []
        for lpa in cmd.fleet_lpas:
            dev, local = self.page_map[lpa]
            if dev != device:
                raise FleetError(
                    f"fleet LPA {lpa} lives on device {dev}, dispatched to {device}"
                )
            locals_.append(local)
        if isinstance(cmd.command, ScompCommand):
            cmd.command = replace(cmd.command, lpa_lists=[locals_])
        else:
            cmd.command = replace(cmd.command, lpas=locals_)

    # -- hedging ---------------------------------------------------------------

    def _hedge_delay_ns(self, kind: str) -> Optional[float]:
        window = self._windows[kind]
        if len(window) < HEDGE_WARMUP_SAMPLES:
            return None
        samples = list(window)
        # Clamp the trigger at 1.5x the rolling median: a straggler device
        # pollutes the upper quantiles of its own window, and an unclamped
        # p95 would rise until the straggler's commands no longer qualify
        # for hedging. The median stays anchored to healthy service, and
        # 1.5x is a typical healthy p95/p50 ratio for this service mix.
        quantile = min(
            percentile(samples, self.cfg.hedge_quantile),
            1.5 * percentile(samples, 50.0),
        )
        return max(self.cfg.hedge_min_delay_ns, quantile)

    def _rebuild_estimate_ns(self, cmd: ServeCommand) -> float:
        """Optimistic floor for a degraded rebuild (uncontended peers).

        Stripe-mate reads run in parallel across devices, so the floor is
        one array read, the mate + rebuilt-page channel transfers, any
        stream-core compute, and the host link occupancy for the result.
        """
        flash = self.devices[0].config.flash
        est = flash.read_latency_ns + 2.0 * flash.page_transfer_ns
        nbytes = cmd.pages * self.page_bytes
        if isinstance(cmd.command, ScompCommand):
            svc = self.services[0]
            kernel = cmd.command.kernel
            est += cmd.pages * svc.compute_ns_per_page(kernel)
            nbytes = max(int(nbytes * svc.out_ratio(kernel)), 1)
        return est + self.devices[0].host.transfer_time_ns(nbytes)

    def _maybe_hedge(self, device: int, cmd: ServeCommand, now: float, done: float) -> float:
        delay = self._hedge_delay_ns(cmd.kind)
        if delay is None or done - now <= delay:
            return done
        # Only pay for a duplicate when the projected overrun leaves the
        # rebuild a 2x margin to win: a losing hedge is not free (its
        # timeline reservations stay), and a marginal win burns budget that
        # a genuinely stuck command will want later.
        if done - (now + delay) <= 2.0 * self._rebuild_estimate_ns(cmd):
            return done
        budget = HEDGE_BUDGET_FRACTION * max(self.submitted, 2 * HEDGE_WARMUP_SAMPLES)
        if self.hedges_issued >= budget:
            return done
        self.hedges_issued += 1
        self.stats[device].hedges_issued += 1
        result = self._reconstruct_command(cmd, exclude=device, issue_ns=now + delay)
        if result is None or result.done_ns >= done:
            # Hedge lost (or could not run): its timeline reservations stay
            # occupied — the best-effort cancel.
            return done
        self.hedges_won += 1
        self.stats[device].hedges_won += 1
        self._apply_degraded(cmd, result)
        if cmd.status == "ok":
            cmd.status = "recovered"
        return result.done_ns

    # -- degraded (cross-device) service ---------------------------------------

    def _serve_degraded(self, cmd: ServeCommand, exclude: int, issue_ns: float) -> float:
        result = self._reconstruct_command(cmd, exclude=exclude, issue_ns=issue_ns)
        if result is None:
            cmd.status = "failed"
            cmd.bytes_in = cmd.bytes_in or cmd.pages * self.page_bytes
            return issue_ns
        self._apply_degraded(cmd, result)
        cmd.status = "recovered"
        cmd.bytes_in = cmd.pages * self.page_bytes
        if cmd.kind == "read":
            cmd.bytes_out = cmd.bytes_in
        elif cmd.kind == "scomp":
            svc = self.services[result.coordinator]
            cmd.bytes_out = int(cmd.bytes_in * svc.out_ratio(cmd.command.kernel))
        return result.done_ns

    def _reconstruct_command(
        self, cmd: ServeCommand, exclude: int, issue_ns: float
    ) -> Optional[_Degraded]:
        """Serve ``cmd`` by rebuilding every page from its stripe-mates.

        Returns None when reconstruction is impossible (a page has no
        stripe, a required mate lives on a dead device, or no healthy peer
        can coordinate). Timeline reservations made before such a failure —
        and by hedges that lose the race — intentionally stay.
        """
        peers = self.placement.peers(cmd.fleet_key, exclude=exclude)
        if not peers:
            return None
        if self.placement.policy == "load":
            coordinator = min(peers, key=lambda d: (self._load_of(d),))
        else:
            coordinator = peers[0]

        pages = 0
        bad = 0
        flash_done = issue_ns
        first_page: Optional[float] = None
        for lpa in cmd.fleet_lpas:
            addr = self.page_map[lpa]
            mates = self.raid.stripe_mates(addr)
            if not mates:
                return None
            mate_done = issue_ns
            mate_data: List[bytes] = []
            for mate in mates:
                if not self.health[mate[0]]:
                    return None  # two losses in one stripe: unrecoverable
                done, data = self._read_peer_page(mate, issue_ns)
                mate_done = max(mate_done, done)
                if data is None:
                    return None
                mate_data.append(data)
            # One pass through the parity engine at channel speed.
            page_done = mate_done + self.devices[0].config.flash.page_transfer_ns
            rebuilt = xor_pages(mate_data)
            expected = self.golden.get(addr)
            if expected is not None and rebuilt != expected:
                bad += 1
            pages += 1
            flash_done = max(flash_done, page_done)
            if first_page is None or page_done < first_page:
                first_page = page_done

        done = self._finish_on_coordinator(cmd, coordinator, issue_ns, flash_done, first_page)
        return _Degraded(
            done_ns=done,
            start_ns=issue_ns,
            pages=pages,
            bad_pages=bad,
            coordinator=coordinator,
        )

    def _read_peer_page(self, addr: PageAddr, issue_ns: float) -> Tuple[float, Optional[bytes]]:
        """Timed read of one stripe-mate on its own device's timelines."""
        dev, lpa = addr
        recovery = self.recoveries.get(dev)
        if recovery is not None:
            outcome = recovery.read_lpa(lpa, issue_ns)
            return outcome.done_ns, outcome.data
        device = self.devices[dev]
        ppa = device.ftl.lookup(lpa)
        record = device.array.service_read(ppa, issue_ns)
        chip = device.array.chips[ppa.channel][ppa.chip]
        return record.done_ns, chip.read_data(ppa.die, ppa.plane, ppa.block, ppa.page)

    def _finish_on_coordinator(
        self,
        cmd: ServeCommand,
        coordinator: int,
        issue_ns: float,
        flash_done: float,
        first_page: Optional[float],
    ) -> float:
        """Compute (scomp) and host transfer on the coordinating peer."""
        device = self.devices[coordinator]
        nbytes = cmd.pages * self.page_bytes
        if isinstance(cmd.command, ScompCommand):
            svc = self.services[coordinator]
            kernel = cmd.command.kernel
            compute_ns = cmd.pages * svc.compute_ns_per_page(kernel)
            core = svc.cores.least_loaded()
            start = max(issue_ns, svc.cores.free_at(core), first_page or issue_ns)
            done = max(start + compute_ns, flash_done)
            svc.cores.occupy(core, start, done, busy_ns=compute_ns)
            out = max(int(nbytes * svc.out_ratio(kernel)), 1)
            return device.host.transfer(out, done, to_host=True)
        return device.host.transfer(nbytes, flash_done, to_host=True)

    def _apply_degraded(self, cmd: ServeCommand, result: _Degraded) -> None:
        """Book a *used* reconstruction (winning hedge or dead-home serve)."""
        cmd.reconstructions += result.pages
        self.reconstructions += 1
        self.pages_rebuilt += result.pages
        self.recovery_bytes += result.pages * self.page_bytes
        self.corruption_events += result.bad_pages
        self.stats[result.coordinator].reconstructions += 1
        self.stats[result.coordinator].pages_rebuilt += result.pages
        if self._recovery_start is None or result.start_ns < self._recovery_start:
            self._recovery_start = result.start_ns
        self._recovery_end = max(self._recovery_end, result.done_ns)

    # -- completion ------------------------------------------------------------

    def _complete(self, device: int, cmd: ServeCommand) -> None:
        self.inflight[device] -= 1
        self._horizon_ns = max(self._horizon_ns, cmd.completed_ns)
        latency = cmd.latency_ns
        service_ns = cmd.completed_ns - cmd.dispatched_ns
        stats = self.stats[device]
        stats.completed += 1
        stats.latencies_ns.append(latency)
        stats.bytes_in += cmd.bytes_in
        stats.bytes_out += cmd.bytes_out
        self.latencies_ns.append(latency)
        self.completed += 1
        if cmd.status == "failed":
            self.failed += 1
            stats.failed += 1
        elif cmd.status == "recovered":
            self.recovered += 1
            stats.recovered += 1
        self._windows[cmd.kind].append(service_ns)
        gen = next(g for g in self.generators if g.spec.name == cmd.tenant)
        if gen.spec.closed_loop:
            self.sim.schedule(
                gen.spec.think_ns, lambda: self._submit(gen), label=f"think:{gen.spec.name}"
            )
        self._pump(device)

    # -- failure ---------------------------------------------------------------

    def _kill(self) -> None:
        """Hard-fail ``kill_device``: mark it dead and re-route its queue."""
        dead = self.cfg.kill_device
        self.health[dead] = False
        self.stats[dead].dead = True
        backlog = list(self.pending[dead])
        self.pending[dead].clear()
        self.stats[dead].submitted -= len(backlog)
        for cmd in backlog:
            self._enqueue(cmd)

    # -- load probe ------------------------------------------------------------

    def _load_of(self, device: int) -> float:
        """Live load: in-flight + queued commands + stream-core backlog.

        The core backlog (how far the least-loaded lane's free-at instant
        sits past now) is normalised to ~command granularity so a device
        grinding through a deep compute queue reads as loaded even when its
        dispatch slots are free.
        """
        cores = self.services[device].cores
        backlog_ns = max(0, cores.free_at(cores.least_loaded()) - self.sim.now)
        return (
            self.inflight[device]
            + len(self.pending[device])
            + backlog_ns / 100_000.0
        )

    # -- reporting -------------------------------------------------------------

    def _report(self) -> FleetReport:
        horizon = max(self._horizon_ns, float(self.sim.now))
        span = 0.0
        if self._recovery_start is not None:
            span = self._recovery_end - self._recovery_start
        return FleetReport(
            config_name=self.config_name,
            num_devices=self.cfg.num_devices,
            placement=self.cfg.placement,
            hedging=self.cfg.hedging,
            seed=self.seed,
            duration_ns=self._duration_ns,
            horizon_ns=horizon,
            devices=self.stats,
            latencies_ns=self.latencies_ns,
            submitted=self.submitted,
            completed=self.completed,
            dropped=self.dropped,
            failed=self.failed,
            recovered=self.recovered,
            hedges_issued=self.hedges_issued,
            hedges_won=self.hedges_won,
            reconstructions=self.reconstructions,
            pages_rebuilt=self.pages_rebuilt,
            recovery_bytes=self.recovery_bytes,
            recovery_span_ns=span,
            corruption_events=self.corruption_events
            + sum(r.corruption_events for r in self.recoveries.values()),
            sim_events=self.sim.processed,
        )
