"""Rack-scale fleet simulation: N computational SSDs on one event kernel.

One device is a component; a *fleet* of peers is the deployment unit the
paper's storage-side computing targets at scale. This package instantiates
N :class:`~repro.ssd.device.ComputationalSSD` peers on a **single shared**
:class:`~repro.sim.Simulator` and layers on the distributed-systems
mechanics that only exist above one device:

* **Placement** (:mod:`repro.fleet.placement`) — a consistent-hash ring
  with virtual nodes shards tenant LPA ranges onto devices; the ``"load"``
  policy spreads write traffic by live telemetry.
* **Redundancy** (:mod:`repro.fleet.replication`) — RAID-4 stripes whose
  members live on pairwise-distinct devices, so one whole device can fail
  and every page it held is reconstructable from peers.
* **Routing + hedging** (:mod:`repro.fleet.router`) — per-device bounded
  dispatch, plus duplicate-after-p95 hedged requests served as degraded
  reads from stripe-mates (the tail-at-scale defence).
* **Campaigns + metrics** (:mod:`repro.fleet.campaign`,
  :mod:`repro.fleet.metrics`) — seeded end-to-end runs with golden-data
  integrity verification and fleet-wide p99/p99.9 reporting.

:func:`simulate_fleet` is the one-call entry point; the ``python -m repro
fleet`` CLI wraps it.
"""

from __future__ import annotations

from repro.fleet.campaign import (
    FleetCampaign,
    ShardedWorkloadGenerator,
    default_fleet_tenants,
    simulate_fleet,
)
from repro.fleet.config import PLACEMENT_POLICIES, FleetConfig
from repro.fleet.metrics import DeviceStats, FleetReport
from repro.fleet.placement import HashRing, Placement, ring_hash
from repro.fleet.replication import CrossDeviceRaidMap, xor_pages
from repro.fleet.router import FleetRouter
from repro.fleet.sharded import (
    assert_shardable,
    shardable_reasons,
    simulate_fleet_sharded,
)

__all__ = [
    "FleetConfig",
    "PLACEMENT_POLICIES",
    "HashRing",
    "Placement",
    "ring_hash",
    "CrossDeviceRaidMap",
    "xor_pages",
    "DeviceStats",
    "FleetReport",
    "FleetRouter",
    "FleetCampaign",
    "ShardedWorkloadGenerator",
    "default_fleet_tenants",
    "simulate_fleet",
    "simulate_fleet_sharded",
    "shardable_reasons",
    "assert_shardable",
]
